//! # hbm-fpga — Fast HBM Access with FPGAs (IPDPSW'21 reproduction)
//!
//! Umbrella crate re-exporting the whole workspace. See the README for a
//! guided tour and `DESIGN.md` for the system inventory.

pub use hbm_accel as accel;
pub use hbm_axi as axi;
pub use hbm_core as core;
pub use hbm_fabric as fabric;
pub use hbm_mao as mao;
pub use hbm_mem as mem;
pub use hbm_roofline as roofline;
pub use hbm_serve as serve;
pub use hbm_traffic as traffic;

/// Convenience prelude pulling in the most commonly used items.
pub mod prelude {
    pub use hbm_axi::{BurstLen, ClockDomain, Dir, MasterId, PortId};
}
