//! serve-client: submit the Fig. 4 grid to a running `repro serve`
//! daemon and print the same JSON the direct path prints.
//!
//! Start the server in one terminal:
//!
//! ```text
//! cargo run --release -p hbm-bench --bin repro -- serve --addr 127.0.0.1:7070
//! ```
//!
//! then run this client in another:
//!
//! ```text
//! cargo run --release --example serve_client -- 127.0.0.1:7070 [--quick] [--shutdown]
//! ```
//!
//! The client submits the Fig. 4 rotation grid as one job, streams the
//! per-point rows back over the wire, reassembles them by grid index,
//! and folds them into Fig. 4 rows. The output line is **byte-identical**
//! to `repro fig4 --json` at the same fidelity — the serving layer adds
//! scheduling and transport, never changes a measurement. (The CI smoke
//! leg runs two of these clients concurrently and diffs both against the
//! direct path.)

use hbm_fpga::core::experiment::{fig4_rows, Fidelity};
use hbm_fpga::serve::{Client, Event, JobSpec, JobState, RowStatus};

/// `--exercise`: drive the control-plane guarantees end-to-end against a
/// live server — deterministic as long as the server's queue holds fewer
/// than two fig4 grids (the smoke script starts it with `--queue 20`;
/// one 14-point grid fits, two never do).
fn run_exercise(client: &mut Client) {
    // Full-fidelity points take long enough that nothing completes in
    // the microseconds between these calls.
    let spec = JobSpec::fig4(Fidelity::FULL);

    // 1. Admission: the first grid fits.
    let victim = client
        .submit(&spec)
        .expect("submit first job")
        .expect("an idle queue admits one fig4 grid");

    // 2. Backpressure: a second grid overflows the queue and is
    //    rejected immediately with a retry-after, not blocked.
    let rejection = client
        .submit(&spec)
        .expect("submit overflow job")
        .expect_err("a second grid must overflow a --queue 20 server");
    assert!(rejection.retry_after_ms > 0, "rejection must carry a back-off hint");
    eprintln!("serve-client: overflow rejected, retry_after_ms={}", rejection.retry_after_ms);

    // 3. Cancellation: the admitted job dies, its stream still
    //    terminates, and undispatched points come back as Cancelled.
    assert!(client.cancel(victim).expect("send cancel"), "running job must be cancellable");
    let (rows, state) = client
        .collect(victim)
        .expect("stream cancelled job")
        .expect("cancelled job is still known");
    assert_eq!(state, JobState::Cancelled);
    assert_eq!(rows.len(), spec.points.len(), "every point reports a row, even cancelled");
    let cancelled = rows.iter().filter(|r| r.status == RowStatus::Cancelled).count();
    assert!(cancelled > 0, "cancelling a running grid must cancel pending points");
    eprintln!("serve-client: cancelled {cancelled}/{} points", rows.len());

    // 4. The stats verb accounts for all of it.
    let stats = client.stats().expect("stats verb");
    assert!(stats.jobs_rejected >= 1, "rejection must be counted");
    assert!(stats.jobs_cancelled >= 1, "cancellation must be counted");
    println!("exercises OK");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let exercise = args.iter().any(|a| a == "--exercise");
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let fid = if quick { Fidelity::QUICK } else { Fidelity::FULL };

    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("serve-client: cannot connect to {addr}: {e}");
        eprintln!("start the server first: repro serve --addr {addr}");
        std::process::exit(1);
    });

    if exercise {
        run_exercise(&mut client);
        return;
    }

    // Submit with bounded retry: a full queue answers with an explicit
    // retry_after_ms backpressure hint rather than blocking or dropping.
    let spec = JobSpec::fig4(fid);
    let job = match client.submit_with_retry(&spec, 40).expect("submit fig4 job") {
        Ok(job) => job,
        Err(rej) => {
            eprintln!(
                "serve-client: queue still full after retries (retry_after_ms={})",
                rej.retry_after_ms
            );
            std::process::exit(1);
        }
    };
    eprintln!("serve-client: submitted {} points as {job}", spec.points.len());

    // Stream rows (completion order) and reassemble by grid index.
    let mut slots: Vec<Option<hbm_fpga::core::Measurement>> = vec![None; spec.points.len()];
    let state = client
        .subscribe_each(job, |ev| {
            if let Event::Row(row) = ev {
                match &row.status {
                    RowStatus::Done => {
                        slots[row.index] = row.measurement.clone();
                    }
                    other => {
                        eprintln!("serve-client: point {} ended {other:?}", row.index);
                    }
                }
            }
        })
        .expect("stream job events")
        .expect("job is known to the server");
    eprintln!("serve-client: job finished {state:?}");

    let measurements: Vec<_> = slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| m.unwrap_or_else(|| panic!("point {i} produced no measurement")))
        .collect();

    // Identical shape (and bytes) to `repro fig4 --json`.
    let rows = fig4_rows(&measurements);
    println!("{}", serde_json::json!({ "experiment": "fig4", "rows": rows }));

    if shutdown {
        client.shutdown().expect("send shutdown verb");
        eprintln!("serve-client: asked the server to shut down");
    }
}
