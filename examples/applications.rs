//! Application studies: stencil and gather on the simulated HBM system.
//!
//! The paper's title promises "Applications": its §I cites weather
//! stencils (NERO) and data analytics (Kara et al.) as the accelerators
//! that need HBM. This example runs both archetypes end to end:
//!
//! * a 5-point Jacobi stencil — streaming, operational intensity < 1,
//!   purely bandwidth-bound;
//! * a gather reduction — random accesses over a large table, bound by
//!   the memory system's reorder capability (Fig. 6 as an application).
//!
//! Run with: `cargo run --release --example applications`

use hbm_fpga::accel::{gather_engines, run_engines, stencil_engines, GatherDims, StencilDims};
use hbm_fpga::axi::BurstLen;
use hbm_fpga::core::prelude::*;

fn main() {
    // ---- stencil -------------------------------------------------------
    let dims = StencilDims::square(512);
    println!(
        "5-point Jacobi, {}x{} f32 grid ({} MiB per sweep of traffic)\n",
        dims.h,
        dims.w,
        (2 * dims.h * dims.w * 4) >> 20
    );
    for (name, cfg) in [("stock fabric", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())] {
        let engines = stencil_engines(&dims, 32, 1e9, BurstLen::of(16), 16, 8);
        match run_engines(&cfg, engines, dims.total_ops(), 100_000_000) {
            Some(r) => println!(
                "  {name:14}: sweep in {:>8} cycles  ({:6.1} GB/s, {:5.1} GOPS, OpI {:.2})",
                r.cycles, r.gbps, r.gops, r.op_intensity
            ),
            None => println!("  {name:14}: did not finish"),
        }
    }

    // ---- gather --------------------------------------------------------
    let gdims = GatherDims::new(16_384, 512 << 20);
    println!(
        "\ngather reduction, {} random 32 B probes over a {} MiB table\n",
        gdims.num_indices,
        gdims.table_bytes >> 20
    );
    for (name, cfg) in [("stock fabric", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())] {
        for (rname, out, ids) in
            [("shallow reorder (2)", 2usize, 2usize), ("deep reorder (32)", 32, 32)]
        {
            let engines = gather_engines(&gdims, 32, 1e9, out, ids);
            match run_engines(&cfg, engines, gdims.total_ops(), 100_000_000) {
                Some(r) => println!(
                    "  {name:14} {rname:20}: {:>9} cycles  ({:6.2} GB/s of gathers)",
                    r.cycles, r.gbps
                ),
                None => println!("  {name:14} {rname:20}: did not finish"),
            }
        }
    }
    println!(
        "\nThe stencil tracks the CCS bandwidth gap; the gather tracks Fig. 6's\n\
         reorder-depth curve — applications inherit exactly the pattern-level\n\
         behaviour the paper's analysis predicts."
    );
}
