//! Timed accelerator engines on the simulated memory system.
//!
//! Goes one step beyond the paper's §V: instead of only *predicting*
//! accelerator performance from measured bandwidth (Fig. 7), this runs
//! cycle-level engines of both dataflows — tile loads, streaming reads,
//! compute gating, write-back — against the simulated HBM subsystem, so
//! the memory-bound/compute-bound crossover *emerges* and can be checked
//! against the Roofline prediction (the paper reports its model within
//! 3–4 %).
//!
//! Run with: `cargo run --release --example timed_accelerator`

use hbm_fpga::accel::{adder_tree_engines, pe_array_engines, run_engines, MatmulDims};
use hbm_fpga::axi::BurstLen;
use hbm_fpga::core::prelude::*;
use hbm_fpga::roofline::Roofline;

fn main() {
    let dims = MatmulDims::square(192); // 192³ matmul, f32
    println!(
        "C = A·B with m=k=n={} ({} MOPs, {} KiB per matrix)\n",
        dims.m,
        dims.total_ops() / 1_000_000,
        dims.m * dims.k * 4 / 1024
    );

    println!(
        "{:34} {:>9} {:>10} {:>10} {:>9} {:>10}",
        "configuration", "cycles", "GOPS", "GB/s", "OpI", "roofline"
    );

    for (name, cfg) in [("stock fabric", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())] {
        // Accelerator A, P = 8, realistic compute rate (2·(16·8)² ops/cy
        // would dwarf this problem; use a rate that shows the crossover).
        for (rate_name, opc) in [("fast compute", 4096.0), ("slow compute", 64.0)] {
            let engines = pe_array_engines(&dims, 8, 64, opc, BurstLen::of(16), 16, 8);
            let Some(r) = run_engines(&cfg, engines, dims.total_ops(), 50_000_000) else {
                println!("{name}/A/{rate_name}: did not finish");
                continue;
            };
            let predicted = Roofline::new(opc * 0.3, r.gbps).attainable(r.op_intensity);
            println!(
                "A (PE array)  {name:12} {rate_name:12} {:>9} {:>10.1} {:>10.1} {:>9.1} {:>10.1}",
                r.cycles, r.gops, r.gbps, r.op_intensity, predicted
            );
        }
        // Accelerator B, P = 8.
        let engines = adder_tree_engines(&dims, 8, 1024.0, BurstLen::of(16), 16, 8);
        if let Some(r) = run_engines(&cfg, engines, dims.total_ops(), 50_000_000) {
            let predicted = Roofline::new(1024.0 * 0.3, r.gbps).attainable(r.op_intensity);
            println!(
                "B (adder tree) {name:12} {:24} {:>9} {:>10.1} {:>10.1} {:>9.1} {:>10.1}",
                "", r.cycles, r.gops, r.gbps, r.op_intensity, predicted
            );
        }
    }

    println!(
        "\nReading the table: with fast compute the engines are memory bound and\n\
         GOPS tracks bandwidth × OpI; with slow compute they pin to the compute\n\
         ceiling (rate × 0.3 GHz). The 'roofline' column is the prediction from\n\
         the achieved bandwidth — the paper's §V methodology, validated in time."
    );
}
