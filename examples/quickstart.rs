//! Quickstart: the paper's headline result in ~30 lines.
//!
//! Streams a contiguous buffer from all 32 bus masters (the CCS pattern
//! every CPU-prepared data layout produces), first through the stock
//! Xilinx switch fabric — where global addressing hot-spots a single
//! pseudo-channel — then through the Memory Access Optimizer.
//!
//! Run with: `cargo run --release --example quickstart`

use hbm_fpga::core::prelude::*;

fn main() {
    let workload = Workload::ccs(); // BL 16, 32 outstanding, 2:1 R/W
    let warmup = 3_000;
    let cycles = 12_000;

    println!("CCS: 32 masters stream one contiguous 64 MiB buffer (BL 16, 2:1 R/W)\n");

    let xlnx = measure(&SystemConfig::xilinx(), workload, warmup, cycles);
    println!(
        "stock Xilinx fabric : {:6.1} GB/s ({:4.1}% of the 460.8 GB/s device)",
        xlnx.total_gbps(),
        xlnx.pct_of_device()
    );

    let mao = measure(&SystemConfig::mao(), workload, warmup, cycles);
    println!("with the MAO        : {:6.1} GB/s ({:4.1}%)", mao.total_gbps(), mao.pct_of_device());

    println!(
        "\nspeed-up: {:.1}x  (paper: 40.6x, 13.0 -> 414 GB/s)",
        mao.total_gbps() / xlnx.total_gbps()
    );
    println!(
        "read latency under load: {:.0} -> {:.0} cycles (mean)",
        xlnx.read_latency_mean().unwrap_or(f64::NAN),
        mao.read_latency_mean().unwrap_or(f64::NAN),
    );
}
