//! Trace capture, serialisation, and cross-fabric replay.
//!
//! Captures the CCS workload's transaction stream once, round-trips it
//! through JSON, and replays the *identical* stimulus against the stock
//! Xilinx fabric and the MAO — the cleanest way to attribute a
//! performance difference to the interconnect alone.
//!
//! Run with: `cargo run --release --example trace_replay`

use hbm_fpga::core::prelude::*;
use hbm_fpga::core::trace::replay_system;
use hbm_fpga::traffic::Trace;

fn main() {
    // Capture: 64 transactions per master, nominally one per 2 cycles.
    let trace = Trace::capture(Workload::ccs(), 32, 256 << 20, 64, 2);
    println!(
        "captured {} events ({} KiB of traffic) from the CCS workload",
        trace.events.len(),
        trace.total_bytes() / 1024
    );

    // Serialise / deserialise (what you would save to disk).
    let json = trace.to_json();
    let trace = Trace::from_json(&json).expect("round trip");
    println!("JSON round trip: {} bytes of trace file\n", json.len());

    // Replay on both fabrics.
    for (name, cfg) in
        [("stock Xilinx fabric", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())]
    {
        let mut sys = replay_system(&cfg, &trace, 32);
        let ok = sys.run_until_drained(10_000_000);
        assert!(ok, "replay did not finish");
        let cycles = sys.now();
        let gbps = sys.clock().throughput_gbps(trace.total_bytes(), cycles);
        let stats = sys.gen_stats();
        let mut read_lat = hbm_fpga::traffic::LatencyStats::default();
        for g in &stats {
            read_lat.merge(&g.read_lat);
        }
        println!(
            "{name:22}: drained in {cycles:>7} cycles  ({gbps:6.1} GB/s effective, \
             read latency {:.0} ±{:.0} cycles)",
            read_lat.mean().unwrap_or(f64::NAN),
            read_lat.std_dev().unwrap_or(f64::NAN),
        );
    }
    println!("\nSame addresses, same order, same pacing — the gap is pure interconnect.");
}
