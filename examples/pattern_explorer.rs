//! Interactive-ish exploration of the access-pattern parameter space.
//!
//! ```text
//! cargo run --release --example pattern_explorer -- \
//!     [scs|ccs|scra|ccra] [xlnx|mao|direct] [BL] [outstanding] [ids]
//! ```
//!
//! Defaults: `ccs xlnx 16 32 16`. Prints throughput, latency, DRAM and
//! fabric statistics for the chosen configuration — the raw numbers
//! behind every figure of the paper.

use hbm_fpga::axi::BurstLen;
use hbm_fpga::core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, d: &str| args.get(i).cloned().unwrap_or_else(|| d.to_string());

    let pattern = match arg(0, "ccs").as_str() {
        "scs" => Pattern::Scs,
        "ccs" => Pattern::Ccs,
        "scra" => Pattern::Scra,
        "ccra" => Pattern::Ccra,
        other => panic!("unknown pattern {other:?} (want scs|ccs|scra|ccra)"),
    };
    let cfg = match arg(1, "xlnx").as_str() {
        "xlnx" => SystemConfig::xilinx(),
        "mao" => SystemConfig::mao(),
        "direct" => SystemConfig::direct(),
        other => panic!("unknown fabric {other:?} (want xlnx|mao|direct)"),
    };
    let burst: u8 = arg(2, "16").parse().expect("burst length 1..=16");
    let outstanding: usize = arg(3, "32").parse().expect("outstanding >= 1");
    let num_ids: usize = arg(4, "16").parse().expect("ids 1..=256");

    let base = match pattern {
        Pattern::Scs => Workload::scs(),
        Pattern::Ccs => Workload::ccs(),
        Pattern::Scra => Workload::scra(),
        Pattern::Ccra => Workload::ccra(),
    };
    let wl = Workload {
        burst: BurstLen::of(burst),
        stride: BurstLen::of(burst).bytes(),
        outstanding,
        num_ids,
        ..base
    };

    println!(
        "pattern {pattern:?}, fabric {:?}, BL {burst}, N_ot {outstanding}, IDs {num_ids}\n",
        arg(1, "xlnx")
    );
    let m = measure(&cfg, wl, 3_000, 12_000);

    println!(
        "throughput : {:7.2} GB/s total ({:.1}% of device)",
        m.total_gbps(),
        m.pct_of_device()
    );
    println!("             {:7.2} GB/s read, {:.2} GB/s write", m.read_gbps(), m.write_gbps());
    if let (Some(rm), Some(rs)) = (m.read_latency_mean(), m.read_latency_std()) {
        let p50 = m.read_latency_percentile(0.5).unwrap_or(0);
        let p99 = m.read_latency_percentile(0.99).unwrap_or(0);
        println!("read  lat  : {rm:7.1} ± {rs:.1} cycles (p50 ≤{p50}, p99 ≤{p99})");
    }
    if let (Some(wm), Some(ws)) = (m.write_latency_mean(), m.write_latency_std()) {
        let p99 = m.write_latency_percentile(0.99).unwrap_or(0);
        println!("write lat  : {wm:7.1} ± {ws:.1} cycles (p99 ≤{p99})");
    }
    println!(
        "DRAM       : {:.1}% row hits, {} turnarounds, {} refreshes",
        100.0 * m.mem.hit_rate().unwrap_or(0.0),
        m.mem.turnarounds,
        m.mem.refreshes
    );
    println!(
        "fabric     : {} lateral beats (max single bus {}), {} ID-ordering stall cycles",
        m.fabric.lateral_beats(),
        m.fabric.max_lateral_beats(),
        m.fabric.id_stall_cycles
    );

    // Per-master fairness summary.
    let per: Vec<f64> =
        m.per_master.iter().map(|g| m.clock.throughput_gbps(g.total_bytes(), m.cycles)).collect();
    let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per.iter().cloned().fold(0.0, f64::max);
    println!("fairness   : per-master throughput {min:.2}..{max:.2} GB/s");
}
