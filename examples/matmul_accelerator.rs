//! Matrix-multiplication accelerators end to end (paper §V).
//!
//! 1. Runs the *functional* dataflows of Accelerator A (systolic PE
//!    array) and Accelerator B (adder tree) on real matrices and checks
//!    them against a reference multiply.
//! 2. Measures each accelerator's memory access pattern on the simulated
//!    HBM subsystem, with and without the MAO.
//! 3. Places both in a Roofline and reports attainable performance and
//!    whether each configuration is memory or compute bound — Fig. 7 and
//!    the speed-up columns of Table V.
//!
//! Run with: `cargo run --release --example matmul_accelerator`

use hbm_fpga::core::prelude::*;
use hbm_fpga::roofline::accelerator::{AcceleratorA, AcceleratorB, AcceleratorModel};
use hbm_fpga::roofline::matmul::{adder_tree_matmul, reference_matmul, systolic_matmul, Matrix};
use hbm_fpga::roofline::Roofline;

fn main() {
    // --- 1. functional proof -------------------------------------------------
    let m = 48;
    let k = 64;
    let n = 40;
    let a = Matrix::from_fn(m, k, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
    let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 7) as f32 - 3.0);
    let want = reference_matmul(&a, &b);

    let got_a = systolic_matmul(&a, &b, 16); // 16×16 resident tile
    let got_b = adder_tree_matmul(&a, &b, 8); // 8 buffered rows
    assert_eq!(want.max_abs_diff(&got_a), 0.0);
    assert_eq!(want.max_abs_diff(&got_b), 0.0);
    println!("functional check: both dataflows match the reference ({m}x{k} x {k}x{n}) ✓\n");

    // --- 2. measured bandwidths ---------------------------------------------
    let warmup = 3_000;
    let cycles = 10_000;
    let wl_a = Workload::ccs(); // A streams with a 2:1 R/W ratio
    let wl_b = Workload {
        rw: RwRatio { reads: 15, writes: 1 }, // B re-streams one input
        ..Workload::ccs()
    };
    let bw_a_xlnx = measure(&SystemConfig::xilinx(), wl_a, warmup, cycles).total_gbps();
    let bw_a_mao = measure(&SystemConfig::mao(), wl_a, warmup, cycles).total_gbps();
    let bw_b_xlnx = measure(&SystemConfig::xilinx(), wl_b, warmup, cycles).total_gbps();
    let bw_b_mao = measure(&SystemConfig::mao(), wl_b, warmup, cycles).total_gbps();
    println!("measured bandwidth  A: XLNX {bw_a_xlnx:6.2}  MAO {bw_a_mao:6.2} GB/s (paper 12.55 / 403.75)");
    println!("                    B: XLNX {bw_b_xlnx:6.2}  MAO {bw_b_mao:6.2} GB/s (paper  9.59 / 273.00)\n");

    // --- 3. roofline placement ----------------------------------------------
    println!(
        "{:28} {:>4} {:>9} {:>12} {:>12}  bound",
        "accelerator", "P", "OpI", "XLNX GOPS", "MAO GOPS"
    );
    for p in [4usize, 8, 16, 32] {
        let acc = AcceleratorA { p };
        report(&acc, bw_a_xlnx, bw_a_mao);
    }
    for p in [4usize, 8, 16, 32] {
        let acc = AcceleratorB { p };
        report(&acc, bw_b_xlnx, bw_b_mao);
    }
}

fn report(acc: &impl AcceleratorModel, bw_xlnx: f64, bw_mao: f64) {
    let rx = Roofline::new(acc.comp_gops(), bw_xlnx);
    let ro = Roofline::new(acc.comp_gops(), bw_mao);
    let oi = acc.op_intensity();
    println!(
        "{:28} {:>4} {:>9.1} {:>12.0} {:>12.0}  {} -> {}",
        acc.name(),
        acc.p(),
        oi,
        rx.attainable(oi),
        ro.attainable(oi),
        if rx.memory_bound(oi) { "memory" } else { "compute" },
        if ro.memory_bound(oi) { "memory" } else { "compute" },
    );
}
