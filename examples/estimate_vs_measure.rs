//! The paper's estimation methodology: predict first, then measure.
//!
//! §V's workflow is (1) estimate achievable bandwidth from the §IV
//! rules, (2) measure, (3) check the model was good enough for design
//! space exploration ("about 3 % off from what we estimated for both
//! cases"). This example runs that loop over the whole pattern grid.
//!
//! Run with: `cargo run --release --example estimate_vs_measure`

use hbm_fpga::core::estimate::estimate_bandwidth;
use hbm_fpga::core::prelude::*;

fn main() {
    println!(
        "{:8} {:8} {:>12} {:>12} {:>8}",
        "fabric", "pattern", "estimated", "measured", "error"
    );
    let mut worst: f64 = 0.0;
    for (fname, cfg) in [("XLNX", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())] {
        for (pname, wl) in [
            ("SCS", Workload::scs()),
            ("CCS", Workload::ccs()),
            ("SCRA", Workload::scra()),
            ("CCRA", Workload::ccra()),
        ] {
            let est = estimate_bandwidth(&cfg, &wl);
            let meas = measure(&cfg, wl, 3_000, 10_000);
            let err = (est.total_gbps - meas.total_gbps()).abs() / meas.total_gbps();
            worst = worst.max(err);
            println!(
                "{fname:8} {pname:8} {:>10.1} GB/s {:>8.1} GB/s {:>7.1}%",
                est.total_gbps,
                meas.total_gbps(),
                err * 100.0
            );
        }
    }
    println!(
        "\nworst-case estimation error over the grid: {:.1}% \n\
         (the paper reports 2–4 % for its two §V cases; the grid here also\n\
         covers the harder random patterns)",
        worst * 100.0
    );
}
