//! The paper's design guidelines (§IV) codified as an advisor.
//!
//! Describe your accelerator on the command line and get the paper's
//! recommendations plus a simulated estimate of the bandwidth you will
//! actually see:
//!
//! ```text
//! cargo run --release --example design_advisor -- \
//!     [ops_per_byte] [read_fraction 0..1] [random|strided] [shared|partitioned]
//! ```
//!
//! Defaults: `2.0 0.66 strided shared`.

use hbm_fpga::core::prelude::*;
use hbm_fpga::roofline::Roofline;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, d: &str| args.get(i).cloned().unwrap_or_else(|| d.to_string());
    let op_i: f64 = arg(0, "2.0").parse().expect("ops per byte");
    let read_frac: f64 = arg(1, "0.66").parse().expect("read fraction 0..1");
    let random = arg(2, "strided") == "random";
    let shared = arg(3, "shared") == "shared";

    println!(
        "accelerator: {op_i} OPS/B, {:.0}% reads, {} access, {} data\n",
        read_frac * 100.0,
        if random { "random" } else { "strided" },
        if shared { "globally shared" } else { "pre-partitioned" }
    );

    // ---- Guidelines from §IV-A --------------------------------------------
    println!("guidelines (paper §IV):");
    println!(" 1. clock: 300 MHz is enough — compensate with a read/write mix");
    println!("    close to 2:1 rather than chasing 450 MHz timing closure.");
    let bl = if random { 16 } else { 4 };
    println!(
        " 2. burst length: use BL {bl} ({}).",
        if random {
            "random access needs long bursts to amortise page misses"
        } else {
            "strided streams saturate from BL 2–4; BL 16 also fine"
        }
    );
    println!(" 3. keep ≥16 outstanding transactions per port to cover the");
    println!("    48-cycle (160 ns) closed-page read round trip.");
    if shared {
        println!(" 4. shared data + global addressing hot-spots one pseudo-channel");
        println!("    on the stock fabric — interleave addresses (MAO) or");
        println!("    hand-partition. Avoid lateral routing; it caps at ~2 buses");
        println!("    per direction and collapses throughput (Fig. 4).");
    } else {
        println!(" 4. pre-partitioned data: keep each master on its local");
        println!("    pseudo-channel (SCS); the switch fabric then adds nothing.");
    }
    if random {
        println!(" 5. random access: use as many independent AXI IDs as possible");
        println!("    (reorder depth, Fig. 6) so the controllers can schedule");
        println!("    around page misses.");
    }

    // ---- Simulate the two candidate systems --------------------------------
    let reads = (read_frac * 8.0).round() as u32;
    let rw = RwRatio {
        reads: reads.max(if read_frac > 0.0 { 1 } else { 0 }),
        writes: (8 - reads).max(if read_frac < 1.0 { 1 } else { 0 }),
    };
    let pattern = match (random, shared) {
        (false, true) => Pattern::Ccs,
        (true, true) => Pattern::Ccra,
        (false, false) => Pattern::Scs,
        (true, false) => Pattern::Scra,
    };
    let base = match pattern {
        Pattern::Scs => Workload::scs(),
        Pattern::Ccs => Workload::ccs(),
        Pattern::Scra => Workload::scra(),
        Pattern::Ccra => Workload::ccra(),
    };
    let wl = Workload { rw, ..base };

    let xlnx = measure(&SystemConfig::xilinx(), wl, 3_000, 8_000).total_gbps();
    let mao = measure(&SystemConfig::mao(), wl, 3_000, 8_000).total_gbps();
    println!("\nsimulated achievable bandwidth:");
    println!("  stock fabric : {xlnx:7.1} GB/s");
    println!("  with MAO     : {mao:7.1} GB/s");

    // ---- Roofline verdict ---------------------------------------------------
    // A generously-sized compute engine: the question is what memory allows.
    for (name, bw) in [("stock fabric", xlnx), ("MAO", mao)] {
        let perf_tops = bw * op_i / 1000.0;
        println!(
            "  on {name:13}: {:.2} TOPS attainable at {op_i} OPS/B ({})",
            perf_tops,
            if Roofline::new(1e6, bw).memory_bound(op_i) {
                "memory bound"
            } else {
                "compute bound"
            },
        );
    }
    if mao > 2.0 * xlnx {
        println!("\nverdict: your access pattern needs the MAO (or manual partitioning).");
    } else {
        println!("\nverdict: the stock fabric is adequate for this pattern.");
    }
}
