//! Latency behaviour of the HBM subsystem (paper Table II and §IV-A).
//!
//! Reproduces the closed-page latency probes (local vs. farthest
//! pseudo-channel) and the Table II latency comparison between the stock
//! fabric and the MAO under light and heavy traffic — including the
//! paper's observation that the MAO costs a few cycles when idle but
//! wins dramatically, with far lower variance, under load.
//!
//! Run with: `cargo run --release --example latency_analysis`

use hbm_fpga::axi::BurstLen;
use hbm_fpga::core::experiment;
use hbm_fpga::core::prelude::*;

fn main() {
    // --- §IV-A probes --------------------------------------------------------
    let p = experiment::latency_probe();
    println!("closed-page single-transaction latency (cycles @300 MHz):");
    println!("  read  local {:5.1}   farthest {:5.1}   (paper: 48 → 72)", p.read_local, p.read_far);
    println!(
        "  write local {:5.1}   farthest {:5.1}   (paper: 17 → 41)\n",
        p.write_local, p.write_far
    );

    // --- Table II style comparison -------------------------------------------
    println!(
        "{:8} {:6} {:8} {:>16} {:>16}",
        "traffic", "fabric", "pattern", "read mean±σ", "write mean±σ"
    );
    for (traffic, outstanding, bl) in [("Single", 1usize, 1u8), ("Burst", 32, 16)] {
        for (fabric, cfg) in [("XLNX", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())] {
            for (pname, base) in [("CCS", Workload::ccs()), ("CCRA", Workload::ccra())] {
                let wl = Workload {
                    outstanding,
                    burst: BurstLen::of(bl),
                    stride: BurstLen::of(bl).bytes(),
                    num_ids: if outstanding == 1 { 1 } else { 16 },
                    ..base
                };
                let m = measure(&cfg, wl, 2_000, 8_000);
                println!(
                    "{:8} {:6} {:8} {:>9.1} ±{:>5.1} {:>9.1} ±{:>5.1}",
                    traffic,
                    fabric,
                    pname,
                    m.read_latency_mean().unwrap_or(f64::NAN),
                    m.read_latency_std().unwrap_or(f64::NAN),
                    m.write_latency_mean().unwrap_or(f64::NAN),
                    m.write_latency_std().unwrap_or(f64::NAN),
                );
            }
        }
    }
    println!(
        "\npaper reference (Burst): XLNX CCS 3020.8 ±1478.8 read — the MAO cuts\n\
         this by >10× (264.5 ±13.4) by eliminating lateral-bus contention."
    );
}
