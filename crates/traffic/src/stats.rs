//! Latency and volume statistics collected per bus master.

use serde::{Deserialize, Serialize};

/// Number of power-of-two latency buckets (bucket `i` holds samples in
/// `[2^i, 2^(i+1))`, bucket 0 holds 0 and 1).
pub const LATENCY_BUCKETS: usize = 24;

/// Streaming mean / standard deviation / extrema / histogram accumulator
/// for latencies in cycles. The histogram uses power-of-two buckets, so
/// percentiles are exact to within a factor of two — plenty for the
/// latency-distribution comparisons of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: u64,
    sum: f64,
    sum_sq: f64,
    /// Minimum observed latency.
    pub min: u64,
    /// Maximum observed latency.
    pub max: u64,
    /// Power-of-two histogram buckets.
    #[serde(with = "serde_arrays")]
    buckets: [u64; LATENCY_BUCKETS],
}

/// Serde support for the fixed-size bucket array (serde's derive caps
/// arrays at 32 on older versions; this keeps us explicit and stable).
mod serde_arrays {
    use super::LATENCY_BUCKETS;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[u64; LATENCY_BUCKETS], s: S) -> Result<S::Ok, S::Error> {
        v.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<[u64; LATENCY_BUCKETS], D::Error> {
        let v = Vec::<u64>::deserialize(d)?;
        let mut out = [0u64; LATENCY_BUCKETS];
        for (i, x) in v.into_iter().take(LATENCY_BUCKETS).enumerate() {
            out[i] = x;
        }
        Ok(out)
    }
}

impl Default for LatencyStats {
    fn default() -> LatencyStats {
        LatencyStats { n: 0, sum: 0.0, sum_sq: 0.0, min: 0, max: 0, buckets: [0; LATENCY_BUCKETS] }
    }
}

impl LatencyStats {
    /// Records one latency sample.
    pub fn record(&mut self, cycles: u64) {
        if self.n == 0 {
            self.min = cycles;
            self.max = cycles;
        } else {
            self.min = self.min.min(cycles);
            self.max = self.max.max(cycles);
        }
        self.n += 1;
        self.sum += cycles as f64;
        self.sum_sq += (cycles as f64) * (cycles as f64);
        let bucket = (64 - cycles.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// The latency below which `q` of the samples fall (`q` in 0..=1),
    /// resolved to the upper edge of the containing power-of-two bucket.
    /// `None` with no samples.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let want = (q.clamp(0.0, 1.0) * self.n as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= want {
                return Some(((1u64 << (i + 1)) - 1).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median latency (upper-edge bucket estimate), `None` with no
    /// samples.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Mean latency in cycles, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Population standard deviation in cycles, or `None` with no samples.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = (self.sum_sq / self.n as f64 - mean * mean).max(0.0);
        Some(var.sqrt())
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, o: &LatencyStats) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *o;
            return;
        }
        self.n += o.n;
        self.sum += o.sum;
        self.sum_sq += o.sum_sq;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
    }
}

/// Per-master traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GenStats {
    /// Transactions issued (accepted by the interconnect).
    pub issued: u64,
    /// Transactions completed.
    pub completed: u64,
    /// Read payload bytes completed.
    pub bytes_read: u64,
    /// Write payload bytes completed (acknowledged).
    pub bytes_written: u64,
    /// Read-transaction latency (issue → last data beat delivered).
    pub read_lat: LatencyStats,
    /// Write-transaction latency (issue → acknowledge delivered).
    pub write_lat: LatencyStats,
}

impl GenStats {
    /// Total completed payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Merges another master's statistics into this one.
    pub fn merge(&mut self, o: &GenStats) {
        self.issued += o.issued;
        self.completed += o.completed;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.read_lat.merge(&o.read_lat);
        self.write_lat.merge(&o.write_lat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_no_mean() {
        let s = LatencyStats::default();
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
    }

    #[test]
    fn mean_and_std_dev() {
        let mut s = LatencyStats::default();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            s.record(v);
        }
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.std_dev(), Some(2.0));
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn single_sample() {
        let mut s = LatencyStats::default();
        s.record(42);
        assert_eq!(s.mean(), Some(42.0));
        assert_eq!(s.std_dev(), Some(0.0));
        assert_eq!((s.min, s.max), (42, 42));
    }

    #[test]
    fn merge_equivalent_to_combined_stream() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        let mut all = LatencyStats::default();
        for v in [1u64, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 8] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.std_dev(), all.std_dev());
        assert_eq!((a.min, a.max), (all.min, all.max));
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.mean(), Some(3.0));
        let empty = LatencyStats::default();
        a.merge(&empty);
        assert_eq!(a.n, 1);
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let mut s = LatencyStats::default();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            s.record(10);
        }
        for _ in 0..10 {
            s.record(1000);
        }
        let p50 = s.percentile(0.5).unwrap();
        let p99 = s.percentile(0.99).unwrap();
        assert!(p50 <= 31, "p50 {p50} in the fast bucket range");
        assert!(p99 >= 512, "p99 {p99} reaches the slow tail");
        assert!(s.percentile(1.0).unwrap() >= 1000 - 1);
    }

    #[test]
    fn percentile_empty_none() {
        assert_eq!(LatencyStats::default().percentile(0.5), None);
    }

    #[test]
    fn percentile_survives_merge() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        for _ in 0..50 {
            a.record(8);
            b.record(800);
        }
        a.merge(&b);
        assert!(a.percentile(0.25).unwrap() <= 15);
        assert!(a.percentile(0.9).unwrap() >= 512);
    }

    #[test]
    fn named_percentiles_ordered_and_merge_exact() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        let mut all = LatencyStats::default();
        for v in 1..=700u64 {
            let (half, x) = if v % 2 == 0 { (&mut a, v) } else { (&mut b, 3 * v) };
            half.record(x);
            all.record(x);
        }
        a.merge(&b);
        // Merged percentiles must equal single-stream percentiles exactly
        // (same bucket counts), for every named accessor.
        assert_eq!(a.p50(), all.p50());
        assert_eq!(a.p95(), all.p95());
        assert_eq!(a.p99(), all.p99());
        assert_eq!(a.p999(), all.p999());
        let (p50, p95, p99, p999) =
            (a.p50().unwrap(), a.p95().unwrap(), a.p99().unwrap(), a.p999().unwrap());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        assert!(p999 <= a.max);
        assert!(a.min <= p50);
    }

    #[test]
    fn gen_stats_merge() {
        let mut a = GenStats { issued: 2, bytes_read: 100, ..GenStats::default() };
        let b = GenStats { issued: 3, bytes_written: 50, ..GenStats::default() };
        a.merge(&b);
        assert_eq!(a.issued, 5);
        assert_eq!(a.total_bytes(), 150);
    }
}
