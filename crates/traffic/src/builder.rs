//! Fluent construction of [`Workload`]s.
//!
//! The `Workload` struct literal is fine for experiment code; downstream
//! users get a validating builder:
//!
//! ```
//! use hbm_traffic::{Pattern, RwRatio, WorkloadBuilder};
//!
//! let wl = WorkloadBuilder::new(Pattern::Ccra)
//!     .burst(8)
//!     .outstanding(16)
//!     .ids(16)
//!     .rw(RwRatio::TWO_TO_ONE)
//!     .working_set(1 << 30)
//!     .build()
//!     .unwrap();
//! assert_eq!(wl.burst.beats(), 8);
//! ```

use hbm_axi::BurstLen;

use crate::workload::{Pattern, RwRatio, Workload};

/// Builder for [`Workload`] with validation at `build` time.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    wl: Workload,
    burst_err: Option<String>,
}

impl WorkloadBuilder {
    /// Starts from the canonical preset for `pattern`.
    pub fn new(pattern: Pattern) -> WorkloadBuilder {
        let wl = match pattern {
            Pattern::Scs => Workload::scs(),
            Pattern::Ccs => Workload::ccs(),
            Pattern::Scra => Workload::scra(),
            Pattern::Ccra => Workload::ccra(),
        };
        WorkloadBuilder { wl, burst_err: None }
    }

    /// AXI3 burst length in beats (1..=16); the stride follows unless
    /// overridden afterwards.
    pub fn burst(mut self, beats: u8) -> WorkloadBuilder {
        match BurstLen::new(beats) {
            Some(b) => {
                self.wl.burst = b;
                self.wl.stride = b.bytes();
            }
            None => self.burst_err = Some(format!("invalid AXI3 burst length {beats}")),
        }
        self
    }

    /// Maximum outstanding transactions per direction.
    pub fn outstanding(mut self, n: usize) -> WorkloadBuilder {
        self.wl.outstanding = n;
        self
    }

    /// Independent AXI IDs (reorder window).
    pub fn ids(mut self, n: usize) -> WorkloadBuilder {
        self.wl.num_ids = n;
        self
    }

    /// Read/write mix.
    pub fn rw(mut self, rw: RwRatio) -> WorkloadBuilder {
        self.wl.rw = rw;
        self
    }

    /// Stride between chunk starts in bytes.
    pub fn stride(mut self, bytes: u64) -> WorkloadBuilder {
        self.wl.stride = bytes;
        self
    }

    /// SCS rotation offset.
    pub fn rotation(mut self, r: usize) -> WorkloadBuilder {
        self.wl.rotation = r;
        self
    }

    /// Working-set size in bytes.
    pub fn working_set(mut self, bytes: u64) -> WorkloadBuilder {
        self.wl.working_set = bytes;
        self
    }

    /// RNG seed for random patterns.
    pub fn seed(mut self, seed: u64) -> WorkloadBuilder {
        self.wl.seed = seed;
        self
    }

    /// Validates and returns the workload.
    pub fn build(self) -> Result<Workload, String> {
        if let Some(e) = self.burst_err {
            return Err(e);
        }
        self.wl.validate()?;
        Ok(self.wl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_workloads() {
        let wl =
            WorkloadBuilder::new(Pattern::Scs).burst(4).outstanding(8).rotation(2).build().unwrap();
        assert_eq!(wl.burst.beats(), 4);
        assert_eq!(wl.stride, 128, "stride follows burst");
        assert_eq!(wl.rotation, 2);
    }

    #[test]
    fn rejects_invalid_burst() {
        let e = WorkloadBuilder::new(Pattern::Ccs).burst(0).build().unwrap_err();
        assert!(e.contains("burst"), "{e}");
        let e = WorkloadBuilder::new(Pattern::Ccs).burst(17).build().unwrap_err();
        assert!(e.contains("burst"), "{e}");
    }

    #[test]
    fn rejects_invalid_downstream_fields() {
        let e = WorkloadBuilder::new(Pattern::Ccs).outstanding(0).build().unwrap_err();
        assert!(e.contains("outstanding"), "{e}");
        let e = WorkloadBuilder::new(Pattern::Ccs).stride(100).build().unwrap_err();
        assert!(e.contains("stride"), "{e}");
    }

    #[test]
    fn stride_override_after_burst() {
        let wl = WorkloadBuilder::new(Pattern::Ccs)
            .burst(16)
            .stride(16 << 10)
            .working_set(4 << 30)
            .build()
            .unwrap();
        assert_eq!(wl.stride, 16 << 10);
    }
}
