//! Workload specifications.

use hbm_axi::BurstLen;
use serde::{Deserialize, Serialize};

/// The four basic access patterns of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Single-Channel Stride: master *i* streams linearly through its own
    /// pseudo-channel's partition (optionally rotated, Fig. 4).
    Scs,
    /// Cross-Channel Stride: all masters walk one globally contiguous
    /// buffer, each requesting the globally subsequent chunk in turn.
    Ccs,
    /// Single-Channel Random Access: master *i* reads random chunks
    /// within its own partition.
    Scra,
    /// Cross-Channel Random Access: masters read random chunks anywhere
    /// in the working set.
    Ccra,
}

/// Ratio of concurrent read to write transactions, e.g. 2:1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RwRatio {
    /// Reads per period.
    pub reads: u32,
    /// Writes per period.
    pub writes: u32,
}

impl RwRatio {
    /// Read-only traffic.
    pub const READ_ONLY: RwRatio = RwRatio { reads: 1, writes: 0 };
    /// Write-only traffic.
    pub const WRITE_ONLY: RwRatio = RwRatio { reads: 0, writes: 1 };
    /// The 2:1 mix the paper identifies as the 300 MHz sweet spot.
    pub const TWO_TO_ONE: RwRatio = RwRatio { reads: 2, writes: 1 };

    /// Fraction of transactions that are reads.
    pub fn read_fraction(&self) -> f64 {
        let total = self.reads + self.writes;
        assert!(total > 0, "ratio must have at least one side");
        self.reads as f64 / total as f64
    }

    /// Whether the `n`-th transaction of the repeating period is a read.
    pub fn is_read(&self, n: u64) -> bool {
        let period = (self.reads + self.writes) as u64;
        (n % period) < self.reads as u64
    }
}

/// A complete workload description for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Access pattern.
    pub pattern: Pattern,
    /// AXI burst length.
    pub burst: BurstLen,
    /// Maximum outstanding transactions per master per direction
    /// (the paper's `N_ot`).
    pub outstanding: usize,
    /// Independent AXI IDs each master cycles through (reorder window,
    /// Fig. 6).
    pub num_ids: usize,
    /// Read/write mix.
    pub rw: RwRatio,
    /// Distance between consecutive chunk starts in bytes. Equal to the
    /// burst size for dense streams; larger values skip data and smaller
    /// values re-fetch it (Fig. 5).
    pub stride: u64,
    /// SCS rotation offset: master *i* targets pseudo-channel
    /// `(i + rotation) mod N` (Fig. 4).
    pub rotation: usize,
    /// Bytes of the shared buffer (CC patterns) or of each master's
    /// private region (SC patterns). Reads use the first half, writes the
    /// second, so mixed traffic touches disjoint data like a real
    /// read-modify-write kernel.
    pub working_set: u64,
    /// RNG seed for the random patterns.
    pub seed: u64,
}

impl Workload {
    /// A dense CCS workload over a 64 MiB contiguous buffer — the
    /// configuration that hot-spots a single pseudo-channel on the
    /// Xilinx fabric (Fig. 3b / Table IV).
    pub fn ccs() -> Workload {
        Workload {
            pattern: Pattern::Ccs,
            burst: BurstLen::of(16),
            outstanding: 32,
            num_ids: 16,
            rw: RwRatio::TWO_TO_ONE,
            stride: 512,
            rotation: 0,
            working_set: 64 << 20,
            seed: 0x5eed_0001,
        }
    }

    /// A CCRA workload scattering 512 B chunks over the whole 8 GiB
    /// device (Table IV) — random accesses touch every pseudo-channel.
    pub fn ccra() -> Workload {
        Workload { pattern: Pattern::Ccra, working_set: 8 << 30, ..Workload::ccs() }
    }

    /// A dense SCS workload, each master in its own 64 MiB partition
    /// slice (Fig. 3a).
    pub fn scs() -> Workload {
        Workload { pattern: Pattern::Scs, ..Workload::ccs() }
    }

    /// An SCRA workload (Fig. 3c).
    pub fn scra() -> Workload {
        Workload { pattern: Pattern::Scra, ..Workload::ccs() }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.stride.is_multiple_of(32) || self.stride == 0 {
            return Err(format!("stride {} must be a positive multiple of 32 B", self.stride));
        }
        if self.stride < self.burst.bytes() && !self.stride.is_multiple_of(self.burst.bytes()) {
            // Overlapping strides are allowed (Fig. 5's low end) but must
            // keep bursts 512-aligned relative to each other? No: they
            // only need beat alignment, which the 32 B check gives.
        }
        if self.outstanding == 0 {
            return Err("outstanding must be ≥ 1".into());
        }
        if self.num_ids == 0 || self.num_ids > 256 {
            return Err("num_ids must be in 1..=256".into());
        }
        if self.rw.reads + self.rw.writes == 0 {
            return Err("read/write ratio must be non-empty".into());
        }
        if self.working_set < 2 * self.burst.bytes() {
            return Err("working set too small for split read/write regions".into());
        }
        // Bursts must never cross a 4 KiB boundary (AXI rule). AXI3 caps
        // at 512 B; AXI4 what-if studies may go to 4 KiB, in which case
        // the interleave granularity must be at least the burst size
        // (validated by `MaoConfig`).
        if self.burst.bytes() > 4096 {
            return Err("burst exceeds the 4 KiB AXI boundary".into());
        }
        if self.burst.bytes() > 512 && self.stride < self.burst.bytes() {
            return Err("long-burst workloads must not overlap bursts".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_read_fraction() {
        assert_eq!(RwRatio::READ_ONLY.read_fraction(), 1.0);
        assert_eq!(RwRatio::WRITE_ONLY.read_fraction(), 0.0);
        assert!((RwRatio::TWO_TO_ONE.read_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_sequence() {
        let r = RwRatio::TWO_TO_ONE;
        let seq: Vec<bool> = (0..6).map(|n| r.is_read(n)).collect();
        assert_eq!(seq, [true, true, false, true, true, false]);
    }

    #[test]
    fn presets_validate() {
        Workload::ccs().validate().unwrap();
        Workload::ccra().validate().unwrap();
        Workload::scs().validate().unwrap();
        Workload::scra().validate().unwrap();
    }

    #[test]
    fn validation_catches_errors() {
        let mut w = Workload::ccs();
        w.stride = 100;
        assert!(w.validate().is_err());

        let mut w = Workload::ccs();
        w.outstanding = 0;
        assert!(w.validate().is_err());

        let mut w = Workload::ccs();
        w.rw = RwRatio { reads: 0, writes: 0 };
        assert!(w.validate().is_err());

        let mut w = Workload::ccs();
        w.working_set = 512;
        assert!(w.validate().is_err());
    }
}
