//! # hbm-traffic — workload substrate
//!
//! Implements the four basic access patterns of the paper's Table I —
//! the cross product of channel locality (Single-/Cross-Channel) and
//! ordering (Stride/Random Access):
//!
//! | pattern | locality | ordering |
//! |---------|----------|----------|
//! | SCS     | each master stays on its own pseudo-channel | linear stride |
//! | SCRA    | each master stays on its own pseudo-channel | random chunks |
//! | CCS     | masters share one globally contiguous buffer | round-robin stride |
//! | CCRA    | masters scatter over the whole space | random chunks |
//!
//! plus the paper's parameter axes: burst length, number of outstanding
//! transactions (`N_ot`), independent AXI IDs (reorder depth), read/write
//! ratio (`RW_rat`), stride length (Fig. 5), and SCS rotation offset
//! (Fig. 4).
//!
//! [`BmTrafficGen`] produces one master's transaction stream and collects
//! its latency statistics; the simulation loop in `hbm-core` connects 32
//! of them to an interconnect.
//!
//! ## Example
//!
//! ```
//! use hbm_traffic::{BmTrafficGen, Workload};
//! use hbm_axi::MasterId;
//!
//! // The hot-spot CCS workload of the paper's Table IV:
//! let mut gen = BmTrafficGen::new(MasterId(0), 32, 256 << 20, Workload::ccs(), Some(4));
//! let txn = gen.poll(0).unwrap();
//! assert!(txn.addr < 64 << 20, "CCS stays in one contiguous buffer");
//! ```

pub mod builder;
pub mod generator;
pub mod stats;
pub mod trace;
pub mod workload;

pub use builder::WorkloadBuilder;
pub use generator::BmTrafficGen;
pub use stats::{GenStats, LatencyStats};
pub use trace::{Trace, TraceEvent};
pub use workload::{Pattern, RwRatio, Workload};
