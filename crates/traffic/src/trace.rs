//! Transaction traces: capture, serialisation, and inspection.
//!
//! A [`Trace`] is a portable record of a workload's transaction stream —
//! per event: issue cycle, master, AXI ID, address, burst, direction.
//! Traces decouple workload generation from simulation: they can be
//! captured once (deterministically, from any [`Workload`]), saved as
//! JSON, inspected, edited, and replayed against any interconnect
//! configuration (`hbm-core::trace::TraceSource`).

use hbm_axi::{Addr, BurstLen, Cycle, Dir, MasterId, Transaction};
use serde::{Deserialize, Serialize};

use crate::generator::BmTrafficGen;
use crate::workload::Workload;

/// One traced transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Earliest issue cycle (relative to trace start).
    pub at: Cycle,
    /// Issuing master.
    pub master: u16,
    /// AXI ID.
    pub id: u8,
    /// Byte address.
    pub addr: Addr,
    /// Burst length in beats.
    pub beats: u8,
    /// `true` for reads.
    pub read: bool,
}

impl TraceEvent {
    /// Captures a transaction as a trace event.
    pub fn from_txn(t: &Transaction) -> TraceEvent {
        TraceEvent {
            at: t.issued_at,
            master: t.master.0,
            id: t.id.0,
            addr: t.addr,
            beats: t.burst.beats(),
            read: t.dir == Dir::Read,
        }
    }

    /// The transfer direction.
    pub fn dir(&self) -> Dir {
        if self.read {
            Dir::Read
        } else {
            Dir::Write
        }
    }

    /// The burst length.
    pub fn burst(&self) -> BurstLen {
        BurstLen::of(self.beats)
    }
}

/// A captured transaction trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in global issue order.
    pub events: Vec<TraceEvent>,
    /// Number of masters the trace was captured with.
    pub num_masters: usize,
}

impl Trace {
    /// Captures `txns_per_master` transactions from every master of a
    /// workload, with nominal issue times assuming one transaction per
    /// master per `issue_interval` cycles. Deterministic for a given
    /// workload (seeded RNG).
    pub fn capture(
        wl: Workload,
        num_masters: usize,
        port_capacity: u64,
        txns_per_master: u64,
        issue_interval: Cycle,
    ) -> Trace {
        let mut events = Vec::with_capacity(num_masters * txns_per_master as usize);
        for m in 0..num_masters {
            let mut gen = BmTrafficGen::new(
                MasterId(m as u16),
                num_masters,
                port_capacity,
                wl,
                Some(txns_per_master),
            );
            let mut at = 0;
            while let Some(t) = gen.poll(at) {
                gen.accepted();
                // Completions immediately: capture is about addresses
                // and ordering, not timing.
                gen.completed(at, &t).expect("capture violated ordering");
                events.push(TraceEvent::from_txn(&t));
                at += issue_interval;
            }
        }
        events.sort_by_key(|e| (e.at, e.master));
        Trace { events, num_masters }
    }

    /// Events of one master, in issue order.
    pub fn for_master(&self, m: u16) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.master == m)
    }

    /// Total payload bytes in the trace.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.beats as u64 * 32).sum()
    }

    /// Serialises to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail")
    }

    /// Deserialises from JSON.
    pub fn from_json(s: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 256 << 20;

    #[test]
    fn capture_is_deterministic() {
        let a = Trace::capture(Workload::ccra(), 32, CAP, 8, 4);
        let b = Trace::capture(Workload::ccra(), 32, CAP, 8, 4);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 32 * 8);
    }

    #[test]
    fn events_keep_workload_properties() {
        let t = Trace::capture(Workload::scs(), 32, CAP, 4, 1);
        for e in &t.events {
            // SCS: master m stays on PCH m.
            assert_eq!(e.addr / CAP, e.master as u64);
            assert_eq!(e.beats, 16);
        }
    }

    #[test]
    fn for_master_filters() {
        let t = Trace::capture(Workload::ccs(), 32, CAP, 4, 1);
        let m3: Vec<_> = t.for_master(3).collect();
        assert_eq!(m3.len(), 4);
        assert!(m3.iter().all(|e| e.master == 3));
        // Issue times follow the interval.
        assert_eq!(m3[1].at - m3[0].at, 1);
    }

    #[test]
    fn json_round_trip() {
        // 8 masters → shrink the working set to the 8-PCH capacity.
        let wl = Workload { working_set: 8 * CAP, ..Workload::ccra() };
        let t = Trace::capture(wl, 8, CAP, 4, 2);
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn total_bytes_counts_payload() {
        let t = Trace::capture(Workload::ccs(), 32, CAP, 2, 1);
        assert_eq!(t.total_bytes(), 32 * 2 * 512);
    }

    #[test]
    fn event_round_trips_transaction_fields() {
        let t = Trace::capture(Workload::ccs(), 2, CAP, 1, 1);
        let e = t.events[0];
        assert_eq!(e.burst().beats(), e.beats);
        let _ = e.dir();
    }
}
