//! Per-master transaction stream generator.

use hbm_axi::{
    Addr, Cycle, Dir, MasterId, OutstandingTracker, Transaction, TxnBuilder, BEAT_BYTES,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::stats::GenStats;
use crate::workload::{Pattern, Workload};

/// Generates one bus master's transaction stream for a [`Workload`].
///
/// Protocol with the simulation loop, per cycle:
///
/// 1. [`poll`](BmTrafficGen::poll) returns the head-of-line transaction
///    (generating it if needed) — offer it to the interconnect;
/// 2. on acceptance call [`accepted`](BmTrafficGen::accepted), otherwise
///    re-offer the same transaction next cycle;
/// 3. for every delivered completion call
///    [`completed`](BmTrafficGen::completed).
#[derive(Debug)]
pub struct BmTrafficGen {
    master: MasterId,
    num_masters: usize,
    port_capacity: u64,
    wl: Workload,
    builder: TxnBuilder,
    tracker: OutstandingTracker,
    rng: SmallRng,
    pending: Option<Transaction>,
    /// Per-direction linear position counters (strided patterns).
    pos: [u64; 2],
    /// Transaction counter driving the read/write sequence.
    n: u64,
    max_txns: Option<u64>,
    stats: GenStats,
}

fn dir_idx(dir: Dir) -> usize {
    match dir {
        Dir::Read => 0,
        Dir::Write => 1,
    }
}

impl BmTrafficGen {
    /// A generator for `master` out of `num_masters`, over pseudo-channel
    /// partitions of `port_capacity` bytes. `max_txns` bounds the stream
    /// (`None` = unbounded, for fixed-horizon throughput runs).
    pub fn new(
        master: MasterId,
        num_masters: usize,
        port_capacity: u64,
        wl: Workload,
        max_txns: Option<u64>,
    ) -> BmTrafficGen {
        wl.validate().expect("invalid workload");
        match wl.pattern {
            Pattern::Scs | Pattern::Scra => assert!(
                wl.working_set <= port_capacity,
                "single-channel working set exceeds the partition"
            ),
            Pattern::Ccs | Pattern::Ccra => assert!(
                wl.working_set <= num_masters as u64 * port_capacity,
                "working set exceeds device capacity"
            ),
        }
        BmTrafficGen {
            builder: TxnBuilder::new(master),
            tracker: OutstandingTracker::new(wl.num_ids, wl.outstanding),
            rng: SmallRng::seed_from_u64(
                wl.seed ^ (master.0 as u64).wrapping_mul(0x9E3779B97F4A7C15),
            ),
            pending: None,
            pos: [0, 0],
            n: 0,
            stats: GenStats::default(),
            master,
            num_masters,
            port_capacity,
            wl,
            max_txns,
        }
    }

    /// The workload driving this generator.
    pub fn workload(&self) -> &Workload {
        &self.wl
    }

    /// `true` when every transaction this generator will *ever* issue
    /// stays inside its own pseudo-channel partition — a single-channel
    /// pattern with no effective rotation offset. A parallel conductor
    /// uses this hint to widen shard-synchronisation windows (such
    /// traffic can never cross a lateral bus); it must be conservative,
    /// so any cross-channel or rotated workload reports `false`.
    pub fn port_affine(&self) -> bool {
        matches!(self.wl.pattern, Pattern::Scs | Pattern::Scra)
            && self.wl.rotation.is_multiple_of(self.num_masters)
    }

    /// `true` when every burst is a single beat, so
    /// [`poll_family`](Self::poll_family) may be instantiated with
    /// `UNIT_BURST = true` (const-propagating the chunk size and deleting
    /// the page-crossing branch from address legalisation).
    pub fn unit_burst(&self) -> bool {
        self.wl.burst.bytes() == BEAT_BYTES
    }

    /// `true` when the workload's rotation is a no-op modulo the master
    /// count, so [`poll_family`](Self::poll_family) may be instantiated
    /// with `ZERO_ROTATION = true` (the partition base becomes the
    /// master's own index, no modular arithmetic).
    pub fn zero_rotation(&self) -> bool {
        self.wl.rotation.is_multiple_of(self.num_masters)
    }

    /// Collected statistics.
    pub fn stats(&self) -> &GenStats {
        &self.stats
    }

    /// Clears statistics after a warm-up phase (in-flight transactions
    /// keep completing and are counted fresh).
    pub fn reset_stats(&mut self) {
        self.stats = GenStats::default();
    }

    /// `true` once the stream limit is reached and the head of line is
    /// clear.
    pub fn exhausted(&self) -> bool {
        self.pending.is_none() && self.max_txns.is_some_and(|m| self.n >= m)
    }

    /// `true` when additionally no transaction is in flight.
    pub fn drained(&self) -> bool {
        self.exhausted() && self.tracker.total_in_flight() == 0
    }

    /// Transactions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.tracker.total_in_flight()
    }

    /// A lower bound on the first cycle ≥ `now` at which
    /// [`poll`](Self::poll) could
    /// return a transaction, assuming no completion is delivered in the
    /// meantime: `Some(now)` whenever the head of line is occupied or a
    /// new transaction could be generated, `None` when the generator
    /// only wakes on a completion (outstanding limit) or never again
    /// (stream exhausted). Mirrors `poll`'s early-out conditions, which
    /// are side-effect free.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.pending.is_some() {
            return Some(now);
        }
        if self.max_txns.is_some_and(|m| self.n >= m) {
            return None;
        }
        let dir = if self.wl.rw.is_read(self.n) { Dir::Read } else { Dir::Write };
        if self.tracker.can_issue(dir) {
            Some(now)
        } else {
            None
        }
    }

    /// Returns the head-of-line transaction to offer this cycle, if the
    /// stream and the outstanding limit allow one.
    pub fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        self.poll_family::<false, false>(now)
    }

    /// [`poll`](Self::poll) with workload-family facts baked in as const
    /// generics, for monomorphised batch kernels. `UNIT_BURST` requires
    /// [`unit_burst`](Self::unit_burst), `ZERO_ROTATION` requires
    /// [`zero_rotation`](Self::zero_rotation) (both checked in debug
    /// builds); `false` is always safe. Every instantiation produces
    /// byte-identical transactions — the flags only replace runtime
    /// loads with constants the optimiser can fold.
    pub fn poll_family<const UNIT_BURST: bool, const ZERO_ROTATION: bool>(
        &mut self,
        now: Cycle,
    ) -> Option<Transaction> {
        if self.pending.is_none() {
            if self.max_txns.is_some_and(|m| self.n >= m) {
                return None;
            }
            let dir = if self.wl.rw.is_read(self.n) { Dir::Read } else { Dir::Write };
            if !self.tracker.can_issue(dir) {
                return None;
            }
            let addr = self.gen_addr_family::<UNIT_BURST, ZERO_ROTATION>(dir);
            let id = self.tracker.pick_id(self.builder.issued());
            let txn = self
                .builder
                .issue(id, addr, self.wl.burst, dir, now)
                .expect("generator produced an illegal burst");
            self.tracker.issue(dir, id, txn.seq);
            self.pos[dir_idx(dir)] += 1;
            self.n += 1;
            self.pending = Some(txn);
        }
        self.pending
    }

    /// Marks the pending transaction as accepted by the interconnect.
    pub fn accepted(&mut self) {
        assert!(self.pending.take().is_some(), "no pending transaction");
        self.stats.issued += 1;
    }

    /// Records a delivered completion, updating latency statistics and
    /// checking the AXI same-ID ordering rule.
    pub fn completed(
        &mut self,
        now: Cycle,
        txn: &Transaction,
    ) -> Result<(), hbm_axi::tracker::OrderViolation> {
        self.tracker.complete(txn.dir, txn.id, txn.seq)?;
        self.stats.completed += 1;
        let lat = now.saturating_sub(txn.issued_at);
        match txn.dir {
            Dir::Read => {
                self.stats.bytes_read += txn.bytes();
                self.stats.read_lat.record(lat);
            }
            Dir::Write => {
                self.stats.bytes_written += txn.bytes();
                self.stats.write_lat.record(lat);
            }
        }
        Ok(())
    }

    /// Generates the next address for `dir` according to the pattern.
    ///
    /// Reads use the first half of the working set and writes the second,
    /// so mixed traffic reads and writes disjoint data (like a streaming
    /// kernel reading inputs and writing outputs).
    ///
    /// Monomorphised per workload family: with `UNIT_BURST` the chunk is
    /// the compile-time beat size, which lets [`legalize`] fold away its
    /// page-crossing branch; with `ZERO_ROTATION` the single-channel
    /// base is the master index with no modulo. Identical addresses in
    /// every instantiation (`<false, false>` is the fully generic path).
    fn gen_addr_family<const UNIT_BURST: bool, const ZERO_ROTATION: bool>(
        &mut self,
        dir: Dir,
    ) -> Addr {
        let chunk = if UNIT_BURST {
            debug_assert_eq!(self.wl.burst.bytes(), BEAT_BYTES);
            BEAT_BYTES
        } else {
            self.wl.burst.bytes()
        };
        // Strided patterns split the working set into a read region and a
        // write region (streaming kernels read inputs, write outputs).
        // Random patterns scatter both directions over the whole set —
        // the paper's RA definition has no layout structure to preserve.
        let random = matches!(self.wl.pattern, Pattern::Scra | Pattern::Ccra);
        let half = if random { self.wl.working_set } else { (self.wl.working_set / 2).max(chunk) };
        // Region sized in whole strides so positions wrap cleanly.
        let strides_in_region = (half / self.wl.stride).max(1);
        let region_base = match dir {
            Dir::Read => 0,
            Dir::Write if random => 0,
            Dir::Write => half,
        };
        let i = self.master.idx() as u64;
        let n = self.num_masters as u64;
        let raw = match self.wl.pattern {
            Pattern::Scs => {
                let pos = self.pos[dir_idx(dir)];
                (pos % strides_in_region) * self.wl.stride
            }
            Pattern::Ccs => {
                // Masters take globally consecutive chunks in turn.
                let pos = self.pos[dir_idx(dir)];
                ((pos * n + i) % strides_in_region) * self.wl.stride
            }
            Pattern::Scra | Pattern::Ccra => {
                self.rng.random_range(0..strides_in_region) * self.wl.stride
            }
        };
        let base = match self.wl.pattern {
            Pattern::Scs | Pattern::Scra => {
                let port = if ZERO_ROTATION {
                    debug_assert!(self.wl.rotation.is_multiple_of(self.num_masters));
                    self.master.idx()
                } else {
                    (self.master.idx() + self.wl.rotation) % self.num_masters
                };
                port as u64 * self.port_capacity
            }
            Pattern::Ccs | Pattern::Ccra => 0,
        };
        legalize(base + region_base + raw, chunk)
    }
}

/// Aligns `addr` down so a burst of `bytes` neither crosses a 4 KiB
/// boundary nor loses beat alignment. For power-of-two burst sizes this
/// is plain alignment; for odd burst lengths it additionally snaps away
/// from the page edge.
fn legalize(addr: Addr, bytes: u64) -> Addr {
    let mut a = addr - addr % 32;
    if a % 4096 + bytes > 4096 {
        a -= a % 4096 + bytes - 4096;
        a -= a % 32;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RwRatio;

    const CAP: u64 = 256 << 20;

    fn gen(wl: Workload, master: u16) -> BmTrafficGen {
        BmTrafficGen::new(MasterId(master), 32, CAP, wl, None)
    }

    #[test]
    fn scs_stays_in_own_partition() {
        let mut g = gen(Workload::scs(), 5);
        for _ in 0..100 {
            let t = g.poll(0).unwrap();
            g.accepted();
            g.completed(10, &t).unwrap();
            assert_eq!(t.addr / CAP, 5, "SCS must stay on its own channel");
        }
    }

    #[test]
    fn scs_rotation_targets_offset_channel() {
        let mut wl = Workload::scs();
        wl.rotation = 3;
        let mut g = gen(wl, 30);
        let t = g.poll(0).unwrap();
        assert_eq!(t.addr / CAP, (30 + 3) % 32);
    }

    #[test]
    fn scs_reads_stride_linearly() {
        let mut wl = Workload::scs();
        wl.rw = RwRatio::READ_ONLY;
        let mut g = gen(wl, 0);
        let mut last = None;
        for _ in 0..10 {
            let t = g.poll(0).unwrap();
            g.accepted();
            g.completed(1, &t).unwrap();
            if let Some(prev) = last {
                assert_eq!(t.addr, prev + 512, "dense stride");
            }
            last = Some(t.addr);
        }
    }

    #[test]
    fn ccs_masters_interleave_chunks() {
        let wl = Workload { rw: RwRatio::READ_ONLY, ..Workload::ccs() };
        let mut g0 = gen(wl, 0);
        let mut g1 = gen(wl, 1);
        let t0 = g0.poll(0).unwrap();
        let t1 = g1.poll(0).unwrap();
        assert_eq!(t0.addr, 0);
        assert_eq!(t1.addr, 512, "master 1 takes the globally next chunk");
    }

    #[test]
    fn ccs_hotspot_on_contiguous_map() {
        // All CCS addresses fall inside the 64 MiB buffer → one PCH under
        // the contiguous map.
        let wl = Workload::ccs();
        for m in [0u16, 7, 31] {
            let mut g = gen(wl, m);
            for _ in 0..50 {
                let t = g.poll(0).unwrap();
                g.accepted();
                g.completed(1, &t).unwrap();
                assert!(t.addr < 64 << 20);
            }
        }
    }

    #[test]
    fn reads_and_writes_use_disjoint_halves() {
        let mut g = gen(Workload::ccs(), 0);
        for _ in 0..60 {
            let t = g.poll(0).unwrap();
            g.accepted();
            g.completed(1, &t).unwrap();
            match t.dir {
                Dir::Read => assert!(t.addr < 32 << 20),
                Dir::Write => assert!(t.addr >= 32 << 20),
            }
        }
    }

    #[test]
    fn rw_sequence_follows_ratio() {
        let mut g = gen(Workload::ccs(), 0);
        let mut dirs = Vec::new();
        for _ in 0..6 {
            let t = g.poll(0).unwrap();
            g.accepted();
            g.completed(1, &t).unwrap();
            dirs.push(t.dir);
        }
        assert_eq!(dirs, [Dir::Read, Dir::Read, Dir::Write, Dir::Read, Dir::Read, Dir::Write]);
    }

    #[test]
    fn outstanding_limit_blocks_poll() {
        let mut wl = Workload::ccs();
        wl.outstanding = 2;
        wl.rw = RwRatio::READ_ONLY;
        let mut g = gen(wl, 0);
        let t0 = g.poll(0).unwrap();
        g.accepted();
        let _t1 = g.poll(1).unwrap();
        g.accepted();
        assert!(g.poll(2).is_none(), "limit 2 reached");
        g.completed(5, &t0).unwrap();
        assert!(g.poll(6).is_some());
    }

    #[test]
    fn pending_is_sticky_until_accepted() {
        let mut g = gen(Workload::ccs(), 0);
        let t0 = g.poll(0).unwrap();
        let t1 = g.poll(1).unwrap();
        assert_eq!(t0, t1, "head of line retried, not regenerated");
        g.accepted();
        let t2 = g.poll(2).unwrap();
        assert_ne!(t0.addr, t2.addr);
    }

    #[test]
    fn max_txns_limits_stream() {
        let mut g = BmTrafficGen::new(MasterId(0), 32, CAP, Workload::ccs(), Some(3));
        let mut seen = Vec::new();
        for now in 0..10 {
            if let Some(t) = g.poll(now) {
                g.accepted();
                seen.push(t);
            }
        }
        assert_eq!(seen.len(), 3);
        assert!(g.exhausted());
        assert!(!g.drained(), "completions still outstanding");
        for t in &seen {
            g.completed(20, t).unwrap();
        }
        assert!(g.drained());
    }

    #[test]
    fn latency_stats_recorded() {
        let mut g = gen(Workload::ccs(), 0);
        let t = g.poll(10).unwrap();
        g.accepted();
        g.completed(58, &t).unwrap();
        assert_eq!(g.stats().read_lat.mean(), Some(48.0));
        assert_eq!(g.stats().bytes_read, 512);
        g.reset_stats();
        assert_eq!(g.stats().completed, 0);
    }

    #[test]
    fn random_patterns_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = gen(Workload::ccra(), 3);
            (0..20)
                .map(|i| {
                    let t = g.poll(i).unwrap();
                    g.accepted();
                    g.completed(i + 1, &t).unwrap();
                    t.addr
                })
                .collect()
        };
        let b: Vec<u64> = {
            let mut g = gen(Workload::ccra(), 3);
            (0..20)
                .map(|i| {
                    let t = g.poll(i).unwrap();
                    g.accepted();
                    g.completed(i + 1, &t).unwrap();
                    t.addr
                })
                .collect()
        };
        assert_eq!(a, b);
        // And different masters see different streams.
        let c: Vec<u64> = {
            let mut g = gen(Workload::ccra(), 4);
            (0..20)
                .map(|i| {
                    let t = g.poll(i).unwrap();
                    g.accepted();
                    g.completed(i + 1, &t).unwrap();
                    t.addr
                })
                .collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn family_specialisation_is_byte_identical() {
        use hbm_axi::BurstLen;
        // A unit-burst, zero-rotation SCS workload qualifies for the
        // fully specialised kernel; its stream must match the generic
        // path exactly.
        let mut wl = Workload::scs();
        wl.burst = BurstLen::of(1);
        wl.stride = 32;
        let mut generic = gen(wl, 9);
        let mut special = gen(wl, 9);
        assert!(special.unit_burst() && special.zero_rotation());
        for now in 0..200u64 {
            let a = generic.poll(now).unwrap();
            generic.accepted();
            generic.completed(now + 1, &a).unwrap();
            let b = special.poll_family::<true, true>(now).unwrap();
            special.accepted();
            special.completed(now + 1, &b).unwrap();
            assert_eq!(a, b);
        }
        // Rotation by a full lap is still zero-rotation.
        let mut wl2 = wl;
        wl2.rotation = 32;
        let g2 = gen(wl2, 9);
        assert!(g2.zero_rotation() && g2.port_affine());
        // A genuinely rotated workload is not.
        let mut wl3 = wl;
        wl3.rotation = 3;
        assert!(!gen(wl3, 9).zero_rotation());
    }

    #[test]
    fn legalize_avoids_4k_crossing() {
        // 384 B burst near a page edge is snapped back.
        let a = legalize(4000, 384);
        assert!(a.is_multiple_of(32));
        assert!(a % 4096 + 384 <= 4096);
        // Aligned power-of-two bursts pass through.
        assert_eq!(legalize(512, 512), 512);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hbm_axi::BurstLen;
    use proptest::prelude::*;

    proptest! {
        /// Every generated transaction is legal (the TxnBuilder would
        /// panic otherwise) and inside the working region for its pattern.
        #[test]
        fn generated_streams_are_legal_and_in_range(
            pattern_sel in 0u8..4,
            beats in prop::sample::select(vec![1u8, 2, 4, 8, 16]),
            stride_mult in 1u64..16,
            rotation in 0usize..32,
            seed in any::<u64>(),
        ) {
            let pattern = match pattern_sel {
                0 => Pattern::Scs,
                1 => Pattern::Ccs,
                2 => Pattern::Scra,
                _ => Pattern::Ccra,
            };
            let burst = BurstLen::of(beats);
            let wl = Workload {
                pattern,
                burst,
                stride: burst.bytes() * stride_mult,
                rotation,
                seed,
                ..Workload::ccs()
            };
            let mut g = BmTrafficGen::new(MasterId(7), 32, 256 << 20, wl, None);
            for i in 0..200u64 {
                let t = g.poll(i).unwrap();
                g.accepted();
                g.completed(i + 1, &t).unwrap();
                // In range of the device.
                prop_assert!(t.end_addr() <= 32 * (256u64 << 20));
                match pattern {
                    Pattern::Scs | Pattern::Scra => {
                        let port = (7 + rotation) % 32;
                        prop_assert_eq!(t.addr / (256 << 20), port as u64);
                    }
                    Pattern::Ccs | Pattern::Ccra => {
                        prop_assert!(t.end_addr() <= 64 << 20);
                    }
                }
            }
        }

        /// legalize() output is always beat-aligned and 4 KiB safe.
        #[test]
        fn legalize_invariants(addr in 0u64..(1 << 30), beats in 1u8..=16) {
            let bytes = beats as u64 * 32;
            let a = legalize(addr, bytes);
            prop_assert_eq!(a % 32, 0);
            prop_assert!(a % 4096 + bytes <= 4096);
            prop_assert!(a <= addr);
        }
    }
}
