//! # hbm-accel — cycle-level accelerator engines
//!
//! The paper's §V validates its Roofline methodology against two real
//! matrix-multiplication accelerators. This crate provides timed
//! *engines* for both dataflows that plug into the simulated memory
//! system as [`hbm_core::system::TrafficSource`]s: they issue the
//! dataflow's actual memory transactions (tile loads, row streams,
//! write-backs), gate compute on data arrival, and gate write-back on
//! compute — so the memory-bound / compute-bound crossover of Fig. 7
//! *emerges from simulation* instead of being assumed.
//!
//! * [`phase::Phase`] — one dependency step of a dataflow: read ranges →
//!   a fixed amount of compute → write ranges;
//! * [`engine::DataflowEngine`] — executes a phase script with double-
//!   buffered prefetch, bounded outstanding transactions, and a finite
//!   compute rate;
//! * [`matmul_a`] / [`matmul_b`] — phase-script builders for the paper's
//!   Accelerator A (systolic PE array, 2:1 read/write ratio) and
//!   Accelerator B (adder trees, read-dominated);
//! * [`run`] — harness that attaches engines to an [`hbm_core`] system,
//!   runs to completion, and compares achieved GOPS against the Roofline
//!   prediction (the paper reports its model within 3–4 %).
//!
//! ## Example
//!
//! ```
//! use hbm_accel::{pe_array_engines, run_engines, MatmulDims};
//! use hbm_axi::BurstLen;
//! use hbm_core::prelude::*;
//!
//! // A 64^3 matmul on 4 masters through the MAO:
//! let dims = MatmulDims::square(64);
//! let engines = pe_array_engines(&dims, 4, 32, 1e6, BurstLen::of(16), 16, 8);
//! let r = run_engines(&SystemConfig::mao(), engines, dims.total_ops(), 5_000_000).unwrap();
//! assert_eq!(r.ops, dims.total_ops());
//! ```

pub mod engine;
pub mod gather;
pub mod matmul_a;
pub mod matmul_b;
pub mod phase;
pub mod run;
pub mod stencil;

pub use engine::DataflowEngine;
pub use gather::{gather_engines, GatherDims};
pub use matmul_a::pe_array_engines;
pub use matmul_b::adder_tree_engines;
pub use phase::{MatmulDims, Phase};
pub use run::{run_engines, AccelReport};
pub use stencil::{stencil_engines, StencilDims};
