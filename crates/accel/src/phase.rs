//! Dataflow phases: the dependency unit of an accelerator schedule.

use hbm_axi::{Addr, BurstLen, TxnBuilder, BEAT_BYTES};
use serde::{Deserialize, Serialize};

/// One step of a dataflow: load the read ranges, perform `ops`
/// operations, then store the write ranges. Phases execute in order
/// (compute of phase *p* cannot start before compute of *p−1* has
/// finished — the pipeline has one compute unit), but reads of upcoming
/// phases may be prefetched.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Byte ranges read by this phase.
    pub reads: Vec<(Addr, u64)>,
    /// Byte ranges written by this phase (after compute).
    pub writes: Vec<(Addr, u64)>,
    /// Operations performed once all reads have arrived.
    pub ops: u64,
}

impl Phase {
    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.reads.iter().map(|(_, l)| l).sum()
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.writes.iter().map(|(_, l)| l).sum()
    }

    /// Splits the byte ranges into legal AXI bursts of at most
    /// `max_burst` beats. Ranges are beat-aligned by construction of the
    /// builders; stray bytes are rounded up to whole beats (the DMA
    /// fetches the containing beats).
    pub fn chunks(ranges: &[(Addr, u64)], max_burst: BurstLen) -> Vec<(Addr, BurstLen)> {
        let mut out = Vec::new();
        for &(addr, len) in ranges {
            let start = addr - addr % BEAT_BYTES;
            let end = addr + len;
            let end = end.div_ceil(BEAT_BYTES) * BEAT_BYTES;
            out.extend(TxnBuilder::split(start, end - start, max_burst));
        }
        out
    }
}

/// Matrix-multiplication problem geometry shared by both accelerators:
/// `C (m×n) = A (m×k) · B (k×n)`, row-major, `element_bytes` per
/// element, laid out contiguously as A then B then C from `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatmulDims {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of A / rows of B.
    pub k: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Bytes per element.
    pub element_bytes: u64,
    /// Base address of the A/B/C arena.
    pub base: Addr,
}

impl MatmulDims {
    /// A square problem at address 0 with 4-byte elements.
    pub fn square(dim: usize) -> MatmulDims {
        MatmulDims { m: dim, k: dim, n: dim, element_bytes: 4, base: 0 }
    }

    /// Base address of A.
    pub fn a_base(&self) -> Addr {
        self.base
    }

    /// Base address of B.
    pub fn b_base(&self) -> Addr {
        self.base + (self.m * self.k) as u64 * self.element_bytes
    }

    /// Base address of C.
    pub fn c_base(&self) -> Addr {
        self.b_base() + (self.k * self.n) as u64 * self.element_bytes
    }

    /// Exclusive end of the arena.
    pub fn end(&self) -> Addr {
        self.c_base() + (self.m * self.n) as u64 * self.element_bytes
    }

    /// Address of element `A[i, j]`.
    pub fn a_at(&self, i: usize, j: usize) -> Addr {
        self.a_base() + (i * self.k + j) as u64 * self.element_bytes
    }

    /// Address of element `B[i, j]`.
    pub fn b_at(&self, i: usize, j: usize) -> Addr {
        self.b_base() + (i * self.n + j) as u64 * self.element_bytes
    }

    /// Address of element `C[i, j]`.
    pub fn c_at(&self, i: usize, j: usize) -> Addr {
        self.c_base() + (i * self.n + j) as u64 * self.element_bytes
    }

    /// Total operations of the multiplication (2 per multiply-add).
    pub fn total_ops(&self) -> u64 {
        2 * (self.m * self.k * self.n) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous() {
        let d = MatmulDims::square(64);
        assert_eq!(d.a_base(), 0);
        assert_eq!(d.b_base(), 64 * 64 * 4);
        assert_eq!(d.c_base(), 2 * 64 * 64 * 4);
        assert_eq!(d.end(), 3 * 64 * 64 * 4);
    }

    #[test]
    fn element_addressing_row_major() {
        let d = MatmulDims::square(8);
        assert_eq!(d.a_at(0, 0), 0);
        assert_eq!(d.a_at(1, 0), 8 * 4);
        assert_eq!(d.a_at(1, 3), 8 * 4 + 12);
        assert_eq!(d.b_at(0, 0), d.b_base());
        assert_eq!(d.c_at(7, 7), d.end() - 4);
    }

    #[test]
    fn total_ops() {
        let d = MatmulDims::square(4);
        assert_eq!(d.total_ops(), 2 * 64);
    }

    #[test]
    fn chunks_split_and_align() {
        let chunks = Phase::chunks(&[(100, 1000)], BurstLen::of(16));
        // Covers [96, 1120) in beat-aligned bursts.
        let total: u64 = chunks.iter().map(|(_, b)| b.bytes()).sum();
        assert_eq!(chunks[0].0, 96);
        assert_eq!(total, 1120 - 96);
        assert!(chunks.iter().all(|(a, _)| a % 32 == 0));
    }

    #[test]
    fn chunks_multiple_ranges() {
        let chunks = Phase::chunks(&[(0, 64), (4096, 64)], BurstLen::of(2));
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0], (0, BurstLen::of(2)));
        assert_eq!(chunks[1], (4096, BurstLen::of(2)));
    }

    #[test]
    fn phase_byte_totals() {
        let p = Phase { reads: vec![(0, 128), (512, 64)], writes: vec![(1024, 32)], ops: 7 };
        assert_eq!(p.read_bytes(), 192);
        assert_eq!(p.write_bytes(), 32);
    }
}
