//! Phase-script builder for Accelerator A (systolic PE array).
//!
//! The paper's Accelerator A keeps a tile of one input matrix resident
//! in its PE array, then continuously streams the second input and the
//! output (2:1 read/write ratio, Table V). With `P` bus masters the
//! output columns are banded: master `p` owns columns
//! `[p·n/P, (p+1)·n/P)` of B and C.
//!
//! Per master, for every K-tile of its B band:
//!
//! 1. a tile-load phase reads the `tile_k × band` block of B,
//! 2. streaming phases read row blocks of A (`tile_k` columns each) and
//!    — on the final K-tile — write the finished C rows.

use hbm_axi::{BurstLen, MasterId};

use crate::engine::DataflowEngine;
use crate::phase::{MatmulDims, Phase};

/// Rows of A streamed per phase (the granularity of write-back).
const ROW_BLOCK: usize = 16;

/// Builds the phase script for master `p` of `num_masters`.
pub fn pe_array_phases(
    dims: &MatmulDims,
    p: usize,
    num_masters: usize,
    tile_k: usize,
) -> Vec<Phase> {
    assert!(p < num_masters);
    assert!(tile_k >= 1);
    let eb = dims.element_bytes;
    // Column band owned by this master.
    let n0 = dims.n * p / num_masters;
    let n1 = dims.n * (p + 1) / num_masters;
    let band = n1 - n0;
    if band == 0 {
        return Vec::new();
    }
    let mut phases = Vec::new();
    let k_tiles: Vec<(usize, usize)> =
        (0..dims.k).step_by(tile_k).map(|k0| (k0, (k0 + tile_k).min(dims.k))).collect();
    for (ti, &(k0, k1)) in k_tiles.iter().enumerate() {
        let last_tile = ti + 1 == k_tiles.len();
        // Tile load: B[k0..k1, n0..n1], one range per row.
        let mut load = Phase::default();
        for kk in k0..k1 {
            load.reads.push((dims.b_at(kk, n0), band as u64 * eb));
        }
        phases.push(load);
        // Stream A row blocks; MACs: 2 ops per element pair.
        for i0 in (0..dims.m).step_by(ROW_BLOCK) {
            let i1 = (i0 + ROW_BLOCK).min(dims.m);
            let mut ph = Phase::default();
            for i in i0..i1 {
                ph.reads.push((dims.a_at(i, k0), (k1 - k0) as u64 * eb));
            }
            ph.ops = 2 * ((i1 - i0) * (k1 - k0) * band) as u64;
            if last_tile {
                for i in i0..i1 {
                    ph.writes.push((dims.c_at(i, n0), band as u64 * eb));
                }
            }
            phases.push(ph);
        }
    }
    phases
}

/// Builds `P` PE-array engines (one per master, masters `0..P`).
///
/// `ops_per_cycle` is the *total* array throughput, split evenly across
/// masters (the paper's Ccomp = 2·(16P)² ops/cycle for the canonical
/// sizes).
pub fn pe_array_engines(
    dims: &MatmulDims,
    num_masters: usize,
    tile_k: usize,
    total_ops_per_cycle: f64,
    burst: BurstLen,
    outstanding: usize,
    num_ids: usize,
) -> Vec<DataflowEngine> {
    (0..num_masters)
        .map(|p| {
            DataflowEngine::new(
                MasterId(p as u16),
                pe_array_phases(dims, p, num_masters, tile_k),
                total_ops_per_cycle / num_masters as f64,
                burst,
                outstanding,
                num_ids,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn phases_cover_all_operations() {
        let dims = MatmulDims::square(64);
        let masters = 4;
        let total_ops: u64 = (0..masters)
            .flat_map(|p| pe_array_phases(&dims, p, masters, 32))
            .map(|ph| ph.ops)
            .sum();
        assert_eq!(total_ops, dims.total_ops());
    }

    #[test]
    fn writes_cover_exactly_c() {
        let dims = MatmulDims::square(32);
        let masters = 4;
        let mut bytes_written = std::collections::HashMap::new();
        for p in 0..masters {
            for ph in pe_array_phases(&dims, p, masters, 8) {
                for (addr, len) in ph.writes {
                    for b in 0..len {
                        *bytes_written.entry(addr + b).or_insert(0u32) += 1;
                    }
                }
            }
        }
        // Every byte of C written exactly once; nothing else touched.
        for a in dims.c_base()..dims.end() {
            assert_eq!(bytes_written.get(&a), Some(&1), "byte {a:#x}");
        }
        assert_eq!(bytes_written.len() as u64, (dims.end() - dims.c_base()));
    }

    #[test]
    fn reads_touch_a_and_b_only() {
        let dims = MatmulDims::square(32);
        let mut touched = HashSet::new();
        for ph in pe_array_phases(&dims, 1, 4, 8) {
            for (addr, len) in &ph.reads {
                assert!(addr + len <= dims.c_base(), "read into C region");
                touched.insert(*addr);
            }
        }
        assert!(!touched.is_empty());
    }

    #[test]
    fn a_is_streamed_exactly_once_per_master() {
        // K-tiles partition the columns of A, so across all tiles each
        // master reads every element of A exactly once: |A| bytes.
        let dims = MatmulDims::square(32);
        let a_bytes: u64 = pe_array_phases(&dims, 0, 4, 16)
            .iter()
            .flat_map(|ph| &ph.reads)
            .filter(|(addr, _)| *addr < dims.b_base())
            .map(|(_, len)| len)
            .sum();
        assert_eq!(a_bytes, (32 * 32) as u64 * dims.element_bytes);
    }

    #[test]
    fn band_partitioning_is_disjoint_and_complete() {
        let dims = MatmulDims::square(48);
        let masters = 5; // deliberately not a divisor
        let mut cols = HashSet::new();
        for p in 0..masters {
            let n0 = dims.n * p / masters;
            let n1 = dims.n * (p + 1) / masters;
            for c in n0..n1 {
                assert!(cols.insert(c), "column {c} owned twice");
            }
        }
        assert_eq!(cols.len(), dims.n);
    }

    #[test]
    fn engines_built_for_each_master() {
        let dims = MatmulDims::square(32);
        let engines = pe_array_engines(&dims, 4, 8, 1000.0, BurstLen::of(16), 8, 4);
        assert_eq!(engines.len(), 4);
        assert!(engines.iter().all(|e| !e.finished()));
    }
}
