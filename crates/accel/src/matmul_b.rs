//! Phase-script builder for Accelerator B (adder trees).
//!
//! The paper's Accelerator B buffers part of one input matrix and the
//! partial sums locally; only the second input is re-streamed and only
//! final results are written back — a very read-heavy ratio (RW_rat =
//! Mh:1) and a constant operational intensity of 2 OPS/B (Table V).
//!
//! With `P` masters the rows of A (and C) are banded: master `p` owns
//! rows `[p·m/P, (p+1)·m/P)`. Per master:
//!
//! 1. one phase loads its A row band (resident for the whole run),
//! 2. for each column block of B, a phase streams the *entire* block of
//!    B (all K rows) and — since partial sums live locally — writes the
//!    finished C block at the end.

use hbm_axi::{BurstLen, MasterId};

use crate::engine::DataflowEngine;
use crate::phase::{MatmulDims, Phase};

/// Columns of B streamed per phase.
const COL_BLOCK: usize = 16;

/// Builds the phase script for master `p` of `num_masters`.
pub fn adder_tree_phases(dims: &MatmulDims, p: usize, num_masters: usize) -> Vec<Phase> {
    assert!(p < num_masters);
    let eb = dims.element_bytes;
    let m0 = dims.m * p / num_masters;
    let m1 = dims.m * (p + 1) / num_masters;
    let rows = m1 - m0;
    if rows == 0 {
        return Vec::new();
    }
    let mut phases = Vec::new();
    // Resident load of the A row band (contiguous in row-major A).
    let mut load = Phase::default();
    load.reads.push((dims.a_at(m0, 0), (rows * dims.k) as u64 * eb));
    phases.push(load);
    // Stream B column blocks.
    for j0 in (0..dims.n).step_by(COL_BLOCK) {
        let j1 = (j0 + COL_BLOCK).min(dims.n);
        let cols = j1 - j0;
        let mut ph = Phase::default();
        for kk in 0..dims.k {
            ph.reads.push((dims.b_at(kk, j0), cols as u64 * eb));
        }
        ph.ops = 2 * (rows * dims.k * cols) as u64;
        for i in m0..m1 {
            ph.writes.push((dims.c_at(i, j0), cols as u64 * eb));
        }
        phases.push(ph);
    }
    phases
}

/// Builds `P` adder-tree engines (one per master).
pub fn adder_tree_engines(
    dims: &MatmulDims,
    num_masters: usize,
    total_ops_per_cycle: f64,
    burst: BurstLen,
    outstanding: usize,
    num_ids: usize,
) -> Vec<DataflowEngine> {
    (0..num_masters)
        .map(|p| {
            DataflowEngine::new(
                MasterId(p as u16),
                adder_tree_phases(dims, p, num_masters),
                total_ops_per_cycle / num_masters as f64,
                burst,
                outstanding,
                num_ids,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_cover_the_multiplication() {
        let dims = MatmulDims::square(64);
        let masters = 8;
        let total: u64 =
            (0..masters).flat_map(|p| adder_tree_phases(&dims, p, masters)).map(|ph| ph.ops).sum();
        assert_eq!(total, dims.total_ops());
    }

    #[test]
    fn b_is_fully_restreamed_by_every_master() {
        // The defining property: each master reads all of B — total B
        // traffic is P × |B| (what makes unoptimised B memory bound).
        let dims = MatmulDims::square(32);
        let b_size = (32 * 32) as u64 * dims.element_bytes;
        for p in 0..4 {
            let b_bytes: u64 = adder_tree_phases(&dims, p, 4)
                .iter()
                .flat_map(|ph| &ph.reads)
                .filter(|(addr, _)| *addr >= dims.b_base() && *addr < dims.c_base())
                .map(|(_, len)| len)
                .sum();
            assert_eq!(b_bytes, b_size, "master {p}");
        }
    }

    #[test]
    fn a_is_read_exactly_once_in_total() {
        let dims = MatmulDims::square(32);
        let a_bytes: u64 = (0..4)
            .flat_map(|p| adder_tree_phases(&dims, p, 4))
            .flat_map(|ph| ph.reads)
            .filter(|(addr, _)| *addr < dims.b_base())
            .map(|(_, len)| len)
            .sum();
        assert_eq!(a_bytes, (32 * 32) as u64 * dims.element_bytes);
    }

    #[test]
    fn read_write_ratio_is_heavily_read_dominated() {
        let dims = MatmulDims::square(64);
        let phases: Vec<Phase> = adder_tree_phases(&dims, 0, 8);
        let reads: u64 = phases.iter().map(|p| p.read_bytes()).sum();
        let writes: u64 = phases.iter().map(|p| p.write_bytes()).sum();
        // Paper: RW_rat = Mh : 1 with Mh ≫ 2.
        assert!(reads > 8 * writes, "reads {reads} writes {writes}");
    }

    #[test]
    fn writes_cover_exactly_the_row_band() {
        let dims = MatmulDims::square(32);
        let p = 2;
        let masters = 4;
        let m0 = dims.m * p / masters;
        let m1 = dims.m * (p + 1) / masters;
        let mut written = std::collections::HashSet::new();
        for ph in adder_tree_phases(&dims, p, masters) {
            for (addr, len) in ph.writes {
                for b in 0..len {
                    assert!(written.insert(addr + b), "byte written twice");
                }
            }
        }
        let expect = ((m1 - m0) * dims.n) as u64 * dims.element_bytes;
        assert_eq!(written.len() as u64, expect);
        assert!(written
            .iter()
            .all(|&a| a >= dims.c_at(m0, 0)
                && a < dims.c_at(m1 - 1, dims.n - 1) + dims.element_bytes));
    }

    #[test]
    fn engines_built() {
        let dims = MatmulDims::square(32);
        let engines = adder_tree_engines(&dims, 8, 500.0, BurstLen::of(16), 8, 4);
        assert_eq!(engines.len(), 8);
    }
}
