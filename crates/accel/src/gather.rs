//! A gather (random-access reduction) application engine.
//!
//! Kara et al. \[8\] — the paper's data-analytics reference — stress HBM
//! with hash probes and gathers: each element of a sequential index
//! stream selects a random table entry to read. This is the CCRA access
//! pattern as an *application*: throughput lives or dies with the
//! memory system's random-access behaviour and reorder depth (Fig. 6).
//!
//! Partitioning: the index stream is banded across masters; the gathered
//! table is shared (random addresses over its whole extent). Each phase
//! streams a block of indices, issues one small gather per index, and
//! accumulates locally; only a tiny result block is written at the end.

use hbm_axi::{Addr, BurstLen, MasterId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::DataflowEngine;
use crate::phase::Phase;

/// Gather problem geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherDims {
    /// Number of indices to process.
    pub num_indices: usize,
    /// Table size in bytes (gather targets are spread over this).
    pub table_bytes: u64,
    /// Bytes fetched per gather (one beat-aligned element group).
    pub element_bytes: u64,
    /// Base address: the table, followed by the index stream, followed
    /// by per-master result blocks.
    pub base: Addr,
    /// RNG seed for the index values.
    pub seed: u64,
}

impl GatherDims {
    /// A default-sized problem at address 0.
    pub fn new(num_indices: usize, table_bytes: u64) -> GatherDims {
        GatherDims { num_indices, table_bytes, element_bytes: 32, base: 0, seed: 0x6a77_4e12 }
    }

    /// Base address of the index stream (4 B per index).
    pub fn index_base(&self) -> Addr {
        self.base + self.table_bytes
    }

    /// Base address of the result blocks.
    pub fn result_base(&self) -> Addr {
        self.index_base() + self.num_indices as u64 * 4
    }

    /// Total operations (one accumulate per gathered element word).
    pub fn total_ops(&self) -> u64 {
        self.num_indices as u64 * (self.element_bytes / 4)
    }
}

/// Indices per phase.
const INDEX_BLOCK: usize = 64;

/// The deterministic index values (shared by the phase script and the
/// functional reference).
pub fn gather_targets(dims: &GatherDims, p: usize, num_masters: usize) -> Vec<u64> {
    let n0 = dims.num_indices * p / num_masters;
    let n1 = dims.num_indices * (p + 1) / num_masters;
    let mut rng = SmallRng::seed_from_u64(dims.seed ^ (p as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let slots = dims.table_bytes / dims.element_bytes;
    (n0..n1).map(|_| rng.random_range(0..slots) * dims.element_bytes).collect()
}

/// Builds the phase script for master `p` of `num_masters`.
pub fn gather_phases(dims: &GatherDims, p: usize, num_masters: usize) -> Vec<Phase> {
    assert!(p < num_masters);
    let targets = gather_targets(dims, p, num_masters);
    let n0 = dims.num_indices * p / num_masters;
    let mut phases = Vec::new();
    for (bi, block) in targets.chunks(INDEX_BLOCK).enumerate() {
        let mut ph = Phase::default();
        // The index stream itself: sequential, 4 B per index.
        let idx_addr = dims.index_base() + (n0 + bi * INDEX_BLOCK) as u64 * 4;
        ph.reads.push((idx_addr, block.len() as u64 * 4));
        // One small random read per index.
        for &t in block {
            ph.reads.push((dims.base + t, dims.element_bytes));
        }
        ph.ops = block.len() as u64 * (dims.element_bytes / 4);
        phases.push(ph);
    }
    // Final phase: write this master's accumulator block.
    if !targets.is_empty() {
        let mut fin = Phase::default();
        fin.writes.push((dims.result_base() + p as u64 * 64, 64));
        phases.push(fin);
    }
    phases
}

/// Builds `P` gather engines (one per master).
pub fn gather_engines(
    dims: &GatherDims,
    num_masters: usize,
    total_ops_per_cycle: f64,
    outstanding: usize,
    num_ids: usize,
) -> Vec<DataflowEngine> {
    (0..num_masters)
        .map(|p| {
            DataflowEngine::new(
                MasterId(p as u16),
                gather_phases(dims, p, num_masters),
                total_ops_per_cycle / num_masters as f64,
                // Gathers are small: BL 1 per element keeps the script
                // honest about its access granularity.
                BurstLen::of(1),
                outstanding,
                num_ids,
            )
        })
        .collect()
}

/// Functional reference: gathers `table[t]` for every target and sums.
pub fn gather_sum(table: &[f32], targets: &[u64], element_bytes: u64) -> f64 {
    let per = (element_bytes / 4) as usize;
    let mut acc = 0.0f64;
    for &t in targets {
        let idx = (t / 4) as usize;
        for k in 0..per {
            acc += table[idx + k] as f64;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> GatherDims {
        GatherDims::new(1024, 1 << 20)
    }

    #[test]
    fn targets_are_deterministic_and_in_range() {
        let d = dims();
        let a = gather_targets(&d, 3, 8);
        let b = gather_targets(&d, 3, 8);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t + d.element_bytes <= d.table_bytes));
        assert!(a.iter().all(|&t| t % d.element_bytes == 0));
        // Different masters gather different targets.
        let c = gather_targets(&d, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn indices_partitioned_without_loss() {
        let d = dims();
        let total: usize = (0..8).map(|p| gather_targets(&d, p, 8).len()).sum();
        assert_eq!(total, d.num_indices);
    }

    #[test]
    fn phases_read_index_stream_and_table() {
        let d = dims();
        let phases = gather_phases(&d, 0, 8);
        // Index-stream bytes: 128 indices × 4 B.
        let idx_bytes: u64 = phases
            .iter()
            .flat_map(|ph| &ph.reads)
            .filter(|(a, _)| *a >= d.index_base() && *a < d.result_base())
            .map(|(_, l)| l)
            .sum();
        assert_eq!(idx_bytes, 128 * 4);
        // Table bytes: one element per index.
        let table_bytes: u64 = phases
            .iter()
            .flat_map(|ph| &ph.reads)
            .filter(|(a, _)| *a < d.table_bytes)
            .map(|(_, l)| l)
            .sum();
        assert_eq!(table_bytes, 128 * d.element_bytes);
    }

    #[test]
    fn ops_cover_every_gather() {
        let d = dims();
        let total: u64 = (0..8).flat_map(|p| gather_phases(&d, p, 8)).map(|ph| ph.ops).sum();
        assert_eq!(total, d.total_ops());
    }

    #[test]
    fn functional_gather_sums() {
        let table: Vec<f32> = (0..64).map(|i| i as f32).collect();
        // Gather elements 0 and 2 (8 B each = 2 f32s).
        let s = gather_sum(&table, &[0, 16], 8);
        // table[0]+table[1] + table[4]+table[5] = 0+1+4+5.
        assert_eq!(s, 10.0);
    }

    #[test]
    fn engine_scripts_build() {
        let d = dims();
        let engines = gather_engines(&d, 8, 100.0, 16, 16);
        assert_eq!(engines.len(), 8);
    }
}
