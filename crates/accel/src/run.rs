//! Harness: attach engines to a simulated HBM system and run to
//! completion.

use hbm_axi::Cycle;
use hbm_core::system::{HbmSystem, SystemConfig, TrafficSource};
use hbm_roofline::Roofline;
use serde::{Deserialize, Serialize};

use crate::engine::{DataflowEngine, IdleSource};

/// Result of one accelerator run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccelReport {
    /// Cycles until the last engine finished.
    pub cycles: Cycle,
    /// Total operations performed.
    pub ops: u64,
    /// Total bytes moved (reads + writes).
    pub bytes: u64,
    /// Achieved performance in GOPS.
    pub gops: f64,
    /// Achieved memory throughput in GB/s.
    pub gbps: f64,
    /// Operational intensity actually exhibited (ops / bytes).
    pub op_intensity: f64,
}

impl AccelReport {
    /// The Roofline prediction for this run given a bandwidth ceiling
    /// and compute ceiling, in GOPS.
    pub fn predicted_gops(&self, comp_gops: f64, bw_gbps: f64) -> f64 {
        Roofline::new(comp_gops, bw_gbps).attainable(self.op_intensity)
    }

    /// Relative error of the prediction against the achieved GOPS.
    pub fn prediction_error(&self, comp_gops: f64, bw_gbps: f64) -> f64 {
        let p = self.predicted_gops(comp_gops, bw_gbps);
        (p - self.gops).abs() / self.gops
    }
}

/// Runs `engines` (masters `0..engines.len()`) on `cfg`, padding the
/// remaining master ports with idle sources. `total_ops` is the sum of
/// the engines' phase-script operation counts (the engines are consumed
/// into the system as trait objects, so the caller supplies it — for the
/// matmul builders it is simply `dims.total_ops()`).
///
/// Returns `None` if the run did not finish within `max_cycles`.
pub fn run_engines(
    cfg: &SystemConfig,
    engines: Vec<DataflowEngine>,
    total_ops: u64,
    max_cycles: Cycle,
) -> Option<AccelReport> {
    let n = cfg.hbm.num_pch;
    assert!(engines.len() <= n, "more engines than master ports");
    let used = engines.len();
    let mut sources: Vec<Box<dyn TrafficSource>> = Vec::with_capacity(n);
    for e in engines {
        sources.push(Box::new(e));
    }
    for _ in used..n {
        sources.push(Box::new(IdleSource::default()));
    }
    let mut sys = HbmSystem::with_sources(cfg, sources);
    if !sys.run_until_drained(max_cycles) {
        return None;
    }
    let cycles = sys.now();
    let bytes: u64 = sys.gen_stats().iter().map(|g| g.total_bytes()).sum();
    let ns = cfg.clock.cycles_to_ns(cycles);
    Some(AccelReport {
        cycles,
        ops: total_ops,
        bytes,
        gops: total_ops as f64 / ns,
        gbps: sys.clock().throughput_gbps(bytes, cycles),
        op_intensity: total_ops as f64 / bytes as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul_a::pe_array_engines;
    use crate::matmul_b::adder_tree_engines;
    use crate::phase::MatmulDims;
    use hbm_axi::BurstLen;
    use hbm_core::system::FabricKind;
    use hbm_mao::InterleaveMode;

    /// A MAO system whose interleave granularity matches small-matrix
    /// row bands (keeps the test matrices tiny).
    fn mao_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::mao();
        if let FabricKind::Mao(ref mut m) = cfg.fabric {
            m.interleave = InterleaveMode::XorFold { granularity: 512 };
        }
        cfg
    }

    fn a_engines(dims: &MatmulDims, p: usize, opc: f64) -> (Vec<DataflowEngine>, u64) {
        let engines = pe_array_engines(dims, p, 32, opc, BurstLen::of(16), 16, 8);
        (engines, dims.total_ops())
    }

    #[test]
    fn pe_array_completes_on_mao() {
        let dims = MatmulDims::square(128);
        let (engines, ops) = a_engines(&dims, 8, 1e5);
        let r =
            run_engines(&mao_cfg(), engines, ops, 3_000_000).expect("accelerator did not finish");
        assert_eq!(r.ops, dims.total_ops());
        assert!(r.gops > 0.0 && r.gbps > 0.0);
        // 2·128³ ops over ≥ |A|+|B|+|C| bytes.
        assert!(r.bytes >= 3 * 128 * 128 * 4);
    }

    #[test]
    fn adder_tree_completes_on_mao() {
        let dims = MatmulDims::square(128);
        let engines = adder_tree_engines(&dims, 8, 1e5, BurstLen::of(16), 16, 8);
        let r = run_engines(&mao_cfg(), engines, dims.total_ops(), 3_000_000)
            .expect("accelerator did not finish");
        // B re-streamed by every master: ≥ 8 × |B| read traffic.
        assert!(r.bytes as f64 >= 8.0 * (128.0 * 128.0 * 4.0));
    }

    #[test]
    fn compute_bound_run_matches_compute_ceiling() {
        // Tiny compute rate: the run must take ≈ ops / rate cycles and
        // achieve ≈ the compute ceiling in GOPS.
        let dims = MatmulDims::square(64);
        let total_opc = 64.0; // ops per cycle over all engines
        let (engines, ops) = a_engines(&dims, 4, total_opc);
        let r = run_engines(&mao_cfg(), engines, ops, 3_000_000).unwrap();
        let ideal_cycles = ops as f64 / total_opc;
        assert!(
            (r.cycles as f64) < 1.4 * ideal_cycles,
            "compute-bound run took {} vs ideal {ideal_cycles}",
            r.cycles
        );
        // GOPS ≈ rate × clock.
        let ceiling = total_opc * 0.3; // 300 MHz → GOPS
        assert!(r.gops > 0.7 * ceiling, "gops {} vs ceiling {ceiling}", r.gops);
    }

    #[test]
    fn memory_bound_run_tracks_bandwidth() {
        // Infinite compute: the run is bounded by memory, and the
        // Roofline with the achieved bandwidth predicts the achieved
        // GOPS almost exactly (the paper's §V model-accuracy claim).
        let dims = MatmulDims::square(128);
        let (engines, ops) = a_engines(&dims, 8, 1e9);
        let r = run_engines(&mao_cfg(), engines, ops, 3_000_000).unwrap();
        let err = r.prediction_error(1e12, r.gbps);
        assert!(err < 0.02, "roofline self-consistency error {err}");
    }

    #[test]
    fn mao_beats_xilinx_for_the_accelerator() {
        // The §V claim end-to-end: the same accelerator, same script, on
        // both interconnects.
        let dims = MatmulDims::square(96);
        let (e1, ops) = a_engines(&dims, 8, 1e9);
        let mao = run_engines(&mao_cfg(), e1, ops, 10_000_000).unwrap();
        let (e2, ops2) = a_engines(&dims, 8, 1e9);
        let xlnx = run_engines(&SystemConfig::xilinx(), e2, ops2, 10_000_000).unwrap();
        assert!(mao.gops > 3.0 * xlnx.gops, "MAO {} GOPS vs XLNX {} GOPS", mao.gops, xlnx.gops);
    }

    #[test]
    fn unfinished_run_returns_none() {
        let dims = MatmulDims::square(128);
        let (engines, ops) = a_engines(&dims, 8, 1.0); // would take ages
        assert!(run_engines(&mao_cfg(), engines, ops, 1_000).is_none());
    }
}
