//! A 2D stencil (5-point Jacobi) application engine.
//!
//! The paper motivates HBM with application accelerators such as NERO's
//! weather-prediction stencils \[6\]. A stencil sweep is the archetypal
//! *low operational intensity* kernel (≈ 0.6 OPS/B for 5-point Jacobi on
//! f32): performance is almost purely a function of achievable memory
//! bandwidth, which makes it the sharpest end-to-end probe of the
//! interconnect — the MAO speed-up on the CCS pattern translates almost
//! 1:1 into application speed-up.
//!
//! Partitioning: the grid's rows are banded across masters; each phase
//! streams a row block plus its halo rows, computes, and writes the
//! output block back.

use hbm_axi::{Addr, BurstLen, MasterId};
use serde::{Deserialize, Serialize};

use crate::engine::DataflowEngine;
use crate::phase::Phase;

/// Stencil problem geometry: an `h × w` f32 grid, input at `base`,
/// output immediately after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilDims {
    /// Grid rows.
    pub h: usize,
    /// Grid columns.
    pub w: usize,
    /// Base address of the input grid.
    pub base: Addr,
}

impl StencilDims {
    /// A square grid at address 0.
    pub fn square(dim: usize) -> StencilDims {
        StencilDims { h: dim, w: dim, base: 0 }
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> u64 {
        self.w as u64 * 4
    }

    /// Address of input row `i`.
    pub fn in_row(&self, i: usize) -> Addr {
        self.base + i as u64 * self.row_bytes()
    }

    /// Address of output row `i`.
    pub fn out_row(&self, i: usize) -> Addr {
        self.base + (self.h + i) as u64 * self.row_bytes()
    }

    /// Total operations of one sweep (4 adds + 1 multiply per interior
    /// point).
    pub fn total_ops(&self) -> u64 {
        if self.h < 3 || self.w < 3 {
            return 0;
        }
        5 * ((self.h - 2) * (self.w - 2)) as u64
    }
}

/// Rows per phase.
const ROW_BLOCK: usize = 8;

/// Builds the phase script for master `p` of `num_masters`: one sweep of
/// the 5-point stencil over this master's row band.
pub fn stencil_phases(dims: &StencilDims, p: usize, num_masters: usize) -> Vec<Phase> {
    assert!(p < num_masters);
    // Interior rows banded across masters.
    let interior = dims.h.saturating_sub(2);
    let r0 = 1 + interior * p / num_masters;
    let r1 = 1 + interior * (p + 1) / num_masters;
    let mut phases = Vec::new();
    for i0 in (r0..r1).step_by(ROW_BLOCK) {
        let i1 = (i0 + ROW_BLOCK).min(r1);
        let mut ph = Phase::default();
        // Halo: rows i0-1 ..= i1 of the input.
        for i in (i0 - 1)..=(i1.min(dims.h - 1)) {
            ph.reads.push((dims.in_row(i), dims.row_bytes()));
        }
        ph.ops = 5 * ((i1 - i0) * (dims.w - 2)) as u64;
        for i in i0..i1 {
            ph.writes.push((dims.out_row(i), dims.row_bytes()));
        }
        phases.push(ph);
    }
    phases
}

/// Builds `P` stencil engines (one per master).
pub fn stencil_engines(
    dims: &StencilDims,
    num_masters: usize,
    total_ops_per_cycle: f64,
    burst: BurstLen,
    outstanding: usize,
    num_ids: usize,
) -> Vec<DataflowEngine> {
    (0..num_masters)
        .map(|p| {
            DataflowEngine::new(
                MasterId(p as u16),
                stencil_phases(dims, p, num_masters),
                total_ops_per_cycle / num_masters as f64,
                burst,
                outstanding,
                num_ids,
            )
        })
        .collect()
}

/// Functional reference: one 5-point Jacobi sweep. Boundary rows/columns
/// are copied unchanged.
pub fn jacobi_step(grid: &[f32], h: usize, w: usize) -> Vec<f32> {
    assert_eq!(grid.len(), h * w);
    let mut out = grid.to_vec();
    for i in 1..h.saturating_sub(1) {
        for j in 1..w.saturating_sub(1) {
            out[i * w + j] = 0.25
                * (grid[(i - 1) * w + j]
                    + grid[(i + 1) * w + j]
                    + grid[i * w + j - 1]
                    + grid[i * w + j + 1]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_smooths_towards_neighbour_average() {
        let h = 4;
        let w = 4;
        let mut g = vec![0.0f32; h * w];
        g[w + 1] = 4.0;
        let out = jacobi_step(&g, h, w);
        // The spike is replaced by the average of its (zero) neighbours.
        assert_eq!(out[w + 1], 0.0);
        // Its neighbours each pick up a quarter of it.
        assert_eq!(out[w + 2], 1.0);
        assert_eq!(out[2 * w + 1], 1.0);
        // Boundaries are copied.
        assert_eq!(out[0], g[0]);
    }

    #[test]
    fn jacobi_fixed_point_on_constant_grid() {
        let g = vec![3.5f32; 36];
        let out = jacobi_step(&g, 6, 6);
        assert_eq!(out, g);
    }

    #[test]
    fn phases_cover_every_interior_row_once() {
        let dims = StencilDims::square(64);
        let masters = 8;
        let mut written = std::collections::HashSet::new();
        for p in 0..masters {
            for ph in stencil_phases(&dims, p, masters) {
                for (addr, len) in ph.writes {
                    assert_eq!(len, dims.row_bytes());
                    assert!(written.insert(addr), "row written twice");
                }
            }
        }
        // Interior rows 1..=62.
        assert_eq!(written.len(), 62);
        assert!(written.contains(&dims.out_row(1)));
        assert!(written.contains(&dims.out_row(62)));
        assert!(!written.contains(&dims.out_row(0)));
    }

    #[test]
    fn ops_cover_the_sweep() {
        let dims = StencilDims::square(64);
        let total: u64 = (0..8).flat_map(|p| stencil_phases(&dims, p, 8)).map(|ph| ph.ops).sum();
        assert_eq!(total, dims.total_ops());
    }

    #[test]
    fn operational_intensity_is_low() {
        // OpI = ops / bytes < 1 OPS/B — the memory-bound archetype.
        let dims = StencilDims::square(128);
        let phases: Vec<Phase> = (0..8).flat_map(|p| stencil_phases(&dims, p, 8)).collect();
        let bytes: u64 = phases.iter().map(|p| p.read_bytes() + p.write_bytes()).sum();
        let ops: u64 = phases.iter().map(|p| p.ops).sum();
        let oi = ops as f64 / bytes as f64;
        assert!(oi < 1.0, "stencil OpI {oi} should be < 1");
        assert!(oi > 0.3, "stencil OpI {oi} sanity");
    }

    #[test]
    fn halo_rows_read_by_adjacent_masters() {
        // The boundary row between two bands is read by both (halo).
        let dims = StencilDims::square(64);
        let count_reads = |p: usize, row: usize| {
            stencil_phases(&dims, p, 8)
                .iter()
                .flat_map(|ph| &ph.reads)
                .filter(|(a, _)| *a == dims.in_row(row))
                .count()
        };
        // Band of master 0 covers rows 1..=8 (interior 62 / 8 masters ≈ 7.75).
        // Find a row at the edge between master 0 and 1.
        let interior = 62;
        let r1 = 1 + interior / 8; // first row of master 1's band
        assert!(count_reads(0, r1) >= 1, "master 0 reads its lower halo");
        assert!(count_reads(1, r1) >= 1, "master 1 reads its own first row");
    }

    #[test]
    fn tiny_grids_produce_no_work() {
        let dims = StencilDims::square(2);
        assert_eq!(dims.total_ops(), 0);
        assert!(stencil_phases(&dims, 0, 8).is_empty());
    }
}
