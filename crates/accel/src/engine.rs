//! The dataflow engine: executes a phase script against the memory
//! system.

use std::collections::HashMap;

use hbm_axi::{BurstLen, Cycle, Dir, MasterId, OutstandingTracker, Transaction, TxnBuilder};
use hbm_core::system::TrafficSource;
use hbm_traffic::GenStats;

use crate::phase::Phase;

/// How many phases ahead reads may be prefetched (double buffering).
const PREFETCH_PHASES: usize = 2;

/// Per-phase execution state.
#[derive(Debug)]
struct PhaseState {
    read_chunks: Vec<(u64, BurstLen)>,
    write_chunks: Vec<(u64, BurstLen)>,
    next_read: usize,
    next_write: usize,
    reads_outstanding: usize,
    writes_outstanding: usize,
    reads_issued_all: bool,
    reads_done_at: Option<Cycle>,
    compute_done_at: Option<Cycle>,
    ops: u64,
}

impl PhaseState {
    fn reads_complete(&self) -> bool {
        self.reads_issued_all && self.reads_outstanding == 0
    }

    fn writes_complete(&self) -> bool {
        self.next_write == self.write_chunks.len() && self.writes_outstanding == 0
    }
}

/// A timed accelerator engine on one master port.
///
/// Executes its [`Phase`] script with:
///
/// * bounded outstanding transactions (the paper's `N_ot`),
/// * read prefetch up to `PREFETCH_PHASES` ahead (double buffering),
/// * one compute unit of `ops_per_cycle` throughput — compute of phase
///   *p* starts when its reads have arrived *and* phase *p−1* has
///   finished computing,
/// * writes of phase *p* issued only after its compute completes.
#[derive(Debug)]
pub struct DataflowEngine {
    builder: TxnBuilder,
    tracker: OutstandingTracker,
    phases: Vec<PhaseState>,
    /// Oldest phase whose writes are not yet fully issued+completed.
    exec_head: usize,
    /// Next phase to be granted the compute unit.
    next_compute: usize,
    last_compute_end: Cycle,
    ops_per_cycle: f64,
    pending: Option<Transaction>,
    /// seq → (phase index, is_read) for completion routing.
    in_flight: HashMap<u64, (usize, bool)>,
    stats: GenStats,
    ops_done: u64,
    started_at: Option<Cycle>,
    finished_at: Option<Cycle>,
}

impl DataflowEngine {
    /// Builds an engine for `master` executing `phases` with the given
    /// compute rate, burst length and outstanding/ID limits.
    pub fn new(
        master: MasterId,
        phases: Vec<Phase>,
        ops_per_cycle: f64,
        burst: BurstLen,
        outstanding: usize,
        num_ids: usize,
    ) -> DataflowEngine {
        assert!(ops_per_cycle > 0.0, "compute rate must be positive");
        let states = phases
            .iter()
            .map(|p| PhaseState {
                read_chunks: Phase::chunks(&p.reads, burst),
                write_chunks: Phase::chunks(&p.writes, burst),
                next_read: 0,
                next_write: 0,
                reads_outstanding: 0,
                writes_outstanding: 0,
                reads_issued_all: p.reads.is_empty(),
                reads_done_at: None,
                compute_done_at: None,
                ops: p.ops,
            })
            .collect();
        DataflowEngine {
            builder: TxnBuilder::new(master),
            tracker: OutstandingTracker::new(num_ids, outstanding),
            phases: states,
            exec_head: 0,
            next_compute: 0,
            last_compute_end: 0,
            ops_per_cycle,
            pending: None,
            in_flight: HashMap::new(),
            stats: GenStats::default(),
            ops_done: 0,
            started_at: None,
            finished_at: None,
        }
    }

    /// Total operations completed so far.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// Cycle at which the engine finished all phases, if it has.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// `true` once every phase has completed.
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Marks phases whose reads are complete as computed, in order,
    /// respecting the single compute unit.
    fn schedule_compute(&mut self, now: Cycle) {
        while self.next_compute < self.phases.len() {
            let p = self.next_compute;
            // Empty-read phases become computable immediately.
            if self.phases[p].reads_chunks_empty() && self.phases[p].reads_done_at.is_none() {
                self.phases[p].reads_done_at = Some(now);
            }
            let Some(ready) = self.phases[p].reads_done_at else {
                break;
            };
            let dur = (self.phases[p].ops as f64 / self.ops_per_cycle).ceil() as Cycle;
            let start = ready.max(self.last_compute_end);
            let done = start + dur;
            self.phases[p].compute_done_at = Some(done);
            self.last_compute_end = done;
            self.ops_done += self.phases[p].ops;
            self.next_compute += 1;
        }
    }

    /// Advances `exec_head` past fully retired phases and detects
    /// completion.
    fn retire(&mut self, now: Cycle) {
        while self.exec_head < self.phases.len() {
            let ps = &self.phases[self.exec_head];
            let computed = ps.compute_done_at.is_some_and(|c| c <= now);
            if ps.reads_complete() && computed && ps.writes_complete() {
                self.exec_head += 1;
            } else {
                break;
            }
        }
        if self.exec_head == self.phases.len() && self.finished_at.is_none() {
            self.finished_at = Some(now);
        }
    }

    /// The next transaction the dataflow wants to issue, if any.
    fn next_work(&mut self, now: Cycle) -> Option<Transaction> {
        self.schedule_compute(now);
        self.retire(now);
        // 1. Writes of the oldest computed phases, in order.
        for p in self.exec_head..self.next_compute {
            let computed = self.phases[p].compute_done_at.is_some_and(|c| c <= now);
            if !computed {
                break; // writes stay in phase order
            }
            let ps = &mut self.phases[p];
            if ps.next_write < ps.write_chunks.len() && self.tracker.can_issue(Dir::Write) {
                let (addr, burst) = ps.write_chunks[ps.next_write];
                ps.next_write += 1;
                ps.writes_outstanding += 1;
                let id = self.tracker.pick_id(self.builder.issued());
                let txn = self
                    .builder
                    .issue(id, addr, burst, Dir::Write, now)
                    .expect("builder produced illegal write");
                self.tracker.issue(Dir::Write, id, txn.seq);
                self.in_flight.insert(txn.seq, (p, false));
                return Some(txn);
            }
        }
        // 2. Reads within the prefetch window.
        let window_end = (self.exec_head + PREFETCH_PHASES + 1).min(self.phases.len());
        for p in self.exec_head..window_end {
            let ps = &mut self.phases[p];
            if ps.next_read < ps.read_chunks.len() && self.tracker.can_issue(Dir::Read) {
                let (addr, burst) = ps.read_chunks[ps.next_read];
                ps.next_read += 1;
                ps.reads_outstanding += 1;
                if ps.next_read == ps.read_chunks.len() {
                    ps.reads_issued_all = true;
                }
                let id = self.tracker.pick_id(self.builder.issued());
                let txn = self
                    .builder
                    .issue(id, addr, burst, Dir::Read, now)
                    .expect("builder produced illegal read");
                self.tracker.issue(Dir::Read, id, txn.seq);
                self.in_flight.insert(txn.seq, (p, true));
                return Some(txn);
            }
        }
        None
    }
}

impl PhaseState {
    fn reads_chunks_empty(&self) -> bool {
        self.read_chunks.is_empty()
    }
}

impl TrafficSource for DataflowEngine {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.pending.is_none() {
            self.pending = self.next_work(now);
            if self.pending.is_some() && self.started_at.is_none() {
                self.started_at = Some(now);
            }
        }
        self.pending
    }

    fn accepted(&mut self) {
        assert!(self.pending.take().is_some(), "no pending transaction");
        self.stats.issued += 1;
    }

    fn completed(&mut self, now: Cycle, txn: &Transaction) {
        self.tracker
            .complete(txn.dir, txn.id, txn.seq)
            .expect("AXI ordering violated — simulator bug");
        let (phase, is_read) =
            self.in_flight.remove(&txn.seq).expect("completion for unknown transaction");
        let ps = &mut self.phases[phase];
        self.stats.completed += 1;
        let lat = now.saturating_sub(txn.issued_at);
        if is_read {
            ps.reads_outstanding -= 1;
            if ps.reads_complete() && ps.reads_done_at.is_none() {
                ps.reads_done_at = Some(now);
            }
            self.stats.bytes_read += txn.bytes();
            self.stats.read_lat.record(lat);
        } else {
            ps.writes_outstanding -= 1;
            self.stats.bytes_written += txn.bytes();
            self.stats.write_lat.record(lat);
        }
        self.schedule_compute(now);
        self.retire(now);
    }

    fn stats(&self) -> &GenStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = GenStats::default();
    }

    fn drained(&self) -> bool {
        self.pending.is_none() && self.tracker.total_in_flight() == 0 && self.finished()
    }
}

/// A source that never issues anything (fills unused master ports when
/// an accelerator uses fewer than 32 masters).
#[derive(Debug, Default)]
pub struct IdleSource {
    stats: GenStats,
}

impl TrafficSource for IdleSource {
    fn poll(&mut self, _now: Cycle) -> Option<Transaction> {
        None
    }

    fn accepted(&mut self) {
        unreachable!("idle source never issues");
    }

    fn completed(&mut self, _now: Cycle, _txn: &Transaction) {
        unreachable!("idle source never receives completions");
    }

    fn stats(&self) -> &GenStats {
        &self.stats
    }

    fn reset_stats(&mut self) {}

    fn drained(&self) -> bool {
        true
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None // never issues anything
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(reads: Vec<(u64, u64)>, writes: Vec<(u64, u64)>, ops: u64) -> Phase {
        Phase { reads, writes, ops }
    }

    fn engine(phases: Vec<Phase>, opc: f64) -> DataflowEngine {
        DataflowEngine::new(MasterId(0), phases, opc, BurstLen::of(16), 8, 4)
    }

    /// Drives an engine against an ideal zero-latency memory that
    /// completes transactions `lat` cycles after acceptance.
    fn run_ideal(e: &mut DataflowEngine, lat: Cycle, max: Cycle) -> Cycle {
        let mut in_flight: Vec<(Cycle, Transaction)> = Vec::new();
        for now in 0..max {
            if let Some(t) = e.poll(now) {
                e.accepted();
                in_flight.push((now + lat, t));
            }
            let (done, rest): (Vec<_>, Vec<_>) = in_flight.drain(..).partition(|(c, _)| *c <= now);
            in_flight = rest;
            for (_, t) in done {
                e.completed(now, &t);
            }
            if e.finished() && e.drained() {
                return now;
            }
        }
        panic!("engine did not finish in {max} cycles");
    }

    #[test]
    fn single_phase_read_compute_write() {
        let mut e = engine(vec![phase(vec![(0, 512)], vec![(4096, 512)], 100)], 10.0);
        run_ideal(&mut e, 5, 10_000);
        assert_eq!(e.ops_done(), 100);
        assert_eq!(e.stats().bytes_read, 512);
        assert_eq!(e.stats().bytes_written, 512);
    }

    #[test]
    fn writes_wait_for_compute() {
        // Huge ops at a tiny rate: the write must come long after reads.
        let mut e = engine(vec![phase(vec![(0, 32)], vec![(4096, 32)], 1_000)], 1.0);
        let mut write_issue = None;
        let mut read_done = None;
        let mut in_flight: Vec<(Cycle, Transaction)> = Vec::new();
        for now in 0..20_000 {
            if let Some(t) = e.poll(now) {
                e.accepted();
                if t.dir == Dir::Write {
                    write_issue = Some(now);
                }
                in_flight.push((now + 3, t));
            }
            let (done, rest): (Vec<_>, Vec<_>) = in_flight.drain(..).partition(|(c, _)| *c <= now);
            in_flight = rest;
            for (_, t) in done {
                if t.dir == Dir::Read {
                    read_done = Some(now);
                }
                e.completed(now, &t);
            }
            if e.finished() && e.drained() {
                break;
            }
        }
        let (r, w) = (read_done.unwrap(), write_issue.unwrap());
        assert!(w >= r + 1_000, "write at {w}, reads done at {r}: compute not respected");
    }

    #[test]
    fn phases_compute_in_order() {
        // Three phases; compute durations chain even if later reads
        // finish early (single compute unit).
        let phases = vec![
            phase(vec![(0, 32)], vec![], 500),
            phase(vec![(64, 32)], vec![], 500),
            phase(vec![(128, 32)], vec![(4096, 32)], 500),
        ];
        let mut e = engine(phases, 1.0);
        let end = run_ideal(&mut e, 2, 50_000);
        // Total compute 1500 cycles, serialised.
        assert!(end >= 1_500, "finished at {end}, compute cannot overlap itself");
        assert_eq!(e.ops_done(), 1_500);
    }

    #[test]
    fn prefetch_overlaps_reads_with_compute() {
        // With prefetch, phase 2's reads are issued while phase 1
        // computes; total time ≈ compute-bound, not read+compute serial.
        let phases: Vec<Phase> =
            (0..8).map(|i| phase(vec![(i as u64 * 512, 512)], vec![], 160)).collect();
        let mut e = engine(phases, 1.0);
        let end = run_ideal(&mut e, 50, 50_000);
        // Compute: 8 × 160 = 1280. Serial read+compute would be ≥
        // 8 × (50 + 160) = 1680. Prefetch keeps us near compute-bound.
        assert!(end < 1_500, "finished at {end}: prefetch not overlapping");
    }

    #[test]
    fn compute_bound_vs_memory_bound_rates() {
        // Same script at very different compute rates: fast compute →
        // memory dominates; slow compute → total time ≈ ops / rate.
        let mk = || vec![phase(vec![(0, 4096)], vec![(8192, 512)], 10_000)];
        let mut fast = engine(mk(), 1e9);
        let t_fast = run_ideal(&mut fast, 40, 100_000);
        let mut slow = engine(mk(), 1.0);
        let t_slow = run_ideal(&mut slow, 40, 100_000);
        assert!(t_slow >= 10_000, "slow engine must be compute bound: {t_slow}");
        assert!(t_fast < 1_000, "fast engine must be memory bound: {t_fast}");
    }

    #[test]
    fn idle_source_is_always_drained() {
        let mut s = IdleSource::default();
        assert!(s.poll(0).is_none());
        assert!(TrafficSource::drained(&s));
    }

    #[test]
    fn empty_phase_script_finishes_immediately() {
        let mut e = engine(vec![], 1.0);
        assert!(e.poll(0).is_none());
        // next_work ran retire(): an empty script is instantly finished.
        assert!(e.finished());
    }
}
