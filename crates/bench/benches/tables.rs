//! Criterion benches — one group per *table* of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_axi::BurstLen;
use hbm_core::prelude::*;
use hbm_mao::{MaoConfig, MaoResources};
use hbm_roofline::accelerator::{table5, AcceleratorA, AcceleratorB};
use std::hint::black_box;

const WARM: u64 = 500;
const MEAS: u64 = 1_500;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_latency");
    g.sample_size(10);
    for (name, outstanding, bl) in [("single", 1usize, 1u8), ("burst", 32, 16)] {
        let wl = Workload {
            outstanding,
            burst: BurstLen::of(bl),
            stride: BurstLen::of(bl).bytes(),
            ..Workload::ccs()
        };
        g.bench_function(BenchmarkId::new("xlnx_ccs", name), |b| {
            b.iter(|| {
                let m = measure(&SystemConfig::xilinx(), wl, WARM, MEAS);
                black_box(m.read_latency_mean())
            })
        });
        g.bench_function(BenchmarkId::new("mao_ccs", name), |b| {
            b.iter(|| {
                let m = measure(&SystemConfig::mao(), wl, WARM, MEAS);
                black_box(m.read_latency_mean())
            })
        });
    }
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_resources");
    g.bench_function("estimate_all_variants", |b| {
        b.iter(|| {
            for full in [false, true] {
                for stages in [1u8, 2] {
                    let cfg = MaoConfig { full, stages, ..MaoConfig::default() };
                    black_box(MaoResources::estimate(&cfg, 256));
                }
            }
        })
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_throughput");
    g.sample_size(10);
    for (name, wl) in [("ccs", Workload::ccs()), ("ccra", Workload::ccra())] {
        g.bench_function(BenchmarkId::new("xlnx", name), |b| {
            b.iter(|| black_box(measure(&SystemConfig::xilinx(), wl, WARM, MEAS).total_gbps()))
        });
        g.bench_function(BenchmarkId::new("mao", name), |b| {
            b.iter(|| black_box(measure(&SystemConfig::mao(), wl, WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_accelerators");
    g.bench_function("analytical_rows", |b| {
        b.iter(|| {
            black_box(table5(|p| AcceleratorA { p }, 12.55, 403.75));
            black_box(table5(|p| AcceleratorB { p }, 9.59, 273.0));
        })
    });
    g.finish();
}

criterion_group!(tables, bench_table2, bench_table3, bench_table4, bench_table5);
criterion_main!(tables);
