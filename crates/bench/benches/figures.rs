//! Criterion benches — one group per *figure* of the paper.
//!
//! Each bench times a representative simulation of the figure's workload
//! (short window; the full parameter sweeps live in the `repro` binary).
//! Regressions here mean the simulator got slower, not that the
//! reproduced numbers changed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_axi::BurstLen;
use hbm_core::prelude::*;
use std::hint::black_box;

const WARM: u64 = 500;
const MEAS: u64 = 1_500;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_rw_ratio");
    g.sample_size(10);
    for ratio in [RwRatio::READ_ONLY, RwRatio::TWO_TO_ONE, RwRatio::WRITE_ONLY] {
        let label = format!("{}to{}", ratio.reads, ratio.writes);
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let wl = Workload { rw: ratio, ..Workload::scs() };
                black_box(measure(&SystemConfig::xilinx(), wl, WARM, MEAS).total_gbps())
            })
        });
    }
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_burst_length");
    g.sample_size(10);
    for (name, wl) in [
        ("scs", Workload::scs()),
        ("ccs", Workload::ccs()),
        ("scra", Workload::scra()),
        ("ccra", Workload::ccra()),
    ] {
        for bl in [1u8, 16] {
            let wl = Workload { burst: BurstLen::of(bl), stride: BurstLen::of(bl).bytes(), ..wl };
            g.bench_function(BenchmarkId::new(name, bl), |b| {
                b.iter(|| black_box(measure(&SystemConfig::xilinx(), wl, WARM, MEAS).total_gbps()))
            });
        }
    }
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_rotation");
    g.sample_size(10);
    for rotation in [0usize, 2, 8] {
        let wl = Workload { rotation, ..Workload::scs() };
        g.bench_function(BenchmarkId::from_parameter(rotation), |b| {
            b.iter(|| black_box(measure(&SystemConfig::xilinx(), wl, WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_stride");
    g.sample_size(10);
    for stride in [512u64, 16 << 10, 4 << 20] {
        let wl = Workload { stride, working_set: 4 << 30, ..Workload::ccs() };
        g.bench_function(BenchmarkId::from_parameter(stride), |b| {
            b.iter(|| black_box(measure(&SystemConfig::mao(), wl, WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_reorder");
    g.sample_size(10);
    for depth in [1usize, 32] {
        let wl = Workload { num_ids: depth, outstanding: depth, ..Workload::ccra() };
        g.bench_function(BenchmarkId::from_parameter(depth), |b| {
            b.iter(|| black_box(measure(&SystemConfig::mao(), wl, WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_accel_bandwidths");
    g.sample_size(10);
    g.bench_function("accel_a_mao", |b| {
        b.iter(|| {
            black_box(measure(&SystemConfig::mao(), Workload::ccs(), WARM, MEAS).total_gbps())
        })
    });
    g.bench_function("accel_b_mao", |b| {
        let wl = Workload { rw: RwRatio { reads: 15, writes: 1 }, ..Workload::ccs() };
        b.iter(|| black_box(measure(&SystemConfig::mao(), wl, WARM, MEAS).total_gbps()))
    });
    g.finish();
}

criterion_group!(figures, bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7);
criterion_main!(figures);
