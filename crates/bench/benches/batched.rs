//! Criterion benches of the lockstep batched engine: sweep points per
//! wall-second through `measure_batch` at K = 1, 4, 16 lanes versus K
//! scalar `measure` calls over the same points.
//!
//! `repro simspeed` measures the same comparison on the full Fig. 4
//! grid (via the batch planner) and records it in `BENCH_simspeed.json`
//! as the `batched` section; this harness isolates the kernel itself on
//! a fixed lane count, which is the number to watch when touching
//! `hbm_core::lockstep`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_core::lockstep::measure_batch;
use hbm_core::measure;
use hbm_core::prelude::*;
use std::hint::black_box;

const WARM: u64 = 300;
const MEAS: u64 = 1_200;

/// K rotation workloads of the Fig. 4 family (all on the stock Xilinx
/// topology, as the planner would group them).
fn lanes(k: usize) -> Vec<Workload> {
    let rotations = [0usize, 1, 2, 3, 4, 6, 8];
    (0..k)
        .map(|i| Workload { rotation: rotations[i % rotations.len()], ..Workload::scs() })
        .collect()
}

fn bench_batched_vs_scalar(c: &mut Criterion) {
    let cfg = SystemConfig::xilinx();
    let mut g = c.benchmark_group("batched_points_per_sec");
    g.sample_size(10);
    for k in [1usize, 4, 16] {
        let wls = lanes(k);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_function(BenchmarkId::new("scalar", k), |b| {
            b.iter(|| {
                let rows: Vec<_> = wls.iter().map(|wl| measure(&cfg, *wl, WARM, MEAS)).collect();
                black_box(rows.len())
            })
        });
        g.bench_function(BenchmarkId::new("batched", k), |b| {
            b.iter(|| {
                let rows = measure_batch(&cfg, &wls, WARM, MEAS);
                black_box(rows.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batched_vs_scalar);
criterion_main!(benches);
