//! Criterion microbenches of the memory controller's cycle path: accept,
//! incremental FR-FCFS pick, issue, completion pop — the work `repro
//! profile` reports as the McTick phase, isolated from the fabric.
//!
//! Four workload shapes stress different scheduler paths:
//!
//! * `streaming` — sequential reads, rotating IDs: long row-hit runs, the
//!   cached pick survives only until the next issue (gate-limited, so
//!   most ticks are cached no-ops between issues);
//! * `random` — LCG-scrambled addresses: row misses dominate, the score
//!   scan sees mixed hit bits;
//! * `mixed` — alternating reads and writes: the direction-batching
//!   preference flips every `dir_batch` issues;
//! * `same_id` — one AXI ID: every entry behind the head is key-blocked,
//!   the worst case for the seen-keys walk.
//!
//! Each runs at window 4, 16, and 64 (queue depth raised to fit), scalar
//! (one controller, one bank unit) and lockstep (eight controllers
//! round-robined over one lane-major bank pool — the batched kernel's
//! access pattern). Run these when touching `hbm_mem::controller`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_axi::{AxiId, BurstLen, ClockDomain, Cycle, Dir, MasterId, TxnBuilder};
use hbm_mem::{BankPool, HbmConfig, MemoryController};

const CYCLES: Cycle = 8192;
/// Lanes in the lockstep-shaped variant.
const LANES: usize = 8;

#[derive(Clone, Copy)]
enum Shape {
    Streaming,
    Random,
    Mixed,
    SameId,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Streaming => "streaming",
            Shape::Random => "random",
            Shape::Mixed => "mixed",
            Shape::SameId => "same_id",
        }
    }

    /// The `i`-th transaction of this shape: (address, direction, id).
    /// Addresses are 512-aligned (one BL16 burst, no 4 KiB crossing) and
    /// wrap within the first 32 MiB of the channel.
    fn nth(self, i: u64) -> (u64, Dir, u8) {
        match self {
            Shape::Streaming => ((i * 512) % (32 << 20), Dir::Read, (i % 16) as u8),
            Shape::Random => {
                // SplitMix64-style scramble — cheap, deterministic.
                let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z % (32 << 20)) & !511, Dir::Read, (i % 16) as u8)
            }
            Shape::Mixed => {
                let dir = if i.is_multiple_of(2) { Dir::Read } else { Dir::Write };
                ((i * 512) % (32 << 20), dir, (i % 16) as u8)
            }
            Shape::SameId => ((i * 512) % (32 << 20), Dir::Read, 0),
        }
    }
}

fn config_with_window(window: usize) -> HbmConfig {
    let mut cfg = HbmConfig::default();
    cfg.mc.window = window;
    cfg.mc.queue_depth = cfg.mc.queue_depth.max(window);
    cfg.validate().expect("valid bench config");
    cfg
}

/// One controller, kept fed: the scalar `HbmSystem` port loop minus the
/// fabric. Returns a state sum so the work cannot be optimised away.
fn drive_scalar(cfg: &HbmConfig, shape: Shape) -> u64 {
    let mut m = MemoryController::new(cfg, ClockDomain::ACC_300, 0.0);
    let mut pool = BankPool::new(1, cfg.banks_per_pch);
    let mut banks = pool.unit_mut(0);
    let mut b = TxnBuilder::new(MasterId(0));
    let mut i = 0u64;
    let mut popped = 0u64;
    for now in 0..CYCLES {
        let (addr, dir, id) = shape.nth(i);
        if m.can_accept(dir) {
            let txn = b.issue(AxiId(id), addr, BurstLen::of(16), dir, now).expect("legal burst");
            m.accept(now, txn);
            i += 1;
        }
        m.tick(now, &mut banks);
        while m.pop_completion(now).is_some() {
            popped += 1;
        }
    }
    popped + m.queue_len() as u64
}

/// Eight controllers round-robined per cycle over one lane-major bank
/// pool — the lockstep kernel's per-port access pattern.
fn drive_lockstep(cfg: &HbmConfig, shape: Shape) -> u64 {
    let mut mcs: Vec<MemoryController> = (0..LANES)
        .map(|l| MemoryController::new(cfg, ClockDomain::ACC_300, l as f64 * 100.0))
        .collect();
    let mut pool = BankPool::new(LANES, cfg.banks_per_pch);
    let mut builders: Vec<TxnBuilder> =
        (0..LANES).map(|l| TxnBuilder::new(MasterId(l as u16))).collect();
    let mut i = 0u64;
    let mut popped = 0u64;
    let mut view = pool.view_mut();
    for now in 0..CYCLES / LANES as Cycle {
        for (l, m) in mcs.iter_mut().enumerate() {
            let (addr, dir, id) = shape.nth(i);
            if m.can_accept(dir) {
                let txn = builders[l]
                    .issue(AxiId(id), addr, BurstLen::of(16), dir, now)
                    .expect("legal burst");
                m.accept(now, txn);
                i += 1;
            }
            m.tick(now, &mut view.unit_mut(l));
            while m.pop_completion(now).is_some() {
                popped += 1;
            }
        }
    }
    popped + mcs.iter().map(|m| m.queue_len() as u64).sum::<u64>()
}

fn bench_mc_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("mc_tick");
    g.throughput(Throughput::Elements(CYCLES));
    for shape in [Shape::Streaming, Shape::Random, Shape::Mixed, Shape::SameId] {
        for window in [4usize, 16, 64] {
            let cfg = config_with_window(window);
            g.bench_function(BenchmarkId::new(format!("scalar/{}", shape.name()), window), |b| {
                b.iter(|| black_box(drive_scalar(&cfg, shape)))
            });
            g.bench_function(BenchmarkId::new(format!("lockstep/{}", shape.name()), window), |b| {
                b.iter(|| black_box(drive_lockstep(&cfg, shape)))
            });
        }
    }
    g.finish();
}

criterion_group!(mc, bench_mc_tick);
criterion_main!(mc);
