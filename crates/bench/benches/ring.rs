//! Criterion microbenches of the queue substrate itself: the flat SoA
//! `StampedRing`/`DelayQueue` against the `VecDeque<(Cycle, T)>` layout
//! it replaced, plus the lane-major `LaneRings` cross-lane scans.
//!
//! These isolate the data-structure cost that `repro profile` reports
//! as the QueueOps phase; run them when touching `hbm_axi::queue`.

use std::collections::VecDeque;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_axi::{Cycle, DelayQueue, LaneRings};

/// The payload the hot fabric queues actually carry is a ~64-byte
/// transaction/flit struct; model that so cache behaviour is honest.
#[derive(Clone, Copy)]
struct Payload {
    _words: [u64; 8],
}

const OPS: u64 = 4096;
const CAPACITY: usize = 8;
const LATENCY: Cycle = 2;

/// Steady-state push/pop churn at a given occupancy against the
/// pre-refactor layout: a `VecDeque` of (deadline, payload) pairs.
fn bench_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_push_pop");
    g.throughput(Throughput::Elements(OPS));
    for depth in [1usize, 4, 8] {
        g.bench_function(BenchmarkId::new("ring", depth), |b| {
            b.iter(|| {
                let mut q: DelayQueue<Payload> = DelayQueue::new(CAPACITY, LATENCY);
                let p = Payload { _words: [7; 8] };
                for now in 0..depth as Cycle {
                    let _ = q.push(now, p);
                }
                for now in 0..OPS {
                    let _ = q.push(now, p);
                    black_box(q.pop(now + LATENCY));
                }
                q.len()
            })
        });
        g.bench_function(BenchmarkId::new("vecdeque", depth), |b| {
            b.iter(|| {
                let mut q: VecDeque<(Cycle, Payload)> = VecDeque::new();
                let p = Payload { _words: [7; 8] };
                for now in 0..depth as Cycle {
                    if q.len() < CAPACITY {
                        q.push_back((now + LATENCY, p));
                    }
                }
                for now in 0..OPS {
                    if q.len() < CAPACITY {
                        q.push_back((now + LATENCY, p));
                    }
                    let due = now + LATENCY;
                    if q.front().is_some_and(|(t, _)| *t <= due) {
                        black_box(q.pop_front());
                    }
                }
                q.len()
            })
        });
    }
    g.finish();
}

/// The horizon query the cycle-skip machinery issues constantly: "when
/// does your head mature?" — on the ring this reads one slot of the
/// deadline array, no payload touched.
fn bench_next_ready(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_next_ready_at");
    g.throughput(Throughput::Elements(OPS));
    let mut ring: DelayQueue<Payload> = DelayQueue::new(CAPACITY, LATENCY);
    let mut deque: VecDeque<(Cycle, Payload)> = VecDeque::new();
    let p = Payload { _words: [7; 8] };
    for now in 0..4 {
        let _ = ring.push(now, p);
        deque.push_back((now + LATENCY, p));
    }
    g.bench_function("ring", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..OPS {
                acc = acc.wrapping_add(black_box(&ring).next_ready_at().unwrap_or(0));
            }
            acc
        })
    });
    g.bench_function("vecdeque", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..OPS {
                acc = acc.wrapping_add(black_box(&deque).front().map(|(t, _)| *t).unwrap_or(0));
            }
            acc
        })
    });
    g.finish();
}

/// The batched kernel's cross-lane occupancy scan: `LaneRings` reads one
/// contiguous deadline array; the replaced layout walked a
/// `Vec<Option<Payload>>` of fat options.
fn bench_lane_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("lane_occupancy_scan");
    for lanes in [128usize, 512] {
        g.throughput(Throughput::Elements(lanes as u64));
        let mut lr: LaneRings<Payload> = LaneRings::new(lanes, 1);
        let mut opts: Vec<Option<Payload>> = vec![None; lanes];
        // One straggler near the end, like a single stuck completion.
        lr.view_mut().push(lanes - 3, 9, Payload { _words: [7; 8] }).ok();
        opts[lanes - 3] = Some(Payload { _words: [7; 8] });
        g.bench_function(BenchmarkId::new("lane_rings", lanes), |b| {
            b.iter(|| black_box(&lr).any_occupied())
        });
        g.bench_function(BenchmarkId::new("vec_option", lanes), |b| {
            b.iter(|| black_box(&opts).iter().any(|s| s.is_some()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_push_pop, bench_next_ready, bench_lane_scan);
criterion_main!(benches);
