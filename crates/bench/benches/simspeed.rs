//! Criterion benches of the *simulator itself*: simulated cycles per
//! wall-clock second for each fabric and pattern. These are the numbers
//! a user extending the simulator should watch for regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_core::prelude::*;
use hbm_core::HbmSystem;
use std::hint::black_box;

const CYCLES: u64 = 2_000;

fn bench_sim_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_cycles_per_sec");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    for (fname, cfg) in [
        ("xilinx", SystemConfig::xilinx()),
        ("mao", SystemConfig::mao()),
        ("direct", SystemConfig::direct()),
    ] {
        for (wname, wl) in [("scs", Workload::scs()), ("ccra", Workload::ccra())] {
            if fname == "direct" && wname == "ccra" {
                continue;
            }
            g.bench_function(BenchmarkId::new(fname, wname), |b| {
                b.iter(|| {
                    let mut sys = HbmSystem::new(&cfg, wl, None);
                    sys.run(CYCLES);
                    black_box(sys.now())
                })
            });
        }
    }
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    use hbm_mem::{HbmConfig, PchDram};
    let mut g = c.benchmark_group("component_speed");
    g.bench_function("pch_execute_burst", |b| {
        let cfg = HbmConfig::default();
        let mut p = PchDram::new(&cfg, 0.0);
        let mut now = 0.0;
        let mut off = 0u64;
        b.iter(|| {
            let bt = p.execute_burst(now, Dir::Read, off % (1 << 20), 512);
            now = bt.finish_ns - 40.0;
            off += 512;
            black_box(bt.finish_ns)
        })
    });
    g.bench_function("interleave_remap", |b| {
        use hbm_fabric::AddressMap;
        use hbm_mao::{InterleaveMode, InterleavedMap};
        let m = InterleavedMap::new(InterleaveMode::XorFold { granularity: 512 }, 32, 256 << 20);
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 512) % (8 << 30);
            black_box(m.remap(a))
        })
    });
    g.finish();
}

criterion_group!(simspeed, bench_sim_speed, bench_components);
criterion_main!(simspeed);
