//! Criterion benches of the *simulator itself*: simulated cycles per
//! wall-clock second for each fabric and pattern. These are the numbers
//! a user extending the simulator should watch for regressions.
//!
//! `repro simspeed` runs the same scenario matrix outside the Criterion
//! harness and writes `BENCH_simspeed.json` for machine comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_bench::simspeed::probe_workload;
use hbm_core::prelude::*;
use hbm_core::HbmSystem;
use std::hint::black_box;

const CYCLES: u64 = 2_000;

fn bench_sim_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_cycles_per_sec");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    for (fname, cfg) in [
        ("xilinx", SystemConfig::xilinx()),
        ("mao", SystemConfig::mao()),
        ("direct", SystemConfig::direct()),
    ] {
        for (wname, wl) in [("scs", Workload::scs()), ("ccra", Workload::ccra())] {
            if fname == "direct" && wname == "ccra" {
                continue;
            }
            g.bench_function(BenchmarkId::new(fname, wname), |b| {
                b.iter(|| {
                    let mut sys = HbmSystem::new(&cfg, wl, None);
                    sys.run(CYCLES);
                    black_box(sys.now())
                })
            });
        }
    }
    g.finish();
}

/// Low-duty-cycle scenarios: dominated by simulated cycles in which
/// little or nothing happens. These are the runs the next-event
/// fast-forward in `HbmSystem::run`/`run_until_drained` accelerates.
fn bench_sparse_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_sparse");
    g.sample_size(10);

    for (fname, cfg) in [
        ("xilinx", SystemConfig::xilinx()),
        ("mao", SystemConfig::mao()),
        ("direct", SystemConfig::direct()),
    ] {
        // Single-outstanding latency probe: 64 serialized single-beat
        // reads per master, run to drain.
        g.bench_function(BenchmarkId::new(fname, "latency_probe"), |b| {
            b.iter(|| {
                let mut sys = HbmSystem::new(&cfg, probe_workload(), Some(64));
                assert!(sys.run_until_drained(10_000_000));
                black_box(sys.now())
            })
        });

        // Drain tail: a bounded saturated burst, then the thinning tail.
        g.bench_function(BenchmarkId::new(fname, "drain_tail"), |b| {
            b.iter(|| {
                let mut sys = HbmSystem::new(&cfg, Workload::scs(), Some(256));
                assert!(sys.run_until_drained(10_000_000));
                black_box(sys.now())
            })
        });

        // Idle: a quiescent system covering a long simulated window.
        g.bench_function(BenchmarkId::new(fname, "idle"), |b| {
            b.iter(|| {
                let mut sys = HbmSystem::new(&cfg, Workload::scs(), Some(0));
                sys.run(1_000_000);
                black_box(sys.now())
            })
        });
    }
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    use hbm_mem::{BankPool, HbmConfig, PchDram};
    let mut g = c.benchmark_group("component_speed");
    g.bench_function("pch_execute_burst", |b| {
        let cfg = HbmConfig::default();
        let mut p = PchDram::new(&cfg, 0.0);
        let mut pool = BankPool::new(1, cfg.banks_per_pch);
        let mut banks = pool.unit_mut(0);
        let mut now = 0.0;
        let mut off = 0u64;
        b.iter(|| {
            let bt = p.execute_burst(&mut banks, now, Dir::Read, off % (1 << 20), 512);
            now = bt.finish_ns - 40.0;
            off += 512;
            black_box(bt.finish_ns)
        })
    });
    g.bench_function("interleave_remap", |b| {
        use hbm_fabric::AddressMap;
        use hbm_mao::{InterleaveMode, InterleavedMap};
        let m = InterleavedMap::new(InterleaveMode::XorFold { granularity: 512 }, 32, 256 << 20);
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 512) % (8 << 30);
            black_box(m.remap(a))
        })
    });
    g.finish();
}

criterion_group!(simspeed, bench_sim_speed, bench_sparse_scenarios, bench_components);
criterion_main!(simspeed);
