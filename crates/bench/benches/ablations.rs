//! Criterion benches for the design-choice ablations of DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_core::prelude::*;
use hbm_core::system::FabricKind;
use hbm_mao::{InterleaveMode, MaoConfig};
use std::hint::black_box;

const WARM: u64 = 500;
const MEAS: u64 = 1_500;

fn mao_cfg(mao: MaoConfig) -> SystemConfig {
    SystemConfig { fabric: FabricKind::Mao(mao), ..SystemConfig::mao() }
}

fn bench_interleave_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_interleave");
    g.sample_size(10);
    for gran in [512u64, 4 << 10, 64 << 10] {
        let cfg = mao_cfg(MaoConfig {
            interleave: InterleaveMode::XorFold { granularity: gran },
            ..MaoConfig::default()
        });
        g.bench_function(BenchmarkId::from_parameter(gran), |b| {
            b.iter(|| black_box(measure(&cfg, Workload::ccs(), WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_interleave_scheme(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_scheme");
    g.sample_size(10);
    for (name, mode) in [
        ("block", InterleaveMode::Block { granularity: 512 }),
        ("xorfold", InterleaveMode::XorFold { granularity: 512 }),
    ] {
        let cfg = mao_cfg(MaoConfig { interleave: mode, ..MaoConfig::default() });
        let wl = Workload { stride: 16 << 10, working_set: 4 << 30, ..Workload::ccs() };
        g.bench_function(name, |b| {
            b.iter(|| black_box(measure(&cfg, wl, WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_stages");
    g.sample_size(10);
    for stages in [1u8, 2] {
        let cfg = mao_cfg(MaoConfig { stages, ..MaoConfig::default() });
        g.bench_function(BenchmarkId::from_parameter(stages), |b| {
            b.iter(|| black_box(measure(&cfg, Workload::ccs(), WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_mc_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mc_window");
    g.sample_size(10);
    for window in [1usize, 16] {
        let mut cfg = SystemConfig::mao();
        cfg.hbm.mc.window = window;
        g.bench_function(BenchmarkId::from_parameter(window), |b| {
            b.iter(|| black_box(measure(&cfg, Workload::ccra(), WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

fn bench_page_policy_proxy(c: &mut Criterion) {
    // Open-page benefits show as the gap between dense strides (row
    // hits) and page-missing large strides.
    let mut g = c.benchmark_group("ablate_page_policy");
    g.sample_size(10);
    for (name, stride) in [("row_friendly", 512u64), ("row_hostile", 4 << 20)] {
        let wl = Workload { stride, working_set: 4 << 30, ..Workload::ccs() };
        g.bench_function(name, |b| {
            b.iter(|| black_box(measure(&SystemConfig::mao(), wl, WARM, MEAS).total_gbps()))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_interleave_granularity,
    bench_interleave_scheme,
    bench_stages,
    bench_mc_window,
    bench_page_policy_proxy
);
criterion_main!(ablations);
