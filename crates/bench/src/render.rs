//! Rendering of every experiment as paper-vs-measured text tables.

use hbm_core::experiment::{self, Fidelity};
use hbm_core::report::{bar_chart, gbps, mean_std, pct, speedup, TextTable};
use hbm_mao::MaoResources;
use hbm_roofline::DeviceResources;
use hbm_traffic::Pattern;

use crate::fig7::fig7_report;
use crate::paper;

fn pattern_name(p: Pattern) -> &'static str {
    match p {
        Pattern::Scs => "SCS",
        Pattern::Ccs => "CCS",
        Pattern::Scra => "SCRA",
        Pattern::Ccra => "CCRA",
    }
}

/// Fig. 2: throughput vs. read/write ratio.
pub fn render_fig2(fid: Fidelity) -> String {
    let rows = experiment::fig2_rw_ratio(fid);
    let mut t = TextTable::new(["R:W ratio", "read GB/s", "write GB/s", "total GB/s"]);
    for r in rows {
        t.row([
            format!("{}:{}", r.ratio.reads, r.ratio.writes),
            gbps(r.read_gbps),
            gbps(r.write_gbps),
            gbps(r.total_gbps),
        ]);
    }
    format!(
        "Fig. 2 — throughput vs. R/W ratio at 300 MHz (paper: peak ≈ 416 GB/s at 2:1,\n\
         ~2 % below the unidirectional 450 MHz reference)\n\n{}",
        t.render()
    )
}

/// Fig. 3: burst-length sensitivity per pattern.
pub fn render_fig3(fid: Fidelity) -> String {
    let rows = experiment::fig3_burst_length(fid);
    let mut out = String::from(
        "Fig. 3 — throughput vs. AXI burst length on the Xilinx fabric\n\
         (paper: SCS saturates from BL 2; CCS hot-spot collapses to 2.8 %;\n\
         SCRA needs ~4× longer bursts; CCRA reaches 5.4× a single PCH)\n\n",
    );
    for pattern in [Pattern::Scs, Pattern::Ccs, Pattern::Scra, Pattern::Ccra] {
        let mut t = TextTable::new(["BL", "RD GB/s", "WR GB/s", "2:1 GB/s"]);
        for r in rows.iter().filter(|r| r.pattern == pattern) {
            t.row([r.burst.to_string(), gbps(r.rd_gbps), gbps(r.wr_gbps), gbps(r.both_gbps)]);
        }
        out.push_str(&format!("[{}]\n{}\n", pattern_name(pattern), t.render()));
    }
    out
}

/// Fig. 4: rotation offset vs. throughput.
pub fn render_fig4(fid: Fidelity) -> String {
    let rows = experiment::fig4_rotation(fid);
    let mut out = String::from("Fig. 4 — SCS rotation through the switch fabric\n\n");
    for burst in [16u8, 2] {
        let mut t =
            TextTable::new(["rotation", "GB/s", "% of device", "paper %", "max lateral util"]);
        for r in rows.iter().filter(|r| r.burst == burst) {
            let paper_pct = paper::FIG4_PCT
                .iter()
                .find(|(rot, _)| *rot == r.rotation)
                .map(|(_, p)| format!("{p:.1}%"))
                .unwrap_or_else(|| "—".into());
            t.row([
                r.rotation.to_string(),
                gbps(r.total_gbps),
                pct(r.pct),
                paper_pct,
                format!("{:.2}", r.max_lateral_util),
            ]);
        }
        out.push_str(&format!("[BL {burst}]\n{}\n", t.render()));
        if burst == 16 {
            let bars: Vec<(String, f64)> = rows
                .iter()
                .filter(|r| r.burst == 16)
                .map(|r| (format!("rot {}", r.rotation), r.total_gbps))
                .collect();
            out.push_str(&bar_chart(&bars, 40));
            out.push('\n');
        }
    }
    out
}

/// Fig. 4b: per-boundary lateral-bus utilisation for one rotation — the
/// paper's contended-bus illustration, from measured link counters.
pub fn render_fig4b(fid: Fidelity, rotation: usize) -> String {
    use hbm_core::prelude::*;
    let wl = Workload { rotation, ..Workload::scs() };
    let m = hbm_core::measure(&SystemConfig::xilinx(), wl, fid.warmup, fid.cycles);
    let mut t = TextTable::new(["boundary", "→ bus0 beats/cyc", "→ bus1", "← bus0", "← bus1"]);
    for (b, (r, l)) in m.fabric.lateral_right.iter().zip(m.fabric.lateral_left.iter()).enumerate() {
        let per = |beats: u64| format!("{:.2}", beats as f64 / m.cycles as f64);
        t.row([
            format!("sw{b}|sw{}", b + 1),
            per(r[0].beats),
            per(r[1].beats),
            per(l[0].beats),
            per(l[1].beats),
        ]);
    }
    format!(
        "Fig. 4b — lateral-bus utilisation at rotation {rotation} (beats per cycle;
         a bus saturates at 1.0)

{}",
        t.render()
    )
}

/// Table II: latency comparison.
pub fn render_table2(fid: Fidelity) -> String {
    let rows = experiment::table2_latency(fid);
    let mut t = TextTable::new([
        "traffic",
        "fabric",
        "pattern",
        "read (cyc)",
        "rd p50/p99",
        "write (cyc)",
        "wr p50/p99",
        "paper read",
        "paper write",
    ]);
    for r in &rows {
        let p = paper::TABLE2.iter().find(|(tr, f, pa, ..)| {
            *tr == r.traffic && *f == r.fabric && *pa == pattern_name(r.pattern)
        });
        let (pr, pw) = match p {
            Some(&(.., rm, rs, wm, ws)) => (mean_std(rm, rs), mean_std(wm, ws)),
            None => ("—".into(), "—".into()),
        };
        t.row([
            r.traffic.to_string(),
            r.fabric.to_string(),
            pattern_name(r.pattern).to_string(),
            mean_std(r.rd_mean, r.rd_std),
            format!("{}/{}", r.rd_p50, r.rd_p99),
            mean_std(r.wr_mean, r.wr_std),
            format!("{}/{}", r.wr_p50, r.wr_p99),
            pr,
            pw,
        ]);
    }
    format!(
        "Table II — HBM latency comparison (mean ± σ and p50/p99, cycles @300 MHz;\n\
         percentiles resolve to power-of-two bucket edges)\n\n{}",
        t.render()
    )
}

/// Table III: MAO implementation results (analytical model).
pub fn render_table3() -> String {
    let rows = MaoResources::table3();
    let dev = hbm_mao::XCVU37P;
    let mut t = TextTable::new(["config", "fmax", "lat RD/WR", "LUTs", "FFs", "BRAM"]);
    for (name, e) in &rows {
        t.row([
            name.clone(),
            format!("{} MHz", e.fmax_mhz),
            format!("{}/{}", e.lat_rd, e.lat_wr),
            format!("{} ({:.2}%)", e.luts, e.lut_pct(dev)),
            format!("{} ({:.2}%)", e.ffs, e.ff_pct(dev)),
            format!("{} ({:.2}%)", e.bram, e.bram_pct(dev)),
        ]);
    }
    let mut p = TextTable::new(["config", "fmax", "lat RD/WR", "LUTs", "FFs", "BRAM"]);
    for &(name, f, lr, lw, l, ff, b) in &paper::TABLE3 {
        p.row([
            name.to_string(),
            format!("{f} MHz"),
            format!("{lr}/{lw}"),
            l.to_string(),
            ff.to_string(),
            b.to_string(),
        ]);
    }
    format!(
        "Table III — MAO implementation results (analytical area model,\n\
         calibrated to the paper's synthesis results)\n\n{}\nPaper reference:\n{}",
        t.render(),
        p.render()
    )
}

/// Table IV: throughput comparison.
pub fn render_table4(fid: Fidelity) -> String {
    let rows = experiment::table4_throughput(fid);
    let mut t = TextTable::new([
        "pattern",
        "dir",
        "XLNX GB/s",
        "MAO GB/s",
        "speedup",
        "paper XLNX",
        "paper MAO",
        "paper SU",
    ]);
    for r in &rows {
        let p = paper::TABLE4
            .iter()
            .find(|(pa, d, ..)| *pa == pattern_name(r.pattern) && *d == r.direction);
        let (px, pm, psu) = match p {
            Some(&(.., x, m)) => (gbps(x), gbps(m), speedup(m / x)),
            None => ("—".into(), "—".into(), "—".into()),
        };
        t.row([
            pattern_name(r.pattern).to_string(),
            r.direction.to_string(),
            gbps(r.xlnx_gbps),
            gbps(r.mao_gbps),
            speedup(r.speedup()),
            px,
            pm,
            psu,
        ]);
    }
    format!("Table IV — HBM throughput comparison, XLNX vs. MAO (BL 16)\n\n{}", t.render())
}

/// Fig. 5: stride sweep.
pub fn render_fig5(fid: Fidelity) -> String {
    let rows = experiment::fig5_stride(fid);
    let mut t = TextTable::new(["stride", "GB/s"]);
    for r in &rows {
        let s = if r.stride >= 1 << 20 {
            format!("{} MiB", r.stride >> 20)
        } else if r.stride >= 1 << 10 {
            format!("{} KiB", r.stride >> 10)
        } else {
            format!("{} B", r.stride)
        };
        t.row([s, gbps(r.total_gbps)]);
    }
    let bars: Vec<(String, f64)> = rows
        .iter()
        .map(|r| {
            let s = if r.stride >= 1 << 20 {
                format!("{} MiB", r.stride >> 20)
            } else if r.stride >= 1 << 10 {
                format!("{} KiB", r.stride >> 10)
            } else {
                format!("{} B", r.stride)
            };
            (s, r.total_gbps)
        })
        .collect();
    format!(
        "Fig. 5 — stride length vs. throughput with MAO\n\
         (paper: overlap region low, plateau up to page-miss domination)\n\n{}\n{}",
        t.render(),
        bar_chart(&bars, 40)
    )
}

/// Fig. 6: reorder-depth sweep.
pub fn render_fig6(fid: Fidelity) -> String {
    let rows = experiment::fig6_reorder(fid);
    let mut t = TextTable::new(["reorder depth", "GB/s"]);
    for r in &rows {
        t.row([r.depth.to_string(), gbps(r.total_gbps)]);
    }
    let bars: Vec<(String, f64)> =
        rows.iter().map(|r| (format!("depth {}", r.depth), r.total_gbps)).collect();
    format!(
        "Fig. 6 — CCRA throughput vs. reorder depth (independent AXI IDs) with MAO\n\
         (paper: rises steeply, saturating towards 32 IDs)\n\n{}\n{}",
        t.render(),
        bar_chart(&bars, 40)
    )
}

/// Fig. 7 + Table V.
pub fn render_fig7_table5(fid: Fidelity) -> String {
    let r = fig7_report(fid);
    let mut out = format!(
        "Fig. 7 / Table V — Roofline evaluation of the matrix-multiplication accelerators\n\n\
         Measured pattern bandwidths (paper: A {:.2}/{:.2}, B {:.2}/{:.2} GB/s):\n\
         A: XLNX {:.2}  MAO {:.2} GB/s\n\
         B: XLNX {:.2}  MAO {:.2} GB/s\n\n",
        paper::ACCEL_BW.0,
        paper::ACCEL_BW.1,
        paper::ACCEL_BW.2,
        paper::ACCEL_BW.3,
        r.bw.a_xlnx,
        r.bw.a_mao,
        r.bw.b_xlnx,
        r.bw.b_mao,
    );
    for (name, points, t5, psu) in [
        ("Accelerator A (Fig. 7a)", &r.a_points, &r.table5_a, &paper::TABLE5_A_SU),
        ("Accelerator B (Fig. 7b)", &r.b_points, &r.table5_b, &paper::TABLE5_B_SU),
    ] {
        let mut t = TextTable::new([
            "P",
            "OpI",
            "Ccomp GOPS",
            "GOPS (XLNX)",
            "GOPS (MAO)",
            "bound (XLNX)",
            "bound (MAO)",
            "SU HBM",
            "SU HBM+MAO",
            "paper SU",
            "util core+MAO",
            "fits?",
        ]);
        for ((pt, row), &(_, psu_hbm, psu_mao)) in points.iter().zip(t5.iter()).zip(psu.iter()) {
            t.row([
                pt.p.to_string(),
                format!("{:.0}", pt.op_i),
                format!("{:.0}", row.c_comp),
                format!("{:.0}", pt.gops_xlnx),
                format!("{:.0}", pt.gops_mao),
                if pt.mem_bound_xlnx { "memory" } else { "compute" }.to_string(),
                if pt.mem_bound_mao { "memory" } else { "compute" }.to_string(),
                speedup(row.su_hbm),
                speedup(row.su_hbm_mao),
                format!("{psu_hbm:.1}× / {psu_mao:.1}×"),
                pct(row.util_core_mao),
                if DeviceResources::fits(row.util_core_mao) { "yes" } else { "NO" }.to_string(),
            ]);
        }
        out.push_str(&format!("[{name}]\n{}\n", t.render()));
    }
    out
}

/// §IV-A latency probes.
pub fn render_latency_probe() -> String {
    let p = experiment::latency_probe();
    let (rl, rf, wl, wf) = paper::LATENCY_PROBE;
    let mut t = TextTable::new(["probe", "measured (cyc)", "paper (cyc)"]);
    t.row(["read, local PCH".to_string(), format!("{:.1}", p.read_local), format!("{rl:.0}")]);
    t.row(["read, farthest PCH".to_string(), format!("{:.1}", p.read_far), format!("{rf:.0}")]);
    t.row(["write, local PCH".to_string(), format!("{:.1}", p.write_local), format!("{wl:.0}")]);
    t.row(["write, farthest PCH".to_string(), format!("{:.1}", p.write_far), format!("{wf:.0}")]);
    format!("§IV-A — closed-page latency probes (single transaction)\n\n{}", t.render())
}

/// Heterogeneous interference (the cooperating-cores scenario of §I).
pub fn render_mixed(fid: Fidelity) -> String {
    let rows = experiment::mixed_interference(fid);
    let mut t = TextTable::new(["fabric", "16 streaming GB/s", "16 random GB/s", "total GB/s"]);
    for r in &rows {
        t.row([r.fabric.to_string(), gbps(r.stream_gbps), gbps(r.random_gbps), gbps(r.total_gbps)]);
    }
    format!(
        "Mixed interference — half the masters stream (CCS), half scatter (CCRA)

{}",
        t.render()
    )
}

/// Ablations from DESIGN.md §5.
pub fn render_ablations(fid: Fidelity) -> String {
    let mut out = String::from("Ablations (DESIGN.md §5)\n\n");
    for (name, rows) in [
        ("MAO interleave granularity (CCS)", experiment::ablate_interleave(fid)),
        ("Interleave scheme under 16 KiB stride", experiment::ablate_interleave_scheme(fid)),
        ("MAO hierarchical stages (CCS)", experiment::ablate_stages(fid)),
        ("MC scheduling window (CCRA)", experiment::ablate_mc_window(fid)),
        ("Page policy (CCS)", experiment::ablate_page_policy(fid)),
        ("MAO feature decomposition", experiment::ablate_mao_features(fid)),
        ("AXI4 long bursts (what-if)", experiment::ablate_axi4(fid)),
        ("HBM stack scaling (future work)", experiment::ablate_stacks(fid)),
        ("DRAM address mapping (SCS reads)", experiment::ablate_addr_map(fid)),
        ("Lateral routing (SCS rotation)", experiment::ablate_lateral(fid)),
    ] {
        let mut t = TextTable::new(["setting", "GB/s"]);
        for r in &rows {
            t.row([r.setting.clone(), gbps(r.total_gbps)]);
        }
        out.push_str(&format!("[{name}]\n{}\n", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FID: Fidelity = Fidelity::cycle(500, 1_500);

    #[test]
    fn table3_renders_with_paper_reference() {
        let s = render_table3();
        assert!(s.contains("285327"));
        assert!(s.contains("Partial"));
    }

    #[test]
    fn latency_probe_renders() {
        let s = render_latency_probe();
        assert!(s.contains("farthest"));
        assert!(s.contains("48"));
    }

    #[test]
    fn fig2_renders_all_ratios() {
        let s = render_fig2(FID);
        assert!(s.contains("2:1"));
        assert!(s.contains("0:1"));
    }
}
