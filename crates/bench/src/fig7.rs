//! Fig. 7 / Table V: measure the accelerators' access-pattern bandwidths
//! on the simulator, then build their Rooflines.

use hbm_core::experiment::Fidelity;
use hbm_core::prelude::*;
use hbm_roofline::accelerator::{table5, AcceleratorA, AcceleratorB, AcceleratorModel, Table5Row};
use hbm_roofline::Roofline;
use serde::{Deserialize, Serialize};

/// Measured bandwidths for the two accelerators' access patterns, with
/// and without the MAO.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccelBandwidths {
    /// Accelerator A's pattern (CCS 2:1) on the stock fabric.
    pub a_xlnx: f64,
    /// Accelerator A's pattern through the MAO.
    pub a_mao: f64,
    /// Accelerator B's pattern (read-dominated CCS) on the stock fabric.
    pub b_xlnx: f64,
    /// Accelerator B's pattern through the MAO.
    pub b_mao: f64,
}

/// Accelerator A's memory access pattern: contiguous matrices streamed
/// with the 2:1 read/write ratio at burst length 16.
fn workload_a() -> Workload {
    Workload::ccs()
}

/// Accelerator B's pattern: one matrix re-streamed, only final results
/// written back — RW_rat = Mh : 1 with Mh ≫ 2 (15:1 here).
fn workload_b() -> Workload {
    Workload { rw: RwRatio { reads: 15, writes: 1 }, ..Workload::ccs() }
}

/// Measures the four bandwidths (the simulated counterpart of the
/// paper's 12.55 / 403.75 / 9.59 / 273 GB/s).
pub fn accel_bandwidths(fid: Fidelity) -> AccelBandwidths {
    // The four measurements are independent simulations — farm them out
    // like any other sweep.
    let points = [
        (SystemConfig::xilinx(), workload_a()),
        (SystemConfig::mao(), workload_a()),
        (SystemConfig::xilinx(), workload_b()),
        (SystemConfig::mao(), workload_b()),
    ];
    let gbps = hbm_core::batch::par_map(&points, hbm_core::batch::sweep_jobs(), |(cfg, wl)| {
        measure(cfg, *wl, fid.warmup, fid.cycles).total_gbps()
    });
    AccelBandwidths { a_xlnx: gbps[0], a_mao: gbps[1], b_xlnx: gbps[2], b_mao: gbps[3] }
}

/// One accelerator's Fig. 7 summary at a parallelisation degree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Point {
    /// Parallelisation degree.
    pub p: usize,
    /// Operational intensity.
    pub op_i: f64,
    /// Attainable GOPS on the stock fabric.
    pub gops_xlnx: f64,
    /// Attainable GOPS through the MAO.
    pub gops_mao: f64,
    /// Memory bound on the stock fabric?
    pub mem_bound_xlnx: bool,
    /// Memory bound through the MAO?
    pub mem_bound_mao: bool,
}

/// Builds the Fig. 7 point set for one accelerator family.
pub fn fig7_points<M: AcceleratorModel, F: Fn(usize) -> M>(
    make: F,
    bw_xlnx: f64,
    bw_mao: f64,
) -> Vec<Fig7Point> {
    [4usize, 8, 16, 32]
        .iter()
        .map(|&p| {
            let m = make(p);
            let rx = Roofline::new(m.comp_gops(), bw_xlnx);
            let ro = Roofline::new(m.comp_gops(), bw_mao);
            Fig7Point {
                p,
                op_i: m.op_intensity(),
                gops_xlnx: rx.attainable(m.op_intensity()),
                gops_mao: ro.attainable(m.op_intensity()),
                mem_bound_xlnx: rx.memory_bound(m.op_intensity()),
                mem_bound_mao: ro.memory_bound(m.op_intensity()),
            }
        })
        .collect()
}

/// Everything needed to print Fig. 7a/7b and Table V.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Report {
    /// Measured bandwidths.
    pub bw: AccelBandwidths,
    /// Fig. 7a points (Accelerator A).
    pub a_points: Vec<Fig7Point>,
    /// Fig. 7b points (Accelerator B).
    pub b_points: Vec<Fig7Point>,
    /// Table V rows for A, from the measured bandwidths.
    pub table5_a: Vec<Table5Row>,
    /// Table V rows for B.
    pub table5_b: Vec<Table5Row>,
}

/// Runs the Fig. 7 / Table V reproduction.
pub fn fig7_report(fid: Fidelity) -> Fig7Report {
    let bw = accel_bandwidths(fid);
    Fig7Report {
        a_points: fig7_points(|p| AcceleratorA { p }, bw.a_xlnx, bw.a_mao),
        b_points: fig7_points(|p| AcceleratorB { p }, bw.b_xlnx, bw.b_mao),
        table5_a: table5(|p| AcceleratorA { p }, bw.a_xlnx, bw.a_mao),
        table5_b: table5(|p| AcceleratorB { p }, bw.b_xlnx, bw.b_mao),
        bw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_bandwidths_match_paper_shape() {
        let bw = accel_bandwidths(Fidelity::QUICK);
        // Paper: 12.55 / 403.75 / 9.59 / 273.
        assert!(bw.a_xlnx < 30.0, "A unoptimised collapses: {}", bw.a_xlnx);
        assert!(bw.a_mao > 300.0, "A with MAO: {}", bw.a_mao);
        assert!(bw.b_xlnx < 20.0, "B unoptimised: {}", bw.b_xlnx);
        assert!(bw.b_mao > 200.0, "B with MAO: {}", bw.b_mao);
        // B's read-heavy pattern gains less than A's 2:1 pattern.
        assert!(bw.b_mao < bw.a_mao);
    }

    #[test]
    fn fig7_bound_classification_matches_paper() {
        let r = fig7_report(Fidelity::QUICK);
        // Paper: without MAO, every configuration of both accelerators
        // is memory bound.
        assert!(r.a_points.iter().all(|p| p.mem_bound_xlnx));
        assert!(r.b_points.iter().all(|p| p.mem_bound_xlnx));
        // With MAO, A becomes compute bound for P < 32...
        assert!(r.a_points.iter().filter(|p| p.p < 32).all(|p| !p.mem_bound_mao));
        // ...and every B configuration becomes compute bound (P = 32
        // within a hair of the ceiling).
        assert!(r.b_points.iter().filter(|p| p.p < 32).all(|p| !p.mem_bound_mao));
    }
}
