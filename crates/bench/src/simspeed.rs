//! Sim-speed regression harness: simulated cycles per wall-clock second
//! for each fabric × traffic scenario.
//!
//! The `repro simspeed` subcommand runs these scenarios and writes the
//! results to `BENCH_simspeed.json` so successive commits can be compared
//! on the same machine. The scenarios deliberately cover both ends of the
//! kernel's duty cycle:
//!
//! * `saturated_*` — every generator busy every cycle; measures the raw
//!   per-step cost (arbitration, queues, DRAM model). Event-horizon
//!   skipping never fires here by construction.
//! * `latency_probe` — one outstanding single-beat transaction per
//!   master; the simulator is idle most cycles and the run is dominated
//!   by gaps the next-event fast-forward can skip.
//! * `drain_tail` — a bounded burst followed by `run_until_drained`,
//!   exercising the tail where traffic thins out.
//! * `idle` — a fully quiescent system; measures the cost of simulated
//!   time in which nothing happens at all.

use std::time::Instant;

use hbm_axi::BurstLen;
use hbm_core::probe::ProbeConfig;
use hbm_core::{HbmSystem, SystemConfig};
use hbm_traffic::{RwRatio, Workload};
use serde::Serialize;

/// Record capacity for the traced runs — small enough that a saturated
/// run cycles the side-table rather than growing without bound, which is
/// also the realistic steady-state cost.
const TRACE_CAP: usize = 1 << 14;

/// Probe cadence for the traced runs (the default reporting cadence).
const TRACE_PROBE: ProbeConfig = ProbeConfig { interval: 1024, capacity: 1 << 10 };

/// One measured (fabric, scenario) cell.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedRow {
    /// Fabric name (`xilinx`, `mao`, `direct`).
    pub fabric: &'static str,
    /// Scenario name (see module docs).
    pub scenario: &'static str,
    /// Simulated cycles covered by one run.
    pub sim_cycles: u64,
    /// Best-of-N wall time for one run, in seconds.
    pub wall_s: f64,
    /// Simulated cycles per wall-clock second (`sim_cycles / wall_s`).
    pub cycles_per_sec: f64,
    /// Best-of-N wall time with lifecycle tracing + windowed probe on.
    pub traced_wall_s: f64,
    /// Cycles per wall-second with instrumentation on.
    pub traced_cycles_per_sec: f64,
    /// Instrumentation overhead: `traced_wall_s / wall_s − 1`, in
    /// percent. Target < 15 % when on; exactly 0 cost when off (the
    /// off path is the plain run — no tracer means no stamp sites
    /// execute).
    pub overhead_pct: f64,
}

/// Single-outstanding, single-beat probe traffic: the latency-measurement
/// configuration of the paper's Table II, and the worst case for a naive
/// cycle-by-cycle kernel.
pub fn probe_workload() -> Workload {
    Workload {
        outstanding: 1,
        num_ids: 1,
        burst: BurstLen::of(1),
        stride: 32,
        rw: RwRatio::READ_ONLY,
        ..Workload::scs()
    }
}

fn wall_best_of<F: FnMut() -> u64>(repeats: usize, mut f: F) -> (u64, f64) {
    let mut cycles = f(); // warmup (and fixes the cycle count)
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        cycles = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (cycles, best)
}

/// Turns on the full instrumentation stack (lifecycle tracer + windowed
/// probe) for the traced variant of a scenario.
fn instrument(sys: &mut HbmSystem) {
    sys.enable_tracing(TRACE_CAP);
    sys.attach_probe(TRACE_PROBE);
}

/// Measures one scenario twice — plain and instrumented — and folds both
/// into a row. `build(traced)` constructs, runs, and returns `now()`.
fn measure_pair<F: FnMut(bool) -> u64>(
    fabric: &'static str,
    scenario: &'static str,
    repeats: usize,
    mut build: F,
) -> SpeedRow {
    let (sim_cycles, wall_s) = wall_best_of(repeats, || build(false));
    let (_, traced_wall_s) = wall_best_of(repeats, || build(true));
    row(fabric, scenario, sim_cycles, wall_s, traced_wall_s)
}

/// Runs the full scenario matrix. `quick` shortens every run ~8× for CI.
pub fn run_matrix(quick: bool) -> Vec<SpeedRow> {
    let scale = if quick { 8 } else { 1 };
    let saturated_cycles = 40_000 / scale;
    let probe_txns = 512 / scale;
    let drain_txns = 2_048 / scale;
    let idle_cycles = 4_000_000 / scale;
    let repeats = if quick { 1 } else { 3 };

    let fabrics: [(&'static str, SystemConfig); 3] = [
        ("xilinx", SystemConfig::xilinx()),
        ("mao", SystemConfig::mao()),
        ("direct", SystemConfig::direct()),
    ];

    let mut rows = Vec::new();
    for (fname, cfg) in &fabrics {
        for (sname, wl) in
            [("saturated_scs", Workload::scs()), ("saturated_ccra", Workload::ccra())]
        {
            if *fname == "direct" && sname == "saturated_ccra" {
                continue; // the direct fabric has no cross-channel path
            }
            rows.push(measure_pair(fname, sname, repeats, |traced| {
                let mut sys = HbmSystem::new(cfg, wl, None);
                if traced {
                    instrument(&mut sys);
                }
                sys.run(saturated_cycles);
                sys.now()
            }));
        }

        rows.push(measure_pair(fname, "latency_probe", repeats, |traced| {
            let mut sys = HbmSystem::new(cfg, probe_workload(), Some(probe_txns));
            if traced {
                instrument(&mut sys);
            }
            assert!(sys.run_until_drained(100_000_000), "probe did not drain");
            sys.now()
        }));

        rows.push(measure_pair(fname, "drain_tail", repeats, |traced| {
            let mut sys = HbmSystem::new(cfg, Workload::scs(), Some(drain_txns));
            if traced {
                instrument(&mut sys);
            }
            assert!(sys.run_until_drained(100_000_000), "burst did not drain");
            sys.now()
        }));

        rows.push(measure_pair(fname, "idle", repeats, |traced| {
            let mut sys = HbmSystem::new(cfg, Workload::scs(), Some(0));
            if traced {
                instrument(&mut sys);
            }
            sys.run(idle_cycles);
            sys.now()
        }));
    }
    rows
}

fn row(
    fabric: &'static str,
    scenario: &'static str,
    sim_cycles: u64,
    wall_s: f64,
    traced_wall_s: f64,
) -> SpeedRow {
    SpeedRow {
        fabric,
        scenario,
        sim_cycles,
        wall_s,
        cycles_per_sec: sim_cycles as f64 / wall_s.max(1e-12),
        traced_wall_s,
        traced_cycles_per_sec: sim_cycles as f64 / traced_wall_s.max(1e-12),
        overhead_pct: 100.0 * (traced_wall_s / wall_s.max(1e-12) - 1.0),
    }
}

/// Renders the matrix as an aligned text table.
pub fn render(rows: &[SpeedRow]) -> String {
    let mut out = String::from(
        "Simulator speed (simulated cycles per wall-second; higher is better)\n\
         traced = lifecycle tracer + 1024-cycle probe on; overhead target < 15 %\n\
         on busy scenarios (`idle` is probe-bound: sampling every window\n\
         necessarily defeats the event-horizon fast-forward)\n\
         fabric   scenario         sim_cycles      wall_s    Mcycles/s  traced Mc/s  overhead\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<16} {:>10} {:>11.6} {:>12.3} {:>12.3} {:>+8.1}%\n",
            r.fabric,
            r.scenario,
            r.sim_cycles,
            r.wall_s,
            r.cycles_per_sec / 1e6,
            r.traced_cycles_per_sec / 1e6,
            r.overhead_pct,
        ));
    }
    out
}
