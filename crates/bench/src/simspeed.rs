//! Sim-speed regression harness: simulated cycles per wall-clock second
//! for each fabric × traffic scenario.
//!
//! The `repro simspeed` subcommand runs these scenarios and writes the
//! results to `BENCH_simspeed.json` so successive commits can be compared
//! on the same machine. The scenarios deliberately cover both ends of the
//! kernel's duty cycle:
//!
//! * `saturated_*` — every generator busy every cycle; measures the raw
//!   per-step cost (arbitration, queues, DRAM model). Event-horizon
//!   skipping never fires here by construction.
//! * `latency_probe` — one outstanding single-beat transaction per
//!   master; the simulator is idle most cycles and the run is dominated
//!   by gaps the next-event fast-forward can skip.
//! * `drain_tail` — a bounded burst followed by `run_until_drained`,
//!   exercising the tail where traffic thins out.
//! * `idle` — a fully quiescent system; measures the cost of simulated
//!   time in which nothing happens at all.

use std::time::Instant;

use hbm_axi::BurstLen;
use hbm_core::probe::ProbeConfig;
use hbm_core::{HbmSystem, RunPolicy, SystemConfig};
use hbm_traffic::{RwRatio, Workload};
use serde::Serialize;

/// Record capacity for the traced runs — small enough that a saturated
/// run cycles the side-table rather than growing without bound, which is
/// also the realistic steady-state cost.
const TRACE_CAP: usize = 1 << 14;

/// Probe cadence for the traced runs (the default reporting cadence).
const TRACE_PROBE: ProbeConfig = ProbeConfig { interval: 1024, capacity: 1 << 10 };

/// One measured (fabric, scenario) cell.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedRow {
    /// Fabric name (`xilinx`, `mao`, `direct`).
    pub fabric: &'static str,
    /// Scenario name (see module docs).
    pub scenario: &'static str,
    /// Simulated cycles covered by one run.
    pub sim_cycles: u64,
    /// Best-of-N wall time for one run, in seconds.
    pub wall_s: f64,
    /// Simulated cycles per wall-clock second (`sim_cycles / wall_s`).
    pub cycles_per_sec: f64,
    /// Best-of-N wall time with lifecycle tracing + windowed probe on.
    pub traced_wall_s: f64,
    /// Cycles per wall-second with instrumentation on.
    pub traced_cycles_per_sec: f64,
    /// Instrumentation overhead: `traced_wall_s / wall_s − 1`, in
    /// percent. Target < 15 % when on; exactly 0 cost when off (the
    /// off path is the plain run — no tracer means no stamp sites
    /// execute).
    pub overhead_pct: f64,
}

/// Single-outstanding, single-beat probe traffic: the latency-measurement
/// configuration of the paper's Table II, and the worst case for a naive
/// cycle-by-cycle kernel.
pub fn probe_workload() -> Workload {
    Workload {
        outstanding: 1,
        num_ids: 1,
        burst: BurstLen::of(1),
        stride: 32,
        rw: RwRatio::READ_ONLY,
        ..Workload::scs()
    }
}

fn wall_best_of<F: FnMut() -> u64>(repeats: usize, mut f: F) -> (u64, f64) {
    let mut cycles = f(); // warmup (and fixes the cycle count)
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        cycles = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (cycles, best)
}

/// Turns on the full instrumentation stack (lifecycle tracer + windowed
/// probe) for the traced variant of a scenario.
fn instrument(sys: &mut HbmSystem) {
    sys.enable_tracing(TRACE_CAP);
    sys.attach_probe(TRACE_PROBE);
}

/// Measures one scenario twice — plain and instrumented — and folds both
/// into a row. `build(traced)` constructs, runs, and returns `now()`.
fn measure_pair<F: FnMut(bool) -> u64>(
    fabric: &'static str,
    scenario: &'static str,
    repeats: usize,
    mut build: F,
) -> SpeedRow {
    let (sim_cycles, wall_s) = wall_best_of(repeats, || build(false));
    let (_, traced_wall_s) = wall_best_of(repeats, || build(true));
    row(fabric, scenario, sim_cycles, wall_s, traced_wall_s)
}

/// Runs the full scenario matrix. `quick` shortens every run ~8× for CI.
pub fn run_matrix(quick: bool) -> Vec<SpeedRow> {
    let scale = if quick { 8 } else { 1 };
    let saturated_cycles = 40_000 / scale;
    let probe_txns = 512 / scale;
    let drain_txns = 2_048 / scale;
    let idle_cycles = 4_000_000 / scale;
    let repeats = if quick { 1 } else { 3 };

    let fabrics: [(&'static str, SystemConfig); 3] = [
        ("xilinx", SystemConfig::xilinx()),
        ("mao", SystemConfig::mao()),
        ("direct", SystemConfig::direct()),
    ];

    let mut rows = Vec::new();
    for (fname, cfg) in &fabrics {
        for (sname, wl) in
            [("saturated_scs", Workload::scs()), ("saturated_ccra", Workload::ccra())]
        {
            if *fname == "direct" && sname == "saturated_ccra" {
                continue; // the direct fabric has no cross-channel path
            }
            rows.push(measure_pair(fname, sname, repeats, |traced| {
                let mut sys = HbmSystem::new(cfg, wl, None);
                if traced {
                    instrument(&mut sys);
                }
                sys.run(saturated_cycles);
                sys.now()
            }));
        }

        rows.push(measure_pair(fname, "latency_probe", repeats, |traced| {
            let mut sys = HbmSystem::new(cfg, probe_workload(), Some(probe_txns));
            if traced {
                instrument(&mut sys);
            }
            assert!(sys.run_until_drained(100_000_000), "probe did not drain");
            sys.now()
        }));

        rows.push(measure_pair(fname, "drain_tail", repeats, |traced| {
            let mut sys = HbmSystem::new(cfg, Workload::scs(), Some(drain_txns));
            if traced {
                instrument(&mut sys);
            }
            assert!(sys.run_until_drained(100_000_000), "burst did not drain");
            sys.now()
        }));

        rows.push(measure_pair(fname, "idle", repeats, |traced| {
            let mut sys = HbmSystem::new(cfg, Workload::scs(), Some(0));
            if traced {
                instrument(&mut sys);
            }
            sys.run(idle_cycles);
            sys.now()
        }));
    }
    rows
}

fn row(
    fabric: &'static str,
    scenario: &'static str,
    sim_cycles: u64,
    wall_s: f64,
    traced_wall_s: f64,
) -> SpeedRow {
    SpeedRow {
        fabric,
        scenario,
        sim_cycles,
        wall_s,
        cycles_per_sec: sim_cycles as f64 / wall_s.max(1e-12),
        traced_wall_s,
        traced_cycles_per_sec: sim_cycles as f64 / traced_wall_s.max(1e-12),
        overhead_pct: 100.0 * (traced_wall_s / wall_s.max(1e-12) - 1.0),
    }
}

/// One measured sweep-farming cell: the same multi-point measurement
/// grid run with a given worker-thread count.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Grid points in the sweep.
    pub points: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall time for the whole grid, in seconds.
    pub wall_s: f64,
    /// Wall-clock speedup over the single-worker run of the same grid.
    pub speedup: f64,
}

/// Times a multi-point sweep — the Fig. 4 rotation grid — farmed over
/// 1, 2, and 4 worker threads with `hbm_core::batch::run_grid`. Every
/// point is an independent deterministic simulation, so on a multi-core
/// host the speedup approaches `min(jobs, cores, points)`; on a
/// single-core host it stays ≈ 1 (thread scheduling cannot create
/// cores). The recorded numbers are whatever the current host delivers.
pub fn run_sweep_matrix(quick: bool) -> Vec<SweepRow> {
    let (warmup, cycles) = if quick { (500, 1_500) } else { (2_000, 8_000) };
    let points: Vec<(SystemConfig, Workload)> = [0usize, 1, 2, 3, 4, 6, 8]
        .iter()
        .map(|&rotation| (SystemConfig::xilinx(), Workload { rotation, ..Workload::scs() }))
        .collect();
    let mut base = f64::NAN;
    [1usize, 2, 4]
        .iter()
        .map(|&jobs| {
            let t0 = Instant::now();
            let out = hbm_core::batch::run_grid(&points, warmup, cycles, jobs);
            let wall_s = t0.elapsed().as_secs_f64();
            assert_eq!(out.len(), points.len());
            if jobs == 1 {
                base = wall_s;
            }
            SweepRow { points: points.len(), jobs, wall_s, speedup: base / wall_s.max(1e-12) }
        })
        .collect()
}

/// One measured parallel-conductor cell: a single simulation advanced
/// under `RunPolicy::Parallel { jobs }` vs the sequential reference.
#[derive(Debug, Clone, Serialize)]
pub struct ConductorRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Worker threads (1 = the sequential reference path).
    pub jobs: usize,
    /// Simulated cycles covered by one run.
    pub sim_cycles: u64,
    /// Best-of-N wall time for one run, in seconds.
    pub wall_s: f64,
    /// Wall-clock speedup over the sequential run of the same scenario.
    pub speedup: f64,
}

/// Times a single saturated Xilinx simulation under the sharded
/// conductor at 1/2/4 worker threads. `scs_port_affine` never touches a
/// lateral bus, so the conductor sprints full-span windows — the
/// best case for in-run threading. `rotation4_lateral` saturates the
/// lateral boundaries, forcing a barrier every `sync_lag` cycles — the
/// worst case, expected at or below 1× (the result is still
/// bit-identical; the threading merely doesn't pay there).
pub fn run_conductor_matrix(quick: bool) -> Vec<ConductorRow> {
    let cycles = if quick { 5_000 } else { 40_000 };
    let repeats = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    for (scenario, wl) in [
        ("scs_port_affine", Workload::scs()),
        ("rotation4_lateral", Workload { rotation: 4, ..Workload::scs() }),
    ] {
        let mut base = f64::NAN;
        for jobs in [1usize, 2, 4] {
            let (sim_cycles, wall_s) = wall_best_of(repeats, || {
                let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, None);
                if jobs > 1 {
                    sys.set_run_policy(RunPolicy::Parallel { jobs });
                }
                sys.run(cycles);
                sys.now()
            });
            if jobs == 1 {
                base = wall_s;
            }
            rows.push(ConductorRow {
                scenario,
                jobs,
                sim_cycles,
                wall_s,
                speedup: base / wall_s.max(1e-12),
            });
        }
    }
    rows
}

/// The serving-layer overhead measurement: the same fig4 grid timed
/// through the direct `run_grid` path and through a full serve round
/// trip (submit over loopback TCP, stream the rows back, reassemble by
/// index).
#[derive(Debug, Clone, Serialize)]
pub struct ServeOverheadRow {
    /// Grid points in the job (the Fig. 4 rotation grid).
    pub points: usize,
    /// Worker threads on both paths.
    pub jobs: usize,
    /// Wall time of the direct `hbm_core::batch::run_grid` call, in
    /// seconds.
    pub direct_wall_s: f64,
    /// Wall time submit → last streamed row over loopback TCP, in
    /// seconds.
    pub served_wall_s: f64,
    /// Serving overhead: `served_wall_s / direct_wall_s − 1`, in
    /// percent. The scheduler + wire cost, since both paths run the
    /// same measurements on the same worker count.
    pub serve_overhead_pct: f64,
}

/// Times the Fig. 4 grid direct vs served and verifies along the way
/// that the streamed measurements are byte-identical to the direct ones
/// (the serving layer's core guarantee — a benchmark that silently
/// measured diverging work would be meaningless).
///
/// Both paths get one untimed warm-up pass (thread-pool spin-up, first
/// TCP accept, allocator growth), and the timed passes interleave the
/// two sides in ABBA order — direct-then-served one round,
/// served-then-direct the next — with best-of-N on each side. Warm-up
/// removes the cold-process penalty from whichever side runs first;
/// the alternation cancels monotonic clock-speed drift across the
/// measurement window. Together they make the reported overhead an
/// honest scheduler + wire cost rather than an artefact of run order
/// (a negative overhead is an impossibility — both sides simulate the
/// exact same points). The result cache is pinned *off* on both sides
/// — a warm cache on either would turn the comparison into a cache
/// benchmark.
pub fn run_serve_overhead(quick: bool) -> ServeOverheadRow {
    use hbm_serve::{Client, JobSpec, ResultCache, RowStatus, ServeConfig, Server, WireServer};

    let fid = if quick {
        hbm_core::experiment::Fidelity::cycle(500, 1_500)
    } else {
        hbm_core::experiment::Fidelity::cycle(2_000, 8_000)
    };
    let grid = hbm_core::experiment::fig4_grid();
    let jobs = hbm_core::batch::sweep_jobs();
    let rounds = if quick { 2 } else { 4 };
    let no_cache = ResultCache::disabled();

    let server = Server::spawn(ServeConfig {
        workers: jobs,
        cache: Some(ResultCache::disabled()),
        ..ServeConfig::default()
    });
    let wire = WireServer::bind("127.0.0.1:0", server.handle()).expect("bind loopback");
    let mut client = Client::connect(&wire.local_addr().to_string()).expect("connect loopback");

    let run_direct =
        || hbm_core::batch::run_grid_with_cache(&grid, fid.warmup, fid.cycles, jobs, &no_cache);
    let mut round_no = 0usize;
    let mut run_served = |client: &mut Client| {
        round_no += 1;
        let job = client
            .submit(&JobSpec::new(format!("fig4-overhead-{round_no}"), fid, grid.clone()))
            .expect("submit over wire")
            .expect("grid fits an empty queue");
        let (rows, _) = client.collect(job).expect("stream rows").expect("known job");
        rows
    };

    // Untimed warm-up of both paths; the direct pass doubles as the
    // byte-identity reference.
    let direct = run_direct();
    let _ = run_served(&mut client);

    let mut direct_wall_s = f64::INFINITY;
    let mut served_wall_s = f64::INFINITY;
    let mut rows = Vec::new();
    for round in 0..rounds {
        let time_direct = |direct_wall_s: &mut f64| {
            let t0 = Instant::now();
            let d = run_direct();
            *direct_wall_s = direct_wall_s.min(t0.elapsed().as_secs_f64());
            debug_assert_eq!(d.len(), direct.len());
        };
        let mut time_served = |served_wall_s: &mut f64, rows: &mut Vec<_>| {
            let t0 = Instant::now();
            *rows = run_served(&mut client);
            *served_wall_s = served_wall_s.min(t0.elapsed().as_secs_f64());
        };
        if round % 2 == 0 {
            time_direct(&mut direct_wall_s);
            time_served(&mut served_wall_s, &mut rows);
        } else {
            time_served(&mut served_wall_s, &mut rows);
            time_direct(&mut direct_wall_s);
        }
    }
    wire.stop();
    server.shutdown();

    assert_eq!(rows.len(), direct.len());
    for (row, want) in rows.iter().zip(&direct) {
        assert_eq!(row.status, RowStatus::Done, "served point must succeed");
        let got = row.measurement.as_ref().expect("Done row carries a measurement");
        assert_eq!(
            serde_json::to_string(got).unwrap(),
            serde_json::to_string(want).unwrap(),
            "served row {} diverged from the direct path",
            row.index
        );
    }

    ServeOverheadRow {
        points: grid.len(),
        jobs,
        direct_wall_s,
        served_wall_s,
        serve_overhead_pct: 100.0 * (served_wall_s / direct_wall_s.max(1e-12) - 1.0),
    }
}

/// One measured lockstep-batching cell: the fig4 grid run through the
/// scalar path and through [`hbm_core::lockstep::BatchedSystem`] lanes
/// at one lane budget.
#[derive(Debug, Clone, Serialize)]
pub struct BatchedRow {
    /// Grid measured (the Fig. 4 rotation × burst grid).
    pub grid: &'static str,
    /// Lockstep lane budget (`HBM_BATCH` equivalent) for the batched
    /// run; the scalar reference pins the budget to 1.
    pub lanes: usize,
    /// Grid points measured.
    pub points: usize,
    /// Scalar-path throughput in sweep points per wall-second.
    pub scalar_pts_per_s: f64,
    /// Batched-path throughput in sweep points per wall-second.
    pub batched_pts_per_s: f64,
    /// `batched_pts_per_s / scalar_pts_per_s`.
    pub speedup: f64,
    /// Whether every batched row serialised byte-identical to its
    /// scalar counterpart (asserted — recorded so the JSON artefact
    /// carries the proof).
    pub byte_identical: bool,
}

/// Times the Fig. 4 grid through the scalar path (lane budget 1) and
/// through lockstep batches at lane budgets 4, 8, and 16, on a single
/// worker thread so the ratio isolates the batched kernel from thread
/// scheduling. Every batched row is asserted byte-identical to the
/// scalar reference before any number is reported. The result cache is
/// pinned off on both sides — this measures simulation, not memoisation.
pub fn run_batched_matrix(quick: bool) -> Vec<BatchedRow> {
    use hbm_core::batch::set_batch_lanes;

    let (warmup, cycles) = if quick { (500, 1_500) } else { (2_000, 8_000) };
    let repeats = if quick { 1 } else { 3 };
    let grid = hbm_core::experiment::fig4_grid();
    let no_cache = hbm_core::ResultCache::disabled();
    let run = |lanes: usize| {
        set_batch_lanes(lanes);
        let mut best = f64::INFINITY;
        let mut rows = Vec::new();
        for _ in 0..=repeats {
            // First pass is untimed warm-up (allocator growth, caches).
            let t0 = Instant::now();
            rows = hbm_core::batch::run_grid_with_cache(&grid, warmup, cycles, 1, &no_cache);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (rows, best)
    };

    let (scalar_rows, scalar_wall) = run(1);
    let scalar_pts_per_s = grid.len() as f64 / scalar_wall.max(1e-12);
    let out = [4usize, 8, 16]
        .iter()
        .map(|&lanes| {
            let (batched_rows, batched_wall) = run(lanes);
            for (i, (b, s)) in batched_rows.iter().zip(&scalar_rows).enumerate() {
                assert_eq!(
                    serde_json::to_string(b).unwrap(),
                    serde_json::to_string(s).unwrap(),
                    "batched row {i} diverged from the scalar path at {lanes} lanes"
                );
            }
            let batched_pts_per_s = grid.len() as f64 / batched_wall.max(1e-12);
            BatchedRow {
                grid: "fig4",
                lanes,
                points: grid.len(),
                scalar_pts_per_s,
                batched_pts_per_s,
                speedup: batched_pts_per_s / scalar_pts_per_s.max(1e-12),
                byte_identical: true,
            }
        })
        .collect();
    set_batch_lanes(0);
    out
}

/// Renders the lockstep-batching section as an aligned text table.
pub fn render_batched(rows: &[BatchedRow]) -> String {
    let mut out = String::from(
        "Lockstep batching (fig4 grid, one worker thread: scalar path vs\n\
         K-lane batches; batched rows proven byte-identical to scalar)\n\
         grid   lanes  points  scalar_pts/s  batched_pts/s   speedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:>5} {:>7} {:>13.2} {:>14.2} {:>8.2}x\n",
            r.grid, r.lanes, r.points, r.scalar_pts_per_s, r.batched_pts_per_s, r.speedup
        ));
    }
    out
}

/// One cold/warm pair through the result cache: the fig4 grid run twice
/// against the same (memory-tier) [`hbm_core::ResultCache`].
#[derive(Debug, Clone, Serialize)]
pub struct CacheRow {
    /// Grid points in the sweep (the Fig. 4 rotation grid).
    pub points: usize,
    /// Worker threads on both runs.
    pub jobs: usize,
    /// Wall time of the first (all-miss) run, in seconds.
    pub cold_wall_s: f64,
    /// Wall time of the second (all-hit) run, in seconds.
    pub warm_wall_s: f64,
    /// `cold_wall_s / warm_wall_s` — how much the cache buys on an
    /// exact rerun.
    pub speedup: f64,
    /// Cache hits observed on the warm run (must equal `points`).
    pub warm_hits: u64,
    /// Whether the warm rows serialised byte-identical to the cold ones
    /// (asserted — recorded here so the JSON artefact carries the
    /// proof).
    pub byte_identical: bool,
}

/// Runs the fig4 grid cold then warm through a private result cache and
/// proves the warm rows byte-identical to the cold ones. Uses a local
/// cache instance, so the benchmark neither reads nor pollutes whatever
/// `HBM_CACHE_DIR` the process was started with.
pub fn run_cache_matrix(quick: bool) -> CacheRow {
    use hbm_core::ResultCache;

    let (warmup, cycles) = if quick { (500, 1_500) } else { (2_000, 8_000) };
    let grid = hbm_core::experiment::fig4_grid();
    let jobs = hbm_core::batch::sweep_jobs();
    let cache = ResultCache::new();

    let t0 = Instant::now();
    let cold = hbm_core::batch::run_grid_with_cache(&grid, warmup, cycles, jobs, &cache);
    let cold_wall_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let warm = hbm_core::batch::run_grid_with_cache(&grid, warmup, cycles, jobs, &cache);
    let warm_wall_s = t0.elapsed().as_secs_f64();

    assert_eq!(warm.len(), cold.len());
    for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
        assert_eq!(
            serde_json::to_string(w).unwrap(),
            serde_json::to_string(c).unwrap(),
            "warm row {i} diverged from the cold run"
        );
    }
    let snap = cache.snapshot();
    assert_eq!(snap.hits, grid.len() as u64, "warm run must hit on every point");

    CacheRow {
        points: grid.len(),
        jobs,
        cold_wall_s,
        warm_wall_s,
        speedup: cold_wall_s / warm_wall_s.max(1e-12),
        warm_hits: snap.hits,
        byte_identical: true,
    }
}

/// Renders the cache cold/warm section as an aligned text table.
pub fn render_cache(row: &CacheRow) -> String {
    format!(
        "Result cache (fig4 grid, cold run vs exact warm rerun; warm rows\n\
         proven byte-identical to cold)\n\
         points  jobs      cold_s      warm_s   speedup  warm_hits\n\
         {:>6} {:>5} {:>11.6} {:>11.6} {:>8.1}x {:>10}\n",
        row.points, row.jobs, row.cold_wall_s, row.warm_wall_s, row.speedup, row.warm_hits
    )
}

/// Renders the serving-overhead section as an aligned text table.
pub fn render_serve(row: &ServeOverheadRow) -> String {
    format!(
        "Serving overhead (fig4 grid: direct run_grid vs full TCP serve round trip)\n\
         points  jobs    direct_s    served_s  overhead\n\
         {:>6} {:>5} {:>11.6} {:>11.6} {:>+8.1}%\n",
        row.points, row.jobs, row.direct_wall_s, row.served_wall_s, row.serve_overhead_pct
    )
}

/// Renders the sweep-farming section as an aligned text table.
pub fn render_sweeps(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "Sweep farming (same measurement grid, more worker threads)\n\
         points  jobs      wall_s   speedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6} {:>5} {:>11.6} {:>8.2}x\n",
            r.points, r.jobs, r.wall_s, r.speedup
        ));
    }
    out
}

/// Renders the parallel-conductor section as an aligned text table.
pub fn render_conductor(rows: &[ConductorRow]) -> String {
    let mut out = String::from(
        "Parallel conductor (one simulation, sharded across threads;\n\
         bit-identical to sequential by construction)\n\
         scenario            jobs  sim_cycles      wall_s   speedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<19} {:>4} {:>11} {:>11.6} {:>8.2}x\n",
            r.scenario, r.jobs, r.sim_cycles, r.wall_s, r.speedup
        ));
    }
    out
}

/// The analytical-tier speed matrix: one pinned 10 000-point sweep grid
/// walled at each fidelity tier (DESIGN.md §3.9). The cycle tiers are
/// measured on honest subsamples — recorded as `*_measured_points` —
/// and extrapolated linearly, because a 10 000-point FULL sweep would
/// take hours and `run_grid` cost is linear in points by construction.
#[derive(Debug, Clone, Serialize)]
pub struct AnalyticalRow {
    /// Grid points in the sweep (pinned at 10 000).
    pub points: usize,
    /// Worker threads on every run.
    pub jobs: usize,
    /// Wall time of the analytical tier over all `points`, in seconds.
    pub analytical_wall_s: f64,
    /// Points actually cycle-simulated for the QUICK estimate.
    pub quick_measured_points: usize,
    /// QUICK wall extrapolated to `points`, in seconds.
    pub quick_wall_s: f64,
    /// Points actually cycle-simulated for the FULL estimate.
    pub full_measured_points: usize,
    /// FULL wall extrapolated to `points`, in seconds.
    pub full_wall_s: f64,
    /// `quick_wall_s / analytical_wall_s` — the ≥ 100× acceptance
    /// number from ISSUE 9.
    pub speedup_vs_quick: f64,
    /// `full_wall_s / analytical_wall_s`.
    pub speedup_vs_full: f64,
    /// Points in the adaptive sub-sweep (`--adaptive` mode).
    pub adaptive_points: usize,
    /// Wall time of the adaptive sub-sweep, in seconds.
    pub adaptive_wall_s: f64,
    /// Points the adaptive sweep escalated to cycle accuracy.
    pub adaptive_escalated: usize,
    /// `adaptive_escalated / adaptive_points`.
    pub adaptive_escalation_fraction: f64,
}

/// The pinned 10 000-point sweep grid: every fabric × workload family
/// the analytical model covers, crossed with burst length, outstanding
/// depth, rotation, working-set size, and ID count. The cross product
/// slightly overshoots and is truncated, so the grid size — and with it
/// the speedup denominators — never drifts as the axes evolve.
pub fn analytical_grid() -> Vec<hbm_core::batch::GridPoint> {
    use hbm_core::FabricKind;
    use hbm_traffic::Pattern;

    let xbar = SystemConfig { fabric: FabricKind::FullCrossbar, ..SystemConfig::xilinx() };
    let fabrics = [SystemConfig::xilinx(), SystemConfig::mao(), xbar, SystemConfig::direct()];
    let bursts: [u8; 4] = [2, 4, 8, 16];
    let outstanding = [1usize, 2, 4, 8, 32];
    let num_ids = [8usize, 16, 32];

    let mut all = Vec::new();
    for cfg in &fabrics {
        // The direct fabric hard-partitions masters to channels: the
        // cross-channel families are not meaningful there (matching the
        // family coverage of `Calibration::builtin`), rotation would
        // violate its single-channel locality invariant, and working
        // sets must stay inside one pseudo-channel partition.
        let direct = cfg.fabric == FabricKind::Direct;
        let patterns: &[Pattern] = if direct {
            &[Pattern::Scs, Pattern::Scra]
        } else {
            &[Pattern::Scs, Pattern::Ccs, Pattern::Scra, Pattern::Ccra]
        };
        let rotations: &[usize] = if direct { &[0] } else { &[0, 2, 4, 8] };
        let working_sets: &[u64] = if direct {
            &[16 << 20, 64 << 20]
        } else {
            &[16 << 20, 64 << 20, 192 << 20, 256 << 20]
        };
        for &pattern in patterns {
            for &beats in &bursts {
                for &out in &outstanding {
                    for &rotation in rotations {
                        for &working_set in working_sets {
                            for &ids in &num_ids {
                                let base = match pattern {
                                    Pattern::Scs => Workload::scs(),
                                    Pattern::Ccs => Workload::ccs(),
                                    Pattern::Scra => Workload::scra(),
                                    Pattern::Ccra => Workload::ccra(),
                                };
                                let burst = BurstLen::of(beats);
                                let stride = match pattern {
                                    Pattern::Scs | Pattern::Ccs => burst.bytes(),
                                    Pattern::Scra | Pattern::Ccra => burst.bytes().max(512),
                                };
                                let wl = Workload {
                                    burst,
                                    outstanding: out,
                                    num_ids: ids,
                                    stride,
                                    rotation,
                                    working_set,
                                    ..base
                                };
                                wl.validate().expect("analytical_grid point must validate");
                                all.push((cfg.clone(), wl));
                            }
                        }
                    }
                }
            }
        }
    }
    // Downsample the full cross product to exactly 10 000 points with
    // evenly spaced indices, so every fabric × family stripe keeps its
    // proportional share instead of the tail fabric losing whole
    // families to a blunt truncation.
    assert!(all.len() >= 10_000, "cross product shrank below the pinned grid size");
    let total = all.len();
    let grid: Vec<_> = (0..10_000).map(|i| all[i * total / 10_000].clone()).collect();
    assert_eq!(grid.len(), 10_000, "analytical grid is pinned at 10 000 points");
    grid
}

/// Walls the pinned grid at every fidelity tier plus the adaptive mode.
/// `quick` shrinks the cycle-tier subsamples (CI budget), never the
/// analytical sweep itself — the headline number always covers the full
/// 10 000 points.
pub fn run_analytical_matrix(quick: bool) -> AnalyticalRow {
    use hbm_core::batch;
    use hbm_core::experiment::Fidelity;

    let grid = analytical_grid();
    let jobs = batch::sweep_jobs();

    // Untimed pass first so allocator growth and the one-time
    // calibration load don't bill to the measured wall.
    let _ = batch::run_grid_fid(&grid, Fidelity::ANALYTICAL, jobs);
    let t0 = Instant::now();
    let rows = batch::run_grid_fid(&grid, Fidelity::ANALYTICAL, jobs);
    let analytical_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(rows.len(), grid.len());

    // Evenly-strided subsample of `n` points, so every fabric × family
    // stripe of the grid contributes to the extrapolation base.
    let sub = |n: usize| -> Vec<batch::GridPoint> {
        let step = (grid.len() / n).max(1);
        grid.iter().step_by(step).take(n).cloned().collect()
    };
    let extrapolate = |wall: f64, measured: usize| wall * grid.len() as f64 / measured as f64;

    let quick_pts = sub(if quick { 200 } else { 1_000 });
    let t0 = Instant::now();
    let _ = batch::run_grid_fid(&quick_pts, Fidelity::QUICK, jobs);
    let quick_wall_s = extrapolate(t0.elapsed().as_secs_f64(), quick_pts.len());

    let full_pts = sub(if quick { 25 } else { 100 });
    let t0 = Instant::now();
    let _ = batch::run_grid_fid(&full_pts, Fidelity::FULL, jobs);
    let full_wall_s = extrapolate(t0.elapsed().as_secs_f64(), full_pts.len());

    // Adaptive mode on a sub-sweep: analytical first, then only the
    // knees/collapses/untrusted-family points escalate to cycle runs.
    // Uses a contiguous prefix — a coherent axis-ordered sweep — rather
    // than the strided subsample: the knee detector compares grid
    // neighbours, and a shuffled sample would make every pair a knee.
    let adaptive_pts: Vec<batch::GridPoint> =
        grid.iter().take(if quick { 200 } else { 1_000 }).cloned().collect();
    let t0 = Instant::now();
    let (adaptive_rows, report) = batch::run_grid_adaptive(&adaptive_pts, Fidelity::QUICK, jobs);
    let adaptive_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(adaptive_rows.len(), adaptive_pts.len());

    AnalyticalRow {
        points: grid.len(),
        jobs,
        analytical_wall_s,
        quick_measured_points: quick_pts.len(),
        quick_wall_s,
        full_measured_points: full_pts.len(),
        full_wall_s,
        speedup_vs_quick: quick_wall_s / analytical_wall_s.max(1e-12),
        speedup_vs_full: full_wall_s / analytical_wall_s.max(1e-12),
        adaptive_points: adaptive_pts.len(),
        adaptive_wall_s,
        adaptive_escalated: report.escalated,
        adaptive_escalation_fraction: report.escalation_fraction(),
    }
}

/// Renders the analytical-tier section as an aligned text table.
pub fn render_analytical(row: &AnalyticalRow) -> String {
    format!(
        "Analytical tier (pinned 10 000-point sweep grid; cycle walls\n\
         extrapolated from {} QUICK / {} FULL measured points)\n\
         points  jobs  analytical_s     quick_s      full_s  vs quick   vs full\n\
         {:>6} {:>5} {:>13.6} {:>11.3} {:>11.3} {:>8.0}x {:>8.0}x\n\
         adaptive sub-sweep: {} points in {:.3}s, {} escalated ({:.1}%)\n",
        row.quick_measured_points,
        row.full_measured_points,
        row.points,
        row.jobs,
        row.analytical_wall_s,
        row.quick_wall_s,
        row.full_wall_s,
        row.speedup_vs_quick,
        row.speedup_vs_full,
        row.adaptive_points,
        row.adaptive_wall_s,
        row.adaptive_escalated,
        100.0 * row.adaptive_escalation_fraction,
    )
}

/// Renders the matrix as an aligned text table.
pub fn render(rows: &[SpeedRow]) -> String {
    let mut out = String::from(
        "Simulator speed (simulated cycles per wall-second; higher is better)\n\
         traced = lifecycle tracer + 1024-cycle probe on; overhead target < 15 %\n\
         on busy scenarios (`idle` is probe-bound: sampling every window\n\
         necessarily defeats the event-horizon fast-forward)\n\
         fabric   scenario         sim_cycles      wall_s    Mcycles/s  traced Mc/s  overhead\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<16} {:>10} {:>11.6} {:>12.3} {:>12.3} {:>+8.1}%\n",
            r.fabric,
            r.scenario,
            r.sim_cycles,
            r.wall_s,
            r.cycles_per_sec / 1e6,
            r.traced_cycles_per_sec / 1e6,
            r.overhead_pct,
        ));
    }
    out
}
