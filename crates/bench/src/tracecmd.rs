//! The `repro trace` subcommand: runs a traced, probed scenario and
//! emits the time-resolved artifacts.
//!
//! Outputs:
//!
//! * `TRACE_events.json` — Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`): one slice per transaction with nested
//!   latency-component slices, plus probe counter tracks;
//! * `TRACE_probes.jsonl` — one windowed [`hbm_core::probe::Snapshot`]
//!   per line;
//! * an attribution report on stdout: per-component p50/p95/p99/p99.9/max
//!   tables for reads and writes, and the component-sum exactness check.
//!
//! `--smoke` shrinks the run to a few transactions and validates both
//! artifacts against the trace-event schema — the CI gate.

use hbm_axi::{Dir, Tracer};
use hbm_core::export::{
    chrome_trace_json, probes_jsonl, validate_chrome_trace, validate_probes_jsonl,
};
use hbm_core::probe::ProbeConfig;
use hbm_core::report::TextTable;
use hbm_core::{HbmSystem, SystemConfig};
use hbm_traffic::Workload;

/// Everything `repro trace` produces, for the binary to print/write.
pub struct TraceOutcome {
    /// Chrome trace-event JSON document.
    pub trace_json: String,
    /// Probe snapshots, one JSON object per line.
    pub probes: String,
    /// Human-readable attribution report.
    pub report: String,
    /// Delivered transactions.
    pub delivered: u64,
}

/// The traced scenario: rotated SCS on the stock Xilinx fabric, so the
/// trace shows source stalls, lateral hops, *and* DRAM service. Bounded
/// per-master transaction counts keep the artifact sizes fixed and the
/// output deterministic.
fn scenario(txns_per_master: u64) -> HbmSystem {
    let wl = Workload { rotation: 4, ..Workload::scs() };
    HbmSystem::new(&SystemConfig::xilinx(), wl, Some(txns_per_master))
}

fn attribution_table(tracer: &Tracer, dir: Dir) -> String {
    let hists = tracer.attr(dir);
    let mut t = TextTable::new(["component", "n", "mean", "p50", "p95", "p99", "p99.9", "max"]);
    for (name, h) in hists.components() {
        let p = |v: Option<u64>| v.map_or_else(|| "—".into(), |v| v.to_string());
        t.row([
            name.to_string(),
            h.count().to_string(),
            format!("{:.1}", h.mean()),
            p(h.p50()),
            p(h.p95()),
            p(h.p99()),
            p(h.p999()),
            if h.count() == 0 { "—".into() } else { h.max.to_string() },
        ]);
    }
    let label = match dir {
        Dir::Read => "reads",
        Dir::Write => "writes",
    };
    format!("[{label}] latency attribution (cycles @300 MHz)\n{}", t.render())
}

/// Runs the traced scenario and renders every artifact. Panics if the
/// exported trace fails schema validation or any transaction's component
/// sum deviates from its end-to-end latency — those are the invariants
/// the instrumentation layer promises.
pub fn run_trace(smoke: bool, quick: bool) -> TraceOutcome {
    let txns = if smoke {
        4
    } else if quick {
        64
    } else {
        512
    };
    let mut sys = scenario(txns);
    sys.enable_tracing(1 << 16);
    sys.attach_probe(ProbeConfig { interval: if smoke { 64 } else { 1024 }, capacity: 1 << 12 });
    assert!(sys.run_until_drained(100_000_000), "trace scenario did not drain");

    let clock = sys.clock();
    let tracer = sys.tracer().expect("tracing enabled").snapshot();
    let probe = sys.probe().expect("probe attached");
    let trace_json = chrome_trace_json(&tracer, Some(probe), clock);
    let probes = probes_jsonl(probe, clock);

    // The acceptance invariant: per-transaction component sums equal the
    // recorded end-to-end latency, for every delivered record.
    let mut exact = 0u64;
    for rec in tracer.records() {
        let attr = rec.attribution().expect("delivered record must attribute");
        assert_eq!(
            attr.total(),
            rec.end_to_end().expect("delivered record has e2e"),
            "component sum deviates for master {} seq {}",
            rec.master,
            rec.seq,
        );
        exact += 1;
    }
    let check = validate_chrome_trace(&trace_json).expect("exported trace must validate");
    let snaps = validate_probes_jsonl(&probes).expect("exported probes must validate");

    let mut report = format!(
        "Time-resolved trace — rotated SCS (rotation 4) on the Xilinx fabric,\n\
         {txns} transactions/master, drained at cycle {}\n\n",
        sys.now()
    );
    report.push_str(&attribution_table(&tracer, Dir::Read));
    report.push('\n');
    report.push_str(&attribution_table(&tracer, Dir::Write));
    report.push('\n');
    report.push_str(&format!(
        "component-sum check: {exact}/{} records exact\n\
         trace-event schema: OK ({} events: {} txn slices, {} counters)\n\
         probe snapshots: {snaps} windows\n",
        tracer.delivered_count(),
        check.events,
        check.txns,
        check.counters,
    ));
    TraceOutcome { trace_json, probes, report, delivered: tracer.delivered_count() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_trace_validates_and_reports() {
        let out = run_trace(true, false);
        assert_eq!(out.delivered, 4 * 32);
        assert!(out.report.contains("component-sum check: 128/128 records exact"));
        assert!(out.report.contains("trace-event schema: OK"));
        assert!(out.trace_json.contains("\"traceEvents\""));
        assert!(!out.probes.is_empty());
    }

    #[test]
    fn smoke_trace_is_deterministic() {
        let a = run_trace(true, false);
        let b = run_trace(true, false);
        assert_eq!(a.trace_json, b.trace_json, "trace export must be byte-identical");
        assert_eq!(a.probes, b.probes);
    }
}
