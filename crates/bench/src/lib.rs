//! # hbm-bench — reproduction harness
//!
//! Shared code for the `repro` binary (which regenerates every table and
//! figure of the paper) and the Criterion benches.
//!
//! The paper's reference values are embedded as constants so every
//! report prints *paper vs. measured* side by side; EXPERIMENTS.md is
//! written from this output.

pub mod fig7;
pub mod paper;
pub mod profilecmd;
pub mod render;
pub mod simspeed;
pub mod tracecmd;
pub mod xvalidate;

pub use fig7::{accel_bandwidths, AccelBandwidths};
