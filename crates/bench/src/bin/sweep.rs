//! `sweep` — parameter-grid sweeps to CSV.
//!
//! ```text
//! sweep [--fabrics xlnx,mao,direct] [--patterns scs,ccs,scra,ccra]
//!       [--bursts 1,2,4,8,16] [--rotations 0]
//!       [--warmup N] [--cycles N] [--threads N]
//! ```
//!
//! Prints one CSV row per grid point to stdout (redirect to a file for
//! plotting). Every figure of the paper is a slice of this grid.

use hbm_axi::BurstLen;
use hbm_core::prelude::*;

fn parse_list<'a>(args: &'a [String], flag: &str, default: &'a str) -> Vec<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or(default)
        .split(',')
        .map(str::to_string)
        .collect()
}

fn parse_num(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("numeric flag value"))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fabrics = parse_list(&args, "--fabrics", "xlnx,mao");
    let patterns = parse_list(&args, "--patterns", "scs,ccs,scra,ccra");
    let bursts = parse_list(&args, "--bursts", "1,2,4,8,16");
    let rotations = parse_list(&args, "--rotations", "0");
    let warmup = parse_num(&args, "--warmup", 2_000);
    let cycles = parse_num(&args, "--cycles", 8_000);
    let threads = parse_num(&args, "--threads", hbm_core::batch::default_threads() as u64) as usize;

    println!(
        "fabric,pattern,burst,rotation,read_gbps,write_gbps,total_gbps,\
         read_lat_mean,read_lat_std,write_lat_mean,write_lat_std,\
         page_hit_rate,lateral_beats,id_stall_cycles"
    );
    // Build the grid first, then fan it out over threads.
    let mut labels: Vec<(String, String, u8, usize)> = Vec::new();
    let mut grid: Vec<hbm_core::batch::GridPoint> = Vec::new();
    for fabric in &fabrics {
        let cfg = match fabric.as_str() {
            "xlnx" => SystemConfig::xilinx(),
            "mao" => SystemConfig::mao(),
            "direct" => SystemConfig::direct(),
            other => panic!("unknown fabric {other:?}"),
        };
        for pattern in &patterns {
            let base = match pattern.as_str() {
                "scs" => Workload::scs(),
                "ccs" => Workload::ccs(),
                "scra" => Workload::scra(),
                "ccra" => Workload::ccra(),
                other => panic!("unknown pattern {other:?}"),
            };
            // The direct fabric only supports single-channel locality.
            if fabric == "direct" && matches!(base.pattern, Pattern::Ccs | Pattern::Ccra) {
                continue;
            }
            for burst in &bursts {
                let beats: u8 = burst.parse().expect("burst 1..=16");
                for rotation in &rotations {
                    let rot: usize = rotation.parse().expect("rotation 0..=31");
                    if rot != 0 && (fabric == "direct" || !matches!(base.pattern, Pattern::Scs)) {
                        continue;
                    }
                    let wl = Workload {
                        burst: BurstLen::of(beats),
                        stride: BurstLen::of(beats).bytes(),
                        rotation: rot,
                        ..base
                    };
                    labels.push((fabric.clone(), pattern.clone(), beats, rot));
                    grid.push((cfg.clone(), wl));
                }
            }
        }
    }
    let results = hbm_core::batch::run_grid(&grid, warmup, cycles, threads);
    for ((fabric, pattern, beats, rot), m) in labels.iter().zip(results.iter()) {
        println!(
            "{fabric},{pattern},{beats},{rot},{:.3},{:.3},{:.3},{:.1},{:.1},{:.1},{:.1},{:.4},{},{}",
            m.read_gbps(),
            m.write_gbps(),
            m.total_gbps(),
            m.read_latency_mean().unwrap_or(f64::NAN),
            m.read_latency_std().unwrap_or(f64::NAN),
            m.write_latency_mean().unwrap_or(f64::NAN),
            m.write_latency_std().unwrap_or(f64::NAN),
            m.mem.hit_rate().unwrap_or(0.0),
            m.fabric.lateral_beats(),
            m.fabric.id_stall_cycles,
        );
    }
}
