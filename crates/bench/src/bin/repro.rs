//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT ...] [--quick] [--fidelity TIER] [--adaptive]
//!       [--json] [--smoke] [--jobs N] [--cache-dir DIR] [--no-cache]
//!       [--metrics]
//! repro serve [--addr HOST:PORT] [--queue N] [--jobs N] [--no-cache]
//!             [--metrics-addr HOST:PORT] [--span-log FILE]
//! repro xvalidate [--quick] [--json] [--smoke] [--out PATH] [--jobs N]
//!
//! EXPERIMENT: fig2 fig3 fig4 fig5 fig6 fig7 table2 table3 table4 table5
//!             latency ablations simspeed trace profile xvalidate all
//!             (default: all)
//! --quick:    short simulation windows (CI-friendly)
//! --fidelity TIER: quick | full | analytical — the sweep fidelity.
//!             `analytical` answers every point from the calibrated
//!             closed-form model (DESIGN.md §3.9) instead of simulating;
//!             anything else exits 2 with usage. Overrides --quick.
//! --adaptive: multi-fidelity sweeps — evaluate each grid analytically
//!             first and escalate only the interesting regions (knees,
//!             collapses, envelope-untrusted families) to cycle
//!             accuracy. Escalated rows are byte-identical to a direct
//!             cycle run; the per-grid escalation report goes to stderr.
//! --json:     machine-readable output (one JSON object per experiment)
//! --smoke:    (trace/profile only) tiny run + validation, the CI gate
//! --jobs N:   worker threads for sweep farming (default: HBM_JOBS env
//!             var, else all cores). Results are bit-identical at any N.
//!             Must be a positive integer; anything else exits non-zero.
//! --cache-dir DIR: enable the content-addressed result cache with a
//!             disk tier under DIR (same as setting HBM_CACHE_DIR).
//!             Cached rows are byte-identical to fresh runs, so stdout
//!             diffs clean between a cold and a warm invocation; the
//!             hit/miss summary goes to stderr.
//! --no-cache: force the result cache off, overriding --cache-dir and
//!             HBM_CACHE_DIR. For `serve`, disables the memory-tier
//!             cache the daemon otherwise enables by default.
//! --metrics:  enable the workspace metric registry for this run (same
//!             as HBM_METRICS=1); counters/histograms accumulate but are
//!             only visible through the serve `metrics` verb or
//!             `--metrics-addr` — for one-shot runs this mainly matters
//!             for overhead testing.
//! ```
//!
//! `simspeed`, `trace`, `profile`, and `xvalidate` are not part of
//! `all`: they inspect the *simulator* rather than reproducing the
//! paper. `xvalidate` fits the analytical tier's calibration against
//! the cycle simulator on the pinned scenario lattice and reports the
//! per-family error envelopes; `--out PATH` writes the versioned
//! artifact (activate it with `HBM_CALIBRATION=PATH`), `--smoke` gates
//! every family's fitted p95 against the shipped envelope (the CI leg),
//! and it always writes `BENCH_xvalidate.json`. `simspeed`
//! writes its rows to `BENCH_simspeed.json` in the current directory (in
//! addition to the normal stdout report) so runs on the same machine can
//! be diffed; `trace` writes `TRACE_events.json` (Chrome trace-event
//! JSON, loadable in Perfetto) and `TRACE_probes.jsonl` (windowed
//! time-series snapshots) and prints the latency-attribution tables;
//! `profile` prints the kernel phase-attribution tables (scalar and
//! lockstep) with observer and metrics overhead — `--smoke` asserts the
//! telescoping self-consistency invariant and the <5 % metrics-overhead
//! budget.
//!
//! `serve` starts the long-running sweep-serving daemon (`hbm-serve`):
//! it binds `--addr` (default `127.0.0.1:7070`, port 0 for ephemeral),
//! prints one `{"serving":"HOST:PORT", ...}` ready line on stdout, and
//! accepts newline-delimited-JSON clients until one sends the
//! `shutdown` verb. `--queue` bounds the admission queue in grid points
//! (default 4096); submissions that would overflow it are rejected with
//! a `retry_after_ms` backpressure hint. The daemon always enables the
//! metric registry; `--metrics-addr` additionally serves Prometheus
//! text exposition over plain HTTP (the ready line then carries a
//! `"metrics"` field with the bound address), and `--span-log FILE`
//! appends one JSONL job-lifecycle span per finished job. See
//! `examples/serve_client.rs` for a full client.

use hbm_bench::render;
use hbm_core::experiment::{self, Fidelity};

fn emit_json(name: &str, rows: impl serde::Serialize) {
    println!("{}", serde_json::json!({ "experiment": name, "rows": rows }));
}

fn run_json(fid: Fidelity, want: impl Fn(&str) -> bool) {
    if want("fig2") {
        emit_json("fig2", experiment::fig2_rw_ratio(fid));
    }
    if want("fig3") {
        emit_json("fig3", experiment::fig3_burst_length(fid));
    }
    if want("fig4") {
        emit_json("fig4", experiment::fig4_rotation(fid));
    }
    if want("table2") {
        emit_json("table2", experiment::table2_latency(fid));
    }
    if want("table4") {
        emit_json("table4", experiment::table4_throughput(fid));
    }
    if want("fig5") {
        emit_json("fig5", experiment::fig5_stride(fid));
    }
    if want("fig6") {
        emit_json("fig6", experiment::fig6_reorder(fid));
    }
    if want("fig7") || want("table5") {
        emit_json("fig7", hbm_bench::fig7::fig7_report(fid));
    }
    if want("latency") {
        emit_json("latency", experiment::latency_probe());
    }
    if want("ablations") {
        emit_json("ablate_interleave", experiment::ablate_interleave(fid));
        emit_json("ablate_interleave_scheme", experiment::ablate_interleave_scheme(fid));
        emit_json("ablate_stages", experiment::ablate_stages(fid));
        emit_json("ablate_mc_window", experiment::ablate_mc_window(fid));
        emit_json("ablate_page_policy", experiment::ablate_page_policy(fid));
        emit_json("ablate_mao_features", experiment::ablate_mao_features(fid));
        emit_json("ablate_axi4", experiment::ablate_axi4(fid));
        emit_json("ablate_stacks", experiment::ablate_stacks(fid));
        emit_json("ablate_addr_map", experiment::ablate_addr_map(fid));
        emit_json("ablate_lateral", experiment::ablate_lateral(fid));
        emit_json("mixed_interference", experiment::mixed_interference(fid));
    }
}

/// Benchmarks the simulator itself and writes `BENCH_simspeed.json`.
fn run_simspeed(quick: bool, json: bool) {
    use hbm_bench::{profilecmd, simspeed};
    let rows = simspeed::run_matrix(quick);
    let sweeps = simspeed::run_sweep_matrix(quick);
    let conductor = simspeed::run_conductor_matrix(quick);
    let batched = simspeed::run_batched_matrix(quick);
    let serve = simspeed::run_serve_overhead(quick);
    let cache = simspeed::run_cache_matrix(quick);
    let analytical = simspeed::run_analytical_matrix(quick);
    let profile = profilecmd::run_profile(quick);
    let payload = serde_json::json!({
        "experiment": "simspeed",
        "host_threads": hbm_core::batch::default_threads(),
        "rows": rows,
        "sweeps": sweeps,
        "conductor": conductor,
        "batched": batched,
        "serve": serve,
        "serve_overhead_pct": serve.serve_overhead_pct,
        "cache": cache,
        "cache_cold_wall_s": cache.cold_wall_s,
        "cache_warm_wall_s": cache.warm_wall_s,
        "analytical": analytical,
        "analytical_speedup_vs_quick": analytical.speedup_vs_quick,
        "adaptive_escalation_fraction": analytical.adaptive_escalation_fraction,
        "profile": profilecmd::to_json(&profile),
        "metrics_overhead_pct": profile.metrics.overhead_pct,
    });
    std::fs::write("BENCH_simspeed.json", format!("{payload}\n"))
        .expect("write BENCH_simspeed.json");
    if json {
        println!("{payload}");
    } else {
        println!("{}", simspeed::render(&rows));
        println!("{}", simspeed::render_sweeps(&sweeps));
        println!("{}", simspeed::render_conductor(&conductor));
        println!("{}", simspeed::render_batched(&batched));
        println!("{}", simspeed::render_serve(&serve));
        println!("{}", simspeed::render_cache(&cache));
        println!("{}", simspeed::render_analytical(&analytical));
        println!("{}", profilecmd::render(&profile));
        println!("wrote BENCH_simspeed.json");
    }
}

/// Profiles both kernels and prints the phase-attribution report.
/// `--smoke` is the CI gate: it asserts the telescoping self-consistency
/// invariant (phase sums ≡ measured loop time) for both kernels and the
/// metrics-registry overhead budget.
fn run_profile(quick: bool, json: bool, smoke: bool) {
    use hbm_bench::profilecmd;
    // Smoke always runs quick-sized windows — it gates CI, not numbers.
    let out = profilecmd::run_profile(quick || smoke);
    if smoke {
        assert!(
            out.scalar.report.consistent() && out.lockstep.report.consistent(),
            "phase attribution must telescope to the measured loop time"
        );
        assert!(out.scalar.report.laps > 0, "scalar kernel recorded no laps");
        assert!(out.lockstep.report.laps > 0, "lockstep kernel recorded no laps");
        assert!(
            out.metrics.overhead_pct < 5.0,
            "metrics registry overhead {:.2}% breaches the 5% budget",
            out.metrics.overhead_pct
        );
    }
    if json {
        println!(
            "{}",
            serde_json::json!({ "experiment": "profile", "profile": profilecmd::to_json(&out) })
        );
    } else {
        println!("{}", profilecmd::render(&out));
        if smoke {
            println!("profile smoke: OK (both kernels consistent, metrics overhead in budget)");
        }
    }
}

/// Runs the sweep-serving daemon until a client sends `shutdown`.
fn run_serve(args: &[String]) {
    use hbm_serve::{MetricsExposer, ServeConfig, Server, WireServer};

    let mut addr = String::from("127.0.0.1:7070");
    let mut queue_capacity = 4_096usize;
    let mut metrics_addr: Option<String> = None;
    let mut span_log: Option<std::path::PathBuf> = None;
    let mut skip_next = false;
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        let flag_value = |name: &str| -> Option<String> {
            if a == name {
                Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                }))
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = flag_value("--addr") {
            skip_next = a == "--addr";
            addr = v;
        } else if let Some(v) = flag_value("--queue") {
            skip_next = a == "--queue";
            queue_capacity = v.parse().unwrap_or_else(|_| {
                eprintln!("--queue: invalid point count {v:?}");
                std::process::exit(2);
            });
        } else if let Some(v) = flag_value("--metrics-addr") {
            skip_next = a == "--metrics-addr";
            metrics_addr = Some(v);
        } else if let Some(v) = flag_value("--span-log") {
            skip_next = a == "--span-log";
            span_log = Some(std::path::PathBuf::from(v));
        }
    }

    let workers = hbm_core::batch::sweep_jobs();
    let server =
        Server::spawn(ServeConfig { workers, queue_capacity, span_log, ..ServeConfig::default() });
    let wire = WireServer::bind(&addr, server.handle()).unwrap_or_else(|e| {
        eprintln!("serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let exposer = metrics_addr.map(|a| {
        MetricsExposer::bind(&a).unwrap_or_else(|e| {
            eprintln!("serve: cannot bind metrics listener {a}: {e}");
            std::process::exit(1);
        })
    });
    // One machine-readable ready line; the smoke script and clients key
    // off it. Flush explicitly — stdout is block-buffered under a pipe.
    let mut ready = serde_json::json!({
        "serving": wire.local_addr().to_string(),
        "workers": workers,
        "queue_capacity": queue_capacity,
    });
    if let (serde_json::Value::Map(fields), Some(e)) = (&mut ready, &exposer) {
        fields.push(("metrics".to_string(), serde_json::Value::Str(e.local_addr().to_string())));
    }
    println!("{ready}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    wire.run_until_shutdown();
    if let Some(e) = exposer {
        e.stop();
    }
    server.shutdown();
    report_cache();
    println!("serve: shut down");
}

/// Runs the traced scenario, writes `TRACE_events.json` and
/// `TRACE_probes.jsonl`, and prints the attribution report.
fn run_trace(smoke: bool, quick: bool, json: bool) {
    let out = hbm_bench::tracecmd::run_trace(smoke, quick);
    std::fs::write("TRACE_events.json", &out.trace_json).expect("write TRACE_events.json");
    std::fs::write("TRACE_probes.jsonl", &out.probes).expect("write TRACE_probes.jsonl");
    if json {
        println!("{}", serde_json::json!({ "experiment": "trace", "delivered": out.delivered }));
    } else {
        println!("{}", out.report);
        println!("wrote TRACE_events.json + TRACE_probes.jsonl");
    }
}

/// Parses a `--jobs` value through the one shared validator, exiting
/// loudly (and non-zero) on anything that is not a positive integer.
fn parse_jobs_or_die(v: &str) -> usize {
    hbm_core::batch::parse_jobs(v).unwrap_or_else(|e| {
        eprintln!("--jobs: {e}");
        eprintln!("usage: --jobs N (N a positive integer)");
        std::process::exit(2);
    })
}

/// Parses a `--batch` value through the shared validator, exiting loudly
/// on anything that is not a positive lane count, `0`, or `off`.
fn parse_batch_or_die(v: &str) -> usize {
    hbm_core::batch::parse_batch(v).unwrap_or_else(|e| {
        eprintln!("--batch: {e}");
        eprintln!("usage: --batch N|off (lockstep lanes per batch)");
        std::process::exit(2);
    })
}

/// Parses a `--fidelity` value, exiting 2 with usage on anything that is
/// not one of the three stable tier names.
fn parse_fidelity_or_die(v: &str) -> Fidelity {
    match v {
        "quick" => Fidelity::QUICK,
        "full" => Fidelity::FULL,
        "analytical" => Fidelity::ANALYTICAL,
        other => {
            eprintln!("--fidelity: unknown tier {other:?}");
            eprintln!("usage: --fidelity quick|full|analytical");
            std::process::exit(2);
        }
    }
}

/// Fits and cross-validates the analytical tier (`repro xvalidate`).
fn run_xvalidate(fid: Fidelity, json: bool, smoke: bool, out_path: Option<&str>) {
    use hbm_bench::xvalidate;
    // The calibration is fitted against cycle windows; an analytical
    // fidelity here would fit the model against itself.
    let fid = if fid.is_analytical() { Fidelity::QUICK } else { fid };
    let out = xvalidate::run_xvalidate(fid);
    let payload = xvalidate::to_json(&out);
    std::fs::write("BENCH_xvalidate.json", format!("{payload}\n"))
        .expect("write BENCH_xvalidate.json");
    if let Some(path) = out_path {
        std::fs::write(path, format!("{}\n", out.calibration.to_json())).unwrap_or_else(|e| {
            eprintln!("xvalidate: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("xvalidate: wrote calibration artifact to {path}");
    }
    if json {
        println!("{payload}");
    } else {
        println!("{}", xvalidate::render(&out));
        eprintln!("{}", xvalidate::render_builtin_rows(&out.calibration));
        println!("wrote BENCH_xvalidate.json");
    }
    if smoke {
        let violations = xvalidate::smoke_violations(&out.calibration);
        if !violations.is_empty() {
            eprintln!("xvalidate smoke: envelope gate FAILED:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        println!(
            "xvalidate smoke: OK ({} families within the shipped p95 envelope)",
            out.calibration.families.len()
        );
    }
}

/// Flushes the global result cache and prints a one-line hit/miss
/// summary — to stderr only, so a cold and a warm invocation produce
/// byte-identical stdout.
fn report_cache() {
    let cache = hbm_core::ResultCache::global();
    if !cache.is_enabled() {
        return;
    }
    if let Err(e) = cache.flush() {
        eprintln!("hbm-cache: flush failed: {e}");
    }
    let s = cache.snapshot();
    eprintln!(
        "hbm-cache: {} hits, {} misses, {} coalesced; {} entries in memory{}",
        s.hits,
        s.misses,
        s.coalesced,
        s.entries,
        match &s.disk_dir {
            Some(d) => format!(", disk tier at {d}"),
            None => String::new(),
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    if args.iter().any(|a| a == "--metrics") {
        hbm_core::metrics::set_enabled(true);
    }
    let mut jobs_value: Option<usize> = None;
    let mut batch_value: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut fidelity_value: Option<Fidelity> = None;
    let mut out_path: Option<String> = None;
    let mut skip_next = false;
    let mut positional: Vec<&str> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--fidelity" {
            let v = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--fidelity requires a tier");
                eprintln!("usage: --fidelity quick|full|analytical");
                std::process::exit(2);
            });
            fidelity_value = Some(parse_fidelity_or_die(v));
            skip_next = true;
        } else if let Some(v) = a.strip_prefix("--fidelity=") {
            fidelity_value = Some(parse_fidelity_or_die(v));
        } else if a == "--out" {
            let v = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--out requires a path");
                std::process::exit(2);
            });
            out_path = Some(v.clone());
            skip_next = true;
        } else if let Some(v) = a.strip_prefix("--out=") {
            out_path = Some(v.to_string());
        } else if a == "--jobs" {
            let v = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--jobs requires a thread count");
                eprintln!("usage: --jobs N (N a positive integer)");
                std::process::exit(2);
            });
            jobs_value = Some(parse_jobs_or_die(v));
            skip_next = true;
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs_value = Some(parse_jobs_or_die(v));
        } else if a == "--batch" {
            let v = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--batch requires a lane count");
                eprintln!("usage: --batch N|off (lockstep lanes per batch)");
                std::process::exit(2);
            });
            batch_value = Some(parse_batch_or_die(v));
            skip_next = true;
        } else if let Some(v) = a.strip_prefix("--batch=") {
            batch_value = Some(parse_batch_or_die(v));
        } else if a == "--cache-dir" {
            let v = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--cache-dir requires a directory");
                std::process::exit(2);
            });
            cache_dir = Some(v.clone());
            skip_next = true;
        } else if let Some(v) = a.strip_prefix("--cache-dir=") {
            cache_dir = Some(v.to_string());
        } else if !a.starts_with("--") {
            positional.push(a.as_str());
        }
    }
    // --fidelity wins over --quick; --adaptive turns every run_all grid
    // into an analytical-first multi-fidelity sweep.
    let fid = fidelity_value.unwrap_or(if quick { Fidelity::QUICK } else { Fidelity::FULL });
    if args.iter().any(|a| a == "--adaptive") {
        hbm_core::experiment::set_adaptive(true);
    }
    if let Some(jobs) = jobs_value {
        hbm_core::batch::set_sweep_jobs(jobs);
    }
    if let Some(lanes) = batch_value {
        hbm_core::batch::set_batch_lanes(lanes);
    }
    // Cache policy: --no-cache wins over everything; --cache-dir enables
    // the global cache with a disk tier (HBM_CACHE_DIR already did the
    // same at first use if it was set).
    let cache = hbm_core::ResultCache::global();
    if no_cache {
        cache.disable();
    } else if let Some(dir) = cache_dir {
        cache.set_dir(dir);
        cache.enable();
    }
    if positional.first() == Some(&"serve") {
        // The daemon defaults the memory-tier cache on: repeated or
        // overlapping client grids are exactly what it exists to absorb.
        if !no_cache {
            cache.enable();
        }
        run_serve(&args);
        return;
    }
    let mut wanted: Vec<&str> = positional;
    if wanted.is_empty() {
        wanted.push("all");
    }
    let all = wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);

    // Simulator benchmarking, tracing, profiling, and calibration
    // cross-validation are opt-in only (not part of `all`).
    if wanted.contains(&"xvalidate") {
        run_xvalidate(fid, json, smoke, out_path.as_deref());
        if wanted.len() == 1 {
            report_cache();
            return;
        }
    }
    if wanted.contains(&"simspeed") {
        run_simspeed(quick, json);
        if wanted.len() == 1 {
            report_cache();
            return;
        }
    }
    if wanted.contains(&"trace") {
        run_trace(smoke, quick, json);
        if wanted.len() == 1 {
            report_cache();
            return;
        }
    }
    if wanted.contains(&"profile") {
        run_profile(quick, json, smoke);
        if wanted.len() == 1 {
            report_cache();
            return;
        }
    }

    if json {
        run_json(fid, want);
        report_cache();
        return;
    }

    println!(
        "Reproduction of \"Fast HBM Access with FPGAs: Analysis, Architectures,\n\
         and Applications\" (IPDPSW'21) — simulated XCVU37P HBM subsystem\n\
         fidelity: {}\n",
        if fid.is_analytical() {
            "analytical (calibrated closed-form model, DESIGN.md §3.9)".to_string()
        } else {
            format!("warmup {} + measure {} cycles @300 MHz", fid.warmup, fid.cycles)
        }
    );

    if want("fig2") {
        println!("{}", render::render_fig2(fid));
    }
    if want("fig3") {
        println!("{}", render::render_fig3(fid));
    }
    if want("fig4") {
        println!("{}", render::render_fig4(fid));
        println!("{}", render::render_fig4b(fid, 4));
    }
    if want("table2") {
        println!("{}", render::render_table2(fid));
    }
    if want("table3") {
        println!("{}", render::render_table3());
    }
    if want("table4") {
        println!("{}", render::render_table4(fid));
    }
    if want("fig5") {
        println!("{}", render::render_fig5(fid));
    }
    if want("fig6") {
        println!("{}", render::render_fig6(fid));
    }
    if want("fig7") || want("table5") {
        println!("{}", render::render_fig7_table5(fid));
    }
    if want("latency") {
        println!("{}", render::render_latency_probe());
    }
    if want("ablations") {
        println!("{}", render::render_ablations(fid));
        println!("{}", render::render_mixed(fid));
    }
    report_cache();
}
