//! The paper's published reference values, for side-by-side reporting.

/// Theoretical device bandwidth the paper normalises against (GB/s).
pub const DEVICE_BW: f64 = 460.8;

/// Table IV reference: (pattern, direction, XLNX GB/s, MAO GB/s).
pub const TABLE4: [(&str, &str, f64, f64); 6] = [
    ("CCS", "RD", 9.6, 307.0),
    ("CCS", "WR", 9.6, 307.0),
    ("CCS", "Both", 13.0, 414.0),
    ("CCRA", "RD", 36.0, 134.0),
    ("CCRA", "WR", 48.0, 144.0),
    ("CCRA", "Both", 70.4, 266.0),
];

/// Table II reference: (traffic, fabric, pattern, rd mean, rd σ, wr
/// mean, wr σ) in cycles.
pub const TABLE2: [(&str, &str, &str, f64, f64, f64, f64); 8] = [
    ("Single", "XLNX", "CCS", 71.8, 19.8, 46.3, 24.6),
    ("Single", "XLNX", "CCRA", 66.5, 17.7, 29.1, 7.9),
    ("Single", "MAO", "CCS", 73.7, 12.5, 32.0, 0.1),
    ("Single", "MAO", "CCRA", 81.9, 15.7, 32.0, 0.3),
    ("Burst", "XLNX", "CCS", 3020.8, 1478.8, 585.4, 522.9),
    ("Burst", "XLNX", "CCRA", 651.8, 353.5, 197.3, 122.2),
    ("Burst", "MAO", "CCS", 264.5, 13.4, 72.0, 0.7),
    ("Burst", "MAO", "CCRA", 546.2, 158.4, 93.2, 23.8),
];

/// Table III reference: (config, fmax MHz, RD lat, WR lat, LUTs, FFs,
/// BRAM).
pub const TABLE3: [(&str, u32, u32, u32, u64, u64, u64); 4] = [
    ("Full (1 stage)", 130, 12, 12, 285_327, 274_879, 260),
    ("Full (2 stages)", 150, 25, 12, 278_800, 255_122, 260),
    ("Partial (1 stage)", 350, 12, 12, 152_771, 197_831, 132),
    ("Partial (2 stages)", 360, 25, 12, 147_798, 251_676, 260),
];

/// Fig. 4a reference: rotation → % of device bandwidth (BL 16).
pub const FIG4_PCT: [(usize, f64); 4] = [(1, 100.0), (2, 74.9), (4, 49.8), (8, 12.5)];

/// §IV-A latency probes: (read local, read far, write local, write far)
/// in cycles at 300 MHz.
pub const LATENCY_PROBE: (f64, f64, f64, f64) = (48.0, 72.0, 17.0, 41.0);

/// §V measured accelerator bandwidths: (A unoptimised, A with MAO,
/// B unoptimised, B with MAO) in GB/s.
pub const ACCEL_BW: (f64, f64, f64, f64) = (12.55, 403.75, 9.59, 273.0);

/// Table V reference speed-ups for Accelerator A: (P, SU_HBM,
/// SU_HBM+MAO).
pub const TABLE5_A_SU: [(usize, f64, f64); 4] =
    [(4, 1.0, 4.6), (8, 2.0, 18.4), (16, 3.9, 73.8), (32, 7.7, 248.2)];

/// Table V reference speed-ups for Accelerator B.
pub const TABLE5_B_SU: [(usize, f64, f64); 4] =
    [(4, 1.0, 3.6), (8, 1.0, 7.1), (16, 1.0, 14.3), (32, 1.0, 28.5)];

/// Headline claims: maximum MAO speed-ups over the Xilinx fabric.
pub const HEADLINE_CCS_SPEEDUP: f64 = 40.6;
/// Headline CCRA speed-up.
pub const HEADLINE_CCRA_SPEEDUP: f64 = 3.78;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_headlines_consistent() {
        // 13.0 → 414 is the quoted 40.6×; 70.4 → 266 the quoted 3.78×.
        let ccs = TABLE4[2];
        assert!((ccs.3 / ccs.2 - HEADLINE_CCS_SPEEDUP).abs() < 9.0);
        let ccra = TABLE4[5];
        assert!((ccra.3 / ccra.2 - HEADLINE_CCRA_SPEEDUP).abs() < 0.1);
    }

    #[test]
    fn reference_tables_have_expected_shapes() {
        assert_eq!(TABLE2.len(), 8);
        assert_eq!(TABLE3.len(), 4);
        assert_eq!(TABLE4.len(), 6);
    }
}
