//! `repro xvalidate` — calibrates and cross-validates the analytical
//! tier against the cycle simulator (DESIGN.md §3.9).
//!
//! The command runs the pinned [`hbm_core::analytic::scenario_lattice`]
//! through the cycle-accurate simulator, fits fresh per-family residual
//! scales with [`hbm_core::analytic::fit_calibration`], and reports the
//! per-family error envelopes (mean/p95/max relative bandwidth error of
//! the *calibrated* model). `--out PATH` persists the fitted artifact as
//! versioned JSON (loadable back through `HBM_CALIBRATION`); `--smoke`
//! is the CI gate: it asserts every fitted family's p95 stays within the
//! builtin calibration's shipped envelope plus a drift allowance, so the
//! numbers baked into [`Calibration::builtin`] cannot rot silently.

use hbm_core::analytic::{self, Calibration, FabricClass, XvalRow};
use hbm_core::batch;
use hbm_core::experiment::Fidelity;
use hbm_traffic::Pattern;

/// Drift allowance for the smoke gate: a family's freshly fitted p95
/// may exceed the builtin envelope's p95 by this much (absolute, in
/// relative-error units) before the gate trips. Covers window-length
/// jitter between the baking run and the CI machine.
pub const SMOKE_P95_SLACK: f64 = 0.03;

/// Everything one `repro xvalidate` run produced.
pub struct XvalOutput {
    /// The freshly fitted artifact.
    pub calibration: Calibration,
    /// Per-scenario comparison rows under the fitted scales.
    pub rows: Vec<XvalRow>,
    /// Wall time of the cycle-simulated lattice, in seconds.
    pub cycle_wall_s: f64,
    /// Wall time of the analytical evaluations (model + fit), in
    /// seconds.
    pub model_wall_s: f64,
}

/// Runs the lattice at `fid` cycle windows and fits a calibration.
pub fn run_xvalidate(fid: Fidelity) -> XvalOutput {
    let scenarios = analytic::scenario_lattice();
    let points: Vec<_> = scenarios.iter().map(|s| s.point.clone()).collect();
    let threads = batch::sweep_jobs();
    let t0 = std::time::Instant::now();
    let cycle_rows = batch::run_grid(&points, fid.warmup, fid.cycles, threads);
    let cycle_wall_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let (calibration, rows) = analytic::fit_calibration(&scenarios, &cycle_rows);
    let model_wall_s = t1.elapsed().as_secs_f64();
    XvalOutput { calibration, rows, cycle_wall_s, model_wall_s }
}

/// The smoke gate: every freshly fitted family's p95 must stay within
/// the builtin envelope's p95 plus [`SMOKE_P95_SLACK`]. Returns the
/// violations (empty means the gate passes).
pub fn smoke_violations(cal: &Calibration) -> Vec<String> {
    let builtin = Calibration::builtin();
    let mut violations = Vec::new();
    for fitted in &cal.families {
        let shipped = builtin.family(fitted.fabric, fitted.pattern);
        let budget = shipped.envelope.p95 + SMOKE_P95_SLACK;
        if fitted.envelope.p95 > budget {
            violations.push(format!(
                "{}/{:?}: fitted p95 {:.4} exceeds shipped p95 {:.4} + {:.2} slack",
                fitted.fabric,
                fitted.pattern,
                fitted.envelope.p95,
                shipped.envelope.p95,
                SMOKE_P95_SLACK
            ));
        }
    }
    violations
}

/// Renders the per-family calibration table plus the worst scenarios.
pub fn render(out: &XvalOutput) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Cross-validation: analytical tier vs cycle simulator\n\
         ({} scenarios, cycle lattice {:.2}s, model+fit {:.4}s)\n",
        out.rows.len(),
        out.cycle_wall_s,
        out.model_wall_s
    );
    let _ = writeln!(
        s,
        "{:<14} {:<6} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "fabric", "family", "bw-scale", "lat-scale", "mean", "p95", "max"
    );
    for f in &out.calibration.families {
        let _ = writeln!(
            s,
            "{:<14} {:<6} {:>9.4} {:>9.4} {:>7.2}% {:>7.2}% {:>7.2}%",
            f.fabric.to_string(),
            format!("{:?}", f.pattern),
            f.bw_scale,
            f.lat_scale,
            100.0 * f.envelope.mean,
            100.0 * f.envelope.p95,
            100.0 * f.envelope.max,
        );
    }
    let mut worst: Vec<&XvalRow> = out.rows.iter().collect();
    worst.sort_by(|a, b| b.rel_err.partial_cmp(&a.rel_err).unwrap());
    let _ = writeln!(s, "\nworst scenarios (calibrated):");
    for r in worst.iter().take(5) {
        let _ = writeln!(
            s,
            "  {:<14} {:<6} {:<14} cycle {:>7.1} GB/s  model {:>7.1} GB/s  err {:>6.2}%",
            r.fabric.to_string(),
            format!("{:?}", r.pattern),
            r.setting,
            r.cycle_gbps,
            r.model_gbps,
            100.0 * r.rel_err,
        );
    }
    s
}

/// The machine-readable payload (also written to `BENCH_xvalidate.json`).
pub fn to_json(out: &XvalOutput) -> serde_json::Value {
    serde_json::json!({
        "experiment": "xvalidate",
        "calibration_version": analytic::CALIBRATION_VERSION,
        "scenarios": out.rows.len(),
        "cycle_wall_s": out.cycle_wall_s,
        "model_wall_s": out.model_wall_s,
        "families": out.calibration.families,
        "rows": out.rows,
    })
}

/// Source-code lines for re-baking [`Calibration::builtin`] from a
/// fresh fit — printed so the shipped table can be updated by pasting.
pub fn render_builtin_rows(cal: &Calibration) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("builtin table (paste into Calibration::builtin):\n");
    for f in &cal.families {
        let fabric = match f.fabric {
            FabricClass::Xilinx => "Xilinx",
            FabricClass::Mao => "Mao",
            FabricClass::FullCrossbar => "FullCrossbar",
            FabricClass::Direct => "Direct",
        };
        let pattern = match f.pattern {
            Pattern::Scs => "Scs",
            Pattern::Ccs => "Ccs",
            Pattern::Scra => "Scra",
            Pattern::Ccra => "Ccra",
        };
        let _ = writeln!(
            s,
            "f({fabric}, {pattern}, {:.4}, {:.4}, {:.4}, {:.4}, {:.4}),",
            f.bw_scale, f.lat_scale, f.envelope.mean, f.envelope.p95, f.envelope.max
        );
    }
    s
}
