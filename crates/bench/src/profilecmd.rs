//! `repro profile` — per-phase wall-time attribution of both kernels.
//!
//! Wraps [`hbm_core::measure::measure`] (scalar) and
//! [`hbm_core::lockstep::measure_batch`] (lockstep) in a
//! [`hbm_core::profile`] window and reports where the loop time went:
//! gens-tick, fabric-tick, MC-tick, horizon-compute, queue-ops, and
//! lockstep-reconcile. The telescoping-lap design guarantees the phase
//! sums equal the measured window to the nanosecond
//! ([`PhaseReport::consistent`]); `--smoke` asserts it.
//!
//! Each kernel is also timed *unprofiled* (best-of-N, same warm-up
//! discipline as `simspeed`) so the report carries an honest
//! `observer_overhead_pct` — the cost of the `Instant::now()` stamps
//! themselves. A metrics-overhead pair (same grid with the registry
//! enabled vs disabled) rides along for the CI regression gate.

use std::time::Instant;

use hbm_core::profile::{self, Kernel, PhaseReport, PHASES};
use hbm_core::{metrics, SystemConfig};
use hbm_traffic::Workload;
use serde_json::Value;

/// One kernel's profiled window plus the unprofiled reference timing.
#[derive(Debug, Clone)]
pub struct ProfiledKernel {
    /// The phase attribution (self-consistent by construction).
    pub report: PhaseReport,
    /// Best-of-N wall time with the profiler off, in seconds.
    pub plain_wall_s: f64,
    /// Wall time of the profiled window, in seconds.
    pub profiled_wall_s: f64,
    /// `profiled_wall_s / plain_wall_s − 1`, in percent — the stamp
    /// cost. Budget in DESIGN.md §3.7.
    pub observer_overhead_pct: f64,
}

/// The registry-overhead pair: the same sweep with metrics recording on
/// vs off.
#[derive(Debug, Clone)]
pub struct MetricsOverhead {
    /// Best-of-N wall time with `metrics::enabled()` false, in seconds.
    pub plain_wall_s: f64,
    /// Best-of-N wall time with the registry enabled, in seconds.
    pub metrics_wall_s: f64,
    /// `metrics_wall_s / plain_wall_s − 1`, in percent. The CI smoke
    /// leg asserts this below 5 %; the true cost is a handful of atomic
    /// adds per *measurement* (never per cycle), so the headroom is
    /// enormous.
    pub overhead_pct: f64,
}

/// Everything `repro profile` measures.
#[derive(Debug, Clone)]
pub struct ProfileOut {
    /// The scalar kernel (`HbmSystem::run`) window.
    pub scalar: ProfiledKernel,
    /// The lockstep batched kernel window.
    pub lockstep: ProfiledKernel,
    /// Registry on/off cost over a sweep grid.
    pub metrics: MetricsOverhead,
}

/// Best-of-`repeats` wall time of `f`, with one untimed warm-up call.
fn wall_best_of<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Profiles one kernel: unprofiled best-of-N reference, then one
/// profiled window on the same thread.
fn profile_kernel<F: FnMut()>(kernel: Kernel, repeats: usize, mut run: F) -> ProfiledKernel {
    let plain_wall_s = wall_best_of(repeats, &mut run);
    // One profiled window. A single pass (not best-of) keeps the
    // attribution and the reported wall time the same measurement; the
    // reference above already absorbed warm-up effects.
    profile::begin(kernel);
    let t0 = Instant::now();
    run();
    let profiled_wall_s = t0.elapsed().as_secs_f64();
    let report = profile::end();
    assert_eq!(report.kernel, kernel);
    ProfiledKernel {
        report,
        plain_wall_s,
        profiled_wall_s,
        observer_overhead_pct: 100.0 * (profiled_wall_s / plain_wall_s.max(1e-12) - 1.0),
    }
}

/// Runs the full profile suite. `quick` shrinks the windows ~4× for CI.
pub fn run_profile(quick: bool) -> ProfileOut {
    let (warmup, cycles) = if quick { (500, 2_000) } else { (2_000, 8_000) };
    let repeats = if quick { 1 } else { 3 };
    let cfg = SystemConfig::xilinx();
    let wl = Workload::scs();

    let scalar = profile_kernel(Kernel::Scalar, repeats, || {
        let _ = hbm_core::measure::measure(&cfg, wl, warmup, cycles);
    });

    // Four lanes with distinct rotations: enough divergence that the
    // reconcile path (cross-lane min-horizon folds) actually runs.
    let lanes: Vec<Workload> =
        [0usize, 1, 2, 4].iter().map(|&r| Workload { rotation: r, ..wl }).collect();
    let lockstep = profile_kernel(Kernel::Lockstep, repeats, || {
        let _ = hbm_core::lockstep::measure_batch(&cfg, &lanes, warmup, cycles);
    });

    ProfileOut { scalar, lockstep, metrics: metrics_overhead(quick) }
}

/// Times the Fig. 4 grid with the metric registry enabled vs disabled
/// (cache pinned off, one worker — same isolation discipline as the
/// batched matrix). The true cost is a handful of atomic adds per
/// *measurement* — far below timing noise on a short run — so the
/// rounds interleave the two sides in ABBA order with best-of-N on each
/// (the `run_serve_overhead` discipline) to cancel clock drift rather
/// than report it as overhead. Restores the registry to its prior
/// enabled state.
pub fn metrics_overhead(quick: bool) -> MetricsOverhead {
    let (warmup, cycles) = if quick { (500, 1_500) } else { (2_000, 8_000) };
    let rounds = if quick { 4 } else { 6 };
    let grid = hbm_core::experiment::fig4_grid();
    let no_cache = hbm_core::ResultCache::disabled();
    let was_enabled = metrics::enabled();

    let run = |on: bool| {
        metrics::set_enabled(on);
        let out = hbm_core::batch::run_grid_with_cache(&grid, warmup, cycles, 1, &no_cache);
        assert_eq!(out.len(), grid.len());
    };
    let time = |on: bool, best: &mut f64| {
        let t0 = Instant::now();
        run(on);
        *best = best.min(t0.elapsed().as_secs_f64());
    };
    // Untimed warm-up of both sides (allocator growth, lazy metric
    // registration).
    run(false);
    run(true);
    let mut plain_wall_s = f64::INFINITY;
    let mut metrics_wall_s = f64::INFINITY;
    for round in 0..rounds {
        if round % 2 == 0 {
            time(false, &mut plain_wall_s);
            time(true, &mut metrics_wall_s);
        } else {
            time(true, &mut metrics_wall_s);
            time(false, &mut plain_wall_s);
        }
    }
    metrics::set_enabled(was_enabled);

    MetricsOverhead {
        plain_wall_s,
        metrics_wall_s,
        overhead_pct: 100.0 * (metrics_wall_s / plain_wall_s.max(1e-12) - 1.0),
    }
}

/// One kernel's JSON object: the [`PhaseReport`] fields plus the wall
/// timings and observer overhead.
fn kernel_json(k: &ProfiledKernel) -> Value {
    let Value::Map(mut fields) = k.report.to_json() else {
        unreachable!("PhaseReport::to_json returns a map");
    };
    fields.push(("plain_wall_s".to_string(), serde::value::to_value(&k.plain_wall_s)));
    fields.push(("profiled_wall_s".to_string(), serde::value::to_value(&k.profiled_wall_s)));
    fields.push((
        "observer_overhead_pct".to_string(),
        serde::value::to_value(&k.observer_overhead_pct),
    ));
    Value::Map(fields)
}

/// The whole suite as one JSON value (for `--json` and the
/// `BENCH_simspeed.json` fold-in).
pub fn to_json(out: &ProfileOut) -> Value {
    serde_json::json!({
        "scalar": kernel_json(&out.scalar),
        "lockstep": kernel_json(&out.lockstep),
        "metrics_overhead_pct": out.metrics.overhead_pct,
        "metrics_plain_wall_s": out.metrics.plain_wall_s,
        "metrics_wall_s": out.metrics.metrics_wall_s,
    })
}

/// Renders one kernel's attribution as an aligned text table.
fn render_kernel(k: &ProfiledKernel) -> String {
    let r = &k.report;
    let mut out = format!(
        "{} kernel: {:.6} s profiled ({} laps, observer overhead {:+.1}%)\n\
         phase                        ns    share\n",
        r.kernel.name(),
        k.profiled_wall_s,
        r.laps,
        k.observer_overhead_pct,
    );
    for p in PHASES {
        out.push_str(&format!(
            "  {:<18} {:>12} {:>7.1}%\n",
            p.name(),
            r.ns(p),
            100.0 * r.fraction(p)
        ));
    }
    out.push_str(&format!(
        "  {:<18} {:>12}   100.0%   (sum == total: {})\n",
        "total",
        r.total_ns,
        r.consistent()
    ));
    out
}

/// Renders the full suite as text.
pub fn render(out: &ProfileOut) -> String {
    format!(
        "Kernel phase profile (telescoping laps: phase sums equal measured\n\
         loop time exactly; see DESIGN.md §3.7)\n\n\
         {}\n{}\n\
         Metrics registry overhead (fig4 grid, registry on vs off):\n\
         {:.6} s off, {:.6} s on ({:+.2}%)\n",
        render_kernel(&out.scalar),
        render_kernel(&out.lockstep),
        out.metrics.plain_wall_s,
        out.metrics.metrics_wall_s,
        out.metrics.overhead_pct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_is_consistent() {
        let out = run_profile(true);
        assert!(out.scalar.report.consistent());
        assert!(out.lockstep.report.consistent());
        assert_eq!(out.scalar.report.kernel, Kernel::Scalar);
        assert_eq!(out.lockstep.report.kernel, Kernel::Lockstep);
        // The scalar kernel never touches the reconcile path; the
        // lockstep kernel must.
        assert_eq!(out.scalar.report.ns(profile::Phase::LockstepReconcile), 0);
        assert!(out.lockstep.report.ns(profile::Phase::LockstepReconcile) > 0);
        assert!(out.scalar.report.laps > 0);
    }

    #[test]
    fn json_carries_walls_and_overhead() {
        let out = run_profile(true);
        let v = to_json(&out);
        let scalar = v.get("scalar").expect("scalar section");
        assert!(matches!(scalar.get("kernel"), Some(Value::Str(s)) if s == "scalar"));
        assert!(scalar.get("plain_wall_s").is_some());
        assert!(scalar.get("observer_overhead_pct").is_some());
        assert!(v.get("metrics_overhead_pct").is_some());
    }
}
