//! The lockstep batch planner's zero-overhead fallback: grids with
//! nothing to batch — a single point, or every point on a distinct
//! topology — must route through the scalar path without constructing
//! any batched state at all. The witness is the process-wide
//! [`batches_built`] counter, which every [`BatchedSystem`]
//! construction increments; a grid that batches nothing must leave it
//! untouched. Kept as ONE test function so no concurrent test in this
//! binary can move the counter between observations.

use hbm_core::batch::{plan_batches, run_grid, set_batch_lanes, BatchTask};
use hbm_core::lockstep::batches_built;
use hbm_core::prelude::*;

#[test]
fn fallback_grids_build_no_batches_and_match_scalar() {
    // Batching explicitly ON (and wide) for the whole test.
    set_batch_lanes(16);

    let single = vec![(SystemConfig::xilinx(), Workload::scs())];
    let mixed = vec![
        (SystemConfig::xilinx(), Workload::scs()),
        (SystemConfig::mao(), Workload::scs()),
        (SystemConfig::direct(), Workload::scs()),
    ];

    // The planner itself refuses both shapes...
    assert_eq!(plan_batches(&single, 16, 4), None, "single-point grid must not plan batches");
    assert_eq!(plan_batches(&mixed, 16, 4), None, "all-distinct topologies must not plan batches");

    // ...so running them must not construct a single BatchedSystem.
    let before = batches_built();
    let single_rows = run_grid(&single, 300, 800, 1);
    let mixed_rows = run_grid(&mixed, 300, 800, 2);
    assert_eq!(batches_built(), before, "fallback grids must pay zero batched setup cost");
    assert_eq!(single_rows.len(), 1);
    assert_eq!(mixed_rows.len(), 3);

    // The fallback path is the scalar path: rows equal direct `measure`.
    let want = hbm_core::measure(&single[0].0, single[0].1, 300, 800);
    assert_eq!(
        serde_json::to_string(&single_rows[0]).unwrap(),
        serde_json::to_string(&want).unwrap(),
        "fallback row must be the scalar measurement"
    );

    // Control: a same-topology multi-point grid DOES build batches and
    // still matches the scalar rows byte for byte.
    let grid = vec![
        (SystemConfig::xilinx(), Workload::scs()),
        (SystemConfig::xilinx(), Workload { rotation: 4, ..Workload::scs() }),
        (SystemConfig::xilinx(), Workload { rotation: 8, ..Workload::scs() }),
    ];
    match plan_batches(&grid, 16, 1).as_deref() {
        Some([BatchTask::Lanes(idxs)]) => assert_eq!(idxs, &[0, 1, 2]),
        other => panic!("same-topology grid must plan one lane group, got {other:?}"),
    }
    let before = batches_built();
    let batched_rows = run_grid(&grid, 300, 800, 1);
    assert!(batches_built() > before, "same-topology grid must take the batched path");
    for (point, got) in grid.iter().zip(&batched_rows) {
        let want = hbm_core::measure(&point.0, point.1, 300, 800);
        assert_eq!(
            serde_json::to_string(got).unwrap(),
            serde_json::to_string(&want).unwrap(),
            "batched row diverged for {point:?}"
        );
    }

    set_batch_lanes(0);
}
