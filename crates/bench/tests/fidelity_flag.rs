//! The `--fidelity` tier selector must fail loudly: values outside the
//! CLI-stable set `quick|full|analytical` exit 2 with a usage message
//! instead of silently running at a default fidelity (a typo like
//! `--fidelity analytic` must never burn hours of cycle simulation).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Runs repro with `args`, returning (exit code, stderr).
fn run(args: &[&str]) -> (i32, String) {
    let out = repro().args(args).output().expect("spawn repro");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn fidelity_flag_rejects_garbage() {
    for bad in ["garbage", "analytic", "QUICK", "fast", ""] {
        let arg = format!("--fidelity={bad}");
        let (code, stderr) = run(&["fig4", "--json", &arg]);
        assert_eq!(code, 2, "--fidelity={bad:?} must exit 2; stderr: {stderr}");
        assert!(
            stderr.contains("quick|full|analytical"),
            "stderr must list the valid tiers: {stderr}"
        );
        assert!(stderr.contains("usage"), "stderr must show usage: {stderr}");
    }
}

#[test]
fn fidelity_flag_rejects_garbage_space_form() {
    let (code, stderr) = run(&["fig4", "--json", "--fidelity", "garbage"]);
    assert_eq!(code, 2, "--fidelity garbage must exit 2; stderr: {stderr}");
    assert!(stderr.contains("quick|full|analytical"), "stderr must list tiers: {stderr}");
}

#[test]
fn fidelity_flag_requires_a_value() {
    let (code, stderr) = run(&["fig4", "--json", "--fidelity"]);
    assert_eq!(code, 2, "bare --fidelity must exit 2; stderr: {stderr}");
    assert!(stderr.contains("usage"), "stderr must show usage: {stderr}");
}

#[test]
fn fidelity_flag_accepts_analytical() {
    let out =
        repro().args(["fig4", "--json", "--fidelity", "analytical"]).output().expect("spawn repro");
    assert_eq!(
        out.status.code(),
        Some(0),
        "--fidelity analytical must run; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("{"), "fig4 --json must emit JSON rows: {stdout}");
}
