//! The worker-count knobs must fail loudly: `--jobs` and `HBM_JOBS`
//! values that are not positive integers exit non-zero with a usage
//! message instead of silently falling back to a default thread count
//! (`--jobs 0` used to clear the override without a word — exactly the
//! typo this locks out).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Runs repro with `args`, returning (exit code, stderr).
fn run(args: &[&str], env: &[(&str, &str)]) -> (i32, String) {
    let mut cmd = repro();
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn repro");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn jobs_flag_rejects_zero() {
    let (code, stderr) = run(&["fig4", "--json", "--quick", "--jobs", "0"], &[]);
    assert_eq!(code, 2, "--jobs 0 must exit non-zero; stderr: {stderr}");
    assert!(stderr.contains("positive integer"), "stderr must explain: {stderr}");
}

#[test]
fn jobs_flag_rejects_garbage() {
    for bad in ["al1", "-2", "2.5", ""] {
        let arg = format!("--jobs={bad}");
        let (code, stderr) = run(&["fig4", "--json", "--quick", &arg], &[]);
        assert_eq!(code, 2, "--jobs={bad:?} must exit non-zero; stderr: {stderr}");
        assert!(stderr.contains("positive integer"), "stderr must explain: {stderr}");
    }
}

#[test]
fn jobs_flag_requires_a_value() {
    let (code, stderr) = run(&["fig4", "--json", "--quick", "--jobs"], &[]);
    assert_eq!(code, 2, "bare --jobs must exit non-zero; stderr: {stderr}");
    assert!(stderr.contains("usage"), "stderr must show usage: {stderr}");
}

#[test]
fn hbm_jobs_env_rejects_garbage() {
    // `serve` consults the worker budget before binding, so a bad
    // HBM_JOBS kills it immediately — no simulation, no open port.
    let (code, stderr) = run(&["serve", "--addr", "127.0.0.1:0"], &[("HBM_JOBS", "al1")]);
    assert_eq!(code, 2, "bad HBM_JOBS must exit non-zero; stderr: {stderr}");
    assert!(stderr.contains("HBM_JOBS"), "stderr must name the variable: {stderr}");
    assert!(stderr.contains("positive integer"), "stderr must explain: {stderr}");
}

#[test]
fn hbm_jobs_env_rejects_zero() {
    let (code, stderr) = run(&["serve", "--addr", "127.0.0.1:0"], &[("HBM_JOBS", "0")]);
    assert_eq!(code, 2, "HBM_JOBS=0 must exit non-zero; stderr: {stderr}");
    assert!(stderr.contains("positive integer"), "stderr must explain: {stderr}");
}

#[test]
fn valid_jobs_values_are_accepted() {
    // An experiment name that matches nothing: the flag machinery runs,
    // no simulation does, and a valid value sails through.
    let (code, stderr) = run(&["nothing", "--json", "--jobs", "2"], &[]);
    assert_eq!(code, 0, "valid --jobs must be accepted; stderr: {stderr}");
    let (code, stderr) = run(&["nothing", "--json"], &[("HBM_JOBS", "2")]);
    assert_eq!(code, 0, "valid HBM_JOBS must be accepted; stderr: {stderr}");
}
