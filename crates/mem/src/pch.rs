//! Pseudo-channel DRAM model: data bus, banks, turnaround, refresh.
//!
//! A pseudo-channel owns a 64-bit DDR data bus shared by reads and writes
//! (unlike the AXI side, which has independent channels — the asymmetry
//! behind paper Fig. 2) and a set of banks. Executing a burst:
//!
//! 1. outstanding refreshes block the bus for tRFC each,
//! 2. the burst is split at row boundaries,
//! 3. each segment waits for its bank (hit/closed/miss timing) and for
//!    the bus (previous occupancy + turnaround if the direction changed),
//! 4. the bus is then occupied for `bytes / 32 × t_beat`.
//!
//! Bank state lives *outside* the `PchDram` in a [`BankPool`]
//! (structure-of-arrays, see `bank.rs`) owned by whoever assembles the
//! system; every call that touches rows borrows the channel's unit as a
//! [`BanksMut`]. The `PchDram` itself carries only the small `Copy`
//! pieces of configuration the hot path reads ([`PchGeometry`],
//! [`Timings`], [`PagePolicy`]) — not a full [`HbmConfig`] clone.

use hbm_axi::{ClockDomain, Cycle, Dir};

use crate::address::{row_segments, PchAddress};
use crate::bank::{BanksMut, PageOutcome};
use crate::config::{HbmConfig, PagePolicy, PchGeometry, Timings};
use crate::stats::MemStats;

#[cfg(doc)]
use crate::bank::BankPool;

/// Timing result of one executed burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstTiming {
    /// Time the first data beat is on the bus.
    pub first_data_ns: f64,
    /// Time the last data beat leaves the bus.
    pub finish_ns: f64,
}

/// One pseudo-channel of HBM DRAM (bus, turnaround, refresh bookkeeping;
/// bank row state is borrowed per call from the owner's [`BankPool`]).
#[derive(Debug, Clone)]
pub struct PchDram {
    geom: PchGeometry,
    timings: Timings,
    page_policy: PagePolicy,
    bus_free_at: f64,
    last_dir: Option<Dir>,
    next_refresh_at: f64,
    /// Times of the four most recent ACTIVATE commands (ring buffer for
    /// the tFAW window; index 0 is the oldest).
    recent_activates: [f64; 4],
    stats: MemStats,
}

impl PchDram {
    /// A fresh pseudo-channel. `refresh_phase` staggers the first refresh
    /// (real controllers phase-shift refreshes across channels so they do
    /// not all stall simultaneously); pass the PCH index scaled by some
    /// fraction of tREFI.
    pub fn new(cfg: &HbmConfig, refresh_phase: f64) -> PchDram {
        PchDram {
            geom: cfg.geom(),
            timings: cfg.timings,
            page_policy: cfg.mc.page_policy,
            bus_free_at: 0.0,
            last_dir: None,
            next_refresh_at: refresh_phase + cfg.timings.t_refi,
            recent_activates: [f64::NEG_INFINITY; 4],
            stats: MemStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Clears statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// The channel's DRAM timing set.
    pub fn timings(&self) -> &Timings {
        &self.timings
    }

    /// Earliest time the data bus is free.
    pub fn bus_free_at(&self) -> f64 {
        self.bus_free_at
    }

    /// First cycle of `clock` at which a controller with the given
    /// issue-ahead window is past its gate (`bus_free_at ≤ now_ns +
    /// lookahead_ns`), i.e. allowed to issue the next burst.
    ///
    /// Deliberately one cycle early: the gate comparison is in float
    /// nanoseconds, and a next-event horizon may wake a sleeper early
    /// (one no-op tick) but never late (a missed issue slot would change
    /// simulated timing).
    pub fn gate_opens_at(&self, clock: ClockDomain, lookahead_ns: f64) -> Cycle {
        let target_ns = self.bus_free_at - lookahead_ns;
        if target_ns <= 0.0 {
            return 0;
        }
        clock.ns_to_cycles(target_ns).saturating_sub(1)
    }

    /// Whether an access to the given PCH offset would hit an open row
    /// (for FR-FCFS candidate ranking). Only the first row segment
    /// matters — bursts rarely span rows — so this is a single inline
    /// decode plus one load from the dense `open_row` array, with no
    /// segment vector materialised.
    #[inline]
    pub fn would_hit(&self, banks: &BanksMut, offset: u64) -> bool {
        let a = PchAddress::decode(&self.geom, offset);
        banks.classify(a.bank as usize, a.row) == PageOutcome::Hit
    }

    /// Executes one burst of `bytes` at PCH-local `offset`, starting no
    /// earlier than `now_ns`. Returns the burst's data timing.
    pub fn execute_burst(
        &mut self,
        banks: &mut BanksMut,
        now_ns: f64,
        dir: Dir,
        offset: u64,
        bytes: u64,
    ) -> BurstTiming {
        debug_assert!(bytes > 0 && bytes.is_multiple_of(32), "bursts are whole beats");
        debug_assert!(offset + bytes <= self.geom.pch_capacity, "burst beyond PCH");
        let t = self.timings;

        // Outstanding refreshes first: each blocks the bus for tRFC and
        // closes every row.
        let mut start = now_ns.max(self.bus_free_at);
        while start >= self.next_refresh_at {
            let ref_start = self.next_refresh_at.max(self.bus_free_at);
            self.bus_free_at = ref_start + t.t_rfc;
            self.next_refresh_at += t.t_refi;
            banks.close_all();
            self.stats.refreshes += 1;
            start = now_ns.max(self.bus_free_at);
        }

        // Bus turnaround when the direction changes.
        let turnaround = match (self.last_dir, dir) {
            (Some(Dir::Read), Dir::Write) => t.t_rtw,
            (Some(Dir::Write), Dir::Read) => t.t_wtr,
            _ => 0.0,
        };
        if turnaround > 0.0 {
            self.stats.turnarounds += 1;
        }
        let mut bus_at = self.bus_free_at.max(now_ns) + turnaround;

        let mut first_data = f64::INFINITY;
        for (a, seg) in row_segments(&self.geom, offset, bytes) {
            // Channel-level activate constraints: tRRD after the most
            // recent activate, tFAW after the fourth-most-recent.
            let activate_floor =
                (self.recent_activates[3] + t.t_rrd).max(self.recent_activates[0] + t.t_faw);
            // Activates are issued as soon as the request arrives and
            // overlap earlier segments' data transfer (bank parallelism).
            let (outcome, data_ready, activate) =
                banks.access(&t, a.bank as usize, now_ns, activate_floor, a.row);
            match outcome {
                PageOutcome::Hit => self.stats.page_hits += 1,
                PageOutcome::Closed => self.stats.page_closed += 1,
                PageOutcome::Miss => self.stats.page_misses += 1,
            }
            if let Some(act) = activate {
                self.recent_activates.rotate_left(1);
                self.recent_activates[3] = act;
            }
            let data_start = bus_at.max(data_ready);
            let beats = seg / 32;
            let data_end = data_start + beats as f64 * t.t_beat;
            self.stats.busy_ns += beats as f64 * t.t_beat;
            self.stats.stall_ns += data_start - bus_at;
            match self.page_policy {
                PagePolicy::Open => banks.note_data_end(a.bank as usize, data_end),
                PagePolicy::Closed => banks.auto_precharge(&t, a.bank as usize, data_end),
            }
            first_data = first_data.min(data_start);
            bus_at = data_end;
        }

        self.bus_free_at = bus_at;
        self.last_dir = Some(dir);
        match dir {
            Dir::Read => self.stats.bytes_read += bytes,
            Dir::Write => self.stats.bytes_written += bytes,
        }

        BurstTiming { first_data_ns: first_data, finish_ns: bus_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::BankPool;

    /// A channel plus its bank pool (one unit), as a system would own.
    fn pch_with(cfg: &HbmConfig) -> (PchDram, BankPool) {
        (PchDram::new(cfg, 0.0), BankPool::new(1, cfg.banks_per_pch))
    }

    fn pch() -> (PchDram, BankPool) {
        pch_with(&HbmConfig::default())
    }

    #[test]
    fn closed_page_first_access_latency() {
        let (mut p, mut pool) = pch();
        let t = *p.timings();
        let bt = p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, 0, 32);
        // First access: activate + CAS, then one beat.
        assert!((bt.first_data_ns - t.closed_page_ns()).abs() < 1e-9);
        assert!((bt.finish_ns - (t.closed_page_ns() + t.t_beat)).abs() < 1e-9);
    }

    #[test]
    fn sequential_stream_saturates_bus() {
        // Stream 64 KiB sequentially with 512 B bursts; the bus should be
        // busy ≥ 95 % of the time after the first activate (bank
        // interleaving hides subsequent activates).
        let (mut p, mut pool) = pch();
        let t = *p.timings();
        // Requests arrive at exactly the bus data rate (as the memory
        // controller's issue-ahead provides), so activates overlap data.
        let burst_time = 16.0 * t.t_beat;
        let total: u64 = 64 << 10;
        let mut finish = 0.0;
        let mut off = 0;
        let mut i = 0;
        while off < total {
            let bt =
                p.execute_burst(&mut pool.unit_mut(0), i as f64 * burst_time, Dir::Read, off, 512);
            finish = bt.finish_ns;
            off += 512;
            i += 1;
        }
        let ideal = total as f64 / 32.0 * t.t_beat;
        let eff = ideal / (finish - t.closed_page_ns());
        // Bank revisits pay a row miss (precharge is not issued early in
        // this model), so ~94 % is the expected steady state — the paper
        // itself measures 90.6 % for SCS.
        assert!(eff > 0.93, "streaming efficiency {eff}");
    }

    #[test]
    fn row_hits_recorded_for_sequential_same_row() {
        let (mut p, mut pool) = pch();
        p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, 0, 32);
        p.execute_burst(&mut pool.unit_mut(0), 100.0, Dir::Read, 32, 32);
        assert_eq!(p.stats().page_hits, 1);
        assert_eq!(p.stats().page_closed, 1);
    }

    #[test]
    fn random_rows_in_same_bank_pay_misses() {
        let c = HbmConfig::default();
        let (mut p, mut pool) = pch();
        // Same bank, different rows: stride = row_bytes * banks.
        let stride = c.row_bytes * c.banks_per_pch as u64;
        let mut now = 0.0;
        for i in 0..4 {
            let bt = p.execute_burst(&mut pool.unit_mut(0), now, Dir::Read, i * stride, 32);
            now = bt.finish_ns;
        }
        assert_eq!(p.stats().page_closed, 1);
        assert_eq!(p.stats().page_misses, 3);
    }

    #[test]
    fn turnaround_penalty_applied_on_direction_switch() {
        let (mut p, mut pool) = pch();
        let t = *p.timings();
        let r = p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, 0, 32);
        let w = p.execute_burst(&mut pool.unit_mut(0), r.finish_ns, Dir::Write, 32, 32);
        // Same row → hit; the write still waits the turnaround.
        assert!(w.first_data_ns >= r.finish_ns + t.t_rtw - 1e-9);
        assert_eq!(p.stats().turnarounds, 1);
        // Same direction again: no further penalty.
        let w2 = p.execute_burst(&mut pool.unit_mut(0), w.finish_ns, Dir::Write, 64, 32);
        assert!((w2.first_data_ns - w.finish_ns).abs() < 1e-9);
        assert_eq!(p.stats().turnarounds, 1);
    }

    #[test]
    fn refresh_blocks_bus_and_closes_rows() {
        let (mut p, mut pool) = pch();
        let t = *p.timings();
        p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, 0, 32);
        // Jump past the first refresh deadline.
        let late = t.t_refi + 1.0;
        let bt = p.execute_burst(&mut pool.unit_mut(0), late, Dir::Read, 0, 32);
        assert_eq!(p.stats().refreshes, 1);
        // The row was closed by refresh → a fresh activate is needed.
        assert_eq!(p.stats().page_closed, 2);
        assert!(bt.first_data_ns >= late + t.closed_page_ns() - 1e-9);
    }

    #[test]
    fn refresh_overhead_over_long_run_matches_derate() {
        // Stream continuously for ~20 refresh intervals and compare
        // achieved bandwidth to the configured effective bandwidth.
        let (mut p, mut pool) = pch();
        let t = *p.timings();
        let mut now = 0.0;
        let mut bytes = 0u64;
        let horizon = t.t_refi * 20.0;
        let mut off = 0u64;
        // Keep a small backlog so activates overlap, like the controller's
        // issue-ahead: arrival chases the bus, never leading by > 80 ns.
        let mut arrival = 0.0f64;
        while now < horizon {
            let bt =
                p.execute_burst(&mut pool.unit_mut(0), arrival, Dir::Read, off % (8 << 20), 512);
            now = bt.finish_ns;
            arrival = (now - 40.0).max(arrival);
            off += 512;
            bytes += 512;
        }
        let gbps = bytes as f64 / now;
        let eff = t.effective_bw_gbps();
        assert!((gbps - eff).abs() / eff < 0.03, "achieved {gbps} GB/s vs effective {eff} GB/s");
    }

    #[test]
    fn would_hit_reflects_open_row() {
        let (mut p, mut pool) = pch();
        assert!(!p.would_hit(&pool.unit_mut(0), 0));
        p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, 0, 32);
        assert!(p.would_hit(&pool.unit_mut(0), 512)); // same row
        assert!(!p.would_hit(&pool.unit_mut(0), 1024)); // next row, different bank, closed
    }

    #[test]
    fn trrd_spaces_activates() {
        let mut c = HbmConfig::default();
        c.timings.t_rrd = 10.0;
        c.timings.t_faw = 0.0;
        let (mut p, mut pool) = pch_with(&c);
        // Two simultaneous accesses to different banks: the second
        // activate must wait tRRD.
        let a = p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, 0, 32);
        let b = p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, 1024, 32); // bank 1
        let t = c.timings;
        assert!((a.first_data_ns - t.closed_page_ns()).abs() < 1e-9);
        assert!(
            b.first_data_ns >= 10.0 + t.closed_page_ns() - 1e-9,
            "second activate not tRRD-spaced: {}",
            b.first_data_ns
        );
    }

    #[test]
    fn tfaw_limits_activate_bursts() {
        let mut c = HbmConfig::default();
        c.timings.t_rrd = 0.0;
        c.timings.t_faw = 100.0;
        let (mut p, mut pool) = pch_with(&c);
        // Five activates to five banks at t = 0: the fifth must wait for
        // the tFAW window.
        let mut last = 0.0;
        for bank in 0..5u64 {
            let bt = p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Read, bank * 1024, 32);
            last = bt.first_data_ns;
        }
        let t = c.timings;
        assert!(
            last >= 100.0 + t.closed_page_ns() - 1e-9,
            "fifth activate inside the tFAW window: {last}"
        );
    }

    #[test]
    fn closed_page_policy_never_hits() {
        let mut c = HbmConfig::default();
        c.mc.page_policy = PagePolicy::Closed;
        let (mut p, mut pool) = pch_with(&c);
        let mut now = 0.0;
        for i in 0..8 {
            let bt = p.execute_burst(&mut pool.unit_mut(0), now, Dir::Read, i * 32, 32); // same row
            now = bt.finish_ns;
        }
        assert_eq!(p.stats().page_hits, 0, "closed policy cannot hit");
        assert_eq!(p.stats().page_closed, 8);
    }

    #[test]
    fn closed_page_policy_slower_on_sequential_streams() {
        let run = |policy| {
            let mut c = HbmConfig::default();
            c.mc.page_policy = policy;
            let (mut p, mut pool) = pch_with(&c);
            let burst_time = 16.0 * c.timings.t_beat;
            let mut finish = 0.0;
            for i in 0..64u64 {
                let bt = p.execute_burst(
                    &mut pool.unit_mut(0),
                    i as f64 * burst_time,
                    Dir::Read,
                    i * 512,
                    512,
                );
                finish = bt.finish_ns;
            }
            finish
        };
        let open = run(PagePolicy::Open);
        let closed = run(PagePolicy::Closed);
        assert!(
            closed > 1.1 * open,
            "closed-page should lose row locality: open {open}, closed {closed}"
        );
    }

    #[test]
    fn stats_reset() {
        let (mut p, mut pool) = pch();
        p.execute_burst(&mut pool.unit_mut(0), 0.0, Dir::Write, 0, 64);
        assert_eq!(p.stats().bytes_written, 64);
        p.reset_stats();
        assert_eq!(p.stats().bytes_written, 0);
    }
}
