//! DRAM bank state, stored structure-of-arrays.
//!
//! Each bank tracks which row (if any) is open and when it is next able
//! to deliver data. Timing is kept in nanoseconds — the bank's native
//! domain — and the page policy is *open page*: a row stays open after an
//! access until a conflicting access or a refresh closes it, so
//! consecutive accesses to the same row are hits.
//!
//! Bank state is not stored as a `Vec` of per-bank structs but as one
//! [`BankPool`]: five contiguous parallel arrays (`open_row` plus four
//! timing fields) covering every bank of every *unit* (pseudo-channel) an
//! owner holds — 32 units for the scalar system, `lanes × 32` laid out
//! lane-major for the lockstep kernel, mirroring the `StampedRing` /
//! `LaneRings` design of the queue substrate. The controller's hot
//! operations (`classify` for FR-FCFS ranking, refresh row-close, the
//! row-state walk of `execute_burst`) then touch dense cache lines
//! instead of pointer-chasing a heap of tiny structs. Mutable access
//! flows through two borrowed views: [`BanksViewMut`] (a contiguous run
//! of units, splittable for sharded/parallel execution) and [`BanksMut`]
//! (one unit, what `PchDram` operates on).

use crate::config::Timings;

/// Sentinel in the `open_row` array: no row open. Real row indices are
/// bounded by capacity/row size and can never reach `u64::MAX`.
const NO_ROW: u64 = u64::MAX;

/// Outcome of presenting an access to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (no row open); pays ACTIVATE + CAS.
    Closed,
    /// A different row was open; pays PRECHARGE + ACTIVATE + CAS.
    Miss,
}

/// Bank state for many units (pseudo-channels) in one structure-of-arrays
/// allocation. Unit `u`'s banks live at indices
/// `u * banks_per_unit .. (u + 1) * banks_per_unit` of every array, so an
/// owner that ticks its controllers in unit order walks each array
/// front to back.
#[derive(Debug, Clone)]
pub struct BankPool {
    units: usize,
    banks_per_unit: usize,
    open_row: Box<[u64]>,
    /// Earliest next activate (set by auto-precharge under the closed
    /// page policy).
    ready_at: Box<[f64]>,
    /// Time at which the currently open row's data can first appear on the
    /// bus (covers tRCD+tCL after an activate).
    row_data_ready: Box<[f64]>,
    /// Earliest time a precharge may start (tRAS after the activate).
    precharge_ok_at: Box<[f64]>,
    /// Time until which the open row is needed by in-flight column
    /// accesses; precharge must additionally wait tRTP past this.
    row_busy_until: Box<[f64]>,
}

impl BankPool {
    /// A pool of `units × banks_per_unit` banks, all closed.
    pub fn new(units: usize, banks_per_unit: usize) -> BankPool {
        let n = units * banks_per_unit;
        BankPool {
            units,
            banks_per_unit,
            open_row: vec![NO_ROW; n].into_boxed_slice(),
            ready_at: vec![0.0; n].into_boxed_slice(),
            row_data_ready: vec![0.0; n].into_boxed_slice(),
            precharge_ok_at: vec![0.0; n].into_boxed_slice(),
            row_busy_until: vec![0.0; n].into_boxed_slice(),
        }
    }

    /// Number of units (pseudo-channels) in the pool.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Banks per unit.
    pub fn banks_per_unit(&self) -> usize {
        self.banks_per_unit
    }

    /// Mutable view of one unit's banks.
    pub fn unit_mut(&mut self, unit: usize) -> BanksMut<'_> {
        self.view_mut().into_unit_mut(unit)
    }

    /// Mutable view over every unit (splittable with
    /// [`BanksViewMut::chunks_mut`]).
    pub fn view_mut(&mut self) -> BanksViewMut<'_> {
        BanksViewMut {
            units: self.units,
            banks_per_unit: self.banks_per_unit,
            open_row: &mut self.open_row,
            ready_at: &mut self.ready_at,
            row_data_ready: &mut self.row_data_ready,
            precharge_ok_at: &mut self.precharge_ok_at,
            row_busy_until: &mut self.row_busy_until,
        }
    }

    /// Splits the pool into disjoint contiguous views of
    /// `units_per_view` units each (must divide the unit count) — the
    /// lockstep kernel's per-lane decomposition.
    pub fn views_mut(&mut self, units_per_view: usize) -> impl Iterator<Item = BanksViewMut<'_>> {
        self.view_mut().chunks_mut(units_per_view)
    }
}

/// Mutable bank state for a contiguous run of units — the splittable
/// intermediate between a [`BankPool`] and the single-unit [`BanksMut`]
/// that `PchDram` operates on. Holds only slice borrows, so views of
/// disjoint unit ranges can be advanced on different threads.
#[derive(Debug)]
pub struct BanksViewMut<'a> {
    units: usize,
    banks_per_unit: usize,
    open_row: &'a mut [u64],
    ready_at: &'a mut [f64],
    row_data_ready: &'a mut [f64],
    precharge_ok_at: &'a mut [f64],
    row_busy_until: &'a mut [f64],
}

impl<'a> BanksViewMut<'a> {
    /// Number of units in this view.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Reborrows one unit's banks (view-local unit index).
    pub fn unit_mut(&mut self, unit: usize) -> BanksMut<'_> {
        let bpu = self.banks_per_unit;
        let r = unit * bpu..(unit + 1) * bpu;
        BanksMut {
            open_row: &mut self.open_row[r.clone()],
            ready_at: &mut self.ready_at[r.clone()],
            row_data_ready: &mut self.row_data_ready[r.clone()],
            precharge_ok_at: &mut self.precharge_ok_at[r.clone()],
            row_busy_until: &mut self.row_busy_until[r],
        }
    }

    /// Reborrows the whole view with a shorter lifetime — lets an owner
    /// split the same view repeatedly (e.g. once per barrier window).
    pub fn reborrow(&mut self) -> BanksViewMut<'_> {
        BanksViewMut {
            units: self.units,
            banks_per_unit: self.banks_per_unit,
            open_row: &mut *self.open_row,
            ready_at: &mut *self.ready_at,
            row_data_ready: &mut *self.row_data_ready,
            precharge_ok_at: &mut *self.precharge_ok_at,
            row_busy_until: &mut *self.row_busy_until,
        }
    }

    /// Consumes the view, yielding one unit's banks with the full view
    /// lifetime (view-local unit index).
    pub fn into_unit_mut(self, unit: usize) -> BanksMut<'a> {
        let bpu = self.banks_per_unit;
        let r = unit * bpu..(unit + 1) * bpu;
        BanksMut {
            open_row: &mut self.open_row[r.clone()],
            ready_at: &mut self.ready_at[r.clone()],
            row_data_ready: &mut self.row_data_ready[r.clone()],
            precharge_ok_at: &mut self.precharge_ok_at[r.clone()],
            row_busy_until: &mut self.row_busy_until[r],
        }
    }

    /// Splits into disjoint contiguous sub-views of `units_per_chunk`
    /// units each (must divide the view's unit count). Implemented as a
    /// zip of per-array `chunks_mut`, the same idiom as the lane-ring
    /// substrate, so each sub-view stays a set of plain slices.
    pub fn chunks_mut(self, units_per_chunk: usize) -> impl Iterator<Item = BanksViewMut<'a>> {
        assert!(units_per_chunk > 0, "chunks_mut: zero units per chunk");
        assert!(
            self.units.is_multiple_of(units_per_chunk),
            "chunks_mut: {} units not divisible by {units_per_chunk}",
            self.units,
        );
        let bpu = self.banks_per_unit;
        let n = units_per_chunk * bpu;
        self.open_row
            .chunks_mut(n)
            .zip(self.ready_at.chunks_mut(n))
            .zip(self.row_data_ready.chunks_mut(n))
            .zip(self.precharge_ok_at.chunks_mut(n))
            .zip(self.row_busy_until.chunks_mut(n))
            .map(
                move |(
                    (((open_row, ready_at), row_data_ready), precharge_ok_at),
                    row_busy_until,
                )| {
                    BanksViewMut {
                        units: units_per_chunk,
                        banks_per_unit: bpu,
                        open_row,
                        ready_at,
                        row_data_ready,
                        precharge_ok_at,
                        row_busy_until,
                    }
                },
            )
    }
}

/// Mutable bank state for one unit (pseudo-channel): the slices of the
/// pool's parallel arrays covering that unit's banks, plus the DRAM
/// row-management arithmetic that used to live on a per-bank struct.
#[derive(Debug)]
pub struct BanksMut<'a> {
    open_row: &'a mut [u64],
    ready_at: &'a mut [f64],
    row_data_ready: &'a mut [f64],
    precharge_ok_at: &'a mut [f64],
    row_busy_until: &'a mut [f64],
}

impl BanksMut<'_> {
    /// Number of banks in the unit.
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// `true` when the unit has no banks (never in practice; present for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// The currently open row of `bank`, if any.
    #[inline]
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        let r = self.open_row[bank];
        if r == NO_ROW {
            None
        } else {
            Some(r)
        }
    }

    /// Whether an access to `(bank, row)` at this moment would be a hit,
    /// closed access, or miss — without changing state. Used by FR-FCFS
    /// scheduling to rank candidates; the hot path is one load and two
    /// compares against the dense `open_row` array.
    #[inline]
    pub fn classify(&self, bank: usize, row: u64) -> PageOutcome {
        let open = self.open_row[bank];
        if open == row {
            PageOutcome::Hit
        } else if open == NO_ROW {
            PageOutcome::Closed
        } else {
            PageOutcome::Miss
        }
    }

    /// Performs the row-management part of an access to `(bank, row)`
    /// starting no earlier than `now` ns. `activate_floor` is the
    /// channel-level earliest-activate constraint (tRRD / tFAW, computed
    /// by the PCH). Returns `(outcome, data_ready, activate)` where
    /// `data_ready` is the earliest time data can be on the bus and
    /// `activate` the ACTIVATE command time, if one was issued. The
    /// data-bus occupancy itself is handled by the PCH.
    pub fn access(
        &mut self,
        t: &Timings,
        bank: usize,
        now: f64,
        activate_floor: f64,
        row: u64,
    ) -> (PageOutcome, f64, Option<f64>) {
        let outcome = self.classify(bank, row);
        match outcome {
            PageOutcome::Hit => (outcome, now.max(self.row_data_ready[bank]), None),
            PageOutcome::Closed => {
                let activate = now.max(activate_floor).max(self.ready_at[bank]);
                self.open_row[bank] = row;
                self.precharge_ok_at[bank] = activate + t.t_ras;
                self.row_data_ready[bank] = activate + t.t_rcd + t.t_cl;
                (outcome, self.row_data_ready[bank], Some(activate))
            }
            PageOutcome::Miss => {
                // Precharge may not start before tRAS has elapsed, nor
                // before the in-flight column accesses of the old row
                // have completed (plus tRTP).
                let precharge =
                    now.max(self.precharge_ok_at[bank]).max(self.row_busy_until[bank] + t.t_rtp);
                let activate = (precharge + t.t_rp).max(activate_floor);
                self.open_row[bank] = row;
                self.precharge_ok_at[bank] = activate + t.t_ras;
                self.row_data_ready[bank] = activate + t.t_rcd + t.t_cl;
                (outcome, self.row_data_ready[bank], Some(activate))
            }
        }
    }

    /// Records that a column access to `bank`'s open row completes at `t`
    /// (its data leaves the bus then); the row may not be precharged
    /// earlier.
    #[inline]
    pub fn note_data_end(&mut self, bank: usize, t: f64) {
        self.row_busy_until[bank] = self.row_busy_until[bank].max(t);
    }

    /// Auto-precharges `bank` after an access completing at `data_end`
    /// (closed page policy): the row closes and the next activate must
    /// wait for tRTP + tRP past the data (and tRAS from the activate).
    pub fn auto_precharge(&mut self, t: &Timings, bank: usize, data_end: f64) {
        let precharge = (data_end + t.t_rtp).max(self.precharge_ok_at[bank]);
        self.open_row[bank] = NO_ROW;
        self.ready_at[bank] = precharge + t.t_rp;
    }

    /// Closes the open row of `bank` (refresh does this to every bank).
    #[inline]
    pub fn close(&mut self, bank: usize) {
        self.open_row[bank] = NO_ROW;
    }

    /// Closes every bank's open row — one dense fill of the contiguous
    /// `open_row` slice (the refresh path).
    #[inline]
    pub fn close_all(&mut self) {
        self.open_row.fill(NO_ROW);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timings {
        Timings::default()
    }

    /// One-bank pool: the per-bank arithmetic tests drive bank 0.
    fn one() -> BankPool {
        BankPool::new(1, 1)
    }

    #[test]
    fn closed_access_pays_rcd_plus_cl() {
        let mut pool = one();
        let mut b = pool.unit_mut(0);
        let (o, ready, act) = b.access(&t(), 0, 100.0, 0.0, 5);
        assert_eq!(act, Some(100.0));
        assert_eq!(o, PageOutcome::Closed);
        assert!((ready - (100.0 + 28.0)).abs() < 1e-9);
        assert_eq!(b.open_row(0), Some(5));
    }

    #[test]
    fn hit_is_immediate_after_first_data() {
        let mut pool = one();
        let mut b = pool.unit_mut(0);
        let (_, first, _) = b.access(&t(), 0, 0.0, 0.0, 5);
        let (o, ready, act) = b.access(&t(), 0, first + 10.0, 0.0, 5);
        assert_eq!(act, None);
        assert_eq!(o, PageOutcome::Hit);
        assert!((ready - (first + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn hit_before_row_ready_waits() {
        let mut pool = one();
        let mut b = pool.unit_mut(0);
        let (_, first, _) = b.access(&t(), 0, 0.0, 0.0, 5);
        // A second access issued immediately still waits for the row.
        let (o, ready, _) = b.access(&t(), 0, 1.0, 0.0, 5);
        assert_eq!(o, PageOutcome::Hit);
        assert!((ready - first).abs() < 1e-9);
    }

    #[test]
    fn miss_pays_precharge_activate_cas_and_respects_tras() {
        let tm = t();
        let mut pool = one();
        let mut b = pool.unit_mut(0);
        b.access(&tm, 0, 0.0, 0.0, 1); // activate at 0, precharge_ok at tRAS=33
                                       // Conflicting access at 5 ns: precharge must wait until 33.
        let (o, ready, _) = b.access(&tm, 0, 5.0, 0.0, 2);
        assert_eq!(o, PageOutcome::Miss);
        let expect = 33.0 + tm.t_rp + tm.t_rcd + tm.t_cl;
        assert!((ready - expect).abs() < 1e-9, "ready {ready} expect {expect}");
        assert_eq!(b.open_row(0), Some(2));
    }

    #[test]
    fn miss_after_tras_starts_immediately() {
        let tm = t();
        let mut pool = one();
        let mut b = pool.unit_mut(0);
        b.access(&tm, 0, 0.0, 0.0, 1);
        let (o, ready, _) = b.access(&tm, 0, 100.0, 0.0, 2);
        assert_eq!(o, PageOutcome::Miss);
        let expect = 100.0 + tm.t_rp + tm.t_rcd + tm.t_cl;
        assert!((ready - expect).abs() < 1e-9);
    }

    #[test]
    fn close_resets_to_closed_state() {
        let tm = t();
        let mut pool = one();
        let mut b = pool.unit_mut(0);
        b.access(&tm, 0, 0.0, 0.0, 1);
        b.close(0);
        assert_eq!(b.open_row(0), None);
        let (o, _, _) = b.access(&tm, 0, 200.0, 0.0, 1);
        assert_eq!(o, PageOutcome::Closed);
    }

    #[test]
    fn classify_does_not_mutate() {
        let tm = t();
        let mut pool = one();
        let mut b = pool.unit_mut(0);
        b.access(&tm, 0, 0.0, 0.0, 1);
        assert_eq!(b.classify(0, 1), PageOutcome::Hit);
        assert_eq!(b.classify(0, 2), PageOutcome::Miss);
        assert_eq!(b.open_row(0), Some(1));
    }

    #[test]
    fn units_are_disjoint() {
        let tm = t();
        let mut pool = BankPool::new(3, 4);
        pool.unit_mut(1).access(&tm, 2, 0.0, 0.0, 7);
        assert_eq!(pool.unit_mut(1).open_row(2), Some(7));
        for u in [0, 2] {
            let unit = pool.unit_mut(u);
            for bank in 0..4 {
                assert_eq!(unit.open_row(bank), None, "unit {u} bank {bank}");
            }
        }
    }

    #[test]
    fn views_split_units_contiguously() {
        let tm = t();
        let mut pool = BankPool::new(4, 2);
        // Mark bank 1 of every unit with the unit index as the row.
        for u in 0..4 {
            pool.unit_mut(u).access(&tm, 1, 0.0, 0.0, u as u64 + 10);
        }
        let views: Vec<_> = pool.views_mut(2).collect();
        assert_eq!(views.len(), 2);
        let mut seen = Vec::new();
        for mut v in views {
            assert_eq!(v.units(), 2);
            for local in 0..2 {
                seen.push(v.unit_mut(local).open_row(1).unwrap());
            }
        }
        assert_eq!(seen, vec![10, 11, 12, 13]);
    }

    #[test]
    fn close_all_closes_only_this_unit() {
        let tm = t();
        let mut pool = BankPool::new(2, 3);
        pool.unit_mut(0).access(&tm, 0, 0.0, 0.0, 1);
        pool.unit_mut(1).access(&tm, 0, 0.0, 0.0, 2);
        pool.unit_mut(0).close_all();
        assert_eq!(pool.unit_mut(0).open_row(0), None);
        assert_eq!(pool.unit_mut(1).open_row(0), Some(2));
    }
}
