//! DRAM bank state machine.
//!
//! Each bank tracks which row (if any) is open and when it is next able
//! to deliver data. Timing is kept in nanoseconds — the bank's native
//! domain — and the page policy is *open page*: a row stays open after an
//! access until a conflicting access or a refresh closes it, so
//! consecutive accesses to the same row are hits.

use crate::config::Timings;

/// Outcome of presenting an access to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (no row open); pays ACTIVATE + CAS.
    Closed,
    /// A different row was open; pays PRECHARGE + ACTIVATE + CAS.
    Miss,
}

/// One DRAM bank.
#[derive(Debug, Clone)]
pub struct Bank {
    open_row: Option<u64>,
    /// Earliest next activate (set by auto-precharge under the closed
    /// page policy).
    ready_at: f64,
    /// Time at which the currently open row's data can first appear on the
    /// bus (covers tRCD+tCL after an activate).
    row_data_ready: f64,
    /// Earliest time a precharge may start (tRAS after the activate).
    precharge_ok_at: f64,
    /// Time until which the open row is needed by in-flight column
    /// accesses; precharge must additionally wait tRTP past this.
    row_busy_until: f64,
}

impl Bank {
    /// A bank with no row open.
    pub fn new() -> Bank {
        Bank {
            open_row: None,
            ready_at: 0.0,
            row_data_ready: 0.0,
            precharge_ok_at: 0.0,
            row_busy_until: 0.0,
        }
    }

    /// The currently open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether an access to `row` at this moment would be a hit, closed
    /// access, or miss — without changing state. Used by FR-FCFS
    /// scheduling to rank candidates.
    pub fn classify(&self, row: u64) -> PageOutcome {
        match self.open_row {
            Some(r) if r == row => PageOutcome::Hit,
            Some(_) => PageOutcome::Miss,
            None => PageOutcome::Closed,
        }
    }

    /// Performs the row-management part of an access to `row` starting no
    /// earlier than `now` ns. `activate_floor` is the channel-level
    /// earliest-activate constraint (tRRD / tFAW, computed by the PCH).
    /// Returns `(outcome, data_ready, activate)` where `data_ready` is
    /// the earliest time data can be on the bus and `activate` the
    /// ACTIVATE command time, if one was issued. The data-bus occupancy
    /// itself is handled by the PCH.
    pub fn access(
        &mut self,
        t: &Timings,
        now: f64,
        activate_floor: f64,
        row: u64,
    ) -> (PageOutcome, f64, Option<f64>) {
        let outcome = self.classify(row);
        match outcome {
            PageOutcome::Hit => (outcome, now.max(self.row_data_ready), None),
            PageOutcome::Closed => {
                let activate = now.max(activate_floor).max(self.ready_at);
                self.open_row = Some(row);
                self.precharge_ok_at = activate + t.t_ras;
                self.row_data_ready = activate + t.t_rcd + t.t_cl;
                (outcome, self.row_data_ready, Some(activate))
            }
            PageOutcome::Miss => {
                // Precharge may not start before tRAS has elapsed, nor
                // before the in-flight column accesses of the old row
                // have completed (plus tRTP).
                let precharge = now.max(self.precharge_ok_at).max(self.row_busy_until + t.t_rtp);
                let activate = (precharge + t.t_rp).max(activate_floor);
                self.open_row = Some(row);
                self.precharge_ok_at = activate + t.t_ras;
                self.row_data_ready = activate + t.t_rcd + t.t_cl;
                (outcome, self.row_data_ready, Some(activate))
            }
        }
    }

    /// Records that a column access to the open row completes at `t`
    /// (its data leaves the bus then); the row may not be precharged
    /// earlier.
    pub fn note_data_end(&mut self, t: f64) {
        self.row_busy_until = self.row_busy_until.max(t);
    }

    /// Auto-precharges after an access completing at `data_end` (closed
    /// page policy): the row closes and the next activate must wait for
    /// tRTP + tRP past the data (and tRAS from the activate).
    pub fn auto_precharge(&mut self, t: &Timings, data_end: f64) {
        let precharge = (data_end + t.t_rtp).max(self.precharge_ok_at);
        self.open_row = None;
        self.ready_at = precharge + t.t_rp;
    }

    /// Closes the open row (refresh does this to every bank).
    pub fn close(&mut self) {
        self.open_row = None;
    }
}

impl Default for Bank {
    fn default() -> Bank {
        Bank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timings {
        Timings::default()
    }

    #[test]
    fn closed_access_pays_rcd_plus_cl() {
        let mut b = Bank::new();
        let (o, ready, act) = b.access(&t(), 100.0, 0.0, 5);
        assert_eq!(act, Some(100.0));
        assert_eq!(o, PageOutcome::Closed);
        assert!((ready - (100.0 + 28.0)).abs() < 1e-9);
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn hit_is_immediate_after_first_data() {
        let mut b = Bank::new();
        let (_, first, _) = b.access(&t(), 0.0, 0.0, 5);
        let (o, ready, act) = b.access(&t(), first + 10.0, 0.0, 5);
        assert_eq!(act, None);
        assert_eq!(o, PageOutcome::Hit);
        assert!((ready - (first + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn hit_before_row_ready_waits() {
        let mut b = Bank::new();
        let (_, first, _) = b.access(&t(), 0.0, 0.0, 5);
        // A second access issued immediately still waits for the row.
        let (o, ready, _) = b.access(&t(), 1.0, 0.0, 5);
        assert_eq!(o, PageOutcome::Hit);
        assert!((ready - first).abs() < 1e-9);
    }

    #[test]
    fn miss_pays_precharge_activate_cas_and_respects_tras() {
        let tm = t();
        let mut b = Bank::new();
        b.access(&tm, 0.0, 0.0, 1); // activate at 0, precharge_ok at tRAS=33
                                    // Conflicting access at 5 ns: precharge must wait until 33.
        let (o, ready, _) = b.access(&tm, 5.0, 0.0, 2);
        assert_eq!(o, PageOutcome::Miss);
        let expect = 33.0 + tm.t_rp + tm.t_rcd + tm.t_cl;
        assert!((ready - expect).abs() < 1e-9, "ready {ready} expect {expect}");
        assert_eq!(b.open_row(), Some(2));
    }

    #[test]
    fn miss_after_tras_starts_immediately() {
        let tm = t();
        let mut b = Bank::new();
        b.access(&tm, 0.0, 0.0, 1);
        let (o, ready, _) = b.access(&tm, 100.0, 0.0, 2);
        assert_eq!(o, PageOutcome::Miss);
        let expect = 100.0 + tm.t_rp + tm.t_rcd + tm.t_cl;
        assert!((ready - expect).abs() < 1e-9);
    }

    #[test]
    fn close_resets_to_closed_state() {
        let tm = t();
        let mut b = Bank::new();
        b.access(&tm, 0.0, 0.0, 1);
        b.close();
        assert_eq!(b.open_row(), None);
        let (o, _, _) = b.access(&tm, 200.0, 0.0, 1);
        assert_eq!(o, PageOutcome::Closed);
    }

    #[test]
    fn classify_does_not_mutate() {
        let tm = t();
        let mut b = Bank::new();
        b.access(&tm, 0.0, 0.0, 1);
        assert_eq!(b.classify(1), PageOutcome::Hit);
        assert_eq!(b.classify(2), PageOutcome::Miss);
        assert_eq!(b.open_row(), Some(1));
    }
}
