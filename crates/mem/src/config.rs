//! Configuration of the HBM memory subsystem.
//!
//! Defaults model the two 4-Hi HBM2 stacks of a Xilinx XCVU37P: 32
//! pseudo-channels of 256 MiB each (8 GiB total), 14.4 GB/s raw per PCH.
//! Timing values are representative HBM2 datasheet numbers; the
//! reproduction targets the *shape* of the paper's results, and the
//! anchors (effective ≈ 13.0–13.3 GB/s per PCH, ~7 % refresh derate)
//! follow from these values rather than being hard-coded.

use serde::{Deserialize, Serialize};

/// DRAM timing parameters in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Timings {
    /// Row-to-column delay: ACTIVATE → first READ/WRITE.
    pub t_rcd: f64,
    /// Row precharge time: PRECHARGE → next ACTIVATE.
    pub t_rp: f64,
    /// CAS latency: READ command → first data.
    pub t_cl: f64,
    /// Minimum row-active time: ACTIVATE → PRECHARGE.
    pub t_ras: f64,
    /// Data-bus time per 32-byte beat (64-bit DDR pseudo-channel at
    /// 900 MHz → 14.4 GB/s → 2.222 ns per 32 B).
    pub t_beat: f64,
    /// Bus turnaround when switching write→read.
    pub t_wtr: f64,
    /// Read/write-to-precharge delay: the open row may only be
    /// precharged once the last column access to it has completed.
    pub t_rtp: f64,
    /// Minimum delay between two ACTIVATE commands in the same
    /// pseudo-channel (different banks).
    pub t_rrd: f64,
    /// Four-activate window: at most four ACTIVATEs may issue within a
    /// rolling window of this length.
    pub t_faw: f64,
    /// Bus turnaround when switching read→write.
    pub t_rtw: f64,
    /// Average refresh interval (one REF command per tREFI).
    pub t_refi: f64,
    /// Refresh cycle time (bus blocked per REF).
    pub t_rfc: f64,
}

impl Default for Timings {
    fn default() -> Timings {
        Timings {
            t_rcd: 14.0,
            t_rp: 14.0,
            t_cl: 14.0,
            t_ras: 33.0,
            t_beat: 32.0 / 14.4, // ≈ 2.222 ns
            t_wtr: 8.0,
            t_rtw: 8.0,
            t_rtp: 7.5,
            t_rrd: 4.0,
            t_faw: 20.0,
            t_refi: 3900.0,
            t_rfc: 260.0,
        }
    }
}

impl Timings {
    /// Raw per-PCH bandwidth implied by the beat time, in GB/s.
    pub fn raw_bw_gbps(&self) -> f64 {
        32.0 / self.t_beat
    }

    /// Fraction of bus time lost to refresh (tRFC / tREFI).
    pub fn refresh_overhead(&self) -> f64 {
        self.t_rfc / self.t_refi
    }

    /// Effective per-PCH bandwidth after refresh derating, in GB/s.
    /// With the defaults this is ≈ 13.4 GB/s, bracketing the paper's
    /// quoted 7–9 % below 14.4 GB/s.
    pub fn effective_bw_gbps(&self) -> f64 {
        self.raw_bw_gbps() * (1.0 - self.refresh_overhead())
    }

    /// Closed-page access time: ACTIVATE → first data (tRCD + tCL).
    pub fn closed_page_ns(&self) -> f64 {
        self.t_rcd + self.t_cl
    }

    /// Worst-case row-miss overhead: PRECHARGE + ACTIVATE + CAS.
    pub fn row_miss_ns(&self) -> f64 {
        self.t_rp + self.t_rcd + self.t_cl
    }
}

/// How PCH-local addresses map onto (bank, row, column) — the DRAM
/// address-mapping axis Wang et al. (Shuhai) benchmark on the Xilinx
/// controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressMapPolicy {
    /// Consecutive rows map to consecutive banks (default): a linear
    /// stream activates banks round-robin, hiding row opens.
    RowInterleaved,
    /// Each bank owns a contiguous slice of the channel: a linear stream
    /// stays in one bank and serialises on row cycles — the pathological
    /// corner the default exists to avoid.
    BankContiguous,
}

/// DRAM row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep rows open after an access (default; rewards spatial
    /// locality, the policy Wang et al. found best and the paper
    /// adopts).
    Open,
    /// Auto-precharge after every access (uniform latency, no hits —
    /// available for the page-policy ablation).
    Closed,
}

/// Memory-controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// Request-queue depth in transactions.
    pub queue_depth: usize,
    /// Scheduling window: how many queued requests the controller examines
    /// when picking the next DRAM job (1 = strict FIFO; larger windows
    /// enable FR-FCFS row-hit-first scheduling).
    pub window: usize,
    /// Maximum same-direction requests serviced in a row before the other
    /// direction is given priority (bounds turnaround amortisation against
    /// starvation).
    pub dir_batch: usize,
    /// Pipeline latency through the controller on the request path, in
    /// accelerator cycles (command decode, protocol conversion).
    pub req_latency: u64,
    /// Pipeline latency on the response path, in accelerator cycles.
    pub resp_latency: u64,
    /// Response-queue depth in completions (back-pressures the DRAM when
    /// the return network cannot drain data fast enough).
    pub resp_depth: usize,
    /// Additional read-data latency through the controller PHY and clock
    /// domain crossings, in nanoseconds. Pure pipeline offset: it delays
    /// read completions without occupying the DRAM bus. (Xilinx's HBM
    /// controller+PHY dominates the 160 ns closed-page read latency the
    /// paper measures; raw DRAM timing accounts for only ~28 ns.)
    pub phy_read_ns: f64,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// How far ahead of real time the controller may issue DRAM jobs, in
    /// nanoseconds of accumulated data-bus backlog. Issue-ahead is what
    /// lets row activates of later jobs overlap data transfer of earlier
    /// ones (bank-level parallelism); too large a value would decouple
    /// back-pressure from the DRAM.
    pub lookahead_ns: f64,
}

impl McConfig {
    /// The configuration Wang et al. (Shuhai, the paper's reference
    /// \[13\]) found best and the paper adopts: open page, deep FR-FCFS
    /// reordering, direction batching.
    pub fn throughput_optimised() -> McConfig {
        McConfig::default()
    }

    /// A latency-optimised controller: strict FIFO (no reordering),
    /// closed page for uniform access times, no issue-ahead. Trades
    /// throughput for predictability — the opposite corner of the
    /// configuration space Shuhai benchmarks.
    pub fn latency_optimised() -> McConfig {
        McConfig {
            window: 1,
            dir_batch: 1,
            page_policy: PagePolicy::Closed,
            lookahead_ns: 0.0,
            ..McConfig::default()
        }
    }
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            queue_depth: 32,
            window: 16,
            dir_batch: 8,
            req_latency: 13,
            resp_latency: 4,
            resp_depth: 16,
            phy_read_ns: 50.0,
            page_policy: PagePolicy::Open,
            lookahead_ns: 80.0,
        }
    }
}

/// The geometry one pseudo-channel's address decode needs: a small
/// `Copy` subset of [`HbmConfig`] kept inline in every [`crate::PchDram`]
/// so the hot path never chases a full config clone (32 PCHs × K
/// lockstep lanes would otherwise each carry ~200 bytes of fabric-level
/// fields they never read).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PchGeometry {
    /// Capacity per pseudo-channel in bytes.
    pub pch_capacity: u64,
    /// Row (DRAM page) size in bytes.
    pub row_bytes: u64,
    /// Banks per pseudo-channel.
    pub banks_per_pch: usize,
    /// Bank/row/column address-mapping policy.
    pub addr_map: AddressMapPolicy,
}

impl PchGeometry {
    /// Rows per bank implied by the geometry.
    pub fn rows_per_bank(&self) -> u64 {
        self.pch_capacity / (self.row_bytes * self.banks_per_pch as u64)
    }
}

/// Full HBM subsystem geometry + timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of pseudo-channels (32 on the XCVU37P's two stacks).
    pub num_pch: usize,
    /// Capacity per pseudo-channel in bytes (256 MiB on the XCVU37P).
    pub pch_capacity: u64,
    /// Banks per pseudo-channel.
    pub banks_per_pch: usize,
    /// Row (DRAM page) size in bytes per pseudo-channel.
    pub row_bytes: u64,
    /// Bank/row/column address-mapping policy.
    pub addr_map: AddressMapPolicy,
    /// DRAM timing set.
    pub timings: Timings,
    /// Memory-controller configuration.
    pub mc: McConfig,
}

impl Default for HbmConfig {
    fn default() -> HbmConfig {
        HbmConfig {
            num_pch: 32,
            pch_capacity: 256 << 20,
            banks_per_pch: 16,
            row_bytes: 1024,
            addr_map: AddressMapPolicy::RowInterleaved,
            timings: Timings::default(),
            mc: McConfig::default(),
        }
    }
}

impl HbmConfig {
    /// A device with `stacks` 4-Hi HBM2 stacks (16 pseudo-channels and
    /// 4 GiB each; the XCVU37P has 2). Supports the paper's future-work
    /// scaling study ("future FPGAs with more HBM stacks … would make it
    /// possible to increase Ccomp even further").
    pub fn with_stacks(stacks: usize) -> HbmConfig {
        assert!(stacks >= 1);
        HbmConfig { num_pch: 16 * stacks, ..HbmConfig::default() }
    }

    /// Total device capacity in bytes (8 GiB with the defaults).
    pub fn total_capacity(&self) -> u64 {
        self.num_pch as u64 * self.pch_capacity
    }

    /// Theoretical device bandwidth over all PCHs in GB/s
    /// (460.8 GB/s with the defaults — the paper's "460 GB/s").
    pub fn theoretical_bw_gbps(&self) -> f64 {
        self.num_pch as f64 * self.timings.raw_bw_gbps()
    }

    /// Effective device bandwidth after refresh derating in GB/s.
    pub fn effective_bw_gbps(&self) -> f64 {
        self.num_pch as f64 * self.timings.effective_bw_gbps()
    }

    /// Rows per bank implied by geometry.
    pub fn rows_per_bank(&self) -> u64 {
        self.pch_capacity / (self.row_bytes * self.banks_per_pch as u64)
    }

    /// The per-PCH address-decode geometry as a small `Copy` value.
    pub fn geom(&self) -> PchGeometry {
        PchGeometry {
            pch_capacity: self.pch_capacity,
            row_bytes: self.row_bytes,
            banks_per_pch: self.banks_per_pch,
            addr_map: self.addr_map,
        }
    }

    /// The refresh-phase offset (in nanoseconds) of pseudo-channel
    /// `port`: refresh windows are staggered evenly across the device so
    /// all channels never pause simultaneously. Every system assembly —
    /// scalar or batched — must derive controller phases from this one
    /// formula, or their measurements diverge.
    pub fn refresh_phase(&self, port: usize) -> f64 {
        port as f64 / self.num_pch as f64 * self.timings.t_refi
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_pch == 0 {
            return Err("num_pch must be > 0".into());
        }
        if self.banks_per_pch == 0 {
            return Err("banks_per_pch must be > 0".into());
        }
        if !self.row_bytes.is_power_of_two() || self.row_bytes < 64 {
            return Err(format!("row_bytes {} must be a power of two ≥ 64", self.row_bytes));
        }
        if !self.pch_capacity.is_multiple_of(self.row_bytes * self.banks_per_pch as u64) {
            return Err("pch_capacity must be a whole number of rows per bank".into());
        }
        if self.mc.window == 0 || self.mc.queue_depth == 0 || self.mc.resp_depth == 0 {
            return Err("controller queue sizes must be > 0".into());
        }
        if self.mc.window > self.mc.queue_depth {
            return Err("scheduling window cannot exceed queue depth".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_device() {
        let c = HbmConfig::default();
        c.validate().unwrap();
        assert_eq!(c.num_pch, 32);
        assert_eq!(c.total_capacity(), 8 << 30);
        let raw = c.theoretical_bw_gbps();
        assert!((raw - 460.8).abs() < 0.1, "raw {raw}");
    }

    #[test]
    fn refresh_derate_in_paper_band() {
        // Xilinx states effective throughput 7–9 % below theoretical.
        let t = Timings::default();
        let ov = t.refresh_overhead();
        assert!(ov > 0.05 && ov < 0.09, "refresh overhead {ov}");
        let eff = t.effective_bw_gbps();
        assert!(eff > 13.0 && eff < 13.6, "effective {eff}");
    }

    #[test]
    fn closed_page_and_row_miss_times() {
        let t = Timings::default();
        assert!((t.closed_page_ns() - 28.0).abs() < 1e-9);
        assert!((t.row_miss_ns() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn rows_per_bank_consistent() {
        let c = HbmConfig::default();
        assert_eq!(c.rows_per_bank() * c.row_bytes * c.banks_per_pch as u64, c.pch_capacity);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let c = HbmConfig { num_pch: 0, ..HbmConfig::default() };
        assert!(c.validate().is_err());

        // 1000 is not a power of two.
        let c = HbmConfig { row_bytes: 1000, ..HbmConfig::default() };
        assert!(c.validate().is_err());

        let mut c = HbmConfig::default();
        c.mc.window = c.mc.queue_depth + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn mc_presets() {
        let t = McConfig::throughput_optimised();
        assert_eq!(t.page_policy, PagePolicy::Open);
        assert!(t.window > 1);
        let l = McConfig::latency_optimised();
        assert_eq!(l.page_policy, PagePolicy::Closed);
        assert_eq!(l.window, 1);
        let c = HbmConfig { mc: l, ..HbmConfig::default() };
        c.validate().unwrap();
    }

    #[test]
    fn stack_scaling_geometry() {
        let one = HbmConfig::with_stacks(1);
        assert_eq!(one.num_pch, 16);
        assert_eq!(one.total_capacity(), 4 << 30);
        let four = HbmConfig::with_stacks(4);
        assert_eq!(four.num_pch, 64);
        assert!((four.theoretical_bw_gbps() - 2.0 * 460.8).abs() < 0.1);
        four.validate().unwrap();
    }

    #[test]
    fn clone_equality() {
        let c = HbmConfig::default();
        let cloned = c.clone();
        assert_eq!(c, cloned);
    }
}
