//! Per-pseudo-channel statistics counters.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::PchDram`] and its controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Bytes delivered to read requests.
    pub bytes_read: u64,
    /// Bytes accepted from write requests.
    pub bytes_written: u64,
    /// Row-buffer hits (open row matched).
    pub page_hits: u64,
    /// Accesses to an idle bank (activate without precharge).
    pub page_closed: u64,
    /// Row conflicts (precharge + activate).
    pub page_misses: u64,
    /// Data-bus direction switches (each pays tWTR/tRTW).
    pub turnarounds: u64,
    /// Refresh commands executed.
    pub refreshes: u64,
    /// Nanoseconds the data bus spent transferring beats.
    pub busy_ns: f64,
    /// Nanoseconds the data bus waited on bank timing (unhidden activate
    /// or precharge latency) while work was queued.
    pub stall_ns: f64,
}

impl MemStats {
    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Row-hit rate over all classified accesses, or `None` when no
    /// accesses have been recorded.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.page_hits + self.page_closed + self.page_misses;
        (total > 0).then(|| self.page_hits as f64 / total as f64)
    }

    /// Fraction of a window of `elapsed_ns` the data bus spent
    /// transferring beats, or `None` for a zero-length window.
    pub fn busy_fraction(&self, elapsed_ns: f64) -> Option<f64> {
        (elapsed_ns > 0.0).then(|| self.busy_ns / elapsed_ns)
    }

    /// Fraction of a window of `elapsed_ns` the data bus spent stalled
    /// on bank timing with work queued, or `None` for a zero-length
    /// window.
    pub fn stall_fraction(&self, elapsed_ns: f64) -> Option<f64> {
        (elapsed_ns > 0.0).then(|| self.stall_ns / elapsed_ns)
    }

    /// Adds another stats block into this one (for device-level totals).
    pub fn merge(&mut self, other: &MemStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.page_hits += other.page_hits;
        self.page_closed += other.page_closed;
        self.page_misses += other.page_misses;
        self.turnarounds += other.turnarounds;
        self.refreshes += other.refreshes;
        self.busy_ns += other.busy_ns;
        self.stall_ns += other.stall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_none_when_empty() {
        assert_eq!(MemStats::default().hit_rate(), None);
    }

    #[test]
    fn hit_rate_computed() {
        let s = MemStats { page_hits: 3, page_closed: 1, page_misses: 0, ..Default::default() };
        assert_eq!(s.hit_rate(), Some(0.75));
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let a = MemStats {
            bytes_read: 1,
            bytes_written: 2,
            page_hits: 3,
            page_closed: 4,
            page_misses: 5,
            turnarounds: 6,
            refreshes: 7,
            busy_ns: 8.0,
            stall_ns: 9.0,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.bytes_read, 2);
        assert_eq!(b.refreshes, 14);
        assert_eq!(b.total_bytes(), 6);
    }
}
