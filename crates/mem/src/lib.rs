//! # hbm-mem — HBM DRAM substrate
//!
//! Cycle-level model of the HBM2 memory on Xilinx Virtex UltraScale+
//! devices: 32 pseudo-channels (PCH) of 64-bit DDR DRAM, each with its own
//! banks, open-page tracking, refresh, and a memory controller performing
//! AXI→DDR conversion with a bounded reordering window and
//! direction batching.
//!
//! The model reproduces, from first principles, the effects the paper's
//! measurements hinge on:
//!
//! * row (page) hits stream back-to-back while misses pay
//!   precharge + activate + CAS — the burst-length sensitivity of Fig. 3;
//! * the PCH data bus is bidirectional and pays a turnaround penalty when
//!   changing direction — the read/write-ratio behaviour of Fig. 2;
//! * periodic refresh steals ~7 % of the raw bandwidth — the derating
//!   Xilinx quotes and the paper adopts;
//! * limited banks bound the activate rate — the random-access floor of
//!   Fig. 3c/d;
//! * the controller may only reorder across distinct AXI IDs — the
//!   reorder-window effect of Fig. 6.
//!
//! Internally each PCH advances in nanoseconds (its native DDR timing),
//! while the external interface is in accelerator-clock cycles; the
//! [`hbm_axi::ClockDomain`] conversion happens at the controller boundary.
//!
//! ## Simplification vs. the real device
//!
//! On silicon, two PCHs share one memory controller and command path. The
//! model instantiates one controller per PCH: the shared command path is a
//! second-order effect (commands are a small fraction of bus time) and the
//! data paths — where all first-order contention lives — are independent
//! on the real device too.
//!
//! ## Example
//!
//! ```
//! use hbm_mem::{BankPool, HbmConfig, PchDram};
//! use hbm_axi::Dir;
//!
//! let cfg = HbmConfig::default(); // the XCVU37P's two HBM2 stacks
//! assert_eq!(cfg.num_pch, 32);
//! assert!((cfg.theoretical_bw_gbps() - 460.8).abs() < 0.1);
//!
//! // Bank row state lives in a pool owned by the system (one unit per
//! // PCH, structure-of-arrays); the channel borrows its unit per call.
//! let mut banks = BankPool::new(1, cfg.banks_per_pch);
//!
//! // First access to a closed page pays tRCD + tCL before data:
//! let mut pch = PchDram::new(&cfg, 0.0);
//! let t = pch.execute_burst(&mut banks.unit_mut(0), 0.0, Dir::Read, 0, 512);
//! assert!((t.first_data_ns - cfg.timings.closed_page_ns()).abs() < 1e-9);
//! ```

pub mod address;
pub mod bank;
pub mod config;
pub mod controller;
pub mod pch;
pub mod stats;

pub use address::{row_segments, PchAddress, RowSegments};
pub use bank::{BankPool, BanksMut, BanksViewMut, PageOutcome};
pub use config::{AddressMapPolicy, HbmConfig, McConfig, PagePolicy, PchGeometry, Timings};
pub use controller::MemoryController;
pub use pch::PchDram;
pub use stats::MemStats;
