//! Address decode within one pseudo-channel.
//!
//! A PCH-local byte address splits into column (within a row), bank, and
//! row. Consecutive rows map to consecutive banks (row-granularity bank
//! interleaving), so a linear stream activates banks round-robin and
//! overlaps row activations with data transfer — the behaviour that lets
//! strided patterns stream near the bus limit while random patterns are
//! bounded by the activate rate.

use hbm_axi::Addr;

use crate::config::{AddressMapPolicy, HbmConfig};

/// Decoded PCH-local address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PchAddress {
    /// Bank index within the pseudo-channel.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub col: u32,
}

impl PchAddress {
    /// Decodes a PCH-local byte offset.
    pub fn decode(cfg: &HbmConfig, offset: Addr) -> PchAddress {
        debug_assert!(offset < cfg.pch_capacity, "offset beyond PCH capacity");
        let col = (offset % cfg.row_bytes) as u32;
        let row_linear = offset / cfg.row_bytes;
        match cfg.addr_map {
            AddressMapPolicy::RowInterleaved => PchAddress {
                bank: (row_linear % cfg.banks_per_pch as u64) as u32,
                row: row_linear / cfg.banks_per_pch as u64,
                col,
            },
            AddressMapPolicy::BankContiguous => PchAddress {
                bank: (row_linear / cfg.rows_per_bank()) as u32,
                row: row_linear % cfg.rows_per_bank(),
                col,
            },
        }
    }

    /// Re-encodes to the PCH-local byte offset (inverse of `decode`).
    pub fn encode(&self, cfg: &HbmConfig) -> Addr {
        let row_linear = match cfg.addr_map {
            AddressMapPolicy::RowInterleaved => {
                self.row * cfg.banks_per_pch as u64 + self.bank as u64
            }
            AddressMapPolicy::BankContiguous => self.bank as u64 * cfg.rows_per_bank() + self.row,
        };
        row_linear * cfg.row_bytes + self.col as u64
    }
}

/// Splits a PCH-local byte range `[offset, offset + bytes)` into per-row
/// segments `(PchAddress, segment_bytes)`. A DRAM access cannot stream
/// across a row boundary without a new activate, so the controller issues
/// one job per segment.
pub fn split_by_row(cfg: &HbmConfig, offset: Addr, bytes: u64) -> Vec<(PchAddress, u64)> {
    let mut out = Vec::with_capacity(2);
    let mut cur = offset;
    let mut left = bytes;
    while left > 0 {
        let a = PchAddress::decode(cfg, cur);
        let room = cfg.row_bytes - a.col as u64;
        let seg = left.min(room);
        out.push((a, seg));
        cur += seg;
        left -= seg;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HbmConfig {
        HbmConfig::default()
    }

    #[test]
    fn decode_first_row() {
        let c = cfg();
        let a = PchAddress::decode(&c, 0);
        assert_eq!((a.bank, a.row, a.col), (0, 0, 0));
        let a = PchAddress::decode(&c, 100);
        assert_eq!((a.bank, a.row, a.col), (0, 0, 100));
    }

    #[test]
    fn consecutive_rows_interleave_banks() {
        let c = cfg();
        let a = PchAddress::decode(&c, c.row_bytes);
        assert_eq!((a.bank, a.row), (1, 0));
        let a = PchAddress::decode(&c, c.row_bytes * c.banks_per_pch as u64);
        assert_eq!((a.bank, a.row), (0, 1));
    }

    #[test]
    fn encode_is_inverse() {
        let c = cfg();
        for off in [0u64, 1, 1023, 1024, 123_456, c.pch_capacity - 1] {
            let a = PchAddress::decode(&c, off);
            assert_eq!(a.encode(&c), off, "offset {off}");
        }
    }

    #[test]
    fn bank_contiguous_policy_maps_slices() {
        let mut c = cfg();
        c.addr_map = AddressMapPolicy::BankContiguous;
        // First 16 MiB (capacity / 16 banks) stays in bank 0.
        let slice = c.pch_capacity / c.banks_per_pch as u64;
        let a = PchAddress::decode(&c, 0);
        assert_eq!(a.bank, 0);
        let a = PchAddress::decode(&c, slice - 1);
        assert_eq!(a.bank, 0);
        let a = PchAddress::decode(&c, slice);
        assert_eq!((a.bank, a.row), (1, 0));
        // Round trips under the alternate policy too.
        for off in [0u64, slice - 1, slice, 3 * slice + 12345] {
            assert_eq!(PchAddress::decode(&c, off).encode(&c), off);
        }
    }

    #[test]
    fn split_within_one_row() {
        let c = cfg();
        let parts = split_by_row(&c, 64, 512);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1, 512);
        assert_eq!(parts[0].0.col, 64);
    }

    #[test]
    fn split_across_row_boundary() {
        let c = cfg();
        // 512 B starting 128 B below the end of row 0.
        let start = c.row_bytes - 128;
        let parts = split_by_row(&c, start, 512);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].1, 128);
        assert_eq!(parts[1].1, 384);
        assert_eq!(parts[1].0.bank, 1);
        assert_eq!(parts[1].0.col, 0);
    }

    #[test]
    fn split_exact_row_end_no_empty_segment() {
        let c = cfg();
        let parts = split_by_row(&c, c.row_bytes - 512, 512);
        assert_eq!(parts.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// decode/encode round-trips for arbitrary in-range offsets.
        #[test]
        fn decode_encode_roundtrip(off in 0u64..(256u64 << 20)) {
            let c = HbmConfig::default();
            let a = PchAddress::decode(&c, off);
            prop_assert_eq!(a.encode(&c), off);
            prop_assert!((a.bank as usize) < c.banks_per_pch);
            prop_assert!((a.col as u64) < c.row_bytes);
            prop_assert!(a.row < c.rows_per_bank());
        }

        /// Row segments tile the range exactly and never cross a row.
        #[test]
        fn split_tiles_range(
            off in 0u64..(1u64 << 20),
            bytes in 1u64..8192,
        ) {
            let c = HbmConfig::default();
            let parts = split_by_row(&c, off, bytes);
            let mut cursor = off;
            for (a, seg) in &parts {
                prop_assert_eq!(PchAddress::decode(&c, cursor), *a);
                // Segment stays inside its row.
                prop_assert!(a.col as u64 + seg <= c.row_bytes);
                cursor += seg;
            }
            prop_assert_eq!(cursor, off + bytes);
        }
    }
}
