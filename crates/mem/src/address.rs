//! Address decode within one pseudo-channel.
//!
//! A PCH-local byte address splits into column (within a row), bank, and
//! row. Consecutive rows map to consecutive banks (row-granularity bank
//! interleaving), so a linear stream activates banks round-robin and
//! overlaps row activations with data transfer — the behaviour that lets
//! strided patterns stream near the bus limit while random patterns are
//! bounded by the activate rate.

use hbm_axi::Addr;

use crate::config::{AddressMapPolicy, PchGeometry};

/// Decoded PCH-local address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PchAddress {
    /// Bank index within the pseudo-channel.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub col: u32,
}

impl PchAddress {
    /// Decodes a PCH-local byte offset.
    pub fn decode(geom: &PchGeometry, offset: Addr) -> PchAddress {
        debug_assert!(offset < geom.pch_capacity, "offset beyond PCH capacity");
        let col = (offset % geom.row_bytes) as u32;
        let row_linear = offset / geom.row_bytes;
        match geom.addr_map {
            AddressMapPolicy::RowInterleaved => PchAddress {
                bank: (row_linear % geom.banks_per_pch as u64) as u32,
                row: row_linear / geom.banks_per_pch as u64,
                col,
            },
            AddressMapPolicy::BankContiguous => PchAddress {
                bank: (row_linear / geom.rows_per_bank()) as u32,
                row: row_linear % geom.rows_per_bank(),
                col,
            },
        }
    }

    /// Re-encodes to the PCH-local byte offset (inverse of `decode`).
    pub fn encode(&self, geom: &PchGeometry) -> Addr {
        let row_linear = match geom.addr_map {
            AddressMapPolicy::RowInterleaved => {
                self.row * geom.banks_per_pch as u64 + self.bank as u64
            }
            AddressMapPolicy::BankContiguous => self.bank as u64 * geom.rows_per_bank() + self.row,
        };
        row_linear * geom.row_bytes + self.col as u64
    }
}

/// Iterator over the per-row segments of a PCH-local byte range — see
/// [`row_segments`]. Decodes lazily, one segment per `next`, so the
/// common single-segment burst costs one inline decode and no heap
/// allocation (the controller executes one of these per issued burst and
/// the old `Vec` return was the last per-cycle allocation in the kernel).
#[derive(Debug, Clone)]
pub struct RowSegments {
    geom: PchGeometry,
    cur: Addr,
    left: u64,
}

impl Iterator for RowSegments {
    type Item = (PchAddress, u64);

    fn next(&mut self) -> Option<(PchAddress, u64)> {
        if self.left == 0 {
            return None;
        }
        let a = PchAddress::decode(&self.geom, self.cur);
        let room = self.geom.row_bytes - a.col as u64;
        let seg = self.left.min(room);
        self.cur += seg;
        self.left -= seg;
        Some((a, seg))
    }
}

/// Splits a PCH-local byte range `[offset, offset + bytes)` into per-row
/// segments `(PchAddress, segment_bytes)`. A DRAM access cannot stream
/// across a row boundary without a new activate, so the controller issues
/// one job per segment.
pub fn row_segments(geom: &PchGeometry, offset: Addr, bytes: u64) -> RowSegments {
    RowSegments { geom: *geom, cur: offset, left: bytes }
}

/// [`row_segments`] collected into a `Vec` — for tests and offline
/// analysis; the cycle kernel iterates lazily instead.
pub fn split_by_row(geom: &PchGeometry, offset: Addr, bytes: u64) -> Vec<(PchAddress, u64)> {
    row_segments(geom, offset, bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HbmConfig;

    fn geom() -> PchGeometry {
        HbmConfig::default().geom()
    }

    #[test]
    fn decode_first_row() {
        let g = geom();
        let a = PchAddress::decode(&g, 0);
        assert_eq!((a.bank, a.row, a.col), (0, 0, 0));
        let a = PchAddress::decode(&g, 100);
        assert_eq!((a.bank, a.row, a.col), (0, 0, 100));
    }

    #[test]
    fn consecutive_rows_interleave_banks() {
        let g = geom();
        let a = PchAddress::decode(&g, g.row_bytes);
        assert_eq!((a.bank, a.row), (1, 0));
        let a = PchAddress::decode(&g, g.row_bytes * g.banks_per_pch as u64);
        assert_eq!((a.bank, a.row), (0, 1));
    }

    #[test]
    fn encode_is_inverse() {
        let g = geom();
        for off in [0u64, 1, 1023, 1024, 123_456, g.pch_capacity - 1] {
            let a = PchAddress::decode(&g, off);
            assert_eq!(a.encode(&g), off, "offset {off}");
        }
    }

    #[test]
    fn bank_contiguous_policy_maps_slices() {
        let mut g = geom();
        g.addr_map = AddressMapPolicy::BankContiguous;
        // First 16 MiB (capacity / 16 banks) stays in bank 0.
        let slice = g.pch_capacity / g.banks_per_pch as u64;
        let a = PchAddress::decode(&g, 0);
        assert_eq!(a.bank, 0);
        let a = PchAddress::decode(&g, slice - 1);
        assert_eq!(a.bank, 0);
        let a = PchAddress::decode(&g, slice);
        assert_eq!((a.bank, a.row), (1, 0));
        // Round trips under the alternate policy too.
        for off in [0u64, slice - 1, slice, 3 * slice + 12345] {
            assert_eq!(PchAddress::decode(&g, off).encode(&g), off);
        }
    }

    #[test]
    fn split_within_one_row() {
        let g = geom();
        let parts = split_by_row(&g, 64, 512);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1, 512);
        assert_eq!(parts[0].0.col, 64);
    }

    #[test]
    fn split_across_row_boundary() {
        let g = geom();
        // 512 B starting 128 B below the end of row 0.
        let start = g.row_bytes - 128;
        let parts = split_by_row(&g, start, 512);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].1, 128);
        assert_eq!(parts[1].1, 384);
        assert_eq!(parts[1].0.bank, 1);
        assert_eq!(parts[1].0.col, 0);
    }

    #[test]
    fn split_exact_row_end_no_empty_segment() {
        let g = geom();
        let parts = split_by_row(&g, g.row_bytes - 512, 512);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn lazy_segments_match_collected() {
        let g = geom();
        let lazy: Vec<_> = row_segments(&g, g.row_bytes - 100, 2500).collect();
        assert_eq!(lazy, split_by_row(&g, g.row_bytes - 100, 2500));
        assert!(lazy.len() > 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::HbmConfig;
    use proptest::prelude::*;

    proptest! {
        /// decode/encode round-trips for arbitrary in-range offsets.
        #[test]
        fn decode_encode_roundtrip(off in 0u64..(256u64 << 20)) {
            let g = HbmConfig::default().geom();
            let a = PchAddress::decode(&g, off);
            prop_assert_eq!(a.encode(&g), off);
            prop_assert!((a.bank as usize) < g.banks_per_pch);
            prop_assert!((a.col as u64) < g.row_bytes);
            prop_assert!(a.row < g.rows_per_bank());
        }

        /// Row segments tile the range exactly and never cross a row.
        #[test]
        fn split_tiles_range(
            off in 0u64..(1u64 << 20),
            bytes in 1u64..8192,
        ) {
            let g = HbmConfig::default().geom();
            let parts = split_by_row(&g, off, bytes);
            let mut cursor = off;
            for (a, seg) in &parts {
                prop_assert_eq!(PchAddress::decode(&g, cursor), *a);
                // Segment stays inside its row.
                prop_assert!(a.col as u64 + seg <= g.row_bytes);
                cursor += seg;
            }
            prop_assert_eq!(cursor, off + bytes);
        }
    }
}
