//! Memory controller: AXI→DDR conversion and request scheduling.
//!
//! One controller front-ends one pseudo-channel. Its scheduler implements
//! a bounded-window FR-FCFS policy with direction batching:
//!
//! * it examines up to `window` queued requests,
//! * a request is *eligible* only if no older queued request shares its
//!   (master, AXI ID, direction) — the AXI same-ID ordering rule; this is
//!   exactly the mechanism the paper varies in Fig. 6 (more independent
//!   IDs → more scheduling freedom),
//! * among eligible requests it prefers the current bus direction (up to
//!   `dir_batch` in a row, amortising turnarounds), then row hits
//!   (FR-FCFS), then age.
//!
//! Writes are *posted*: the B acknowledge is produced when the controller
//! accepts the transaction, which is why the paper measures a local write
//! latency of only 17 cycles against 48 for reads.

use hbm_axi::{
    AxiId, ClockDomain, Completion, Cycle, DelayQueue, Dir, MasterId, SharedTracer, Transaction,
};

use crate::config::HbmConfig;
use crate::pch::PchDram;
use crate::stats::MemStats;

/// Memory controller for one pseudo-channel.
#[derive(Debug)]
pub struct MemoryController {
    cfg: HbmConfig,
    clock: ClockDomain,
    req_q: DelayQueue<Transaction>,
    resp_q: DelayQueue<Completion>,
    ack_q: DelayQueue<Completion>,
    dram: PchDram,
    last_dir: Dir,
    dir_run: usize,
    /// Scheduling scratch: `(master, id, dir)` keys of the window entries
    /// examined so far in one `pick_candidate` pass. Reused across calls
    /// to keep the per-cycle scheduler allocation-free.
    seen_keys: Vec<(MasterId, AxiId, Dir)>,
    /// PCH-local base: global address minus this gives the PCH offset.
    /// The fabric's address map decides which controller sees a
    /// transaction; the controller only needs the local offset, so the
    /// mapping function is injected per transaction instead.
    offset_mask: u64,
    /// Optional lifecycle tracer (enqueue + DRAM command stamps) and the
    /// port index this controller serves, for record labelling.
    tracer: Option<(u16, SharedTracer)>,
}

impl MemoryController {
    /// A controller for one PCH. `refresh_phase` staggers refresh across
    /// channels (pass e.g. `pch_index as f64 / num_pch as f64 * tREFI`).
    pub fn new(cfg: &HbmConfig, clock: ClockDomain, refresh_phase: f64) -> MemoryController {
        MemoryController {
            req_q: DelayQueue::new(cfg.mc.queue_depth, cfg.mc.req_latency),
            resp_q: DelayQueue::new(cfg.mc.resp_depth, cfg.mc.resp_latency),
            ack_q: DelayQueue::new(cfg.mc.queue_depth, cfg.mc.resp_latency),
            dram: PchDram::new(cfg, refresh_phase),
            last_dir: Dir::Read,
            dir_run: 0,
            seen_keys: Vec::with_capacity(cfg.mc.window),
            offset_mask: cfg.pch_capacity - 1,
            tracer: None,
            cfg: cfg.clone(),
            clock,
        }
    }

    /// Attaches a lifecycle tracer; `port` is the pseudo-channel index
    /// this controller serves (recorded on every transaction it stamps).
    /// Stamping is observation only and never alters scheduling.
    pub fn attach_tracer(&mut self, port: u16, tracer: SharedTracer) {
        self.tracer = Some((port, tracer));
    }

    /// `true` if a new transaction can be accepted this cycle.
    ///
    /// Writes additionally require space in the acknowledge queue, since
    /// accepting a posted write produces its B response immediately.
    pub fn can_accept(&self, dir: Dir) -> bool {
        self.req_q.can_push() && (dir == Dir::Read || self.ack_q.can_push())
    }

    /// Accepts a transaction whose *global* address the fabric has already
    /// routed here; only the PCH-local offset (low bits) is used.
    ///
    /// Panics if `can_accept` is false — callers must gate on it.
    pub fn accept(&mut self, now: Cycle, txn: Transaction) {
        if let Some((port, tr)) = &self.tracer {
            tr.mc_enqueue(now, &txn, *port);
        }
        if txn.dir == Dir::Write {
            // Posted write: acknowledge on acceptance.
            self.ack_q
                .push(now, Completion { txn, produced_at: now })
                .expect("ack queue full; can_accept not honoured");
        }
        self.req_q.push(now, txn).expect("request queue full; can_accept not honoured");
    }

    /// Advances the controller by one cycle: possibly issues one DRAM job.
    pub fn tick(&mut self, now: Cycle) {
        let now_ns = self.clock.cycles_to_ns(now);
        // Issue-ahead gate: don't let the DRAM backlog grow unboundedly.
        if self.dram.bus_free_at() > now_ns + self.cfg.mc.lookahead_ns {
            return;
        }
        // Reads need a response slot reserved before issuing; when the
        // response queue is full only writes are considered.
        let allow_reads = self.resp_q.can_push();
        let Some(idx) = self.pick_candidate(now, allow_reads) else {
            return;
        };
        let txn = self.req_q.pop_at(now, idx).expect("candidate vanished");
        let offset = txn.addr & self.offset_mask;
        let timing = self.dram.execute_burst(now_ns, txn.dir, offset, txn.bytes());
        if txn.dir == self.last_dir {
            self.dir_run += 1;
        } else {
            self.last_dir = txn.dir;
            self.dir_run = 1;
        }
        if let Some((_, tr)) = &self.tracer {
            // Observation only: converts the DRAM's nanosecond timing back
            // into cycles for the record. Reads include the PHY return in
            // the service time (matching `produced_at` below); the write
            // stamp covers the bus burst alone (the ack never waits on it).
            let data_start = self.clock.ns_to_cycles(timing.first_data_ns);
            let done = match txn.dir {
                Dir::Read => self.clock.ns_to_cycles(timing.finish_ns + self.cfg.mc.phy_read_ns),
                Dir::Write => self.clock.ns_to_cycles(timing.finish_ns),
            };
            tr.dram_issue(&txn, now, data_start.max(now), done.max(now));
        }
        if txn.dir == Dir::Read {
            let finish_cycle = self.clock.ns_to_cycles(timing.finish_ns + self.cfg.mc.phy_read_ns);
            self.resp_q
                .push(finish_cycle.max(now), Completion { txn, produced_at: finish_cycle.max(now) })
                .expect("response slot reserved above");
        }
    }

    /// FR-FCFS candidate selection within the window. Returns a queue
    /// index, or `None` when nothing is eligible this cycle.
    fn pick_candidate(&mut self, now: Cycle, allow_reads: bool) -> Option<usize> {
        let window = self.cfg.mc.window.min(self.req_q.ready_len(now));
        let mut best: Option<(usize, u32)> = None;
        self.seen_keys.clear();
        for (i, txn) in self.req_q.iter().take(window).enumerate() {
            // AXI same-ID ordering: an older queued request with the same
            // (master, id, dir) must go first. `seen_keys` holds the keys of
            // entries 0..i, so one contiguous scan replaces re-walking the
            // queue per candidate.
            let key = (txn.master, txn.id, txn.dir);
            let blocked = self.seen_keys.contains(&key);
            self.seen_keys.push(key);
            if blocked || (!allow_reads && txn.dir == Dir::Read) {
                continue;
            }
            let same_dir = txn.dir == self.last_dir;
            let prefer_dir = if self.dir_run < self.cfg.mc.dir_batch {
                same_dir
            } else {
                // Batch exhausted: prefer the other direction if present.
                !same_dir
            };
            let offset = txn.addr & self.offset_mask;
            let hit = self.dram.would_hit(offset);
            // Score: direction preference (4) > row hit (2) > age.
            let score = (prefer_dir as u32) * 4 + (hit as u32) * 2;
            match best {
                Some((_, s)) if s >= score => {}
                _ => best = Some((i, score)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// A completion ready to enter the return network, oldest first across
    /// read data and write acknowledges. `None` if nothing is ready.
    pub fn peek_completion(&self, now: Cycle) -> Option<&Completion> {
        match (self.resp_q.peek(now), self.ack_q.peek(now)) {
            (Some(r), Some(a)) => Some(if r.produced_at <= a.produced_at { r } else { a }),
            (Some(r), None) => Some(r),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// Pops the completion returned by `peek_completion`.
    pub fn pop_completion(&mut self, now: Cycle) -> Option<Completion> {
        match (self.resp_q.peek(now), self.ack_q.peek(now)) {
            (Some(r), Some(a)) => {
                if r.produced_at <= a.produced_at {
                    self.resp_q.pop(now)
                } else {
                    self.ack_q.pop(now)
                }
            }
            (Some(_), None) => self.resp_q.pop(now),
            (None, Some(_)) => self.ack_q.pop(now),
            (None, None) => None,
        }
    }

    /// `true` once every queue is empty (used to drain simulations).
    pub fn drained(&self) -> bool {
        self.req_q.is_empty() && self.resp_q.is_empty() && self.ack_q.is_empty()
    }

    /// A lower bound on the first cycle ≥ `now` at which
    /// [`tick`](Self::tick) could issue a DRAM job or
    /// [`pop_completion`](Self::pop_completion) could return a completion,
    /// assuming nothing new is accepted in the meantime. `None` when
    /// every queue is empty: a drained controller stays idle forever
    /// without input (DRAM refresh is accounted lazily inside
    /// [`PchDram::execute_burst`], so it creates no spontaneous events).
    ///
    /// See DESIGN.md §3 for the one-sided contract: waking early is a
    /// harmless no-op, waking late would break cycle accuracy.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut merge = |t: Cycle| match best {
            Some(b) if b <= t => {}
            _ => best = Some(t),
        };
        if let Some(t) = self.resp_q.next_ready_at() {
            merge(t);
        }
        if let Some(t) = self.ack_q.next_ready_at() {
            merge(t);
        }
        if let Some(t) = self.req_q.next_ready_at() {
            // A queued request can only be scheduled once it is visible
            // *and* the issue-ahead gate has cleared.
            let gate = self.dram.gate_opens_at(self.clock, self.cfg.mc.lookahead_ns);
            merge(t.max(gate));
        }
        best.map(|t| t.max(now))
    }

    /// Number of requests waiting in the input queue.
    pub fn queue_len(&self) -> usize {
        self.req_q.len()
    }

    /// Peak occupancy of the request, response, and acknowledge queues
    /// since construction, in that order. Maintained by the rings
    /// themselves (two ALU ops per push); reading is free, so the
    /// measurement harness samples it once per window — never inside
    /// the cycle loop.
    pub fn queue_high_waters(&self) -> [usize; 3] {
        [self.req_q.high_water(), self.resp_q.high_water(), self.ack_q.high_water()]
    }

    /// DRAM statistics for this channel.
    pub fn stats(&self) -> &MemStats {
        self.dram.stats()
    }

    /// Clears DRAM statistics (after warm-up).
    pub fn reset_stats(&mut self) {
        self.dram.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_axi::{AxiId, BurstLen, MasterId, TxnBuilder};

    fn mc() -> MemoryController {
        MemoryController::new(&HbmConfig::default(), ClockDomain::ACC_300, 0.0)
    }

    fn txn(b: &mut TxnBuilder, id: u8, addr: u64, beats: u8, dir: Dir, now: Cycle) -> Transaction {
        b.issue(AxiId(id), addr, BurstLen::of(beats), dir, now).unwrap()
    }

    /// Runs the controller until drained, returning completions with their
    /// pop cycle.
    fn run_to_drain(m: &mut MemoryController, start: Cycle) -> Vec<(Cycle, Completion)> {
        let mut out = Vec::new();
        let mut now = start;
        let deadline = start + 1_000_000;
        while !m.drained() && now < deadline {
            m.tick(now);
            while let Some(c) = m.pop_completion(now) {
                out.push((now, c));
            }
            now += 1;
        }
        assert!(m.drained(), "controller failed to drain");
        out
    }

    #[test]
    fn read_produces_completion_with_dram_latency() {
        let mut m = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0));
        let done = run_to_drain(&mut m, 0);
        assert_eq!(done.len(), 1);
        let (cycle, c) = done[0];
        assert_eq!(c.txn.dir, Dir::Read);
        // req_latency (13) + closed-page (28 ns ≈ 9 cycles) + PHY (50 ns
        // ≈ 15 cycles) + beat + resp_latency (4).
        assert!((30..=50).contains(&cycle), "read completion at {cycle}");
    }

    #[test]
    fn write_acked_at_acceptance_not_dram() {
        let mut m = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        m.accept(0, txn(&mut b, 0, 0, 16, Dir::Write, 0));
        let done = run_to_drain(&mut m, 0);
        assert_eq!(done.len(), 1);
        let (cycle, c) = done[0];
        assert_eq!(c.txn.dir, Dir::Write);
        // Ack passes only resp_latency, far below DRAM time.
        assert!(cycle <= 8, "write ack at {cycle}");
        // The DRAM still performed the write.
        assert_eq!(m.stats().bytes_written, 512);
    }

    #[test]
    fn same_id_reads_complete_in_order() {
        let mut m = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        // Same ID, second one is a row hit for the first's row — FR-FCFS
        // must NOT reorder them (same id).
        m.accept(0, txn(&mut b, 0, 1024 * 64, 1, Dir::Read, 0)); // row X
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0)); // row 0
        let done = run_to_drain(&mut m, 0);
        let seqs: Vec<u64> = done.iter().map(|(_, c)| c.txn.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn different_ids_allow_row_hit_first_scheduling() {
        let cfg = HbmConfig::default();
        let mut m = MemoryController::new(&cfg, ClockDomain::ACC_300, 0.0);
        let mut b = TxnBuilder::new(MasterId(0));
        // Open row 0 with a first read (id 0), then queue a far-row read
        // (id 1) and a row-0 hit (id 2) behind it. FR-FCFS should service
        // the hit before the miss.
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0));
        m.accept(0, txn(&mut b, 1, cfg.row_bytes * cfg.banks_per_pch as u64 * 8, 1, Dir::Read, 0));
        m.accept(0, txn(&mut b, 2, 32, 1, Dir::Read, 0));
        let done = run_to_drain(&mut m, 0);
        let seqs: Vec<u64> = done.iter().map(|(_, c)| c.txn.seq).collect();
        assert_eq!(seqs[0], 0);
        assert_eq!(seqs[1], 2, "row hit (seq 2) should be scheduled before miss (seq 1)");
    }

    #[test]
    fn backpressure_when_queue_full() {
        let cfg = HbmConfig::default();
        let mut m = MemoryController::new(&cfg, ClockDomain::ACC_300, 0.0);
        let mut b = TxnBuilder::new(MasterId(0));
        for i in 0..cfg.mc.queue_depth {
            assert!(m.can_accept(Dir::Read));
            m.accept(0, txn(&mut b, 0, (i as u64) * 32, 1, Dir::Read, 0));
        }
        assert!(!m.can_accept(Dir::Read));
    }

    #[test]
    fn direction_batching_groups_same_direction() {
        // Interleave R/W accepts; the schedule should produce runs rather
        // than strict alternation, keeping turnarounds well below the
        // worst case (one per transaction).
        let mut m = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        let n = 16;
        for i in 0..n {
            let dir = if i % 2 == 0 { Dir::Read } else { Dir::Write };
            // Distinct IDs so the scheduler is free to reorder.
            m.accept(0, txn(&mut b, (i % 16) as u8, i * 512, 16, dir, 0));
        }
        run_to_drain(&mut m, 0);
        let turns = m.stats().turnarounds;
        assert!(turns < n / 2, "turnarounds {turns} not batched (n={n})");
    }

    #[test]
    fn throughput_sequential_reads_near_effective_bw() {
        // Keep the controller fed with sequential BL16 reads for a while;
        // achieved bandwidth should approach the DRAM effective rate
        // (the queue/window machinery must not add systematic bubbles).
        let cfg = HbmConfig::default();
        let clock = ClockDomain::ACC_450; // port faster than a single PCH
        let mut m = MemoryController::new(&cfg, clock, 0.0);
        let mut b = TxnBuilder::new(MasterId(0));
        let mut addr = 0u64;
        let mut bytes = 0u64;
        let horizon = 100_000; // cycles @450 MHz ≈ 222 µs
        for now in 0..horizon {
            while m.can_accept(Dir::Read) && bytes < (1 << 30) {
                m.accept(now, txn(&mut b, (addr / 512 % 16) as u8, addr, 16, Dir::Read, now));
                addr += 512;
                bytes += 512;
            }
            m.tick(now);
            while m.pop_completion(now).is_some() {}
        }
        let delivered = m.stats().bytes_read as f64;
        let gbps = delivered / clock.cycles_to_ns(horizon);
        let eff = cfg.timings.effective_bw_gbps();
        assert!(gbps > eff * 0.93, "sequential read bandwidth {gbps} GB/s vs effective {eff}");
    }

    #[test]
    fn drained_reports_correctly() {
        let mut m = mc();
        assert!(m.drained());
        let mut b = TxnBuilder::new(MasterId(0));
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0));
        assert!(!m.drained());
        run_to_drain(&mut m, 0);
        assert!(m.drained());
    }
}
