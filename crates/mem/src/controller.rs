//! Memory controller: AXI→DDR conversion and request scheduling.
//!
//! One controller front-ends one pseudo-channel. Its scheduler implements
//! a bounded-window FR-FCFS policy with direction batching:
//!
//! * it examines up to `window` queued requests,
//! * a request is *eligible* only if no older queued request shares its
//!   (master, AXI ID, direction) — the AXI same-ID ordering rule; this is
//!   exactly the mechanism the paper varies in Fig. 6 (more independent
//!   IDs → more scheduling freedom),
//! * among eligible requests it prefers the current bus direction (up to
//!   `dir_batch` in a row, amortising turnarounds), then row hits
//!   (FR-FCFS), then age.
//!
//! Writes are *posted*: the B acknowledge is produced when the controller
//! accepts the transaction, which is why the paper measures a local write
//! latency of only 17 cycles against 48 for reads.
//!
//! # Incremental scheduling
//!
//! The pick is computed *incrementally*: the controller caches the best
//! candidate (plus how much of the window it has examined) and re-scans
//! only entries it has not seen yet. Everything the score depends on —
//! bank open rows, `last_dir`/`dir_run`, queue order — changes **only**
//! when a burst is issued, so the cache is invalidated at exactly two
//! points (see `SchedCache`). Between invalidations a tick costs O(new
//! entries), which is O(1) on the busy-idle ticks that dominate a
//! gate-limited stream; `debug_assert` cross-checks every pick against a
//! stateless re-scan, and `tests/mc_scheduler_equivalence.rs` does the
//! same under random interleavings in release mode.

use hbm_axi::{
    AxiId, ClockDomain, Completion, Cycle, DelayQueue, Dir, MasterId, SharedTracer, Transaction,
};

use crate::bank::BanksMut;
use crate::config::{HbmConfig, McConfig};
use crate::pch::PchDram;
use crate::stats::MemStats;

/// Cached FR-FCFS scan state. Valid while nothing that feeds the score
/// changes; the events that *can* change it, and how they are handled:
///
/// | event                      | effect on cache                        |
/// |----------------------------|----------------------------------------|
/// | burst issued (`tick`)      | cleared — queue shifted, bank/dir state mutated |
/// | read completion popped while the cache was computed with a full response queue | cleared — reads become eligible again |
/// | new request accepted       | kept — appended at index ≥ `examined`, scanned incrementally on the next pick |
/// | time passes                | kept — more entries become ready, same incremental re-scan |
/// | ack popped / refresh due   | kept — neither feeds the score (refresh is accounted lazily inside `execute_burst`) |
#[derive(Debug, Clone, Copy)]
struct SchedCache {
    /// Entries `0..examined` have been scanned; their `(master, id, dir)`
    /// keys are in `seen_keys`, in order.
    examined: usize,
    /// Whether reads were eligible when the scan ran (`resp_q.can_push()`
    /// at the time). A pick under a different read-eligibility regime
    /// cannot reuse the scan.
    allow_reads: bool,
    /// Best candidate so far: `(queue index, score)`.
    best: Option<(usize, u32)>,
}

/// Memory controller for one pseudo-channel.
#[derive(Debug)]
pub struct MemoryController {
    /// Controller knobs (small `Copy` struct — the controller does not
    /// retain the full [`HbmConfig`]; geometry and timing live in the
    /// [`PchDram`], bank rows in the system-owned `BankPool`).
    mc: McConfig,
    clock: ClockDomain,
    req_q: DelayQueue<Transaction>,
    resp_q: DelayQueue<Completion>,
    ack_q: DelayQueue<Completion>,
    dram: PchDram,
    last_dir: Dir,
    dir_run: usize,
    /// Scheduling scratch: `(master, id, dir)` keys of the window entries
    /// examined so far. Persists with [`SchedCache`] across ticks so an
    /// incremental re-scan can extend it; reused (never reallocated) to
    /// keep the per-cycle scheduler allocation-free.
    seen_keys: Vec<(MasterId, AxiId, Dir)>,
    /// Cached scan state; `None` after any invalidating event.
    sched: Option<SchedCache>,
    /// PCH-local base: global address minus this gives the PCH offset.
    /// The fabric's address map decides which controller sees a
    /// transaction; the controller only needs the local offset, so the
    /// mapping function is injected per transaction instead.
    offset_mask: u64,
    /// Optional lifecycle tracer (enqueue + DRAM command stamps) and the
    /// port index this controller serves, for record labelling.
    tracer: Option<(u16, SharedTracer)>,
}

impl MemoryController {
    /// A controller for one PCH. `refresh_phase` staggers refresh across
    /// channels (pass e.g. `pch_index as f64 / num_pch as f64 * tREFI`).
    pub fn new(cfg: &HbmConfig, clock: ClockDomain, refresh_phase: f64) -> MemoryController {
        MemoryController {
            req_q: DelayQueue::new(cfg.mc.queue_depth, cfg.mc.req_latency),
            resp_q: DelayQueue::new(cfg.mc.resp_depth, cfg.mc.resp_latency),
            ack_q: DelayQueue::new(cfg.mc.queue_depth, cfg.mc.resp_latency),
            dram: PchDram::new(cfg, refresh_phase),
            last_dir: Dir::Read,
            dir_run: 0,
            seen_keys: Vec::with_capacity(cfg.mc.window),
            sched: None,
            offset_mask: cfg.pch_capacity - 1,
            tracer: None,
            mc: cfg.mc,
            clock,
        }
    }

    /// Attaches a lifecycle tracer; `port` is the pseudo-channel index
    /// this controller serves (recorded on every transaction it stamps).
    /// Stamping is observation only and never alters scheduling.
    pub fn attach_tracer(&mut self, port: u16, tracer: SharedTracer) {
        self.tracer = Some((port, tracer));
    }

    /// `true` if a new transaction can be accepted this cycle.
    ///
    /// Writes additionally require space in the acknowledge queue, since
    /// accepting a posted write produces its B response immediately.
    pub fn can_accept(&self, dir: Dir) -> bool {
        self.req_q.can_push() && (dir == Dir::Read || self.ack_q.can_push())
    }

    /// Accepts a transaction whose *global* address the fabric has already
    /// routed here; only the PCH-local offset (low bits) is used.
    ///
    /// Does not invalidate the scheduling cache: the new entry lands at a
    /// queue index ≥ `examined` and is picked up by the incremental scan.
    ///
    /// Panics if `can_accept` is false — callers must gate on it.
    pub fn accept(&mut self, now: Cycle, txn: Transaction) {
        if let Some((port, tr)) = &self.tracer {
            tr.mc_enqueue(now, &txn, *port);
        }
        if txn.dir == Dir::Write {
            // Posted write: acknowledge on acceptance.
            self.ack_q
                .push(now, Completion { txn, produced_at: now })
                .expect("ack queue full; can_accept not honoured");
        }
        self.req_q.push(now, txn).expect("request queue full; can_accept not honoured");
    }

    /// Advances the controller by one cycle: possibly issues one DRAM job.
    /// `banks` is this channel's unit of the system-owned bank pool.
    pub fn tick(&mut self, now: Cycle, banks: &mut BanksMut) {
        let now_ns = self.clock.cycles_to_ns(now);
        // Issue-ahead gate: don't let the DRAM backlog grow unboundedly.
        if self.dram.bus_free_at() > now_ns + self.mc.lookahead_ns {
            return;
        }
        // Reads need a response slot reserved before issuing; when the
        // response queue is full only writes are considered.
        let allow_reads = self.resp_q.can_push();
        let pick = self.pick_candidate(now, allow_reads, banks);
        debug_assert_eq!(
            pick,
            self.pick_reference(now, allow_reads, banks),
            "incremental pick diverged from stateless re-scan"
        );
        let Some(idx) = pick else {
            return;
        };
        // Issuing shifts the queue and mutates bank/direction state — the
        // one event that invalidates everything the cached scan saw.
        self.sched = None;
        let txn = self.req_q.pop_at(now, idx).expect("candidate vanished");
        let offset = txn.addr & self.offset_mask;
        let timing = self.dram.execute_burst(banks, now_ns, txn.dir, offset, txn.bytes());
        if txn.dir == self.last_dir {
            self.dir_run += 1;
        } else {
            self.last_dir = txn.dir;
            self.dir_run = 1;
        }
        if let Some((_, tr)) = &self.tracer {
            // Observation only: converts the DRAM's nanosecond timing back
            // into cycles for the record. Reads include the PHY return in
            // the service time (matching `produced_at` below); the write
            // stamp covers the bus burst alone (the ack never waits on it).
            let data_start = self.clock.ns_to_cycles(timing.first_data_ns);
            let done = match txn.dir {
                Dir::Read => self.clock.ns_to_cycles(timing.finish_ns + self.mc.phy_read_ns),
                Dir::Write => self.clock.ns_to_cycles(timing.finish_ns),
            };
            tr.dram_issue(&txn, now, data_start.max(now), done.max(now));
        }
        if txn.dir == Dir::Read {
            let finish_cycle = self.clock.ns_to_cycles(timing.finish_ns + self.mc.phy_read_ns);
            self.resp_q
                .push(finish_cycle.max(now), Completion { txn, produced_at: finish_cycle.max(now) })
                .expect("response slot reserved above");
        }
    }

    /// FR-FCFS candidate selection within the window, resuming from the
    /// cached scan when valid. Returns a queue index, or `None` when
    /// nothing is eligible this cycle.
    fn pick_candidate(&mut self, now: Cycle, allow_reads: bool, banks: &BanksMut) -> Option<usize> {
        // Resume where the last scan stopped if its premises still hold:
        // same read eligibility, and the window has only grown (entries
        // already examined kept their indices — only `tick` removes, and
        // it clears the cache). A *later-ready* entry can outscore an
        // earlier one only on a strictly greater score, which the resumed
        // loop handles identically to a full scan.
        let (mut best, start) = match self.sched {
            Some(c) if c.allow_reads == allow_reads => {
                if c.examined == self.mc.window {
                    // The full window was already scanned and entries only
                    // leave through `tick` (which clears the cache), so
                    // there is nothing new to examine: the cached answer
                    // is the answer, without touching the queue at all.
                    return c.best.map(|(i, _)| i);
                }
                (c.best, c.examined)
            }
            _ => {
                self.seen_keys.clear();
                (None, 0)
            }
        };
        // Ready times are monotone in queue order (constant insertion
        // latency), so scanning until the first not-yet-ready entry covers
        // exactly `min(window, ready_len)` — without the binary search a
        // `ready_len` call would cost on every gate-open tick.
        let mut i = start;
        while i < self.mc.window {
            let Some(txn) = self.req_q.peek_at(now, i) else {
                break;
            };
            // AXI same-ID ordering: an older queued request with the same
            // (master, id, dir) must go first. `seen_keys` holds the keys of
            // entries 0..i, so one contiguous scan replaces re-walking the
            // queue per candidate.
            let key = (txn.master, txn.id, txn.dir);
            let blocked = self.seen_keys.contains(&key);
            self.seen_keys.push(key);
            let eligible = !blocked && (allow_reads || txn.dir != Dir::Read);
            if eligible {
                let same_dir = txn.dir == self.last_dir;
                let prefer_dir = if self.dir_run < self.mc.dir_batch {
                    same_dir
                } else {
                    // Batch exhausted: prefer the other direction if present.
                    !same_dir
                };
                let offset = txn.addr & self.offset_mask;
                let hit = self.dram.would_hit(banks, offset);
                // Score: direction preference (4) > row hit (2) > age.
                let score = (prefer_dir as u32) * 4 + (hit as u32) * 2;
                match best {
                    Some((_, s)) if s >= score => {}
                    _ => best = Some((i, score)),
                }
            }
            i += 1;
        }
        self.sched = Some(SchedCache { examined: i, allow_reads, best });
        best.map(|(i, _)| i)
    }

    /// Stateless FR-FCFS re-scan — the scheduling policy written as one
    /// self-contained O(window²) pass with no cache and no scratch state.
    /// `pick_candidate` must agree with this on every call; `tick` checks
    /// it under `debug_assert` and the scheduler-equivalence proptest
    /// checks it in release builds via [`scheduler_picks`](Self::scheduler_picks).
    fn pick_reference(&self, now: Cycle, allow_reads: bool, banks: &BanksMut) -> Option<usize> {
        let window = self.mc.window.min(self.req_q.ready_len(now));
        let mut best: Option<(usize, u32)> = None;
        for (i, txn) in self.req_q.iter().take(window).enumerate() {
            let blocked = self
                .req_q
                .iter()
                .take(i)
                .any(|t| t.master == txn.master && t.id == txn.id && t.dir == txn.dir);
            if blocked || (!allow_reads && txn.dir == Dir::Read) {
                continue;
            }
            let same_dir = txn.dir == self.last_dir;
            let prefer_dir = if self.dir_run < self.mc.dir_batch { same_dir } else { !same_dir };
            let hit = self.dram.would_hit(banks, txn.addr & self.offset_mask);
            let score = (prefer_dir as u32) * 4 + (hit as u32) * 2;
            match best {
                Some((_, s)) if s >= score => {}
                _ => best = Some((i, score)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Test hook: runs both the incremental and the reference scheduler
    /// for the current cycle and returns `(incremental, reference)`
    /// picks, bypassing the issue-ahead gate. Issues nothing; the cache
    /// this primes is exactly the one a real `tick` would have primed.
    #[doc(hidden)]
    pub fn scheduler_picks(
        &mut self,
        now: Cycle,
        banks: &BanksMut,
    ) -> (Option<usize>, Option<usize>) {
        let allow_reads = self.resp_q.can_push();
        let incremental = self.pick_candidate(now, allow_reads, banks);
        let reference = self.pick_reference(now, allow_reads, banks);
        (incremental, reference)
    }

    /// A completion ready to enter the return network, oldest first across
    /// read data and write acknowledges. `None` if nothing is ready.
    pub fn peek_completion(&self, now: Cycle) -> Option<&Completion> {
        match (self.resp_q.peek(now), self.ack_q.peek(now)) {
            (Some(r), Some(a)) => Some(if r.produced_at <= a.produced_at { r } else { a }),
            (Some(r), None) => Some(r),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// Pops the completion returned by `peek_completion`.
    pub fn pop_completion(&mut self, now: Cycle) -> Option<Completion> {
        match (self.resp_q.peek(now), self.ack_q.peek(now)) {
            (Some(r), Some(a)) => {
                if r.produced_at <= a.produced_at {
                    self.pop_resp(now)
                } else {
                    self.ack_q.pop(now)
                }
            }
            (Some(_), None) => self.pop_resp(now),
            (None, Some(_)) => self.ack_q.pop(now),
            (None, None) => None,
        }
    }

    /// Pops from the response queue, invalidating the scheduling cache if
    /// it was computed while the queue was full: freeing a slot flips
    /// `allow_reads`, so blocked reads become candidates again (and the
    /// cached no-candidate sleep hint stops applying).
    fn pop_resp(&mut self, now: Cycle) -> Option<Completion> {
        if matches!(self.sched, Some(c) if !c.allow_reads) {
            self.sched = None;
        }
        self.resp_q.pop(now)
    }

    /// `true` once every queue is empty (used to drain simulations).
    pub fn drained(&self) -> bool {
        self.req_q.is_empty() && self.resp_q.is_empty() && self.ack_q.is_empty()
    }

    /// A lower bound on the first cycle ≥ `now` at which
    /// [`tick`](Self::tick) could issue a DRAM job or
    /// [`pop_completion`](Self::pop_completion) could return a completion,
    /// assuming nothing new is accepted in the meantime. `None` when
    /// every queue is empty: a drained controller stays idle forever
    /// without input (DRAM refresh is accounted lazily inside
    /// [`PchDram::execute_burst`], so it creates no spontaneous events).
    ///
    /// When a completed scan found no candidate, the cached state sharpens
    /// the request-side bound: nothing already examined can become
    /// eligible without an invalidating event (which re-arms the hint), so
    /// the next request-side opportunity is the first *unexamined* entry
    /// becoming ready — not `next_ready_at`, which would wake the sleeper
    /// every cycle a blocked head entry sits ready.
    ///
    /// See DESIGN.md §3 for the one-sided contract: waking early is a
    /// harmless no-op, waking late would break cycle accuracy.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut merge = |t: Cycle| match best {
            Some(b) if b <= t => {}
            _ => best = Some(t),
        };
        if let Some(t) = self.resp_q.next_ready_at() {
            merge(t);
        }
        if let Some(t) = self.ack_q.next_ready_at() {
            merge(t);
        }
        let req_hint = match self.sched {
            // A full no-candidate scan: entries 0..examined stay
            // ineligible until an invalidation (issue clears the cache;
            // resp-pop with `!allow_reads` clears it in `pop_resp` — and
            // any such block implies the response queue is non-empty, so
            // `resp_q.next_ready_at()` above already bounds that wake-up).
            Some(c) if c.best.is_none() => {
                if c.examined < self.mc.window {
                    // Next unexamined entry's visibility time, if any.
                    // Looked up live so requests accepted after the scan
                    // are seen without invalidating anything.
                    self.req_q.deadline_at(c.examined)
                } else {
                    // Window exhausted: only an invalidating event can
                    // unblock the request side.
                    None
                }
            }
            _ => self.req_q.next_ready_at(),
        };
        if let Some(t) = req_hint {
            // A queued request can only be scheduled once it is visible
            // *and* the issue-ahead gate has cleared.
            let gate = self.dram.gate_opens_at(self.clock, self.mc.lookahead_ns);
            merge(t.max(gate));
        }
        best.map(|t| t.max(now))
    }

    /// Number of requests waiting in the input queue.
    pub fn queue_len(&self) -> usize {
        self.req_q.len()
    }

    /// Peak occupancy of the request, response, and acknowledge queues
    /// since construction, in that order. Maintained by the rings
    /// themselves (two ALU ops per push); reading is free, so the
    /// measurement harness samples it once per window — never inside
    /// the cycle loop.
    pub fn queue_high_waters(&self) -> [usize; 3] {
        [self.req_q.high_water(), self.resp_q.high_water(), self.ack_q.high_water()]
    }

    /// DRAM statistics for this channel.
    pub fn stats(&self) -> &MemStats {
        self.dram.stats()
    }

    /// Clears DRAM statistics (after warm-up).
    pub fn reset_stats(&mut self) {
        self.dram.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::BankPool;
    use hbm_axi::{AxiId, BurstLen, MasterId, TxnBuilder};

    fn mc() -> (MemoryController, BankPool) {
        mc_with(&HbmConfig::default())
    }

    fn mc_with(cfg: &HbmConfig) -> (MemoryController, BankPool) {
        (MemoryController::new(cfg, ClockDomain::ACC_300, 0.0), BankPool::new(1, cfg.banks_per_pch))
    }

    fn txn(b: &mut TxnBuilder, id: u8, addr: u64, beats: u8, dir: Dir, now: Cycle) -> Transaction {
        b.issue(AxiId(id), addr, BurstLen::of(beats), dir, now).unwrap()
    }

    /// Runs the controller until drained, returning completions with their
    /// pop cycle.
    fn run_to_drain(
        m: &mut MemoryController,
        pool: &mut BankPool,
        start: Cycle,
    ) -> Vec<(Cycle, Completion)> {
        let mut banks = pool.unit_mut(0);
        let mut out = Vec::new();
        let mut now = start;
        let deadline = start + 1_000_000;
        while !m.drained() && now < deadline {
            m.tick(now, &mut banks);
            while let Some(c) = m.pop_completion(now) {
                out.push((now, c));
            }
            now += 1;
        }
        assert!(m.drained(), "controller failed to drain");
        out
    }

    #[test]
    fn read_produces_completion_with_dram_latency() {
        let (mut m, mut pool) = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0));
        let done = run_to_drain(&mut m, &mut pool, 0);
        assert_eq!(done.len(), 1);
        let (cycle, c) = done[0];
        assert_eq!(c.txn.dir, Dir::Read);
        // req_latency (13) + closed-page (28 ns ≈ 9 cycles) + PHY (50 ns
        // ≈ 15 cycles) + beat + resp_latency (4).
        assert!((30..=50).contains(&cycle), "read completion at {cycle}");
    }

    #[test]
    fn write_acked_at_acceptance_not_dram() {
        let (mut m, mut pool) = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        m.accept(0, txn(&mut b, 0, 0, 16, Dir::Write, 0));
        let done = run_to_drain(&mut m, &mut pool, 0);
        assert_eq!(done.len(), 1);
        let (cycle, c) = done[0];
        assert_eq!(c.txn.dir, Dir::Write);
        // Ack passes only resp_latency, far below DRAM time.
        assert!(cycle <= 8, "write ack at {cycle}");
        // The DRAM still performed the write.
        assert_eq!(m.stats().bytes_written, 512);
    }

    #[test]
    fn same_id_reads_complete_in_order() {
        let (mut m, mut pool) = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        // Same ID, second one is a row hit for the first's row — FR-FCFS
        // must NOT reorder them (same id).
        m.accept(0, txn(&mut b, 0, 1024 * 64, 1, Dir::Read, 0)); // row X
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0)); // row 0
        let done = run_to_drain(&mut m, &mut pool, 0);
        let seqs: Vec<u64> = done.iter().map(|(_, c)| c.txn.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn different_ids_allow_row_hit_first_scheduling() {
        let cfg = HbmConfig::default();
        let (mut m, mut pool) = mc_with(&cfg);
        let mut b = TxnBuilder::new(MasterId(0));
        // Open row 0 with a first read (id 0), then queue a far-row read
        // (id 1) and a row-0 hit (id 2) behind it. FR-FCFS should service
        // the hit before the miss.
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0));
        m.accept(0, txn(&mut b, 1, cfg.row_bytes * cfg.banks_per_pch as u64 * 8, 1, Dir::Read, 0));
        m.accept(0, txn(&mut b, 2, 32, 1, Dir::Read, 0));
        let done = run_to_drain(&mut m, &mut pool, 0);
        let seqs: Vec<u64> = done.iter().map(|(_, c)| c.txn.seq).collect();
        assert_eq!(seqs[0], 0);
        assert_eq!(seqs[1], 2, "row hit (seq 2) should be scheduled before miss (seq 1)");
    }

    #[test]
    fn backpressure_when_queue_full() {
        let cfg = HbmConfig::default();
        let (mut m, _pool) = mc_with(&cfg);
        let mut b = TxnBuilder::new(MasterId(0));
        for i in 0..cfg.mc.queue_depth {
            assert!(m.can_accept(Dir::Read));
            m.accept(0, txn(&mut b, 0, (i as u64) * 32, 1, Dir::Read, 0));
        }
        assert!(!m.can_accept(Dir::Read));
    }

    #[test]
    fn direction_batching_groups_same_direction() {
        // Interleave R/W accepts; the schedule should produce runs rather
        // than strict alternation, keeping turnarounds well below the
        // worst case (one per transaction).
        let (mut m, mut pool) = mc();
        let mut b = TxnBuilder::new(MasterId(0));
        let n = 16;
        for i in 0..n {
            let dir = if i % 2 == 0 { Dir::Read } else { Dir::Write };
            // Distinct IDs so the scheduler is free to reorder.
            m.accept(0, txn(&mut b, (i % 16) as u8, i * 512, 16, dir, 0));
        }
        run_to_drain(&mut m, &mut pool, 0);
        let turns = m.stats().turnarounds;
        assert!(turns < n / 2, "turnarounds {turns} not batched (n={n})");
    }

    #[test]
    fn throughput_sequential_reads_near_effective_bw() {
        // Keep the controller fed with sequential BL16 reads for a while;
        // achieved bandwidth should approach the DRAM effective rate
        // (the queue/window machinery must not add systematic bubbles).
        let cfg = HbmConfig::default();
        let clock = ClockDomain::ACC_450; // port faster than a single PCH
        let mut m = MemoryController::new(&cfg, clock, 0.0);
        let mut pool = BankPool::new(1, cfg.banks_per_pch);
        let mut banks = pool.unit_mut(0);
        let mut b = TxnBuilder::new(MasterId(0));
        let mut addr = 0u64;
        let mut bytes = 0u64;
        let horizon = 100_000; // cycles @450 MHz ≈ 222 µs
        for now in 0..horizon {
            while m.can_accept(Dir::Read) && bytes < (1 << 30) {
                m.accept(now, txn(&mut b, (addr / 512 % 16) as u8, addr, 16, Dir::Read, now));
                addr += 512;
                bytes += 512;
            }
            m.tick(now, &mut banks);
            while m.pop_completion(now).is_some() {}
        }
        let delivered = m.stats().bytes_read as f64;
        let gbps = delivered / clock.cycles_to_ns(horizon);
        let eff = cfg.timings.effective_bw_gbps();
        assert!(gbps > eff * 0.93, "sequential read bandwidth {gbps} GB/s vs effective {eff}");
    }

    #[test]
    fn drained_reports_correctly() {
        let (mut m, mut pool) = mc();
        assert!(m.drained());
        let mut b = TxnBuilder::new(MasterId(0));
        m.accept(0, txn(&mut b, 0, 0, 1, Dir::Read, 0));
        assert!(!m.drained());
        run_to_drain(&mut m, &mut pool, 0);
        assert!(m.drained());
    }

    #[test]
    fn no_candidate_sleep_hint_waits_for_unexamined_entry() {
        // One read with a blocked twin behind it: after the first issues,
        // the remaining same-ID pair means a completed scan of the head
        // entry alone yields a candidate; but with the response queue
        // drained slowly we can observe the sharpened hint. Simpler
        // observable: next_event never exceeds the true next action cycle.
        let (mut m, mut pool) = mc();
        let mut banks = pool.unit_mut(0);
        let mut b = TxnBuilder::new(MasterId(0));
        for i in 0..4u64 {
            m.accept(0, txn(&mut b, 0, i * 32, 1, Dir::Read, 0)); // same ID chain
        }
        let mut now = 0;
        let mut popped = 0;
        let deadline = 10_000;
        while !m.drained() && now < deadline {
            let hint = m.next_event(now).expect("not drained → next event exists");
            assert!(hint >= now);
            // Jump straight to the hint: if the hint were late, the drain
            // below would deadlock or produce out-of-order completions.
            now = hint.max(now);
            m.tick(now, &mut banks);
            while m.pop_completion(now).is_some() {
                popped += 1;
            }
            now += 1;
        }
        assert!(m.drained(), "sleep-hint-driven drain stalled");
        assert_eq!(popped, 4);
    }
}
