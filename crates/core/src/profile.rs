//! Sampled kernel phase profiler: wall-time attribution of the cycle
//! loop.
//!
//! The roadmap's "lockstep batching is queue-op-bound" diagnosis was
//! made with out-of-tree profiling; this module makes it a reproducible
//! in-tree artifact. A profiled run attributes *every* nanosecond of the
//! kernel loop to one of six phases:
//!
//! | phase | what it covers |
//! |---|---|
//! | `gens_tick` | master poll/offer (step phase 1) |
//! | `fabric_tick` | interconnect flit movement (step phase 2) |
//! | `mc_tick` | controller+DRAM timing advance (step phase 3, tick half) |
//! | `queue_ops` | port peek/pop/accept, stuck-completion retry, master completion drain (step phases 3+4, queue half) |
//! | `horizon_compute` | `next_event` scans, pacer bookkeeping, and loop control |
//! | `lockstep_reconcile` | cross-lane min-horizon folds, lane realignment, shard boundary reconcile |
//!
//! ## Mechanism: telescoping laps
//!
//! The profiler is a thread-local clock. [`begin`] stamps `t₀`; each
//! instrumented boundary in the kernel calls [`lap`]`(phase)`, which
//! adds `now − last` to that phase's accumulator and advances `last`;
//! [`end`] takes the final lap. Because every delta between consecutive
//! stamps is assigned to exactly one phase, the per-phase sums
//! *telescope*: their total equals `t_end − t₀` **exactly** (integer
//! nanoseconds, asserted by [`PhaseReport::consistent`] and the
//! `telemetry_equivalence` tests). There is no unattributed residue —
//! driver slack between two phase boundaries lands in the phase that
//! owns loop control (`horizon_compute`).
//!
//! ## Cost contract
//!
//! The kernel checks [`active`] **once per `step`/span entry** (one
//! thread-local read) and passes the result down as a register bool, so
//! an unprofiled run pays a handful of never-taken branches per cycle —
//! the same budget as the PR 2 tracer's `Option` checks — and a profiled
//! run pays ~2 `Instant::now()` calls per port per cycle. That observer
//! overhead is real (reported as `observer_overhead_pct` by
//! `repro profile`, budget in DESIGN.md §3.7); attribution *fractions*
//! remain honest because stamp cost is spread across adjacent phases.
//! Profiling is observation-only: it cannot feed back into the
//! simulation, so profiled runs are byte-identical to unprofiled ones
//! (enforced by `tests/telemetry_equivalence.rs`).
//!
//! Profiling is per-thread: [`begin`]/[`end`] must bracket a run on the
//! *same* thread (`measure` and `measure_batch` run on the caller's
//! thread, so `repro profile` just wraps them).

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{Counter, Registry};
use std::sync::Arc;

/// The six attribution phases, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Master poll/offer (step phase 1).
    GensTick,
    /// Interconnect flit movement (step phase 2).
    FabricTick,
    /// Controller + DRAM timing advance (step phase 3, tick half).
    McTick,
    /// `next_event` scans, pacer bookkeeping, loop control.
    HorizonCompute,
    /// Port peek/pop/accept, stuck retries, completion drains.
    QueueOps,
    /// Cross-lane min-horizon folds, realignment, boundary reconcile.
    LockstepReconcile,
}

/// Number of phases.
pub const NUM_PHASES: usize = 6;

/// All phases, in display order.
pub const PHASES: [Phase; NUM_PHASES] = [
    Phase::GensTick,
    Phase::FabricTick,
    Phase::McTick,
    Phase::HorizonCompute,
    Phase::QueueOps,
    Phase::LockstepReconcile,
];

impl Phase {
    /// The snake_case phase name used in tables, JSON, and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::GensTick => "gens_tick",
            Phase::FabricTick => "fabric_tick",
            Phase::McTick => "mc_tick",
            Phase::HorizonCompute => "horizon_compute",
            Phase::QueueOps => "queue_ops",
            Phase::LockstepReconcile => "lockstep_reconcile",
        }
    }
}

/// Which kernel a profiled run exercised (a metric label and report
/// field; the phases are shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kernel {
    /// The monolithic scalar kernel (`HbmSystem::step`/`run_span`).
    Scalar,
    /// The lockstep batched kernel (`hbm_core::lockstep`).
    Lockstep,
}

impl Kernel {
    /// Label value: `"scalar"` or `"lockstep"`.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Lockstep => "lockstep",
        }
    }
}

// ----------------------------------------------------------- thread state

struct ProfState {
    kernel: Kernel,
    t0: Instant,
    last: Instant,
    phase_ns: [u64; NUM_PHASES],
    laps: u64,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<ProfState>> = const { RefCell::new(None) };
}

/// Whether this thread is inside a [`begin`]/[`end`] window. The kernel
/// reads this once per step/span entry and branches on the cached bool.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Attributes the time since the previous stamp to `phase` and advances
/// the stamp. Call sites are guarded by [`active`]; calling while
/// inactive is a harmless no-op.
#[inline]
pub fn lap(phase: Phase) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            let now = Instant::now();
            st.phase_ns[phase as usize] += (now - st.last).as_nanos() as u64;
            st.last = now;
            st.laps += 1;
        }
    });
}

/// Starts a profiling window on this thread for `kernel`. Any previous
/// unfinished window is discarded.
pub fn begin(kernel: Kernel) {
    let now = Instant::now();
    STATE.with(|s| {
        *s.borrow_mut() =
            Some(ProfState { kernel, t0: now, last: now, phase_ns: [0; NUM_PHASES], laps: 0 });
    });
    ACTIVE.with(|a| a.set(true));
}

/// Ends the window and returns the attribution. The tail between the
/// last kernel stamp and this call is a final `horizon_compute` lap
/// (loop-control ownership), which is what makes
/// `sum(phase_ns) == total_ns` hold exactly. Returns an empty report if
/// no window was open.
pub fn end() -> PhaseReport {
    ACTIVE.with(|a| a.set(false));
    let st = STATE.with(|s| s.borrow_mut().take());
    let Some(mut st) = st else {
        return PhaseReport::empty(Kernel::Scalar);
    };
    let now = Instant::now();
    st.phase_ns[Phase::HorizonCompute as usize] += (now - st.last).as_nanos() as u64;
    let total_ns = (now - st.t0).as_nanos() as u64;
    let report = PhaseReport { kernel: st.kernel, phase_ns: st.phase_ns, total_ns, laps: st.laps };
    report.publish();
    report
}

// --------------------------------------------------------------- reports

/// One profiled window's attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Which kernel ran.
    pub kernel: Kernel,
    /// Nanoseconds attributed to each phase, indexed by [`Phase`] in
    /// [`PHASES`] order.
    pub phase_ns: [u64; NUM_PHASES],
    /// `t_end − t₀` of the window, measured independently of the laps.
    pub total_ns: u64,
    /// Stamp count (a sanity gauge on observer overhead).
    pub laps: u64,
}

impl PhaseReport {
    fn empty(kernel: Kernel) -> PhaseReport {
        PhaseReport { kernel, phase_ns: [0; NUM_PHASES], total_ns: 0, laps: 0 }
    }

    /// Nanoseconds attributed to `phase`.
    pub fn ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize]
    }

    /// Sum of all phase attributions.
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// The self-consistency invariant: the telescoping laps cover the
    /// window exactly, so attributed time equals measured loop time to
    /// the nanosecond.
    pub fn consistent(&self) -> bool {
        self.attributed_ns() == self.total_ns
    }

    /// `phase`'s share of the window, `0.0` for an empty window.
    pub fn fraction(&self, phase: Phase) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.ns(phase) as f64 / self.total_ns as f64
        }
    }

    /// JSON value with named phases (for `repro profile --json` and the
    /// `BENCH_simspeed.json` fold-in).
    pub fn to_json(&self) -> serde_json::Value {
        let phases = serde_json::Value::Map(
            PHASES
                .iter()
                .map(|&p| (p.name().to_string(), serde::value::to_value(&self.ns(p))))
                .collect(),
        );
        serde_json::json!({
            "kernel": self.kernel.name(),
            "phase_ns": phases,
            "total_ns": self.total_ns,
            "laps": self.laps,
            "consistent": self.consistent(),
        })
    }

    /// Adds this window into the registry's kernel-phase counters (when
    /// metrics are enabled), so a daemon's exposition accumulates phase
    /// time across profiled runs.
    fn publish(&self) {
        if !crate::metrics::enabled() {
            return;
        }
        let handles = phase_counters();
        let base = match self.kernel {
            Kernel::Scalar => 0,
            Kernel::Lockstep => NUM_PHASES,
        };
        for p in PHASES {
            handles.phase[base + p as usize].add(self.ns(p));
        }
        handles.runs[base / NUM_PHASES].inc();
    }
}

// ------------------------------------------------------- metric handles

struct PhaseCounters {
    /// `[scalar × 6, lockstep × 6]` in [`PHASES`] order.
    phase: Vec<Arc<Counter>>,
    /// Profiled-run counts, `[scalar, lockstep]`.
    runs: [Arc<Counter>; 2],
}

fn phase_counters() -> &'static PhaseCounters {
    static HANDLES: OnceLock<PhaseCounters> = OnceLock::new();
    HANDLES.get_or_init(|| build_phase_counters(Registry::global()))
}

fn build_phase_counters(reg: &Registry) -> PhaseCounters {
    let mut phase = Vec::with_capacity(2 * NUM_PHASES);
    for kernel in [Kernel::Scalar, Kernel::Lockstep] {
        for p in PHASES {
            phase.push(reg.counter(
                "hbm_kernel_phase_ns_total",
                "Profiled kernel wall time attributed per phase, in ns",
                &[("kernel", kernel.name()), ("phase", p.name())],
            ));
        }
    }
    let runs = [
        reg.counter(
            "hbm_kernel_profile_runs_total",
            "Completed phase-profiler windows",
            &[("kernel", "scalar")],
        ),
        reg.counter(
            "hbm_kernel_profile_runs_total",
            "Completed phase-profiler windows",
            &[("kernel", "lockstep")],
        ),
    ];
    PhaseCounters { phase, runs }
}

/// Pre-registers the kernel-phase series (all zero) so an exposition is
/// complete before any profiled run. Called by the registry's built-in
/// installer.
pub(crate) fn install_phase_series(reg: &Registry) {
    build_phase_counters(reg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telescoping_is_exact() {
        begin(Kernel::Scalar);
        lap(Phase::GensTick);
        std::thread::sleep(std::time::Duration::from_millis(2));
        lap(Phase::FabricTick);
        lap(Phase::QueueOps);
        let r = end();
        assert!(r.consistent(), "sum {} != total {}", r.attributed_ns(), r.total_ns);
        assert!(r.ns(Phase::FabricTick) >= 2_000_000);
        assert_eq!(r.laps, 3);
        assert!(!active());
    }

    #[test]
    fn end_without_begin_is_empty() {
        let r = end();
        assert_eq!(r.total_ns, 0);
        assert!(r.consistent());
    }

    #[test]
    fn lap_while_inactive_is_noop() {
        lap(Phase::McTick);
        assert!(!active());
    }

    #[test]
    fn fractions_sum_to_one() {
        begin(Kernel::Lockstep);
        lap(Phase::LockstepReconcile);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let r = end();
        let total: f64 = PHASES.iter().map(|&p| r.fraction(p)).sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
        assert_eq!(r.kernel, Kernel::Lockstep);
    }

    #[test]
    fn json_shape() {
        begin(Kernel::Scalar);
        lap(Phase::GensTick);
        let v = end().to_json();
        assert!(matches!(v.get("kernel"), Some(serde_json::Value::Str(s)) if s == "scalar"));
        assert!(matches!(v.get("consistent"), Some(serde_json::Value::Bool(true))));
        let phases = v.get("phase_ns").expect("phase_ns present");
        assert!(matches!(phases.get("gens_tick"), Some(serde_json::Value::U64(_))));
    }
}
