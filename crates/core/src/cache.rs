//! Content-addressed result cache for sweep points.
//!
//! The paper's figures are grids over a shared point space: many
//! `(SystemConfig, Workload, Fidelity)` points recur across figures,
//! across repeated `repro` invocations, and across concurrent serve
//! jobs. Every simulation is deterministic, so a result computed once is
//! correct forever — *for the same simulator semantics*. This module
//! memoises measurements under a canonical [`Fingerprint`] of the full
//! input (including [`SIM_KERNEL_VERSION`], bumped whenever the kernel's
//! observable behaviour changes, so stale entries can never resurface).
//!
//! ## Tiers
//!
//! * **Memory** — a sharded, bounded LRU map of `Fingerprint →
//!   Arc<Measurement>`; eviction is per shard by least-recent access.
//! * **Disk (optional)** — append-only JSONL segments under a cache
//!   directory (`--cache-dir` / `HBM_CACHE_DIR`). Writers buffer
//!   insertions and [`flush`](ResultCache::flush) them as a *new*
//!   segment via write-to-temp-then-rename, so a crash can never leave a
//!   half-written segment behind. Segments are loaded lazily on first
//!   lookup; a segment that fails to parse (corruption, truncation by an
//!   older crash, foreign files) is skipped **loudly** on stderr and the
//!   run proceeds without it.
//!
//! ## Single-flight
//!
//! Concurrent requests for the same fingerprint coalesce: one caller
//! becomes the *leader* and computes, the rest park as *followers* and
//! receive the leader's result. A panicking leader wakes its followers,
//! who retry (one of them becoming the new leader) — a poisoned point
//! never wedges the cache.
//!
//! ## The invariant
//!
//! A cache hit is **byte-identical** to a fresh run. Measurements
//! round-trip exactly through the vendored serde (integers verbatim,
//! `f64` via shortest-round-trip formatting), so the disk tier preserves
//! this too. The `cache_equivalence` proptests enforce it across all
//! four fabrics.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use hbm_traffic::Workload;
use serde::{Deserialize, Serialize};

use crate::experiment::Fidelity;
use crate::measure::{measure, Measurement};
use crate::system::SystemConfig;

/// Version of the simulator semantics a cached measurement was produced
/// under. Bump this whenever *any* change can alter a measurement —
/// kernel scheduling, fabric timing, statistics accounting — and every
/// previously cached entry silently stops matching.
pub const SIM_KERNEL_VERSION: u32 = 2;

/// Memory-tier shard count (fingerprints spread by their high bits).
const SHARDS: usize = 16;

/// Default bound on memory-tier entries across all shards.
pub const DEFAULT_CAPACITY: usize = 4_096;

/// How many buffered insertions trigger an automatic disk flush.
const AUTO_FLUSH_PENDING: usize = 256;

// ------------------------------------------------------------ fingerprint

/// A 128-bit content address of one sweep point at one kernel version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the hex form produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

/// FNV-1a over `bytes`, from an arbitrary 64-bit seed.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical fingerprint of a sweep point under the *current*
/// kernel version: a structural hash over the serde-canonical JSON of
/// `(SystemConfig, Workload, Fidelity)` plus [`SIM_KERNEL_VERSION`].
/// The vendored serde serialises struct fields in declaration order, so
/// the canonical form is deterministic across runs and platforms.
pub fn fingerprint(cfg: &SystemConfig, wl: &Workload, fid: Fidelity) -> Fingerprint {
    fingerprint_versioned(cfg, wl, fid, SIM_KERNEL_VERSION)
}

/// [`fingerprint`] pinned to an explicit kernel version — the hook the
/// invalidation tests use to prove a version bump re-keys every point.
pub fn fingerprint_versioned(
    cfg: &SystemConfig,
    wl: &Workload,
    fid: Fidelity,
    version: u32,
) -> Fingerprint {
    // Cycle tiers never touch the calibration — resolving the active
    // artifact lazily keeps cycle-only runs from loading (and possibly
    // warning about) HBM_CALIBRATION they do not use.
    let cal_digest =
        if fid.is_analytical() { crate::analytic::Calibration::active_digest() } else { 0 };
    fingerprint_calibrated(cfg, wl, fid, version, cal_digest)
}

/// [`fingerprint_versioned`] pinned to an explicit calibration content
/// digest ([`Calibration::digest`](crate::analytic::Calibration::digest);
/// ignored for cycle tiers) — the hook the invalidation tests use to
/// prove a re-fitted calibration re-keys every analytical point.
pub fn fingerprint_calibrated(
    cfg: &SystemConfig,
    wl: &Workload,
    fid: Fidelity,
    version: u32,
    cal_digest: u64,
) -> Fingerprint {
    // Analytical rows additionally key the calibration artifact: its
    // version *and* a digest of its content, because a user-fitted
    // artifact loaded via HBM_CALIBRATION necessarily carries the
    // current version yet predicts different rows. A re-fitted or
    // swapped calibration therefore re-keys every analytical point, and
    // analytical rows can never be confused with cycle rows (the tier
    // is part of the Fidelity JSON).
    let cal = if fid.is_analytical() {
        format!("|cal{}:{cal_digest:016x}", crate::analytic::CALIBRATION_VERSION)
    } else {
        String::new()
    };
    let canon = format!(
        "v{version}{cal}|{}|{}|{}",
        serde_json::to_string(cfg).expect("SystemConfig serialises"),
        serde_json::to_string(wl).expect("Workload serialises"),
        serde_json::to_string(&fid).expect("Fidelity serialises"),
    );
    let hi = fnv1a(0xcbf2_9ce4_8422_2325, canon.as_bytes());
    let lo = fnv1a(0xaf63_bd4c_8601_b7df, canon.as_bytes());
    Fingerprint((u128::from(hi) << 64) | u128::from(lo))
}

/// A structural fingerprint of the *topology* alone — the
/// [`SystemConfig`] without any workload or fidelity — under the same
/// canonicalisation as [`fingerprint`]. Two grid points with equal
/// topology keys share fabric geometry, controller timing, and clock,
/// differing only in what traffic they run; the batch planner
/// (`hbm_core::batch`) groups such points into one lockstep
/// [`BatchedSystem`](crate::lockstep::BatchedSystem).
pub fn topology_key(cfg: &SystemConfig) -> Fingerprint {
    let canon = format!(
        "v{SIM_KERNEL_VERSION}|topology|{}",
        serde_json::to_string(cfg).expect("SystemConfig serialises"),
    );
    let hi = fnv1a(0xcbf2_9ce4_8422_2325, canon.as_bytes());
    let lo = fnv1a(0xaf63_bd4c_8601_b7df, canon.as_bytes());
    Fingerprint((u128::from(hi) << 64) | u128::from(lo))
}

// ------------------------------------------------------------ observability

/// Point-in-time cache gauges and counters, exported by `repro`'s stderr
/// summary and the serve `cache` verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Whether lookups/insertions are active at all.
    pub enabled: bool,
    /// Live memory-tier entries.
    pub entries: usize,
    /// Memory-tier entry bound.
    pub capacity: usize,
    /// Lookups answered from the memory tier.
    pub hits: u64,
    /// Lookups that led a computation.
    pub misses: u64,
    /// Lookups that attached to another caller's in-flight computation.
    pub coalesced: u64,
    /// Entries written into the memory tier.
    pub inserts: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Cache directory of the disk tier, when one is configured.
    pub disk_dir: Option<String>,
    /// Entries loaded from disk segments.
    pub disk_entries_loaded: u64,
    /// Segments loaded cleanly.
    pub disk_segments_loaded: u64,
    /// Segments skipped as corrupted/truncated (reported on stderr).
    pub disk_segments_skipped: u64,
    /// Disk entries skipped for a stale [`SIM_KERNEL_VERSION`].
    pub stale_skipped: u64,
    /// Insertions buffered but not yet flushed to a segment.
    pub pending_disk_writes: usize,
}

// ------------------------------------------------------------ internals

/// One memory-tier shard: fingerprint → (measurement, last-access tick).
#[derive(Default)]
struct Shard {
    map: HashMap<u128, (Arc<Measurement>, u64)>,
}

/// One in-flight computation; followers park on the condvar.
struct Flight {
    /// `None` = pending; `Some(None)` = leader aborted;
    /// `Some(Some(m))` = complete.
    state: Mutex<Option<Option<Arc<Measurement>>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { state: Mutex::new(None), cv: Condvar::new() }
    }

    fn finish(&self, result: Option<Arc<Measurement>>) {
        *self.state.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<Arc<Measurement>> {
        let mut st = self.state.lock().unwrap();
        while st.is_none() {
            st = self.cv.wait(st).unwrap();
        }
        st.clone().expect("loop exits only once finished")
    }
}

/// On-disk segment line: kernel version, fingerprint, measurement.
#[derive(Serialize, Deserialize)]
struct DiskRecord {
    v: u32,
    fp: String,
    m: Measurement,
}

struct DiskTier {
    dir: PathBuf,
    /// Insertions awaiting a flush into a fresh segment.
    pending: Vec<(u128, Arc<Measurement>)>,
    loaded: bool,
    seg_counter: u64,
}

struct CacheShared {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    tick: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
    disk: Mutex<Option<DiskTier>>,
    /// Fast-path mirror of `disk.is_some() && !loaded`.
    disk_needs_load: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    disk_entries_loaded: AtomicU64,
    disk_segments_loaded: AtomicU64,
    disk_segments_skipped: AtomicU64,
    stale_skipped: AtomicU64,
}

// ------------------------------------------------------------ the cache

/// A content-addressed measurement cache; cheap to clone (all clones
/// share the same tiers). See the module docs for semantics.
#[derive(Clone)]
pub struct ResultCache {
    inner: Arc<CacheShared>,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new()
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("enabled", &self.is_enabled())
            .field("entries", &self.entries())
            .finish_non_exhaustive()
    }
}

impl ResultCache {
    fn with_enabled(enabled: bool) -> ResultCache {
        ResultCache {
            inner: Arc::new(CacheShared {
                enabled: AtomicBool::new(enabled),
                capacity: AtomicUsize::new(DEFAULT_CAPACITY),
                tick: AtomicU64::new(0),
                shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
                flights: Mutex::new(HashMap::new()),
                disk: Mutex::new(None),
                disk_needs_load: AtomicBool::new(false),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                inserts: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                disk_entries_loaded: AtomicU64::new(0),
                disk_segments_loaded: AtomicU64::new(0),
                disk_segments_skipped: AtomicU64::new(0),
                stale_skipped: AtomicU64::new(0),
            }),
        }
    }

    /// An enabled, memory-only cache.
    pub fn new() -> ResultCache {
        ResultCache::with_enabled(true)
    }

    /// A cache that ignores every lookup and insertion.
    pub fn disabled() -> ResultCache {
        ResultCache::with_enabled(false)
    }

    /// An enabled cache persisting to `dir` (created on first flush).
    pub fn with_dir(dir: impl Into<PathBuf>) -> ResultCache {
        let cache = ResultCache::new();
        cache.set_dir(dir);
        cache
    }

    /// The process-wide cache [`crate::batch::run_grid`] consults.
    /// Starts *disabled* unless `HBM_CACHE_DIR` names a directory, so
    /// existing callers see no behaviour change; `repro` flags flip it
    /// via [`enable`](ResultCache::enable) / [`set_dir`] /
    /// [`disable`](ResultCache::disable).
    ///
    /// [`set_dir`]: ResultCache::set_dir
    pub fn global() -> &'static ResultCache {
        static GLOBAL: OnceLock<ResultCache> = OnceLock::new();
        GLOBAL.get_or_init(|| match std::env::var("HBM_CACHE_DIR") {
            Ok(dir) if !dir.trim().is_empty() => ResultCache::with_dir(dir.trim()),
            _ => ResultCache::disabled(),
        })
    }

    /// Whether lookups/insertions do anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns the cache on (memory tier at least).
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns every lookup and insertion into a no-op.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Attaches (and enables) the disk tier under `dir`. Existing
    /// segments are loaded lazily, on the first lookup.
    pub fn set_dir(&self, dir: impl Into<PathBuf>) {
        let mut disk = self.inner.disk.lock().unwrap();
        *disk =
            Some(DiskTier { dir: dir.into(), pending: Vec::new(), loaded: false, seg_counter: 0 });
        self.inner.disk_needs_load.store(true, Ordering::Release);
        self.enable();
    }

    /// Re-keys `fp` onto its memory shard.
    fn shard(&self, fp: u128) -> &Mutex<Shard> {
        &self.inner.shards[((fp >> 64) as usize) % SHARDS]
    }

    fn per_shard_cap(&self) -> usize {
        (self.inner.capacity.load(Ordering::Relaxed) / SHARDS).max(1)
    }

    /// Bounds the memory tier to `entries` across all shards (tests use
    /// tiny bounds to exercise eviction).
    pub fn set_capacity(&self, entries: usize) {
        self.inner.capacity.store(entries.max(SHARDS), Ordering::Relaxed);
    }

    /// Counting lookup: a hit bumps the LRU tick and the hit counter.
    /// Misses are *not* counted here — the caller decides whether the
    /// miss leads a computation ([`get_or_compute`]) or attaches to an
    /// in-flight one, and counts accordingly.
    ///
    /// [`get_or_compute`]: ResultCache::get_or_compute
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<Measurement>> {
        self.lookup(fp, true)
    }

    /// Non-counting lookup (inspection only).
    pub fn peek(&self, fp: Fingerprint) -> Option<Arc<Measurement>> {
        self.lookup(fp, false)
    }

    fn lookup(&self, fp: Fingerprint, count: bool) -> Option<Arc<Measurement>> {
        if !self.is_enabled() {
            return None;
        }
        self.ensure_loaded();
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(fp.0).lock().unwrap();
        match shard.map.get_mut(&fp.0) {
            Some((m, last)) => {
                *last = tick;
                let m = m.clone();
                drop(shard);
                if count {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(m)
            }
            None => None,
        }
    }

    /// Inserts `m` under `fp` into the memory tier (evicting LRU entries
    /// past the bound) and buffers it for the disk tier when one is
    /// attached. No-op when disabled.
    pub fn insert(&self, fp: Fingerprint, m: Arc<Measurement>) {
        if !self.is_enabled() {
            return;
        }
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed);
        let cap = self.per_shard_cap();
        let fresh = {
            let mut shard = self.shard(fp.0).lock().unwrap();
            let fresh = shard.map.insert(fp.0, (m.clone(), tick)).is_none();
            while shard.map.len() > cap {
                // O(n) scan per eviction: shards are small (≤ cap) and
                // eviction is rare next to a multi-ms simulation.
                let oldest = shard.map.iter().min_by_key(|(_, (_, t))| *t).map(|(&k, _)| k);
                match oldest {
                    Some(k) => {
                        shard.map.remove(&k);
                        self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
            fresh
        };
        if fresh {
            self.inner.inserts.fetch_add(1, Ordering::Relaxed);
            let mut flush_now = false;
            {
                let mut disk = self.inner.disk.lock().unwrap();
                if let Some(d) = disk.as_mut() {
                    d.pending.push((fp.0, m));
                    flush_now = d.pending.len() >= AUTO_FLUSH_PENDING;
                }
            }
            if flush_now {
                if let Err(e) = self.flush() {
                    eprintln!("hbm-cache: flush failed: {e}");
                }
            }
        }
    }

    /// Counts one miss. [`get`](ResultCache::get) deliberately counts
    /// hits only; a caller that answers a failed lookup by computing the
    /// row itself (the lockstep batch runner) reports the miss here so
    /// the hit/miss ledger stays path-independent. No-op when disabled.
    pub fn record_miss(&self) {
        if self.is_enabled() {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The single-flight memoised compute: a hit returns immediately;
    /// otherwise one caller per fingerprint computes while identical
    /// concurrent callers wait for its result. Counts hits, misses, and
    /// coalesced waits.
    pub fn get_or_compute(
        &self,
        fp: Fingerprint,
        compute: impl Fn() -> Measurement,
    ) -> Arc<Measurement> {
        self.get_or_compute_impl(fp, &compute, true)
    }

    /// [`get_or_compute`](ResultCache::get_or_compute) without touching
    /// the hit/miss counters — for callers (the serve scheduler) that
    /// already accounted for the outcome at claim time.
    pub fn get_or_compute_quiet(
        &self,
        fp: Fingerprint,
        compute: impl Fn() -> Measurement,
    ) -> Arc<Measurement> {
        self.get_or_compute_impl(fp, &compute, false)
    }

    fn get_or_compute_impl(
        &self,
        fp: Fingerprint,
        compute: &dyn Fn() -> Measurement,
        count: bool,
    ) -> Arc<Measurement> {
        if !self.is_enabled() {
            return Arc::new(compute());
        }
        loop {
            if let Some(m) = self.lookup(fp, count) {
                return m;
            }
            let (flight, leader) = {
                let mut fl = self.inner.flights.lock().unwrap();
                match fl.get(&fp.0) {
                    Some(f) => (f.clone(), false),
                    None => {
                        let f = Arc::new(Flight::new());
                        fl.insert(fp.0, f.clone());
                        (f, true)
                    }
                }
            };
            if leader {
                if count {
                    self.inner.misses.fetch_add(1, Ordering::Relaxed);
                }
                // Abort the flight if `compute` unwinds, so followers
                // retry instead of parking forever.
                let guard = FlightGuard { cache: self, fp: fp.0, flight: &flight };
                let m = Arc::new(compute());
                self.insert(fp, m.clone());
                guard.complete(m.clone());
                return m;
            }
            if count {
                self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            match flight.wait() {
                Some(m) => return m,
                // Leader aborted: go round again (retrying as leader).
                None => continue,
            }
        }
    }

    /// Memoised [`measure`]: the one call site `batch` and `experiment`
    /// route every sweep point through.
    pub fn measure_cached(&self, cfg: &SystemConfig, wl: &Workload, fid: Fidelity) -> Measurement {
        // The fidelity tier dispatches here: analytical points evaluate
        // the calibrated closed-form model instead of the cycle kernel,
        // under a calibration-keyed fingerprint (see [`fingerprint`]).
        let compute = || {
            if fid.is_analytical() {
                crate::analytic::predict(cfg, wl, fid, crate::analytic::Calibration::active())
            } else {
                measure(cfg, *wl, fid.warmup, fid.cycles)
            }
        };
        if !self.is_enabled() {
            return compute();
        }
        let fp = fingerprint(cfg, wl, fid);
        (*self.get_or_compute(fp, compute)).clone()
    }

    /// Drops every memory-tier entry (counters and the disk tier are
    /// untouched). The serve `cache` verb's `clear` action.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().unwrap().map.clear();
        }
    }

    /// Writes the buffered insertions as one fresh disk segment (via
    /// temp-file-then-rename, so readers and crashes never see a partial
    /// segment). Returns the number of entries written; 0 when the disk
    /// tier is absent or nothing is pending.
    pub fn flush(&self) -> std::io::Result<usize> {
        let (dir, batch, seg) = {
            let mut disk = self.inner.disk.lock().unwrap();
            let Some(d) = disk.as_mut() else { return Ok(0) };
            if d.pending.is_empty() {
                return Ok(0);
            }
            d.seg_counter += 1;
            (d.dir.clone(), std::mem::take(&mut d.pending), d.seg_counter)
        };
        std::fs::create_dir_all(&dir)?;
        let mut body = String::new();
        for (fp, m) in &batch {
            let record = DiskRecord {
                v: SIM_KERNEL_VERSION,
                fp: Fingerprint(*fp).to_string(),
                m: (**m).clone(),
            };
            body.push_str(&serde_json::to_string(&record).expect("measurement serialises"));
            body.push('\n');
        }
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let name = format!("seg-{}-{stamp}-{seg}.jsonl", std::process::id());
        let tmp = dir.join(format!(".{name}.tmp"));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, dir.join(name))?;
        Ok(batch.len())
    }

    /// Loads disk segments into the memory tier, once, on first lookup.
    fn ensure_loaded(&self) {
        if !self.inner.disk_needs_load.load(Ordering::Acquire) {
            return;
        }
        let dir = {
            let mut disk = self.inner.disk.lock().unwrap();
            match disk.as_mut() {
                Some(d) if !d.loaded => {
                    d.loaded = true;
                    self.inner.disk_needs_load.store(false, Ordering::Release);
                    d.dir.clone()
                }
                _ => {
                    self.inner.disk_needs_load.store(false, Ordering::Release);
                    return;
                }
            }
        };
        for (fp, m) in self.read_segments(&dir) {
            let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed);
            let cap = self.per_shard_cap();
            let mut shard = self.shard(fp).lock().unwrap();
            shard.map.entry(fp).or_insert((m, tick));
            while shard.map.len() > cap {
                let oldest = shard.map.iter().min_by_key(|(_, (_, t))| *t).map(|(&k, _)| k);
                match oldest {
                    Some(k) => {
                        shard.map.remove(&k);
                        self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
    }

    /// Parses every `*.jsonl` segment under `dir`. A segment is
    /// all-or-nothing: any unparsable line (corruption, truncation)
    /// skips the whole segment with a loud stderr note, and the run
    /// proceeds without its entries.
    fn read_segments(&self, dir: &Path) -> Vec<(u128, Arc<Measurement>)> {
        let mut out = Vec::new();
        let Ok(names) = std::fs::read_dir(dir) else { return out };
        let mut paths: Vec<PathBuf> = names
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(body) = std::fs::read_to_string(&path) else {
                eprintln!("hbm-cache: skipping unreadable segment {}", path.display());
                self.inner.disk_segments_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let mut entries = Vec::new();
            let mut bad = None;
            let mut stale = 0u64;
            for (lineno, line) in body.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<DiskRecord>(line) {
                    Ok(rec) if rec.v != SIM_KERNEL_VERSION => stale += 1,
                    Ok(rec) => match Fingerprint::parse(&rec.fp) {
                        Some(fp) => entries.push((fp.0, Arc::new(rec.m))),
                        None => {
                            bad = Some(format!("line {}: bad fingerprint", lineno + 1));
                            break;
                        }
                    },
                    Err(e) => {
                        bad = Some(format!("line {}: {e}", lineno + 1));
                        break;
                    }
                }
            }
            match bad {
                Some(why) => {
                    eprintln!(
                        "hbm-cache: skipping corrupted segment {} ({why}); \
                         delete it to silence this",
                        path.display()
                    );
                    self.inner.disk_segments_skipped.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.inner.stale_skipped.fetch_add(stale, Ordering::Relaxed);
                    self.inner
                        .disk_entries_loaded
                        .fetch_add(entries.len() as u64, Ordering::Relaxed);
                    self.inner.disk_segments_loaded.fetch_add(1, Ordering::Relaxed);
                    out.extend(entries);
                }
            }
        }
        out
    }

    /// Live memory-tier entry count.
    pub fn entries(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// The observability snapshot.
    pub fn snapshot(&self) -> CacheSnapshot {
        let (disk_dir, pending) = {
            let disk = self.inner.disk.lock().unwrap();
            match disk.as_ref() {
                Some(d) => (Some(d.dir.display().to_string()), d.pending.len()),
                None => (None, 0),
            }
        };
        CacheSnapshot {
            enabled: self.is_enabled(),
            entries: self.entries(),
            capacity: self.inner.capacity.load(Ordering::Relaxed),
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
            inserts: self.inner.inserts.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            disk_dir,
            disk_entries_loaded: self.inner.disk_entries_loaded.load(Ordering::Relaxed),
            disk_segments_loaded: self.inner.disk_segments_loaded.load(Ordering::Relaxed),
            disk_segments_skipped: self.inner.disk_segments_skipped.load(Ordering::Relaxed),
            stale_skipped: self.inner.stale_skipped.load(Ordering::Relaxed),
            pending_disk_writes: pending,
        }
    }
}

/// Aborts a leader's flight when the computation unwinds, so followers
/// wake and retry instead of deadlocking behind a poisoned point.
struct FlightGuard<'a> {
    cache: &'a ResultCache,
    fp: u128,
    flight: &'a Arc<Flight>,
}

impl FlightGuard<'_> {
    fn complete(self, m: Arc<Measurement>) {
        self.cache.inner.flights.lock().unwrap().remove(&self.fp);
        self.flight.finish(Some(m));
        std::mem::forget(self);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache.inner.flights.lock().unwrap().remove(&self.fp);
        self.flight.finish(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn fid() -> Fidelity {
        Fidelity::cycle(100, 300)
    }

    fn point(rotation: usize) -> (SystemConfig, Workload) {
        (SystemConfig::xilinx(), Workload { rotation, ..Workload::scs() })
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hbm-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let (cfg, wl) = point(1);
        let a = fingerprint(&cfg, &wl, fid());
        let b = fingerprint(&cfg, &wl, fid());
        assert_eq!(a, b, "same input, same fingerprint");
        let c = fingerprint(&cfg, &Workload { rotation: 2, ..wl }, fid());
        assert_ne!(a, c, "workload change re-keys");
        let d = fingerprint(&cfg, &wl, Fidelity::cycle(101, 300));
        assert_ne!(a, d, "fidelity change re-keys");
        let e = fingerprint_versioned(&cfg, &wl, fid(), SIM_KERNEL_VERSION + 1);
        assert_ne!(a, e, "kernel version bump re-keys");
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        let (cfg, wl) = point(3);
        let fp = fingerprint(&cfg, &wl, fid());
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(Fingerprint::parse(""), None);
    }

    #[test]
    fn hit_returns_the_inserted_measurement_and_counts() {
        let cache = ResultCache::new();
        let (cfg, wl) = point(0);
        let fp = fingerprint(&cfg, &wl, fid());
        assert!(cache.get(fp).is_none());
        let m = Arc::new(measure(&cfg, wl, 100, 300));
        cache.insert(fp, m.clone());
        let got = cache.get(fp).expect("hit after insert");
        assert_eq!(serde_json::to_string(&*got).unwrap(), serde_json::to_string(&*m).unwrap());
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.entries, 1);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = ResultCache::disabled();
        let (cfg, wl) = point(0);
        let fp = fingerprint(&cfg, &wl, fid());
        cache.insert(fp, Arc::new(measure(&cfg, wl, 100, 300)));
        assert!(cache.get(fp).is_none());
        assert_eq!(cache.entries(), 0);
        // measure_cached still measures.
        let m = cache.measure_cached(&cfg, &wl, fid());
        assert!(m.cycles > 0);
    }

    #[test]
    fn lru_eviction_respects_the_bound_and_recency() {
        let cache = ResultCache::new();
        cache.set_capacity(SHARDS); // one entry per shard
        let (cfg0, wl0) = point(0);
        // Eviction only looks at keys and ticks, so one shared
        // measurement serves every key.
        let m = Arc::new(measure(&cfg0, wl0, 50, 100));
        for (cfg, wl) in (0..40).map(point) {
            cache.insert(fingerprint(&cfg, &wl, fid()), m.clone());
        }
        assert!(cache.entries() <= SHARDS, "bound holds: {}", cache.entries());
        assert!(cache.snapshot().evictions > 0, "evictions happened");
    }

    #[test]
    fn get_or_compute_runs_once_across_threads() {
        let cache = ResultCache::new();
        let (cfg, wl) = point(2);
        let fp = fingerprint(&cfg, &wl, fid());
        let runs = AtomicUsize::new(0);
        let results: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    let runs = &runs;
                    let (cfg, wl) = (cfg.clone(), wl);
                    scope.spawn(move || {
                        let m = cache.get_or_compute(fp, || {
                            runs.fetch_add(1, Ordering::Relaxed);
                            measure(&cfg, wl, 100, 300)
                        });
                        serde_json::to_string(&*m).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1, "single flight computes once");
        assert!(results.windows(2).all(|w| w[0] == w[1]), "all callers agree");
        let snap = cache.snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits + snap.coalesced, 7);
    }

    #[test]
    fn aborted_leader_wakes_followers_who_retry() {
        let cache = ResultCache::new();
        let (cfg, wl) = point(4);
        let fp = fingerprint(&cfg, &wl, fid());
        let attempts = AtomicUsize::new(0);
        let ok: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    let attempts = &attempts;
                    let (cfg, wl) = (cfg.clone(), wl);
                    scope.spawn(move || {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            cache.get_or_compute(fp, || {
                                // First attempt explodes; retries
                                // succeed.
                                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                                    std::thread::sleep(std::time::Duration::from_millis(20));
                                    panic!("poisoned leader");
                                }
                                measure(&cfg, wl, 100, 300)
                            })
                        }));
                        r.is_ok()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one caller re-raised the leader's panic; everyone else
        // eventually got a measurement (directly or via retry).
        assert_eq!(ok.iter().filter(|&&b| !b).count(), 1);
        assert!(cache.peek(fp).is_some(), "a retry completed the point");
    }

    #[test]
    fn disk_tier_round_trips_byte_identically() {
        let dir = tmp_dir("roundtrip");
        let (cfg, wl) = point(1);
        let fp = fingerprint(&cfg, &wl, fid());
        let fresh = measure(&cfg, wl, 100, 300);
        {
            let cache = ResultCache::with_dir(&dir);
            cache.insert(fp, Arc::new(fresh.clone()));
            assert!(cache.flush().unwrap() >= 1);
        }
        let cache = ResultCache::with_dir(&dir);
        let loaded = cache.get(fp).expect("loaded from disk");
        assert_eq!(
            serde_json::to_string(&*loaded).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "disk round trip must be byte-identical"
        );
        let snap = cache.snapshot();
        assert_eq!(snap.disk_segments_loaded, 1);
        assert_eq!(snap.disk_entries_loaded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_segment_is_skipped_and_run_proceeds() {
        let dir = tmp_dir("corrupt");
        let (cfg, wl) = point(1);
        let fp = fingerprint(&cfg, &wl, fid());
        {
            let cache = ResultCache::with_dir(&dir);
            cache.insert(fp, Arc::new(measure(&cfg, wl, 100, 300)));
            cache.flush().unwrap();
        }
        // Truncate the good segment mid-line: now corrupt.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .expect("one segment exists");
        let body = std::fs::read_to_string(&seg).unwrap();
        std::fs::write(&seg, &body[..body.len() / 2]).unwrap();

        let cache = ResultCache::with_dir(&dir);
        assert!(cache.get(fp).is_none(), "corrupt segment contributes nothing");
        let snap = cache.snapshot();
        assert_eq!(snap.disk_segments_skipped, 1);
        assert_eq!(snap.disk_segments_loaded, 0);
        // The cache still works for fresh work.
        let m = cache.measure_cached(&cfg, &wl, fid());
        assert!(m.cycles > 0);
        assert!(cache.peek(fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_kernel_version_entries_never_resurface() {
        let dir = tmp_dir("stale");
        let (cfg, wl) = point(2);
        let fp = fingerprint(&cfg, &wl, fid());
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write a segment from a previous kernel version.
        let m = measure(&cfg, wl, 100, 300);
        let rec = DiskRecord { v: SIM_KERNEL_VERSION.wrapping_sub(1), fp: fp.to_string(), m };
        let line = serde_json::to_string(&rec).unwrap();
        std::fs::write(dir.join("seg-old.jsonl"), format!("{line}\n")).unwrap();

        let cache = ResultCache::with_dir(&dir);
        assert!(cache.get(fp).is_none(), "stale entry must not hit");
        let snap = cache.snapshot();
        assert_eq!(snap.stale_skipped, 1);
        assert_eq!(snap.disk_segments_loaded, 1, "segment itself is healthy");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_empties_the_memory_tier() {
        let cache = ResultCache::new();
        let (cfg, wl) = point(0);
        let fp = fingerprint(&cfg, &wl, fid());
        cache.insert(fp, Arc::new(measure(&cfg, wl, 50, 100)));
        assert_eq!(cache.entries(), 1);
        cache.clear();
        assert_eq!(cache.entries(), 0);
        assert!(cache.get(fp).is_none());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let cache = ResultCache::with_dir(tmp_dir("snap"));
        let snap = cache.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
