//! Trace replay: drive the simulated system from a captured
//! [`hbm_traffic::Trace`] instead of live generators.
//!
//! Replay preserves each master's transaction order and relative pacing
//! (an event is not issued before its recorded cycle) while the
//! interconnect and memory under test provide the timing — so the same
//! address stream can be compared across fabric configurations.

use hbm_axi::{AxiId, Cycle, MasterId, OutstandingTracker, Transaction, TxnBuilder};
use hbm_traffic::{GenStats, Trace, TraceEvent};

use crate::system::{HbmSystem, SystemConfig, TrafficSource};

/// Replays one master's slice of a trace.
#[derive(Debug)]
pub struct TraceSource {
    events: Vec<TraceEvent>,
    next: usize,
    builder: TxnBuilder,
    tracker: OutstandingTracker,
    pending: Option<Transaction>,
    stats: GenStats,
}

impl TraceSource {
    /// A source replaying `master`'s events from the trace, with the
    /// given outstanding-transaction limit.
    pub fn new(trace: &Trace, master: MasterId, outstanding: usize) -> TraceSource {
        TraceSource {
            events: trace.for_master(master.0).copied().collect(),
            next: 0,
            builder: TxnBuilder::new(master),
            tracker: OutstandingTracker::new(256, outstanding),
            pending: None,
            stats: GenStats::default(),
        }
    }

    /// Events remaining to issue.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl TrafficSource for TraceSource {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.pending.is_none() {
            let e = self.events.get(self.next)?;
            if e.at > now || !self.tracker.can_issue(e.dir()) {
                return None;
            }
            let txn = self
                .builder
                .issue(AxiId(e.id), e.addr, e.burst(), e.dir(), now)
                .expect("trace contained an illegal transaction");
            self.tracker.issue(e.dir(), txn.id, txn.seq);
            self.next += 1;
            self.pending = Some(txn);
        }
        self.pending
    }

    fn accepted(&mut self) {
        assert!(self.pending.take().is_some(), "no pending transaction");
        self.stats.issued += 1;
    }

    fn completed(&mut self, now: Cycle, txn: &Transaction) {
        self.tracker
            .complete(txn.dir, txn.id, txn.seq)
            .expect("AXI ordering violated — simulator bug");
        self.stats.completed += 1;
        let lat = now.saturating_sub(txn.issued_at);
        match txn.dir {
            hbm_axi::Dir::Read => {
                self.stats.bytes_read += txn.bytes();
                self.stats.read_lat.record(lat);
            }
            hbm_axi::Dir::Write => {
                self.stats.bytes_written += txn.bytes();
                self.stats.write_lat.record(lat);
            }
        }
    }

    fn stats(&self) -> &GenStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = GenStats::default();
    }

    fn drained(&self) -> bool {
        self.pending.is_none()
            && self.next == self.events.len()
            && self.tracker.total_in_flight() == 0
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.pending.is_some() {
            return Some(now);
        }
        let e = self.events.get(self.next)?;
        if !self.tracker.can_issue(e.dir()) {
            return None; // wakes on a completion
        }
        // The trace timestamp is the one source of *future* events.
        Some(e.at.max(now))
    }
}

/// Builds a system that replays `trace` on `cfg` with the given
/// per-master outstanding limit.
pub fn replay_system(cfg: &SystemConfig, trace: &Trace, outstanding: usize) -> HbmSystem {
    assert_eq!(
        trace.num_masters, cfg.hbm.num_pch,
        "trace was captured for a different master count"
    );
    let sources = (0..cfg.hbm.num_pch)
        .map(|m| {
            Box::new(TraceSource::new(trace, MasterId(m as u16), outstanding))
                as Box<dyn TrafficSource>
        })
        .collect();
    HbmSystem::with_sources(cfg, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::Workload;

    fn small_trace() -> Trace {
        Trace::capture(Workload::ccs(), 32, 256 << 20, 8, 2)
    }

    #[test]
    fn replay_completes_every_event() {
        let trace = small_trace();
        let mut sys = replay_system(&SystemConfig::mao(), &trace, 16);
        assert!(sys.run_until_drained(1_000_000), "replay did not drain");
        let done: u64 = sys.gen_stats().iter().map(|g| g.completed).sum();
        assert_eq!(done, trace.events.len() as u64);
    }

    #[test]
    fn replay_moves_the_traced_bytes() {
        let trace = small_trace();
        let mut sys = replay_system(&SystemConfig::xilinx(), &trace, 16);
        sys.run_until_drained(1_000_000);
        let bytes: u64 = sys.gen_stats().iter().map(|g| g.total_bytes()).sum();
        assert_eq!(bytes, trace.total_bytes());
    }

    #[test]
    fn replay_respects_event_times() {
        // Space events far apart; the run must take at least that long.
        let trace = Trace::capture(Workload::ccs(), 32, 256 << 20, 4, 100);
        let mut sys = replay_system(&SystemConfig::mao(), &trace, 16);
        sys.run_until_drained(1_000_000);
        assert!(sys.now() >= 300, "finished at {} despite 100-cycle pacing", sys.now());
    }

    #[test]
    fn same_trace_compares_fabrics() {
        // The point of traces: identical stimulus on both interconnects.
        let trace = small_trace();
        let run = |cfg: &SystemConfig| {
            let mut sys = replay_system(cfg, &trace, 16);
            sys.run_until_drained(1_000_000);
            sys.now()
        };
        let t_mao = run(&SystemConfig::mao());
        let t_xlnx = run(&SystemConfig::xilinx());
        // CCS hot-spots on the stock fabric → replay takes far longer.
        assert!(
            t_xlnx > 2 * t_mao,
            "XLNX replay {t_xlnx} vs MAO {t_mao} — hot-spot should dominate"
        );
    }

    #[test]
    #[should_panic(expected = "different master count")]
    fn master_count_mismatch_rejected() {
        let trace = Trace::capture(
            Workload { working_set: 8 * (256 << 20), ..Workload::ccs() },
            8,
            256 << 20,
            2,
            1,
        );
        let _ = replay_system(&SystemConfig::mao(), &trace, 16);
    }
}
