//! The paper's back-of-envelope performance estimator (§IV / §V).
//!
//! Before running (or building) anything, the paper estimates achievable
//! bandwidth from a handful of rules — "we estimate the maximal
//! achievable memory throughput to be about 13 GB/s for the access
//! pattern of Accelerator A in a system without MAO … with MAO we expect
//! an increase to about the maximum HBM throughput of 416 GB/s" — and
//! §V shows those estimates land within 2–4 % of measurement. This
//! module is a thin reporting wrapper over [`crate::analytic::ceilings`]
//! — the single closed-form implementation the analytical fidelity tier
//! also builds on — so the estimator and the `Fidelity::Analytical`
//! model can never drift apart. `tests/estimator.rs` checks the rules
//! against the simulator across the whole pattern grid.

use hbm_traffic::Workload;
use serde::{Deserialize, Serialize};

use crate::analytic;
use crate::system::SystemConfig;

/// A bandwidth estimate with its contributing ceilings, for reporting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Estimate {
    /// The estimated achievable throughput in GB/s.
    pub total_gbps: f64,
    /// Port-clock ceiling (GB/s).
    pub port_ceiling: f64,
    /// DRAM ceiling over the effective channels (GB/s).
    pub dram_ceiling: f64,
    /// Lateral-bus ceiling (GB/s; infinite when not applicable).
    pub lateral_ceiling: f64,
    /// Effective number of channels.
    pub n_ch_eff: usize,
}

/// Estimates the achievable bandwidth of `wl` on `cfg` using the paper's
/// §IV rules — no simulation involved. The estimate is exactly
/// `min(port, dram, lateral)` of [`analytic::ceilings`]; the analytical
/// fidelity tier layers rotation/demand bounds and calibration on top.
pub fn estimate_bandwidth(cfg: &SystemConfig, wl: &Workload) -> Estimate {
    let c = analytic::ceilings(cfg, wl);
    Estimate {
        total_gbps: c.port.min(c.dram).min(c.lateral),
        port_ceiling: c.port,
        dram_ceiling: c.dram,
        lateral_ceiling: c.lateral,
        n_ch_eff: c.n_ch_eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::RwRatio;

    #[test]
    fn ccs_hotspot_estimate_matches_paper() {
        // Paper §V: "about 13 GB/s for the access pattern of Accelerator
        // A in a system without MAO".
        let e = estimate_bandwidth(&SystemConfig::xilinx(), &Workload::ccs());
        assert_eq!(e.n_ch_eff, 1);
        assert!((e.total_gbps - 13.0).abs() < 2.0, "{e:?}");
    }

    #[test]
    fn ccs_mao_estimate_matches_paper() {
        // Paper §V: "with MAO we expect an increase to about the maximum
        // HBM throughput of 416 GB/s".
        let e = estimate_bandwidth(&SystemConfig::mao(), &Workload::ccs());
        assert_eq!(e.n_ch_eff, 32);
        assert!((380.0..440.0).contains(&e.total_gbps), "{e:?}");
    }

    #[test]
    fn read_only_estimates_port_clock() {
        let wl = Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() };
        let e = estimate_bandwidth(&SystemConfig::xilinx(), &wl);
        assert!((e.total_gbps - 307.2).abs() < 5.0, "{e:?}");
    }

    #[test]
    fn accelerator_b_estimate_matches_paper() {
        // Paper §V: B's read-heavy pattern is limited "to roughly 2/3 of
        // the maximum throughput" ≈ 277 GB/s with MAO; ~10 GB/s without.
        let read_heavy = Workload { rw: RwRatio { reads: 15, writes: 1 }, ..Workload::ccs() };
        let mao = estimate_bandwidth(&SystemConfig::mao(), &read_heavy);
        assert!((250.0..340.0).contains(&mao.total_gbps), "{:?}", mao);
        let xlnx = estimate_bandwidth(&SystemConfig::xilinx(), &read_heavy);
        assert!((8.0..14.0).contains(&xlnx.total_gbps), "{:?}", xlnx);
    }

    #[test]
    fn ccra_xilinx_hits_the_lateral_ceiling() {
        let e = estimate_bandwidth(&SystemConfig::xilinx(), &Workload::ccra());
        assert!(e.lateral_ceiling.is_finite());
        assert!(e.total_gbps <= e.lateral_ceiling);
        // Ballpark of the measured 80–90 GB/s.
        assert!((50.0..130.0).contains(&e.total_gbps), "{e:?}");
    }

    #[test]
    fn estimates_scale_with_clock() {
        let wl = Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() };
        let e300 = estimate_bandwidth(&SystemConfig::xilinx(), &wl);
        let e450 = estimate_bandwidth(
            &SystemConfig::xilinx().at_clock(hbm_axi::ClockDomain::ACC_450),
            &wl,
        );
        assert!(e450.total_gbps > 1.3 * e300.total_gbps);
    }
}
