//! The paper's back-of-envelope performance estimator (§IV / §V).
//!
//! Before running (or building) anything, the paper estimates achievable
//! bandwidth from a handful of rules — "we estimate the maximal
//! achievable memory throughput to be about 13 GB/s for the access
//! pattern of Accelerator A in a system without MAO … with MAO we expect
//! an increase to about the maximum HBM throughput of 416 GB/s" — and
//! §V shows those estimates land within 2–4 % of measurement. This
//! module encodes the same rules; `tests/estimator.rs` checks them
//! against the simulator across the whole pattern grid.
//!
//! The rules, in the paper's order:
//!
//! 1. **Port clock**: each AXI port moves ≤ `32 B × facc` per direction;
//!    a read:write mix uses both directions in proportion.
//! 2. **Effective DRAM rate**: the per-PCH ceiling is the refresh-derated
//!    raw rate, further derated for short bursts and random access.
//! 3. **Effective channels** (`N_ch_eff`): the contiguous map confines a
//!    buffer of `working_set` bytes to `⌈ws / capacity⌉` channels; the
//!    MAO's interleaving (or single-channel partitioning) uses all of
//!    them.
//! 4. **Lateral ceiling** (`N_lat_eff`): cross-channel traffic on the
//!    segmented fabric is additionally capped by the lateral buses.

use hbm_traffic::{Pattern, Workload};
use serde::{Deserialize, Serialize};

use crate::system::{FabricKind, SystemConfig};

/// A bandwidth estimate with its contributing ceilings, for reporting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Estimate {
    /// The estimated achievable throughput in GB/s.
    pub total_gbps: f64,
    /// Port-clock ceiling (GB/s).
    pub port_ceiling: f64,
    /// DRAM ceiling over the effective channels (GB/s).
    pub dram_ceiling: f64,
    /// Lateral-bus ceiling (GB/s; infinite when not applicable).
    pub lateral_ceiling: f64,
    /// Effective number of channels.
    pub n_ch_eff: usize,
}

/// Estimates the achievable bandwidth of `wl` on `cfg` using the paper's
/// §IV rules — no simulation involved.
pub fn estimate_bandwidth(cfg: &SystemConfig, wl: &Workload) -> Estimate {
    let n = cfg.hbm.num_pch;
    let port_bw = cfg.clock.port_bw_gbps(); // per port per direction
    let read_frac = wl.rw.read_fraction();

    // Rule 3: effective channels.
    let spread = match (&cfg.fabric, wl.pattern) {
        // Single-channel patterns are spread by construction.
        (_, Pattern::Scs | Pattern::Scra) => n,
        // The MAO interleaves everything.
        (FabricKind::Mao(_), _) => n,
        // Contiguous map: the buffer determines the channels touched.
        (_, Pattern::Ccs | Pattern::Ccra) => {
            (wl.working_set.div_ceil(cfg.hbm.pch_capacity) as usize).clamp(1, n)
        }
    };

    // Rule 1: port ceiling. For spread traffic each master's port is the
    // limit; for hot-spot traffic the *memory-side* port of the few
    // channels is.
    let ports = spread.min(n) as f64;
    let port_ceiling = if read_frac == 0.0 || read_frac == 1.0 {
        ports * port_bw
    } else {
        // Both directions active: each direction is capped at port_bw,
        // so the mix is limited by its larger component.
        let dominant = read_frac.max(1.0 - read_frac);
        ports * (port_bw / dominant)
    };

    // Rule 2: DRAM ceiling with burst/pattern derating.
    let t = &cfg.hbm.timings;
    let dram_eff = t.effective_bw_gbps();
    let bl_bytes = wl.burst.bytes() as f64;
    let pattern_eff = match wl.pattern {
        Pattern::Scs | Pattern::Ccs => {
            // Streams: short bursts cost scheduling slots, long ones are
            // free (the paper: BL 2 nearly saturates a stream).
            if wl.burst.beats() >= 2 {
                0.97
            } else {
                0.6
            }
        }
        Pattern::Scra | Pattern::Ccra => {
            // Random: every burst opens a row; the overhead that bank
            // parallelism cannot hide is roughly the unoverlapped
            // fraction of tRC per burst.
            let data_ns = bl_bytes / t.raw_bw_gbps();
            data_ns / (data_ns + 0.35 * (t.t_rp + t.t_rcd))
        }
    };
    // Mixed traffic pays turnarounds.
    let mix_eff = if read_frac > 0.0 && read_frac < 1.0 { 0.97 } else { 1.0 };
    let dram_ceiling = spread as f64 * dram_eff * pattern_eff * mix_eff;

    // Rule 4: lateral ceiling on the segmented fabric for cross-channel
    // traffic (requests/responses funnel over ≤ 2 buses per direction at
    // each boundary; uniform random traffic crosses ~half the device).
    let lateral_ceiling = match (&cfg.fabric, wl.pattern) {
        (FabricKind::Xilinx | FabricKind::XilinxTweaked(_), Pattern::Ccra) => {
            // 4 boundaries-worth of paired buses, both directions, spread
            // over the crossing fraction (~1/2).
            8.0 * port_bw / 0.5 * 0.7 // 0.7: dead cycles + imbalance
        }
        _ => f64::INFINITY,
    };

    Estimate {
        total_gbps: port_ceiling.min(dram_ceiling).min(lateral_ceiling),
        port_ceiling,
        dram_ceiling,
        lateral_ceiling,
        n_ch_eff: spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::RwRatio;

    #[test]
    fn ccs_hotspot_estimate_matches_paper() {
        // Paper §V: "about 13 GB/s for the access pattern of Accelerator
        // A in a system without MAO".
        let e = estimate_bandwidth(&SystemConfig::xilinx(), &Workload::ccs());
        assert_eq!(e.n_ch_eff, 1);
        assert!((e.total_gbps - 13.0).abs() < 2.0, "{e:?}");
    }

    #[test]
    fn ccs_mao_estimate_matches_paper() {
        // Paper §V: "with MAO we expect an increase to about the maximum
        // HBM throughput of 416 GB/s".
        let e = estimate_bandwidth(&SystemConfig::mao(), &Workload::ccs());
        assert_eq!(e.n_ch_eff, 32);
        assert!((380.0..440.0).contains(&e.total_gbps), "{e:?}");
    }

    #[test]
    fn read_only_estimates_port_clock() {
        let wl = Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() };
        let e = estimate_bandwidth(&SystemConfig::xilinx(), &wl);
        assert!((e.total_gbps - 307.2).abs() < 5.0, "{e:?}");
    }

    #[test]
    fn accelerator_b_estimate_matches_paper() {
        // Paper §V: B's read-heavy pattern is limited "to roughly 2/3 of
        // the maximum throughput" ≈ 277 GB/s with MAO; ~10 GB/s without.
        let read_heavy = Workload { rw: RwRatio { reads: 15, writes: 1 }, ..Workload::ccs() };
        let mao = estimate_bandwidth(&SystemConfig::mao(), &read_heavy);
        assert!((250.0..340.0).contains(&mao.total_gbps), "{:?}", mao);
        let xlnx = estimate_bandwidth(&SystemConfig::xilinx(), &read_heavy);
        assert!((8.0..14.0).contains(&xlnx.total_gbps), "{:?}", xlnx);
    }

    #[test]
    fn ccra_xilinx_hits_the_lateral_ceiling() {
        let e = estimate_bandwidth(&SystemConfig::xilinx(), &Workload::ccra());
        assert!(e.lateral_ceiling.is_finite());
        assert!(e.total_gbps <= e.lateral_ceiling);
        // Ballpark of the measured 80–90 GB/s.
        assert!((50.0..130.0).contains(&e.total_gbps), "{e:?}");
    }

    #[test]
    fn estimates_scale_with_clock() {
        let wl = Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() };
        let e300 = estimate_bandwidth(&SystemConfig::xilinx(), &wl);
        let e450 = estimate_bandwidth(
            &SystemConfig::xilinx().at_clock(hbm_axi::ClockDomain::ACC_450),
            &wl,
        );
        assert!(e450.total_gbps > 1.3 * e300.total_gbps);
    }
}
