//! Closed-form throughput/latency model — the `Fidelity::Analytical`
//! tier (DESIGN.md §3.9).
//!
//! The paper's curves are dominated by a handful of closed-form effects:
//! port clocking, lateral-bus hops, burst efficiency, page-hit ratio,
//! and the outstanding-transaction (Little's-law) bound. This module
//! evaluates those effects directly — microseconds per point instead of
//! milliseconds of cycle simulation — and synthesises rows in the same
//! [`Measurement`] shape the simulator emits, so every renderer, cache
//! tier, and serve client consumes them unchanged.
//!
//! There is exactly **one** implementation of the closed-form rules:
//! [`ceilings`] holds the paper's §IV estimator (the
//! [`crate::estimate`] module delegates here), and [`model`] extends it
//! with the rotation-aware lateral ceiling, the demand (Little's-law)
//! ceiling, and the latency model. Residual error against the cycle
//! simulator is absorbed by a versioned [`Calibration`] artifact fitted
//! per *scenario family* (fabric class × pattern) by the `repro
//! xvalidate` harness, which also reports the per-family error envelope
//! (mean/p95/max relative error). The calibration version *and a
//! content digest of the active artifact* are keyed into the
//! result-cache fingerprint, so analytical rows produced under
//! different calibrations — builtin vs a user-fitted `HBM_CALIBRATION`
//! artifact at the same version — or cycle rows can never be confused.
//!
//! Accuracy contract: the *calibrated* bandwidth prediction stays inside
//! the per-family envelope on the pinned scenario lattice
//! ([`scenario_lattice`]); CI gates the p95. Latencies are best-effort
//! (reported by `xvalidate`, not gated): the synthetic latency
//! statistics carry the model's mean as a single sample per direction,
//! which keeps `mean()` exact and the row cheap to build.

use std::sync::OnceLock;

use hbm_traffic::{GenStats, Pattern, Workload};
use serde::{Deserialize, Serialize};

use crate::batch::GridPoint;
use crate::experiment::Fidelity;
use crate::measure::Measurement;
use crate::system::{FabricKind, SystemConfig};

/// Version of the calibration artifact format *and* of the model
/// equations it was fitted against. Bump whenever either changes:
/// stale artifacts are rejected loudly and the builtin calibration
/// takes over, and the cache fingerprint of every analytical row
/// changes with it.
pub const CALIBRATION_VERSION: u32 = 1;

// ------------------------------------------------------------ families

/// The fabric equivalence class a calibration family is keyed by.
/// `XilinxTweaked` shares the `Xilinx` class: the tweaks change
/// parameters the model reads directly (bus count, rate, dead beats),
/// not the residual structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricClass {
    /// 1:1 direct port mapping.
    Direct,
    /// Monolithic 32×32 crossbar.
    FullCrossbar,
    /// Segmented Xilinx switch network (stock or tweaked).
    Xilinx,
    /// Memory Access Optimizer.
    Mao,
}

impl FabricClass {
    /// The class of a concrete fabric configuration.
    pub fn of(fabric: &FabricKind) -> FabricClass {
        match fabric {
            FabricKind::Direct => FabricClass::Direct,
            FabricKind::FullCrossbar => FabricClass::FullCrossbar,
            FabricKind::Xilinx | FabricKind::XilinxTweaked(_) => FabricClass::Xilinx,
            FabricKind::Mao(_) => FabricClass::Mao,
        }
    }

    /// Short lowercase name, stable for reports and JSON keys.
    pub fn as_str(&self) -> &'static str {
        match self {
            FabricClass::Direct => "direct",
            FabricClass::FullCrossbar => "crossbar",
            FabricClass::Xilinx => "xilinx",
            FabricClass::Mao => "mao",
        }
    }
}

impl std::fmt::Display for FabricClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ------------------------------------------------------------ calibration

/// Relative-error envelope of one scenario family, over the pinned
/// cross-validation lattice: `|calibrated − cycle| / cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// Mean relative error.
    pub mean: f64,
    /// 95th-percentile relative error (the CI-gated figure).
    pub p95: f64,
    /// Worst relative error.
    pub max: f64,
}

impl ErrorEnvelope {
    /// An envelope that trusts nothing — used for families the lattice
    /// never exercised, so adaptive sweeps always escalate them.
    pub const UNTRUSTED: ErrorEnvelope = ErrorEnvelope { mean: 1.0, p95: 1.0, max: 1.0 };
}

/// Fitted residuals and error envelope for one scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FamilyCalibration {
    /// Fabric class of the family.
    pub fabric: FabricClass,
    /// Workload pattern of the family.
    pub pattern: Pattern,
    /// Multiplicative residual on the model's bandwidth (geometric mean
    /// of cycle/model over the lattice).
    pub bw_scale: f64,
    /// Multiplicative residual on the model's latencies.
    pub lat_scale: f64,
    /// Error envelope of the *calibrated* bandwidth.
    pub envelope: ErrorEnvelope,
}

impl FamilyCalibration {
    /// The identity calibration for an unfitted family: raw model
    /// output, untrusted envelope.
    pub fn identity(fabric: FabricClass, pattern: Pattern) -> FamilyCalibration {
        FamilyCalibration {
            fabric,
            pattern,
            bw_scale: 1.0,
            lat_scale: 1.0,
            envelope: ErrorEnvelope::UNTRUSTED,
        }
    }
}

/// The versioned calibration artifact: one [`FamilyCalibration`] per
/// fitted scenario family. Round-trips through serde; artifacts written
/// under a different [`CALIBRATION_VERSION`] are rejected loudly (the
/// model equations they were fitted against no longer exist).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The [`CALIBRATION_VERSION`] this artifact was fitted under.
    pub version: u32,
    /// Per-family fitted residuals.
    pub families: Vec<FamilyCalibration>,
}

impl Calibration {
    /// The identity calibration: raw model output, every family
    /// untrusted.
    pub fn identity() -> Calibration {
        Calibration { version: CALIBRATION_VERSION, families: Vec::new() }
    }

    /// The builtin calibration, fitted with `repro xvalidate` against
    /// the cycle simulator on the pinned scenario lattice at QUICK
    /// windows (this repo's CI re-validates the envelope every run).
    pub fn builtin() -> Calibration {
        use FabricClass::*;
        use Pattern::*;
        let f = |fabric, pattern, bw_scale, lat_scale, mean, p95, max| FamilyCalibration {
            fabric,
            pattern,
            bw_scale,
            lat_scale,
            envelope: ErrorEnvelope { mean, p95, max },
        };
        Calibration {
            version: CALIBRATION_VERSION,
            families: vec![
                // Fitted by `repro xvalidate` (see BENCH_xvalidate.json).
                f(Xilinx, Scs, 0.9742, 1.2076, 0.0269, 0.0480, 0.0480),
                f(Xilinx, Ccs, 0.9980, 0.2290, 0.0040, 0.0081, 0.0081),
                f(Xilinx, Scra, 1.0759, 1.1768, 0.0519, 0.0759, 0.0759),
                f(Xilinx, Ccra, 0.9981, 0.4181, 0.0131, 0.0252, 0.0252),
                f(Mao, Scs, 0.9686, 1.2310, 0.0593, 0.1135, 0.1135),
                f(Mao, Ccs, 1.0168, 1.2076, 0.0529, 0.0837, 0.0837),
                f(Mao, Scra, 1.0201, 1.1512, 0.1002, 0.1102, 0.1102),
                f(Mao, Ccra, 1.0396, 1.1867, 0.0773, 0.1124, 0.1124),
                f(FullCrossbar, Scs, 0.9834, 1.2730, 0.0284, 0.0579, 0.0579),
                f(FullCrossbar, Ccs, 1.0454, 0.3860, 0.0475, 0.0520, 0.0520),
                f(FullCrossbar, Scra, 1.0592, 1.2115, 0.0412, 0.0798, 0.0798),
                f(FullCrossbar, Ccra, 0.7285, 0.7442, 0.0561, 0.0878, 0.0878),
                f(Direct, Scs, 0.9822, 1.2741, 0.0266, 0.0542, 0.0542),
                f(Direct, Scra, 1.0631, 1.2073, 0.0396, 0.0767, 0.0767),
            ],
        }
    }

    /// The fitted family, or the identity (untrusted) calibration when
    /// the family was never fitted.
    pub fn family(&self, fabric: FabricClass, pattern: Pattern) -> FamilyCalibration {
        self.families
            .iter()
            .copied()
            .find(|fc| fc.fabric == fabric && fc.pattern == pattern)
            .unwrap_or_else(|| FamilyCalibration::identity(fabric, pattern))
    }

    /// Serialises the artifact as canonical JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("calibration serialises")
    }

    /// Stable 64-bit content digest of the artifact (FNV-1a over the
    /// canonical JSON). The cache keys analytical fingerprints by this,
    /// not just [`CALIBRATION_VERSION`]: a user-fitted artifact loaded
    /// via `HBM_CALIBRATION` carries the same version as the builtin,
    /// and rows produced under different calibration *content* must
    /// never be served for one another.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.to_json().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// [`digest`](Calibration::digest) of [`Calibration::active`],
    /// computed once (the active calibration is pinned for the process
    /// lifetime).
    pub fn active_digest() -> u64 {
        static DIGEST: OnceLock<u64> = OnceLock::new();
        *DIGEST.get_or_init(|| Calibration::active().digest())
    }

    /// Parses an artifact, rejecting stale versions loudly: a
    /// calibration fitted against older model equations must be
    /// re-fitted (`repro xvalidate --out <path>`), not reused.
    pub fn from_json(json: &str) -> Result<Calibration, String> {
        let cal: Calibration =
            serde_json::from_str(json).map_err(|e| format!("unparsable calibration: {e}"))?;
        if cal.version != CALIBRATION_VERSION {
            return Err(format!(
                "stale calibration artifact: version {} but the model is at version {} — \
                 re-fit it with `repro xvalidate --out <path>`",
                cal.version, CALIBRATION_VERSION
            ));
        }
        Ok(cal)
    }

    /// The process-wide active calibration: the artifact named by
    /// `HBM_CALIBRATION` when set and valid (stale or unreadable
    /// artifacts are reported on stderr and ignored), else the builtin.
    pub fn active() -> &'static Calibration {
        static ACTIVE: OnceLock<Calibration> = OnceLock::new();
        ACTIVE.get_or_init(|| {
            if let Ok(path) = std::env::var("HBM_CALIBRATION") {
                let path = path.trim();
                if !path.is_empty() {
                    match std::fs::read_to_string(path)
                        .map_err(|e| e.to_string())
                        .and_then(|s| Calibration::from_json(&s))
                    {
                        Ok(cal) => return cal,
                        Err(e) => {
                            eprintln!(
                                "hbm-analytic: ignoring HBM_CALIBRATION={path}: {e}; \
                                 using the builtin calibration"
                            );
                        }
                    }
                }
            }
            Calibration::builtin()
        })
    }
}

// ------------------------------------------------------------ the model

/// The paper's §IV ceilings for one point (no calibration applied).
#[derive(Debug, Clone, Copy)]
pub struct Ceilings {
    /// Port-clock ceiling in GB/s.
    pub port: f64,
    /// DRAM ceiling over the effective channels in GB/s.
    pub dram: f64,
    /// Lateral-bus ceiling in GB/s (infinite when not applicable).
    pub lateral: f64,
    /// Effective number of channels.
    pub n_ch_eff: usize,
}

/// The paper's §IV estimation rules — the single implementation
/// [`crate::estimate::estimate_bandwidth`] and [`model`] both build on.
///
/// 1. **Port clock**: each AXI port moves ≤ `32 B × facc` per direction;
///    a read:write mix uses both directions in proportion.
/// 2. **Effective DRAM rate**: the per-PCH ceiling is the refresh-derated
///    raw rate, further derated for short bursts and random access.
/// 3. **Effective channels**: the contiguous map confines a buffer of
///    `working_set` bytes to `⌈ws / capacity⌉` channels; the MAO's
///    interleaving (or single-channel partitioning) uses all of them.
/// 4. **Lateral ceiling**: cross-channel random traffic on the segmented
///    fabric is additionally capped by the lateral buses.
pub fn ceilings(cfg: &SystemConfig, wl: &Workload) -> Ceilings {
    let n = cfg.hbm.num_pch;
    let port_bw = cfg.clock.port_bw_gbps(); // per port per direction
    let read_frac = wl.rw.read_fraction();

    // Rule 3: effective channels.
    let spread = match (&cfg.fabric, wl.pattern) {
        // Single-channel patterns are spread by construction.
        (_, Pattern::Scs | Pattern::Scra) => n,
        // The MAO interleaves everything.
        (FabricKind::Mao(_), _) => n,
        // Contiguous map: the buffer determines the channels touched.
        (_, Pattern::Ccs | Pattern::Ccra) => {
            (wl.working_set.div_ceil(cfg.hbm.pch_capacity) as usize).clamp(1, n)
        }
    };

    // Rule 1: port ceiling. For spread traffic each master's port is the
    // limit; for hot-spot traffic the *memory-side* port of the few
    // channels is.
    let ports = spread.min(n) as f64;
    let port_ceiling = if read_frac == 0.0 || read_frac == 1.0 {
        ports * port_bw
    } else {
        // Both directions active: each direction is capped at port_bw,
        // so the mix is limited by its larger component.
        let dominant = read_frac.max(1.0 - read_frac);
        ports * (port_bw / dominant)
    };

    // Rule 2: DRAM ceiling with burst/pattern derating.
    let t = &cfg.hbm.timings;
    let dram_eff = t.effective_bw_gbps();
    let bl_bytes = wl.burst.bytes() as f64;
    let pattern_eff = match wl.pattern {
        Pattern::Scs | Pattern::Ccs => {
            // Streams: short bursts cost scheduling slots, long ones are
            // free (the paper: BL 2 nearly saturates a stream).
            if wl.burst.beats() >= 2 {
                0.97
            } else {
                0.6
            }
        }
        Pattern::Scra | Pattern::Ccra => {
            // Random: every burst opens a row; the overhead that bank
            // parallelism cannot hide is roughly the unoverlapped
            // fraction of tRC per burst.
            let data_ns = bl_bytes / t.raw_bw_gbps();
            data_ns / (data_ns + 0.35 * (t.t_rp + t.t_rcd))
        }
    };
    // Mixed traffic pays turnarounds.
    let mix_eff = if read_frac > 0.0 && read_frac < 1.0 { 0.97 } else { 1.0 };
    let dram_ceiling = spread as f64 * dram_eff * pattern_eff * mix_eff;

    // Rule 4: lateral ceiling on the segmented fabric for cross-channel
    // random traffic. Transactions funnel over the boundary bus pairs,
    // pay grant-switch dead beats per burst (short bursts lose half the
    // bus), and load the two bus directions in proportion to the
    // read/write mix — a pure-direction stream strands the return
    // capacity. Cross-validated against the cycle simulator by `repro
    // xvalidate` (the 0.55 utilisation folds arbitration imbalance).
    let lateral_ceiling = match (&cfg.fabric, wl.pattern) {
        (FabricKind::Xilinx | FabricKind::XilinxTweaked(_), Pattern::Ccra) => {
            let boundaries = (n / 4).saturating_sub(1).max(1) as f64;
            let beats = wl.burst.beats() as f64;
            let burst_eff = beats / (beats + 2.5);
            let dominant = read_frac.max(1.0 - read_frac);
            let dir_eff = (2.0 - dominant) / 2.0;
            boundaries * 2.0 * 2.0 * port_bw * burst_eff * dir_eff * 0.55
        }
        _ => f64::INFINITY,
    };

    Ceilings { port: port_ceiling, dram: dram_ceiling, lateral: lateral_ceiling, n_ch_eff: spread }
}

/// Latency-model constants, anchored on the paper's §IV-A closed-page
/// probes (read 48 → 72 cycles local → far, write 17 → 41).
const RD_BASE_CYCLES: f64 = 39.0;
const WR_BASE_CYCLES: f64 = 17.0;
const HOP_ROUNDTRIP_CYCLES: f64 = 3.43;
const MAO_STAGE_CYCLES: f64 = 6.0;

/// Minimum per-transaction service cadence of a stream burst, in
/// beat-times: the binding scheduler starts at most one burst per
/// cadence, so short bursts idle the pipe (BL 2 reaches ~2/cadence of
/// the ceiling) while BL ≥ 8 hides the cadence entirely. Fitted per
/// binding resource by `repro xvalidate`: port arbitration is the
/// fastest, the hot-spot DRAM command scheduler slower, and the MAO's
/// per-burst interleave/reorder stages the slowest.
const STREAM_CADENCE_PORT: f64 = 3.15;
const STREAM_CADENCE_DRAM: f64 = 4.4;
const STREAM_CADENCE_MAO: f64 = 4.8;

/// Extra per-transaction recycle time of an outstanding slot on the MAO,
/// in nanoseconds: the interleave and reorder stages hand a slot back
/// later than the bare response arrival, which binds throughput at
/// shallow outstanding depths (fitted by `repro xvalidate`).
const MAO_RECYCLE_NS: f64 = 100.0;

/// The uncalibrated closed-form evaluation of one point.
#[derive(Debug, Clone, Copy)]
pub struct Model {
    /// Predicted combined throughput in GB/s.
    pub total_gbps: f64,
    /// The §IV ceilings.
    pub ceilings: Ceilings,
    /// Rotation-aware lateral ceiling in GB/s (infinite off the
    /// segmented fabric or at rotation 0).
    pub rotation_ceiling: f64,
    /// Outstanding-transaction (Little's-law) demand ceiling in GB/s.
    pub demand_ceiling: f64,
    /// Predicted mean read latency in accelerator cycles.
    pub read_lat_cycles: f64,
    /// Predicted mean write latency in accelerator cycles.
    pub write_lat_cycles: f64,
    /// Mean switch hops per transaction (Xilinx class only).
    pub mean_hops: f64,
}

/// Evaluates the closed-form model for one point — throughput from the
/// §IV ceilings extended with the rotation and demand bounds, latency
/// from the anchored base + hop + DRAM terms inflated by Little's law
/// under saturation.
pub fn model(cfg: &SystemConfig, wl: &Workload) -> Model {
    let c = ceilings(cfg, wl);
    let n = cfg.hbm.num_pch;
    let clock = cfg.clock;
    let t = &cfg.hbm.timings;
    let port_bw = clock.port_bw_gbps();
    let read_frac = wl.rw.read_fraction();
    let dominant =
        if read_frac == 0.0 || read_frac == 1.0 { 1.0 } else { read_frac.max(1.0 - read_frac) };
    let beats = wl.burst.beats() as f64;
    let txn_bytes = wl.burst.bytes() as f64;
    let class = FabricClass::of(&cfg.fabric);

    // Streams are further bound by the per-transaction cadence of the
    // binding scheduler: an effective throughput factor of
    // `min(1, beats/cadence)`. Random patterns carry their row-open
    // overhead in the §IV DRAM derate instead.
    let stream_eff = match (class, wl.pattern) {
        (FabricClass::Mao, Pattern::Scs | Pattern::Ccs) => (beats / STREAM_CADENCE_MAO).min(1.0),
        (_, Pattern::Ccs) => (beats / STREAM_CADENCE_DRAM).min(1.0),
        (_, Pattern::Scs) => (beats / STREAM_CADENCE_PORT).min(1.0),
        _ => 1.0,
    };

    // Rotation model (Fig. 4): with rotation r on the segmented fabric,
    // `min(1, r/4)` of the masters target a channel in another switch.
    // A crossing stream shares its boundary's data-bus pair with the
    // other crossers — grant switching costs `dead_beats` per burst —
    // and a stream hopping h switches occupies `2h − 1` bus segments'
    // worth of capacity. Non-crossing masters keep the full per-master
    // share of the §IV ceilings.
    let (lateral_buses, lateral_rate, dead_beats) = match &cfg.fabric {
        FabricKind::Xilinx => (2.0, 1.0, 2.0),
        FabricKind::XilinxTweaked(tw) => (tw.lateral_buses as f64, tw.lateral_rate, tw.dead_beats),
        _ => (0.0, 0.0, 0.0),
    };
    let rotation_ceiling = match (class, wl.pattern) {
        (FabricClass::Xilinx, Pattern::Scs) if !wl.rotation.is_multiple_of(n) => {
            let r = (wl.rotation % n) as f64;
            let f_cross = (r / 4.0).min(1.0);
            let hops = (r / 4.0).ceil().max(1.0);
            let burst_eff = beats / (beats + dead_beats);
            let per_bus = (lateral_buses / 2.0) * lateral_rate * port_bw * burst_eff;
            let b_cross = per_bus / (2.0 * dominant) / (2.0 * hops - 1.0);
            let free = c.port.min(c.dram) * stream_eff / n as f64;
            n as f64 * ((1.0 - f_cross) * free + f_cross * b_cross.min(free))
        }
        _ => f64::INFINITY,
    };

    // Mean switch hops per transaction (4 ports per switch).
    let switches = (n / 4).max(1) as f64;
    let mean_hops = match (class, wl.pattern) {
        (FabricClass::Xilinx, Pattern::Scs) => ((wl.rotation % n) as f64 / 4.0).min(switches - 1.0),
        (FabricClass::Xilinx, Pattern::Ccs) => {
            // Hot channels sit at one end; the mean master is half the
            // device away, scaled by how few channels the buffer spans.
            (switches - 1.0) / 2.0 * (1.0 - c.n_ch_eff as f64 / n as f64)
        }
        (FabricClass::Xilinx, Pattern::Scra | Pattern::Ccra) => {
            // Mean |i - j| over uniform switch pairs: (s² − 1) / 3s.
            (switches * switches - 1.0) / (3.0 * switches)
        }
        _ => 0.0,
    };

    // Unloaded latency: anchored base + hop round-trips + DRAM service +
    // burst serialisation (reads wait for the last beat).
    let dram_ns = match wl.pattern {
        Pattern::Scs | Pattern::Ccs => t.closed_page_ns() * 0.3 + beats * t.t_beat,
        Pattern::Scra | Pattern::Ccra => t.row_miss_ns() * 0.6 + beats * t.t_beat,
    };
    let stage = if class == FabricClass::Mao { MAO_STAGE_CYCLES } else { 0.0 };
    let unl_rd = RD_BASE_CYCLES
        + stage
        + HOP_ROUNDTRIP_CYCLES * mean_hops
        + clock.ns_to_cycles(dram_ns) as f64
        + (beats - 1.0);
    let unl_wr = WR_BASE_CYCLES + stage + HOP_ROUNDTRIP_CYCLES * mean_hops;

    // Demand ceiling (Little's law): n masters × outstanding slots, each
    // recycled every unloaded-latency interval (plus the MAO's slower
    // slot handback).
    let unl_mix_ns =
        clock.cycles_to_ns((read_frac * unl_rd + (1.0 - read_frac) * unl_wr).ceil() as u64);
    let slot_ns = unl_mix_ns + if class == FabricClass::Mao { MAO_RECYCLE_NS } else { 0.0 };
    let demand_ceiling = if slot_ns > 0.0 {
        n as f64 * wl.outstanding as f64 * txn_bytes / slot_ns
    } else {
        f64::INFINITY
    };
    // Shallow reordering throttles random traffic the same way: a master
    // can only overlap as many row-opens as it has independent IDs.
    let reorder_ceiling = match wl.pattern {
        Pattern::Scra | Pattern::Ccra => {
            let slots = (wl.num_ids.min(wl.outstanding)) as f64;
            let service_ns = t.row_miss_ns() * 0.6 + beats * t.t_beat;
            n as f64 * slots * txn_bytes / service_ns
        }
        _ => f64::INFINITY,
    };

    // The cadence derate applies to the static resource ceilings only:
    // the rotation model already carries it through `free`, and
    // demand-bound traffic is slot-limited, not slot-occupancy-limited.
    let resource_ceiling = (c.port.min(c.dram).min(c.lateral) * stream_eff).min(rotation_ceiling);
    let total_gbps = resource_ceiling.min(demand_ceiling).min(reorder_ceiling);

    // Saturated latency: when a resource (not demand) binds, every
    // outstanding slot is full and Little's law gives the mean wait.
    let (read_lat_cycles, write_lat_cycles) = if total_gbps < 0.98 * demand_ceiling {
        let bytes_per_cycle = total_gbps * clock.cycles_to_ns(1);
        let sat = n as f64 * wl.outstanding as f64 * txn_bytes / bytes_per_cycle.max(1e-9);
        (unl_rd.max(sat), unl_wr.max(0.6 * sat))
    } else {
        (unl_rd, unl_wr)
    };

    Model {
        total_gbps,
        ceilings: c,
        rotation_ceiling,
        demand_ceiling,
        read_lat_cycles,
        write_lat_cycles,
        mean_hops,
    }
}

// ------------------------------------------------------------ prediction

/// Evaluates the calibrated model and synthesises a [`Measurement`] row
/// over `fid.cycles` accelerator cycles — same shape, same normalising
/// window semantics as a cycle-simulated row. Deterministic and pure.
pub fn predict(cfg: &SystemConfig, wl: &Workload, fid: Fidelity, cal: &Calibration) -> Measurement {
    let m = model(cfg, wl);
    let fam = cal.family(FabricClass::of(&cfg.fabric), wl.pattern);
    let total_gbps = m.total_gbps * fam.bw_scale;
    let read_lat = (m.read_lat_cycles * fam.lat_scale).round().max(1.0) as u64;
    let write_lat = (m.write_lat_cycles * fam.lat_scale).round().max(1.0) as u64;

    let cycles = fid.cycles.max(1);
    let clock = cfg.clock;
    let window_ns = clock.cycles_to_ns(cycles);
    let read_frac = wl.rw.read_fraction();
    let txn_bytes = wl.burst.bytes().max(32);
    let n = cfg.hbm.num_pch.max(1);

    // Whole transactions per master, floored — the synthetic row's
    // counters stay mutually consistent (gen = Σ per_master; bytes are
    // txn multiples) and deterministic.
    let total_bytes = total_gbps * window_ns;
    let rd_txns_pm = (total_bytes * read_frac / txn_bytes as f64 / n as f64).floor() as u64;
    let wr_txns_pm = (total_bytes * (1.0 - read_frac) / txn_bytes as f64 / n as f64).floor() as u64;

    let mut per_master = Vec::with_capacity(n);
    for _ in 0..n {
        let mut g = GenStats {
            issued: rd_txns_pm + wr_txns_pm,
            completed: rd_txns_pm + wr_txns_pm,
            bytes_read: rd_txns_pm * txn_bytes,
            bytes_written: wr_txns_pm * txn_bytes,
            ..GenStats::default()
        };
        // One sample per direction at the model's mean: `mean()` is
        // exact, and the row costs microseconds regardless of volume.
        if rd_txns_pm > 0 {
            g.read_lat.record(read_lat);
        }
        if wr_txns_pm > 0 {
            g.write_lat.record(write_lat);
        }
        per_master.push(g);
    }
    let mut gen = GenStats::default();
    for g in &per_master {
        gen.merge(g);
    }

    // DRAM counters from the model's pattern terms.
    let total_txns = gen.completed;
    let hit_frac = match wl.pattern {
        Pattern::Scs | Pattern::Ccs => 0.9,
        Pattern::Scra | Pattern::Ccra => 0.1,
    };
    let page_hits = (total_txns as f64 * hit_frac).round() as u64;
    let t = &cfg.hbm.timings;
    let mem = hbm_mem::MemStats {
        bytes_read: gen.bytes_read,
        bytes_written: gen.bytes_written,
        page_hits,
        page_closed: total_txns.saturating_sub(page_hits) / 2,
        page_misses: total_txns.saturating_sub(page_hits).div_ceil(2),
        turnarounds: if read_frac > 0.0 && read_frac < 1.0 { total_txns / 4 } else { 0 },
        refreshes: (window_ns / t.t_refi).floor() as u64 * n as u64,
        busy_ns: gen.total_bytes() as f64 / t.raw_bw_gbps(),
        stall_ns: 0.0,
    };

    // Lateral traffic: bytes crossing switch boundaries, spread over the
    // buses, so Fig. 4-style renderers see a sensible contended link.
    let mut fabric = hbm_fabric::FabricStats::default();
    fabric.ingress.beats = gen.bytes_written / 32;
    fabric.egress.beats = gen.bytes_read / 32;
    fabric.mc_links.beats = gen.total_bytes() / 32;
    if FabricClass::of(&cfg.fabric) == FabricClass::Xilinx {
        let boundaries = (n / 4).saturating_sub(1).max(1);
        let crossing_streams = match wl.pattern {
            Pattern::Scs => (wl.rotation % n) as f64,
            Pattern::Ccs => (n - n.min(4 * m.ceilings.n_ch_eff)) as f64 / 2.0,
            Pattern::Scra | Pattern::Ccra => n as f64 / 2.0,
        };
        let per_master_bytes = gen.total_bytes() as f64 / n as f64;
        let bus_beats = (crossing_streams * per_master_bytes / 32.0 / 2.0).round() as u64;
        for _ in 0..boundaries {
            fabric.lateral_right.push([
                hbm_fabric::LinkStats { flits: bus_beats, beats: bus_beats, grant_switches: 0 },
                hbm_fabric::LinkStats { flits: bus_beats, beats: bus_beats, grant_switches: 0 },
            ]);
            fabric.lateral_left.push([
                hbm_fabric::LinkStats { flits: bus_beats, beats: bus_beats, grant_switches: 0 },
                hbm_fabric::LinkStats { flits: bus_beats, beats: bus_beats, grant_switches: 0 },
            ]);
        }
    }

    Measurement {
        cycles,
        clock,
        gen,
        per_master,
        mem,
        fabric,
        device_gbps: cfg.hbm.theoretical_bw_gbps(),
    }
}

// ------------------------------------------------------------ escalation

/// When an adaptive sweep escalates an analytically-evaluated point to
/// cycle accuracy.
#[derive(Debug, Clone, Copy)]
pub struct EscalationPolicy {
    /// Escalate both sides of a knee: neighbouring points whose
    /// throughput differs by more than this relative fraction.
    pub knee_rel: f64,
    /// Escalate bandwidth collapses: points below this percentage of
    /// the device's theoretical bandwidth.
    pub collapse_pct: f64,
    /// Escalate points whose family envelope p95 exceeds this — the
    /// model says it cannot be trusted there.
    pub trust_p95: f64,
}

impl Default for EscalationPolicy {
    fn default() -> EscalationPolicy {
        EscalationPolicy { knee_rel: 0.25, collapse_pct: 8.0, trust_p95: 0.12 }
    }
}

/// Decides which points of an analytically-swept grid deserve cycle
/// accuracy: knees, collapses, and envelope-untrusted families. Shared
/// by [`crate::batch::run_grid_adaptive`] and the serve scheduler so
/// both escalate identically.
///
/// The knee detector compares adjacent points, so it only fires within
/// a contiguous stripe of one scenario family — same fabric class, same
/// pattern. A throughput step where the grid switches fabric or pattern
/// (the multi-fabric grids of `analytical_grid` and the experiment
/// sweeps) is a discontinuity between unrelated curves, not a knee, and
/// is never escalated for it. Within a stripe the comparison assumes
/// axis order: callers interleaving unrelated axes in one stripe get
/// conservative (extra) escalations, never missed collapses — the
/// collapse and envelope rules are per-point and order-independent.
pub fn escalation_mask(
    points: &[GridPoint],
    rows: &[Measurement],
    cal: &Calibration,
    policy: &EscalationPolicy,
) -> Vec<bool> {
    assert_eq!(points.len(), rows.len());
    let mut mask = vec![false; points.len()];
    for (i, ((cfg, wl), row)) in points.iter().zip(rows).enumerate() {
        let family = (FabricClass::of(&cfg.fabric), wl.pattern);
        let fam = cal.family(family.0, family.1);
        if fam.envelope.p95 > policy.trust_p95 {
            mask[i] = true;
        }
        if row.pct_of_device() < policy.collapse_pct {
            mask[i] = true;
        }
        if i > 0 {
            let (prev_cfg, prev_wl) = &points[i - 1];
            let same_stripe = (FabricClass::of(&prev_cfg.fabric), prev_wl.pattern) == family;
            let a = rows[i - 1].total_gbps();
            let b = row.total_gbps();
            let base = a.abs().max(b.abs()).max(1e-9);
            if same_stripe && (a - b).abs() / base > policy.knee_rel {
                mask[i - 1] = true;
                mask[i] = true;
            }
        }
    }
    mask
}

// ------------------------------------------------------------ xvalidate

/// One pinned cross-validation scenario: a grid point plus its family
/// key and a human-readable setting label.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Fabric class of the scenario.
    pub fabric: FabricClass,
    /// Workload pattern of the scenario.
    pub pattern: Pattern,
    /// Axis-variation label ("base", "bl2", "read-only", …).
    pub setting: &'static str,
    /// The measurable point.
    pub point: GridPoint,
}

/// The pinned scenario lattice `repro xvalidate` fits and validates
/// against: every fabric class × regular pattern family (the direct
/// fabric only routes single-channel locality), each swept over burst
/// length, read/write mix, outstanding depth, and — on the segmented
/// fabric — rotation.
pub fn scenario_lattice() -> Vec<Scenario> {
    use hbm_axi::BurstLen;
    use hbm_traffic::RwRatio;
    let mut out = Vec::new();
    let fabrics: [(FabricClass, SystemConfig); 4] = [
        (FabricClass::Xilinx, SystemConfig::xilinx()),
        (FabricClass::Mao, SystemConfig::mao()),
        (
            FabricClass::FullCrossbar,
            SystemConfig { fabric: FabricKind::FullCrossbar, ..SystemConfig::xilinx() },
        ),
        (FabricClass::Direct, SystemConfig::direct()),
    ];
    for (class, cfg) in fabrics {
        let patterns: &[Pattern] = if class == FabricClass::Direct {
            &[Pattern::Scs, Pattern::Scra]
        } else {
            &[Pattern::Scs, Pattern::Ccs, Pattern::Scra, Pattern::Ccra]
        };
        for &pattern in patterns {
            let base = match pattern {
                Pattern::Scs => Workload::scs(),
                Pattern::Ccs => Workload::ccs(),
                Pattern::Scra => Workload::scra(),
                Pattern::Ccra => Workload::ccra(),
            };
            let variants: [(&'static str, Workload); 4] = [
                ("base", base),
                (
                    "bl2",
                    Workload { burst: BurstLen::of(2), stride: BurstLen::of(2).bytes(), ..base },
                ),
                ("read-only", Workload { rw: RwRatio::READ_ONLY, ..base }),
                ("outstanding-4", Workload { outstanding: 4, num_ids: 4, ..base }),
            ];
            for (setting, wl) in variants {
                out.push(Scenario { fabric: class, pattern, setting, point: (cfg.clone(), wl) });
            }
            if class == FabricClass::Xilinx && pattern == Pattern::Scs {
                for (setting, rotation) in
                    [("rotation-2", 2usize), ("rotation-4", 4), ("rotation-8", 8)]
                {
                    let wl = Workload { rotation, ..base };
                    out.push(Scenario {
                        fabric: class,
                        pattern,
                        setting,
                        point: (cfg.clone(), wl),
                    });
                }
            }
        }
    }
    out
}

/// One scenario's cross-validation outcome.
#[derive(Debug, Clone, Serialize)]
pub struct XvalRow {
    /// Fabric class.
    pub fabric: FabricClass,
    /// Pattern family.
    pub pattern: Pattern,
    /// Axis-variation label.
    pub setting: &'static str,
    /// Cycle-simulated bandwidth in GB/s.
    pub cycle_gbps: f64,
    /// Calibrated analytical bandwidth in GB/s.
    pub model_gbps: f64,
    /// Relative bandwidth error of the calibrated model.
    pub rel_err: f64,
    /// Cycle-simulated mean read latency in cycles (NaN when absent).
    pub cycle_read_lat: f64,
    /// Calibrated model mean read latency in cycles.
    pub model_read_lat: f64,
}

/// Fits a fresh [`Calibration`] from the lattice's cycle-simulated rows:
/// per family, the bandwidth/latency residual scales are the geometric
/// mean of cycle/model, and the envelope is the distribution of the
/// *calibrated* model's relative error. Returns the artifact plus the
/// per-scenario comparison rows (computed under the fitted scales).
pub fn fit_calibration(
    scenarios: &[Scenario],
    cycle_rows: &[Measurement],
) -> (Calibration, Vec<XvalRow>) {
    assert_eq!(scenarios.len(), cycle_rows.len());
    // Group scenario indices by family, preserving lattice order.
    let mut family_order: Vec<(FabricClass, Pattern)> = Vec::new();
    for s in scenarios {
        if !family_order.contains(&(s.fabric, s.pattern)) {
            family_order.push((s.fabric, s.pattern));
        }
    }
    let mut families = Vec::new();
    let mut rows: Vec<Option<XvalRow>> = (0..scenarios.len()).map(|_| None).collect();
    for (fabric, pattern) in family_order {
        let idxs: Vec<usize> = scenarios
            .iter()
            .enumerate()
            .filter(|(_, s)| s.fabric == fabric && s.pattern == pattern)
            .map(|(i, _)| i)
            .collect();
        // Raw model evaluations and residual fits.
        let mut bw_log_sum = 0.0;
        let mut lat_log_sum = 0.0;
        let mut lat_n = 0.0;
        let mut raw: Vec<(f64, f64, f64, f64)> = Vec::new(); // (cycle_bw, model_bw, cycle_lat, model_lat)
        for &i in &idxs {
            let (cfg, wl) = &scenarios[i].point;
            let m = model(cfg, wl);
            let cyc = &cycle_rows[i];
            let cycle_bw = cyc.total_gbps().max(1e-9);
            let model_bw = m.total_gbps.max(1e-9);
            bw_log_sum += (cycle_bw / model_bw).ln();
            let cycle_lat = cyc.read_latency_mean().unwrap_or(f64::NAN);
            if cycle_lat.is_finite() && cycle_lat > 0.0 && m.read_lat_cycles > 0.0 {
                lat_log_sum += (cycle_lat / m.read_lat_cycles).ln();
                lat_n += 1.0;
            }
            raw.push((cycle_bw, model_bw, cycle_lat, m.read_lat_cycles));
        }
        let bw_scale = (bw_log_sum / idxs.len() as f64).exp();
        let lat_scale = if lat_n > 0.0 { (lat_log_sum / lat_n).exp() } else { 1.0 };
        // Envelope of the calibrated model.
        let mut errs: Vec<f64> = Vec::with_capacity(idxs.len());
        for (&i, &(cycle_bw, model_bw, cycle_lat, model_lat)) in idxs.iter().zip(&raw) {
            let cal_bw = model_bw * bw_scale;
            let err = (cal_bw - cycle_bw).abs() / cycle_bw;
            errs.push(err);
            rows[i] = Some(XvalRow {
                fabric,
                pattern,
                setting: scenarios[i].setting,
                cycle_gbps: cycle_bw,
                model_gbps: cal_bw,
                rel_err: err,
                cycle_read_lat: cycle_lat,
                model_read_lat: model_lat * lat_scale,
            });
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let p95 = errs[((0.95 * errs.len() as f64).ceil() as usize).clamp(1, errs.len()) - 1];
        let max = *errs.last().unwrap();
        families.push(FamilyCalibration {
            fabric,
            pattern,
            bw_scale,
            lat_scale,
            envelope: ErrorEnvelope { mean, p95, max },
        });
    }
    let cal = Calibration { version: CALIBRATION_VERSION, families };
    (cal, rows.into_iter().map(|r| r.expect("every scenario produced a row")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_round_trips_through_json() {
        let cal = Calibration::builtin();
        let json = cal.to_json();
        let back = Calibration::from_json(&json).expect("fresh artifact parses");
        assert_eq!(back, cal);
    }

    #[test]
    fn stale_calibration_version_is_orphaned_loudly() {
        let mut cal = Calibration::builtin();
        cal.version = CALIBRATION_VERSION + 1;
        let err = Calibration::from_json(&cal.to_json()).expect_err("stale version must fail");
        assert!(err.contains("stale calibration artifact"), "{err}");
        assert!(err.contains("xvalidate"), "points at the re-fit path: {err}");
    }

    #[test]
    fn calibration_digest_tracks_content() {
        let builtin = Calibration::builtin();
        assert_eq!(builtin.digest(), Calibration::builtin().digest(), "digest is deterministic");
        assert_ne!(builtin.digest(), Calibration::identity().digest());
        // A re-fit that only nudges one residual scale — the same
        // version, the shape HBM_CALIBRATION artifacts have — still
        // changes the digest, so cached analytical rows are re-keyed.
        let mut refit = Calibration::builtin();
        refit.families[0].bw_scale *= 1.01;
        assert_ne!(builtin.digest(), refit.digest());
    }

    #[test]
    fn unfitted_family_is_untrusted_identity() {
        let cal = Calibration::identity();
        let fam = cal.family(FabricClass::Xilinx, Pattern::Ccs);
        assert_eq!(fam.bw_scale, 1.0);
        assert_eq!(fam.envelope, ErrorEnvelope::UNTRUSTED);
    }

    #[test]
    fn estimate_and_model_share_the_ceilings() {
        // The satellite guarantee: one closed-form implementation. The
        // estimate module's output must equal the model's ceilings.
        for (cfg, wl) in [
            (SystemConfig::xilinx(), Workload::ccs()),
            (SystemConfig::mao(), Workload::ccs()),
            (SystemConfig::xilinx(), Workload::ccra()),
        ] {
            let e = crate::estimate::estimate_bandwidth(&cfg, &wl);
            let c = ceilings(&cfg, &wl);
            assert_eq!(e.port_ceiling, c.port);
            assert_eq!(e.dram_ceiling, c.dram);
            assert_eq!(e.lateral_ceiling, c.lateral);
            assert_eq!(e.n_ch_eff, c.n_ch_eff);
        }
    }

    #[test]
    fn rotation_ceiling_reproduces_fig4_shape() {
        let mk = |rotation| Workload { rotation, ..Workload::scs() };
        let cfg = SystemConfig::xilinx();
        let r0 = model(&cfg, &mk(0)).total_gbps;
        let r4 = model(&cfg, &mk(4)).total_gbps;
        let r8 = model(&cfg, &mk(8)).total_gbps;
        assert!(r4 < 0.8 * r0, "rotation 4 must lose throughput: {r4} vs {r0}");
        assert!(r8 < r4, "rotation 8 below rotation 4: {r8} vs {r4}");
    }

    #[test]
    fn predicted_row_is_internally_consistent() {
        let cfg = SystemConfig::xilinx();
        let wl = Workload::scs();
        let m = predict(&cfg, &wl, Fidelity::ANALYTICAL, &Calibration::builtin());
        // Aggregate equals the per-master sum.
        let sum: u64 = m.per_master.iter().map(|g| g.total_bytes()).sum();
        assert_eq!(m.gen.total_bytes(), sum);
        // The throughput accessor reproduces the model's prediction.
        assert!(m.total_gbps() > 100.0, "{}", m.total_gbps());
        assert!(m.total_gbps() <= m.device_gbps + 1e-9);
        // Latencies are present and ordered like the simulator's.
        assert!(m.write_latency_mean().unwrap() < m.read_latency_mean().unwrap());
        // Serde round-trip is byte-identical (cache invariant).
        let json = serde_json::to_string(&m).unwrap();
        let back: Measurement = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn prediction_is_deterministic() {
        let cfg = SystemConfig::mao();
        let wl = Workload::ccra();
        let cal = Calibration::builtin();
        let a = serde_json::to_string(&predict(&cfg, &wl, Fidelity::ANALYTICAL, &cal)).unwrap();
        let b = serde_json::to_string(&predict(&cfg, &wl, Fidelity::ANALYTICAL, &cal)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn escalation_flags_knees_collapses_and_untrusted() {
        let cfg = SystemConfig::xilinx();
        let cal = Calibration::builtin();
        let points: Vec<GridPoint> = [0usize, 1, 2, 4, 8]
            .iter()
            .map(|&rotation| (cfg.clone(), Workload { rotation, ..Workload::scs() }))
            .collect();
        let rows: Vec<Measurement> =
            points.iter().map(|(c, w)| predict(c, w, Fidelity::ANALYTICAL, &cal)).collect();
        let mask = escalation_mask(&points, &rows, &cal, &EscalationPolicy::default());
        assert_eq!(mask.len(), points.len());
        // The rotation knee must catch at least one escalation.
        assert!(mask.iter().any(|&b| b), "{mask:?}");
        // A hot-spot collapse always escalates.
        let collapse = vec![(cfg.clone(), Workload::ccs())];
        let crow = vec![predict(&cfg, &Workload::ccs(), Fidelity::ANALYTICAL, &cal)];
        let cmask = escalation_mask(&collapse, &crow, &cal, &EscalationPolicy::default());
        assert!(cmask[0], "hot-spot CCS sits under the collapse threshold");
        // An untrusted family escalates even on a flat grid.
        let id = Calibration::identity();
        let umask = escalation_mask(&collapse, &crow, &id, &EscalationPolicy::default());
        assert!(umask[0]);
    }

    #[test]
    fn knee_detection_stops_at_family_boundaries() {
        let cfg = SystemConfig::xilinx();
        let cal = Calibration::builtin();
        let policy = EscalationPolicy::default();
        let a = predict(&cfg, &Workload::scs(), Fidelity::ANALYTICAL, &cal);
        // A synthetic neighbour at a third of the throughput: well past
        // the knee threshold, but still above the collapse floor.
        let mut b = a.clone();
        b.cycles *= 3;
        assert!(b.pct_of_device() >= policy.collapse_pct, "{}", b.pct_of_device());
        // Same family on both sides: the step is a knee, both escalate.
        let same = vec![
            (cfg.clone(), Workload::scs()),
            (cfg.clone(), Workload { seed: 1, ..Workload::scs() }),
        ];
        let mask = escalation_mask(&same, &[a.clone(), b.clone()], &cal, &policy);
        assert_eq!(mask, vec![true, true]);
        // The identical rows across an SCS/SCRA family boundary: a
        // discontinuity between unrelated curves, never a knee.
        let cross = vec![(cfg.clone(), Workload::scs()), (cfg.clone(), Workload::scra())];
        let mask = escalation_mask(&cross, &[a, b], &cal, &policy);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn lattice_covers_every_family_once_per_fabric() {
        let lattice = scenario_lattice();
        assert!(lattice.len() >= 50, "{}", lattice.len());
        for class in
            [FabricClass::Xilinx, FabricClass::Mao, FabricClass::FullCrossbar, FabricClass::Direct]
        {
            let patterns: &[Pattern] = if class == FabricClass::Direct {
                &[Pattern::Scs, Pattern::Scra]
            } else {
                &[Pattern::Scs, Pattern::Ccs, Pattern::Scra, Pattern::Ccra]
            };
            for &p in patterns {
                assert!(
                    lattice.iter().any(|s| s.fabric == class && s.pattern == p),
                    "missing {class}/{p:?}"
                );
            }
        }
        // Pinned: every workload validates.
        for s in &lattice {
            s.point.1.validate().expect("lattice workloads validate");
        }
    }
}
