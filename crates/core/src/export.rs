//! Trace export: Chrome trace-event JSON and probe JSONL.
//!
//! [`chrome_trace_json`] renders a [`Tracer`]'s delivered records (plus,
//! optionally, a [`Probe`]'s counter series) in the Chrome trace-event
//! format, loadable by Perfetto (`ui.perfetto.dev`) and `chrome://tracing`.
//! Timestamps are **accelerator cycles**, not microseconds — the unit a
//! cycle simulator is exact in; the clock period is recorded in
//! `otherData` so wall time can be recovered. Output is byte-deterministic
//! for a deterministic run (insertion-ordered maps, delivery-ordered
//! records), which is what the golden-file test pins down.
//!
//! [`validate_chrome_trace`] re-parses an exported document and checks it
//! against the trace-event schema *and* the attribution invariant: every
//! transaction slice's component durations must sum exactly to its
//! end-to-end duration. The `repro trace --smoke` CI step runs this.

use std::collections::BTreeSet;

use hbm_axi::{ClockDomain, Dir, Tracer, TxnRecord};
use serde_json::Value;

use crate::probe::{Probe, Snapshot};

/// Synthetic pid used for probe counter tracks (master pids are 0..32).
const PROBE_PID: u64 = 4096;

fn ev(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn process_name(pid: u64, name: String) -> Value {
    ev(vec![
        ("name", s("process_name")),
        ("ph", s("M")),
        ("pid", Value::U64(pid)),
        ("args", ev(vec![("name", Value::Str(name))])),
    ])
}

/// One transaction → one parent slice plus one child slice per non-zero
/// latency component, all on track `(pid = master, tid = AXI id)`.
fn txn_events(rec: &TxnRecord, out: &mut Vec<Value>) {
    let Some(attr) = rec.attribution() else { return };
    let e2e = attr.total();
    let name = match rec.dir {
        Dir::Read => "read",
        Dir::Write => "write",
    };
    out.push(ev(vec![
        ("name", s(name)),
        ("cat", s("txn")),
        ("ph", s("X")),
        ("pid", Value::U64(rec.master as u64)),
        ("tid", Value::U64(rec.id as u64)),
        ("ts", Value::U64(rec.issued_at)),
        ("dur", Value::U64(e2e)),
        (
            "args",
            ev(vec![
                ("seq", Value::U64(rec.seq)),
                ("addr", Value::U64(rec.addr)),
                ("bytes", Value::U64(rec.bytes)),
                ("port", Value::U64(rec.port as u64)),
                ("hops", Value::U64(rec.hops as u64)),
                ("source_stall", Value::U64(attr.source_stall)),
                ("fabric_transit", Value::U64(attr.fabric_transit)),
                ("mc_queue", Value::U64(attr.mc_queue)),
                ("dram_service", Value::U64(attr.dram_service)),
                ("return_path", Value::U64(attr.return_path)),
            ]),
        ),
    ]));
    // Child slices nest under the parent by containment on the same track.
    let mut t = rec.issued_at;
    for (comp, dur) in [
        ("source-stall", attr.source_stall),
        ("fabric-transit", attr.fabric_transit),
        ("mc-queue", attr.mc_queue),
        ("dram-service", attr.dram_service),
        ("return-path", attr.return_path),
    ] {
        if dur > 0 {
            out.push(ev(vec![
                ("name", s(comp)),
                ("cat", s("component")),
                ("ph", s("X")),
                ("pid", Value::U64(rec.master as u64)),
                ("tid", Value::U64(rec.id as u64)),
                ("ts", Value::U64(t)),
                ("dur", Value::U64(dur)),
            ]));
        }
        t += dur;
    }
}

/// Chrome `C` (counter) events from one probe snapshot.
fn probe_events(snap: &Snapshot, period_ns: f64, out: &mut Vec<Value>) {
    let counter = |name: &str, v: Value| {
        ev(vec![
            ("name", s(name)),
            ("ph", s("C")),
            ("pid", Value::U64(PROBE_PID)),
            ("ts", Value::U64(snap.at)),
            ("args", ev(vec![("value", v)])),
        ])
    };
    out.push(counter("throughput GB/s", Value::F64(snap.gbps(period_ns))));
    out.push(counter("in-flight txns", Value::U64(snap.in_flight)));
    out.push(counter("fabric occupancy", Value::U64(snap.fabric_occupancy)));
    out.push(counter("mc queued", Value::U64(snap.mc_queued)));
    if let Some(hr) = snap.row_hit_rate {
        out.push(counter("row-hit rate", Value::F64(hr)));
    }
}

/// Renders delivered transaction records (and probe counters, when a
/// probe is given) as a Chrome trace-event JSON document.
pub fn chrome_trace_json(tracer: &Tracer, probe: Option<&Probe>, clock: ClockDomain) -> String {
    let mut events = Vec::new();
    let masters: BTreeSet<u16> = tracer.records().iter().map(|r| r.master).collect();
    for m in &masters {
        events.push(process_name(*m as u64, format!("master {m}")));
    }
    if probe.is_some() {
        events.push(process_name(PROBE_PID, "probes".to_string()));
    }
    for rec in tracer.records() {
        txn_events(rec, &mut events);
    }
    if let Some(p) = probe {
        for snap in p.snapshots() {
            probe_events(snap, clock.period_ns(), &mut events);
        }
    }
    let doc = ev(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", s("ns")),
        (
            "otherData",
            ev(vec![
                ("ts_unit", s("accelerator-cycle")),
                ("cycle_ns", Value::F64(clock.period_ns())),
                ("delivered", Value::U64(tracer.delivered_count())),
                ("records_dropped", Value::U64(tracer.dropped())),
                ("generator", s("hbm-fpga repro trace")),
            ]),
        ),
    ]);
    doc.to_string()
}

/// Renders probe snapshots as JSONL: one JSON object per line, oldest
/// first, with a derived `gbps` field.
pub fn probes_jsonl(probe: &Probe, clock: ClockDomain) -> String {
    let mut out = String::new();
    for snap in probe.snapshots() {
        let mut v = serde::value::to_value(snap);
        if let Value::Map(entries) = &mut v {
            entries.push(("gbps".to_string(), Value::F64(snap.gbps(clock.period_ns()))));
        }
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

/// Summary of a validated trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Transaction slices (`cat == "txn"`) whose component sum was
    /// verified against their duration.
    pub txns: usize,
    /// Counter events.
    pub counters: usize,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

fn uint(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(Value::U64(u)) => Some(*u),
        _ => None,
    }
}

/// Parses a Chrome trace-event document and checks (a) the schema shape —
/// `traceEvents` array; every event an object with string `ph`/`name` and
/// numeric `pid`/`ts`; duration events carry `dur`; counter/metadata
/// events carry `args` — and (b) the attribution invariant: each `txn`
/// slice's five components sum exactly to its `dur`.
pub fn validate_chrome_trace(json: &str) -> Result<TraceCheck, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Some(Value::Seq(events)) = doc.get("traceEvents") else {
        return Err("missing `traceEvents` array".to_string());
    };
    let mut check = TraceCheck { events: events.len(), txns: 0, counters: 0 };
    for (i, e) in events.iter().enumerate() {
        let ctx = |what: &str| format!("event {i}: {what}");
        let Some(Value::Str(ph)) = e.get("ph") else {
            return Err(ctx("missing string `ph`"));
        };
        let Some(Value::Str(_)) = e.get("name") else {
            return Err(ctx("missing string `name`"));
        };
        if e.get("pid").and_then(num).is_none() {
            return Err(ctx("missing numeric `pid`"));
        }
        match ph.as_str() {
            "X" => {
                if e.get("ts").and_then(num).is_none() {
                    return Err(ctx("duration event missing numeric `ts`"));
                }
                let Some(dur) = uint(e.get("dur")) else {
                    return Err(ctx("duration event missing integer `dur`"));
                };
                if matches!(e.get("cat"), Some(Value::Str(c)) if c == "txn") {
                    let args = e.get("args").ok_or_else(|| ctx("txn slice missing `args`"))?;
                    let mut sum = 0u64;
                    for comp in [
                        "source_stall",
                        "fabric_transit",
                        "mc_queue",
                        "dram_service",
                        "return_path",
                    ] {
                        sum += uint(args.get(comp))
                            .ok_or_else(|| ctx(&format!("txn slice missing `args.{comp}`")))?;
                    }
                    if sum != dur {
                        return Err(ctx(&format!(
                            "attribution components sum to {sum} but end-to-end dur is {dur}"
                        )));
                    }
                    check.txns += 1;
                }
            }
            "C" => {
                if e.get("ts").and_then(num).is_none() {
                    return Err(ctx("counter event missing numeric `ts`"));
                }
                if e.get("args").is_none() {
                    return Err(ctx("counter event missing `args`"));
                }
                check.counters += 1;
            }
            "M" => {
                if e.get("args").is_none() {
                    return Err(ctx("metadata event missing `args`"));
                }
            }
            other => return Err(ctx(&format!("unsupported phase `{other}`"))),
        }
    }
    Ok(check)
}

/// Parses probe JSONL and checks every line is an object carrying the
/// snapshot fields. Returns the line count.
pub fn validate_probes_jsonl(jsonl: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in jsonl.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", i + 1))?;
        for key in ["at", "window", "bytes", "per_pch_bytes", "in_flight", "gbps"] {
            if v.get(key).is_none() {
                return Err(format!("line {}: missing `{key}`", i + 1));
            }
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeConfig;
    use crate::system::{HbmSystem, SystemConfig};
    use hbm_traffic::Workload;

    fn traced_run() -> (HbmSystem, ClockDomain) {
        let cfg = SystemConfig::xilinx();
        let mut sys = HbmSystem::new(&cfg, Workload::scs(), Some(4));
        sys.enable_tracing(1 << 12);
        sys.attach_probe(ProbeConfig { interval: 256, capacity: 64 });
        assert!(sys.run_until_drained(100_000));
        let clock = sys.clock();
        (sys, clock)
    }

    #[test]
    fn export_validates_and_component_sums_match() {
        let (sys, clock) = traced_run();
        let tracer = sys.tracer().unwrap().snapshot();
        let json = chrome_trace_json(&tracer, sys.probe(), clock);
        let check = validate_chrome_trace(&json).expect("exported trace must validate");
        assert_eq!(check.txns as u64, tracer.delivered_count());
        assert!(check.counters > 0, "probe counters missing");
        assert!(check.events > check.txns);
    }

    #[test]
    fn probes_jsonl_round_trips() {
        let (sys, clock) = traced_run();
        let jsonl = probes_jsonl(sys.probe().unwrap(), clock);
        let n = validate_probes_jsonl(&jsonl).unwrap();
        assert_eq!(n, sys.probe().unwrap().len());
        assert!(n > 0);
    }

    #[test]
    fn validator_rejects_bad_component_sums() {
        let json = r#"{"traceEvents":[{"name":"read","cat":"txn","ph":"X","pid":0,"tid":0,
            "ts":0,"dur":10,"args":{"source_stall":1,"fabric_transit":2,"mc_queue":3,
            "dram_service":4,"return_path":5}}]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("sum to 15"), "got: {err}");
    }

    #[test]
    fn validator_rejects_schema_violations() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"name":"x","ph":"?","pid":0}]}"#).is_err()
        );
    }
}
