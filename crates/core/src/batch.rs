//! Parallel execution of measurement grids.
//!
//! Parameter sweeps (Fig. 3's 4 patterns × 5 burst lengths × 3 mixes,
//! the `sweep` binary's grids) are embarrassingly parallel: every run is
//! an independent deterministic simulation. [`par_map`] fans any such
//! work-list out over OS threads with `std::thread::scope` — no extra
//! dependencies — while preserving result order; [`run_grid`] is its
//! measurement-grid specialisation. The process-wide worker budget is
//! settable once (e.g. from a `--jobs` flag) via [`set_sweep_jobs`] and
//! consulted everywhere through [`sweep_jobs`].

use std::sync::atomic::{AtomicUsize, Ordering};

use hbm_traffic::Workload;

use crate::measure::{measure, Measurement};
use crate::system::SystemConfig;

/// One grid point: a system configuration and a workload.
pub type GridPoint = (SystemConfig, Workload);

/// Process-wide sweep worker budget; 0 means "not set explicitly".
static SWEEP_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide sweep worker budget (e.g. from `--jobs N`).
/// `0` clears the override, falling back to `HBM_JOBS` / core count.
pub fn set_sweep_jobs(jobs: usize) {
    SWEEP_JOBS.store(jobs, Ordering::Relaxed);
}

/// The sweep worker budget: an explicit [`set_sweep_jobs`] value if one
/// was given, else the `HBM_JOBS` environment variable, else every
/// available core. Always at least 1.
pub fn sweep_jobs() -> usize {
    let set = SWEEP_JOBS.load(Ordering::Relaxed);
    if set >= 1 {
        return set;
    }
    if let Ok(v) = std::env::var("HBM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    default_threads()
}

/// Order-preserving parallel map: applies `f` to every item on up to
/// `jobs` OS threads and returns results in input order. `jobs == 1`
/// (or a single item) degenerates to a plain sequential loop with no
/// thread-spawn overhead. Workers claim indices from a shared counter,
/// so an expensive item never serialises the cheap ones behind it.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(jobs >= 1);
    if jobs == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    // Results are deposited through the mutex (coarse, but each work
    // item dwarfs the lock).
    let slots = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("every item was claimed by a worker")).collect()
}

/// Measures every grid point, using up to `threads` OS threads, and
/// returns results in input order.
pub fn run_grid(
    points: &[GridPoint],
    warmup: u64,
    cycles: u64,
    threads: usize,
) -> Vec<Measurement> {
    par_map(points, threads, |(cfg, wl)| measure(cfg, *wl, warmup, cycles))
}

/// A reasonable thread count for sweeps on this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::RwRatio;

    fn points() -> Vec<GridPoint> {
        vec![
            (SystemConfig::xilinx(), Workload::scs()),
            (SystemConfig::mao(), Workload::ccs()),
            (SystemConfig::xilinx(), Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() }),
        ]
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_grid(&points(), 500, 1_500, 1);
        let par = run_grid(&points(), 500, 1_500, 4);
        assert_eq!(seq.len(), 3);
        for (a, b) in seq.iter().zip(par.iter()) {
            // Determinism: identical results regardless of scheduling.
            assert_eq!(a.gen.total_bytes(), b.gen.total_bytes());
            assert_eq!(a.total_gbps(), b.total_gbps());
        }
    }

    #[test]
    fn results_keep_input_order() {
        let par = run_grid(&points(), 500, 1_500, 2);
        // Point 1 is MAO CCS — far faster than the XLNX hot-spot would
        // be; order confirms the mapping.
        assert!(par[1].total_gbps() > 100.0);
        // Point 2 is read-only: no write bytes.
        assert_eq!(par[2].gen.bytes_written, 0);
    }

    #[test]
    fn par_map_preserves_order_for_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        // Odd items spin longer, so claim order ≠ completion order.
        let out = par_map(&items, 4, |&i| {
            if i % 2 == 1 {
                std::hint::black_box((0..10_000u64).sum::<u64>());
            }
            i * 3
        });
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_jobs_override_wins() {
        set_sweep_jobs(3);
        assert_eq!(sweep_jobs(), 3);
        set_sweep_jobs(0);
        assert!(sweep_jobs() >= 1);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn empty_grid() {
        assert!(run_grid(&[], 10, 10, 4).is_empty());
    }
}
