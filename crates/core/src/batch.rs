//! Parallel execution of measurement grids.
//!
//! Parameter sweeps (Fig. 3's 4 patterns × 5 burst lengths × 3 mixes,
//! the `sweep` binary's grids) are embarrassingly parallel: every run is
//! an independent deterministic simulation. [`par_map`] fans any such
//! work-list out over OS threads with `std::thread::scope` — no extra
//! dependencies — while preserving result order; [`run_grid`] is its
//! measurement-grid specialisation. The process-wide worker budget is
//! settable once (e.g. from a `--jobs` flag) via [`set_sweep_jobs`] and
//! consulted everywhere through [`sweep_jobs`].
//!
//! Worker panics are contained: [`try_par_map`] catches the unwind of
//! each item and returns a per-item `Result`, so one poisoned grid point
//! cannot abort a thousand-point sweep (the serving layer surfaces such
//! rows as `Failed`). [`par_map`] keeps its infallible signature by
//! completing every healthy item first and only then re-raising the
//! first captured panic.
//!
//! ## Lockstep batching
//!
//! On top of thread-level farming, [`run_grid`] groups points that share
//! a *topology* (equal [`SystemConfig`], distinguished by
//! [`crate::cache::topology_key`]) into lockstep batches executed by
//! [`crate::lockstep::BatchedSystem`] — K sweep points advanced through
//! one devirtualised instruction stream (DESIGN.md §3.6). The planner
//! ([`plan_batches`]) is pure bookkeeping: grids with nothing to batch
//! (a single point, or all points on distinct topologies) return `None`
//! and take the scalar path with zero batched setup cost. The lane
//! budget comes from [`batch_lanes`] (`HBM_BATCH`, default
//! [`DEFAULT_BATCH_LANES`]; `off`/`0` disables batching), and groups are
//! split so thread-level parallelism is preserved: a 14-point group on 4
//! workers becomes 4 batches, not one 14-lane batch on one core.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use hbm_traffic::Workload;

use crate::cache::{fingerprint, topology_key, ResultCache};
use crate::experiment::Fidelity;
use crate::lockstep::measure_batch;
use crate::measure::{measure, Measurement};
use crate::metrics::{self, Counter, Registry};
use crate::system::SystemConfig;

/// One grid point: a system configuration and a workload.
pub type GridPoint = (SystemConfig, Workload);

/// Process-wide sweep worker budget; 0 means "not set explicitly".
static SWEEP_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide sweep worker budget (e.g. from `--jobs N`).
/// `0` clears the override, falling back to `HBM_JOBS` / core count.
pub fn set_sweep_jobs(jobs: usize) {
    SWEEP_JOBS.store(jobs, Ordering::Relaxed);
}

/// Parses a worker-thread count from a `--jobs` flag or the `HBM_JOBS`
/// environment variable. Rejects everything that is not a positive
/// integer — including `0`, which used to be silently reinterpreted as
/// "use the default" and is exactly the kind of typo (`--jobs 0` for
/// `--jobs 10`) that should fail loudly.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err(format!("invalid jobs value {s:?}: must be a positive integer")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("invalid jobs value {s:?}: must be a positive integer")),
    }
}

/// The sweep worker budget: an explicit [`set_sweep_jobs`] value if one
/// was given, else the `HBM_JOBS` environment variable, else every
/// available core. Always at least 1.
///
/// An `HBM_JOBS` value that is present but not a positive integer is a
/// configuration error, not a hint: the process exits non-zero with a
/// usage message rather than silently running on a fallback thread
/// count (which made typos like `HBM_JOBS=al1` invisible).
pub fn sweep_jobs() -> usize {
    let set = SWEEP_JOBS.load(Ordering::Relaxed);
    if set >= 1 {
        return set;
    }
    if let Ok(v) = std::env::var("HBM_JOBS") {
        match parse_jobs(&v) {
            Ok(n) => return n,
            Err(e) => {
                eprintln!("HBM_JOBS: {e}\nusage: HBM_JOBS=<positive integer> (worker threads for sweep farming)");
                std::process::exit(2);
            }
        }
    }
    default_threads()
}

/// Default lockstep lane budget per batch when neither
/// [`set_batch_lanes`] nor `HBM_BATCH` says otherwise. Lanes beyond the
/// point of diminishing returns only grow the working set, and groups
/// are split across workers anyway; 16 covers every grid in the repo.
pub const DEFAULT_BATCH_LANES: usize = 16;

/// Process-wide lockstep lane budget; 0 means "not set explicitly".
static BATCH_LANES: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide lockstep lane budget (e.g. from `--batch N`).
/// `1` forces the scalar path; `0` clears the override, falling back to
/// `HBM_BATCH` / [`DEFAULT_BATCH_LANES`].
pub fn set_batch_lanes(lanes: usize) {
    BATCH_LANES.store(lanes, Ordering::Relaxed);
}

/// Parses a lane budget from a `--batch` flag or the `HBM_BATCH`
/// environment variable. `"off"` and `"0"` mean "scalar path" (a budget
/// of 1); anything else must be a positive integer.
pub fn parse_batch(s: &str) -> Result<usize, String> {
    let t = s.trim();
    if t.eq_ignore_ascii_case("off") || t == "0" {
        return Ok(1);
    }
    match t.parse::<usize>() {
        Ok(n) => Ok(n),
        Err(_) => {
            Err(format!("invalid batch value {s:?}: must be a positive integer, 0, or \"off\""))
        }
    }
}

/// The lockstep lane budget: an explicit [`set_batch_lanes`] value if
/// one was given, else the `HBM_BATCH` environment variable, else
/// [`DEFAULT_BATCH_LANES`]. A budget of 1 disables batching. As with
/// `HBM_JOBS`, a present-but-garbled `HBM_BATCH` is a configuration
/// error: the process exits non-zero instead of silently falling back.
pub fn batch_lanes() -> usize {
    let set = BATCH_LANES.load(Ordering::Relaxed);
    if set >= 1 {
        return set;
    }
    if let Ok(v) = std::env::var("HBM_BATCH") {
        match parse_batch(&v) {
            Ok(n) => return n,
            Err(e) => {
                eprintln!(
                    "HBM_BATCH: {e}\nusage: HBM_BATCH=<lanes>|off (lockstep lanes per batch)"
                );
                std::process::exit(2);
            }
        }
    }
    DEFAULT_BATCH_LANES
}

/// One unit of work in a planned grid: either a single point on the
/// scalar path or a lane group sharing one lockstep engine. Indices
/// refer to the original `points` slice, so results scatter back into
/// input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchTask {
    /// Measure this point alone (singleton topology group, or leftover
    /// after chunking).
    Scalar(usize),
    /// Advance these points as lanes of one [`crate::lockstep::BatchedSystem`].
    Lanes(Vec<usize>),
}

/// Planner-decision counters, published through the workspace metric
/// registry: how many grids took each route, how many tasks of each
/// kind the planner emitted, and how many points each execution path
/// carried. Recorded per [`run_grid_with_cache`] call when metrics are
/// enabled.
struct PlannerMetrics {
    grids_batched: Arc<Counter>,
    grids_scalar: Arc<Counter>,
    tasks_scalar: Arc<Counter>,
    tasks_lanes: Arc<Counter>,
    points_scalar: Arc<Counter>,
    points_lanes: Arc<Counter>,
}

fn build_planner_metrics(reg: &Registry) -> PlannerMetrics {
    let grids = "Grids routed by the batch planner, by chosen route";
    let tasks = "Batch tasks emitted by the planner, by kind";
    let points = "Grid points routed to an execution path";
    PlannerMetrics {
        grids_batched: reg.counter("hbm_batch_grids_total", grids, &[("route", "batched")]),
        grids_scalar: reg.counter("hbm_batch_grids_total", grids, &[("route", "scalar")]),
        tasks_scalar: reg.counter("hbm_batch_tasks_total", tasks, &[("kind", "scalar")]),
        tasks_lanes: reg.counter("hbm_batch_tasks_total", tasks, &[("kind", "lanes")]),
        points_scalar: reg.counter("hbm_batch_points_total", points, &[("path", "scalar")]),
        points_lanes: reg.counter("hbm_batch_points_total", points, &[("path", "lanes")]),
    }
}

fn planner_metrics() -> &'static PlannerMetrics {
    static M: OnceLock<PlannerMetrics> = OnceLock::new();
    M.get_or_init(|| build_planner_metrics(Registry::global()))
}

/// Pre-registers the planner series (all zero) so expositions are
/// complete before the first planned grid. Called by the registry's
/// built-in installer.
pub(crate) fn install_planner_series(reg: &Registry) {
    build_planner_metrics(reg);
}

/// Records one planned grid's routing decision.
fn record_plan(tasks: &[BatchTask]) {
    let m = planner_metrics();
    m.grids_batched.inc();
    for t in tasks {
        match t {
            BatchTask::Scalar(_) => {
                m.tasks_scalar.inc();
                m.points_scalar.inc();
            }
            BatchTask::Lanes(idxs) => {
                m.tasks_lanes.inc();
                m.points_lanes.add(idxs.len() as u64);
            }
        }
    }
}

/// Groups grid points by topology fingerprint into lockstep batch tasks.
///
/// Returns `None` when there is nothing to batch — fewer than two
/// points, or every topology group a singleton — so such grids route
/// through the scalar path without constructing any batched state (the
/// zero-overhead fallback, asserted by `crates/bench/tests/`). Groups
/// keep first-seen order and in-group points keep input order; chunking
/// caps lanes at `lanes` per batch *and* splits large groups across
/// `threads` workers so batching never serialises a sweep that thread
/// farming would have parallelised.
pub fn plan_batches(points: &[GridPoint], lanes: usize, threads: usize) -> Option<Vec<BatchTask>> {
    if points.len() < 2 || lanes < 2 {
        return None;
    }
    let mut order = Vec::new();
    let mut groups: HashMap<u128, Vec<usize>> = HashMap::new();
    for (i, (cfg, _)) in points.iter().enumerate() {
        let key = topology_key(cfg).0;
        let group = groups.entry(key).or_default();
        if group.is_empty() {
            order.push(key);
        }
        group.push(i);
    }
    if groups.values().all(|g| g.len() < 2) {
        return None;
    }
    let mut tasks = Vec::new();
    for key in order {
        let group = &groups[&key];
        if group.len() < 2 {
            tasks.push(BatchTask::Scalar(group[0]));
            continue;
        }
        // Lanes per batch: bounded by the budget, but no wider than
        // what keeps every worker busy (each batch needs ≥ 2 lanes to
        // be worth building).
        let spread = group.len().div_ceil(threads.clamp(1, group.len() / 2));
        let chunk = lanes.min(spread.max(2));
        for c in group.chunks(chunk) {
            if c.len() < 2 {
                tasks.push(BatchTask::Scalar(c[0]));
            } else {
                tasks.push(BatchTask::Lanes(c.to_vec()));
            }
        }
    }
    Some(tasks)
}

/// Order-preserving parallel map: applies `f` to every item on up to
/// `jobs` OS threads and returns results in input order. `jobs == 1`
/// (or a single item) degenerates to a plain sequential loop with no
/// thread-spawn overhead. Workers claim indices from a shared counter,
/// so an expensive item never serialises the cheap ones behind it.
///
/// A panicking item does not abort the sweep: every other item still
/// completes, and the first captured panic is re-raised afterwards.
/// Callers that want per-item outcomes instead use [`try_par_map`].
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut first_panic = None;
    let results: Vec<Option<R>> = try_par_map(items, jobs, &f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => Some(v),
            Err(p) => {
                first_panic.get_or_insert(p);
                None
            }
        })
        .collect();
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    results.into_iter().map(|r| r.expect("no panic was recorded")).collect()
}

/// The payload of a caught worker panic.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Renders a caught panic payload as the human-readable message most
/// panics carry (`&str` or `String`), falling back to a fixed tag.
pub fn panic_message(p: &PanicPayload) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// [`par_map`] with per-item panic containment: each item's unwind is
/// caught and returned as `Err(payload)` in that item's slot, while the
/// remaining items keep running to completion on their workers.
pub fn try_par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, PanicPayload>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(jobs >= 1);
    let guarded = |item: &T| catch_unwind(AssertUnwindSafe(|| f(item)));
    if jobs == 1 || items.len() <= 1 {
        return items.iter().map(guarded).collect();
    }
    let mut results: Vec<Option<Result<R, PanicPayload>>> =
        (0..items.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    // Results are deposited through the mutex (coarse, but each work
    // item dwarfs the lock).
    let slots = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = guarded(&items[i]);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("every item was claimed by a worker")).collect()
}

/// Measures every grid point, using up to `threads` OS threads, and
/// returns results in input order. Consults the process-wide
/// [`ResultCache::global`] — disabled by default, so this is a plain
/// re-simulation unless `--cache-dir`/`HBM_CACHE_DIR` turned caching on.
pub fn run_grid(
    points: &[GridPoint],
    warmup: u64,
    cycles: u64,
    threads: usize,
) -> Vec<Measurement> {
    run_grid_with_cache(points, warmup, cycles, threads, ResultCache::global())
}

/// [`run_grid`] against an explicit cache: each point is answered from
/// the cache when possible, computed (and inserted) otherwise, with
/// identical concurrent points single-flighted. Any buffered disk-tier
/// writes are flushed once at the end of the grid, so a completed sweep
/// is durable as one crash-safe segment.
pub fn run_grid_with_cache(
    points: &[GridPoint],
    warmup: u64,
    cycles: u64,
    threads: usize,
    cache: &ResultCache,
) -> Vec<Measurement> {
    let before = cache.is_enabled().then(|| cache.snapshot());
    let lanes = batch_lanes();
    if lanes > 1 {
        if let Some(tasks) = plan_batches(points, lanes, threads) {
            if metrics::enabled() {
                record_plan(&tasks);
            }
            let out = run_grid_batched(points, &tasks, warmup, cycles, threads, cache);
            grid_cache_summary(cache, before.as_ref(), points.len());
            return out;
        }
    }
    if metrics::enabled() {
        let m = planner_metrics();
        m.grids_scalar.inc();
        m.points_scalar.add(points.len() as u64);
    }
    if !cache.is_enabled() {
        return par_map(points, threads, |(cfg, wl)| measure(cfg, *wl, warmup, cycles));
    }
    let fid = Fidelity::cycle(warmup, cycles);
    let out = par_map(points, threads, |(cfg, wl)| cache.measure_cached(cfg, wl, fid));
    if let Err(e) = cache.flush() {
        eprintln!("hbm-cache: flush failed: {e}");
    }
    grid_cache_summary(cache, before.as_ref(), points.len());
    out
}

/// Per-grid cache effectiveness summary on stderr (stdout stays clean
/// for machine-readable output). Deltas are computed from the global
/// cache counters, so concurrent grids in other threads can bleed into
/// each other's numbers — this is a debugging aid, not an accounting
/// source (the registry's cache collectors are).
fn grid_cache_summary(cache: &ResultCache, before: Option<&crate::cache::CacheSnapshot>, n: usize) {
    let Some(before) = before else { return };
    let after = cache.snapshot();
    eprintln!(
        "hbm-cache: grid of {n} points: {} hits, {} misses, {} coalesced ({} entries held)",
        after.hits.saturating_sub(before.hits),
        after.misses.saturating_sub(before.misses),
        after.coalesced.saturating_sub(before.coalesced),
        after.entries,
    );
}

/// Executes a planned grid: batch tasks are farmed over `threads`
/// workers exactly like scalar points, each [`BatchTask::Lanes`] first
/// answering what it can from the cache and advancing only the missing
/// lanes in lockstep, then every computed row is inserted back under its
/// point fingerprint — so warm re-runs hit regardless of which path
/// produced the entry, and serve jobs stream batched rows through the
/// same content addresses. Within one grid the batch path relies on the
/// planner (duplicate points land in one task and compute identical
/// rows) rather than the cache's single-flight; cross-job dedup is
/// unchanged (DESIGN.md §3.6).
fn run_grid_batched(
    points: &[GridPoint],
    tasks: &[BatchTask],
    warmup: u64,
    cycles: u64,
    threads: usize,
    cache: &ResultCache,
) -> Vec<Measurement> {
    let fid = Fidelity::cycle(warmup, cycles);
    let produced = par_map(tasks, threads, |task| -> Vec<(usize, Measurement)> {
        match task {
            BatchTask::Scalar(i) => {
                let (cfg, wl) = &points[*i];
                vec![(*i, cache.measure_cached(cfg, wl, fid))]
            }
            BatchTask::Lanes(idxs) => {
                let mut rows = Vec::with_capacity(idxs.len());
                let mut misses = Vec::new();
                for &i in idxs {
                    let (cfg, wl) = &points[i];
                    let fp = fingerprint(cfg, wl, fid);
                    match cache.get(fp) {
                        Some(m) => rows.push((i, (*m).clone())),
                        None => {
                            cache.record_miss();
                            misses.push((i, fp));
                        }
                    }
                }
                if !misses.is_empty() {
                    let cfg = &points[misses[0].0].0;
                    let wls: Vec<Workload> = misses.iter().map(|&(i, _)| points[i].1).collect();
                    let computed = measure_batch(cfg, &wls, warmup, cycles);
                    for (&(i, fp), m) in misses.iter().zip(computed) {
                        cache.insert(fp, Arc::new(m.clone()));
                        rows.push((i, m));
                    }
                }
                rows
            }
        }
    });
    let mut out: Vec<Option<Measurement>> = (0..points.len()).map(|_| None).collect();
    for (i, m) in produced.into_iter().flatten() {
        out[i] = Some(m);
    }
    if cache.is_enabled() {
        if let Err(e) = cache.flush() {
            eprintln!("hbm-cache: flush failed: {e}");
        }
    }
    out.into_iter().map(|m| m.expect("every planned task deposited its rows")).collect()
}

/// [`run_grid`] generalised over the fidelity *tier*: cycle fidelities
/// route through [`run_grid_with_cache`] (lockstep batching and all),
/// analytical fidelities evaluate the calibrated closed-form model per
/// point — still content-addressed and single-flighted through the
/// cache, under calibration-keyed fingerprints.
pub fn run_grid_fid(points: &[GridPoint], fid: Fidelity, threads: usize) -> Vec<Measurement> {
    if !fid.is_analytical() {
        return run_grid(points, fid.warmup, fid.cycles, threads);
    }
    let cache = ResultCache::global();
    let out = par_map(points, threads, |(cfg, wl)| cache.measure_cached(cfg, wl, fid));
    if cache.is_enabled() {
        if let Err(e) = cache.flush() {
            eprintln!("hbm-cache: flush failed: {e}");
        }
    }
    out
}

/// Outcome counters of one adaptive grid (also published through the
/// metric registry as `hbm_adaptive_*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveReport {
    /// Points answered by the calibrated analytical model.
    pub analytical: usize,
    /// Points escalated to cycle accuracy.
    pub escalated: usize,
}

impl AdaptiveReport {
    /// Fraction of the grid that needed cycle accuracy.
    pub fn escalation_fraction(&self) -> f64 {
        let total = self.analytical + self.escalated;
        if total == 0 {
            0.0
        } else {
            self.escalated as f64 / total as f64
        }
    }
}

/// Adaptive-sweep counters, published through the workspace metric
/// registry: grids swept adaptively, and per-point routing outcomes.
struct AdaptiveMetrics {
    grids: Arc<Counter>,
    points_analytical: Arc<Counter>,
    points_escalated: Arc<Counter>,
}

fn build_adaptive_metrics(reg: &Registry) -> AdaptiveMetrics {
    let points = "Adaptive-sweep grid points by final route";
    AdaptiveMetrics {
        grids: reg.counter(
            "hbm_adaptive_grids_total",
            "Grids swept adaptively (analytical first, escalate interesting regions)",
            &[],
        ),
        points_analytical: reg.counter(
            "hbm_adaptive_points_total",
            points,
            &[("route", "analytical")],
        ),
        points_escalated: reg.counter("hbm_adaptive_points_total", points, &[("route", "cycle")]),
    }
}

fn adaptive_metrics() -> &'static AdaptiveMetrics {
    static M: OnceLock<AdaptiveMetrics> = OnceLock::new();
    M.get_or_init(|| build_adaptive_metrics(Registry::global()))
}

/// Pre-registers the adaptive series (all zero) so expositions are
/// complete before the first adaptive grid. Called by the registry's
/// built-in installer.
pub(crate) fn install_adaptive_series(reg: &Registry) {
    build_adaptive_metrics(reg);
}

/// Records one adaptively-swept grid's routing outcome into the metric
/// registry (no-op while metrics are disabled). Called by
/// [`run_grid_adaptive`] and by the serve scheduler's adaptive
/// admission, so both surface escalation fractions through the same
/// `hbm_adaptive_*` series.
pub fn record_adaptive_grid(analytical: usize, escalated: usize) {
    if !metrics::enabled() {
        return;
    }
    let m = adaptive_metrics();
    m.grids.inc();
    m.points_analytical.add(analytical as u64);
    m.points_escalated.add(escalated as u64);
}

/// Multi-fidelity adaptive sweep (DESIGN.md §3.9): evaluates the whole
/// grid through the calibrated analytical model first, asks
/// [`crate::analytic::escalation_mask`] which points deserve cycle
/// accuracy (knees, bandwidth collapses, envelope-untrusted families),
/// and re-measures exactly those through the ordinary cycle path of
/// [`run_grid`] — so an escalated row is **byte-identical** to what a
/// direct cycle sweep of that point returns (same code path, same cache
/// fingerprint). `fid` gives the cycle windows escalations run at.
pub fn run_grid_adaptive(
    points: &[GridPoint],
    fid: Fidelity,
    threads: usize,
) -> (Vec<Measurement>, AdaptiveReport) {
    use crate::analytic::{escalation_mask, Calibration, EscalationPolicy};
    let analytical = Fidelity { tier: crate::experiment::FidelityTier::Analytical, ..fid };
    let mut rows = run_grid_fid(points, analytical, threads);
    let cal = Calibration::active();
    let mask = escalation_mask(points, &rows, cal, &EscalationPolicy::default());
    let escalate: Vec<usize> = (0..points.len()).filter(|&i| mask[i]).collect();
    let subgrid: Vec<GridPoint> = escalate.iter().map(|&i| points[i].clone()).collect();
    let cycle_rows = run_grid(&subgrid, fid.warmup, fid.cycles, threads);
    for (&i, m) in escalate.iter().zip(cycle_rows) {
        rows[i] = m;
    }
    let report =
        AdaptiveReport { analytical: points.len() - escalate.len(), escalated: escalate.len() };
    record_adaptive_grid(report.analytical, report.escalated);
    (rows, report)
}

/// A reasonable thread count for sweeps on this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::RwRatio;

    fn points() -> Vec<GridPoint> {
        vec![
            (SystemConfig::xilinx(), Workload::scs()),
            (SystemConfig::mao(), Workload::ccs()),
            (SystemConfig::xilinx(), Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() }),
        ]
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_grid(&points(), 500, 1_500, 1);
        let par = run_grid(&points(), 500, 1_500, 4);
        assert_eq!(seq.len(), 3);
        for (a, b) in seq.iter().zip(par.iter()) {
            // Determinism: identical results regardless of scheduling.
            assert_eq!(a.gen.total_bytes(), b.gen.total_bytes());
            assert_eq!(a.total_gbps(), b.total_gbps());
        }
    }

    #[test]
    fn results_keep_input_order() {
        let par = run_grid(&points(), 500, 1_500, 2);
        // Point 1 is MAO CCS — far faster than the XLNX hot-spot would
        // be; order confirms the mapping.
        assert!(par[1].total_gbps() > 100.0);
        // Point 2 is read-only: no write bytes.
        assert_eq!(par[2].gen.bytes_written, 0);
    }

    #[test]
    fn par_map_preserves_order_for_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        // Odd items spin longer, so claim order ≠ completion order.
        let out = par_map(&items, 4, |&i| {
            if i % 2 == 1 {
                std::hint::black_box((0..10_000u64).sum::<u64>());
            }
            i * 3
        });
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_contains_panics_to_their_item() {
        let items: Vec<u64> = (0..16).collect();
        let out = try_par_map(&items, 4, |&i| {
            if i % 5 == 2 {
                panic!("poisoned item {i}");
            }
            i + 100
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 2 {
                let p = r.as_ref().expect_err("poisoned item must fail");
                assert_eq!(panic_message(p), format!("poisoned item {i}"));
            } else {
                assert_eq!(*r.as_ref().expect("healthy item must succeed"), i as u64 + 100);
            }
        }
    }

    #[test]
    fn try_par_map_contains_panics_sequentially_too() {
        let items = vec![1u64, 2, 3];
        let out = try_par_map(&items, 1, |&i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
        assert!(out[0].is_ok() && out[2].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn par_map_reraises_after_completing_healthy_items() {
        let done = AtomicUsize::new(0);
        let items: Vec<u64> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, 2, |&i| {
                if i == 3 {
                    panic!("item 3 exploded");
                }
                done.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let p = caught.expect_err("panic must propagate");
        assert_eq!(panic_message(&p), "item 3 exploded");
        // Every healthy item still ran despite the mid-sweep panic.
        assert_eq!(done.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 8 "), Ok(8));
    }

    #[test]
    fn parse_jobs_rejects_zero_and_garbage() {
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("").is_err());
        assert!(parse_jobs("al1").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("2.5").is_err());
    }

    #[test]
    fn sweep_jobs_override_wins() {
        set_sweep_jobs(3);
        assert_eq!(sweep_jobs(), 3);
        set_sweep_jobs(0);
        assert!(sweep_jobs() >= 1);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn empty_grid() {
        assert!(run_grid(&[], 10, 10, 4).is_empty());
    }
}
