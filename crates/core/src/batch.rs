//! Parallel execution of measurement grids.
//!
//! Parameter sweeps (Fig. 3's 4 patterns × 5 burst lengths × 3 mixes,
//! the `sweep` binary's grids) are embarrassingly parallel: every run is
//! an independent deterministic simulation. [`run_grid`] fans a grid out
//! over OS threads with `std::thread::scope` — no extra dependencies —
//! while preserving result order.

use hbm_traffic::Workload;

use crate::measure::{measure, Measurement};
use crate::system::SystemConfig;

/// One grid point: a system configuration and a workload.
pub type GridPoint = (SystemConfig, Workload);

/// Measures every grid point, using up to `threads` OS threads, and
/// returns results in input order. `threads == 1` degenerates to a
/// sequential loop (no thread spawn overhead).
pub fn run_grid(
    points: &[GridPoint],
    warmup: u64,
    cycles: u64,
    threads: usize,
) -> Vec<Measurement> {
    assert!(threads >= 1);
    if threads == 1 || points.len() <= 1 {
        return points.iter().map(|(cfg, wl)| measure(cfg, *wl, warmup, cycles)).collect();
    }
    let mut results: Vec<Option<Measurement>> = vec![None; points.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Workers claim indices from the shared counter and deposit results
    // through the mutex (coarse, but each simulation dwarfs the lock).
    let slots = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(points.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let (cfg, wl) = &points[i];
                let m = measure(cfg, *wl, warmup, cycles);
                slots.lock().unwrap()[i] = Some(m);
            });
        }
    });
    results.into_iter().map(|m| m.expect("every grid point was claimed by a worker")).collect()
}

/// A reasonable thread count for sweeps on this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::RwRatio;

    fn points() -> Vec<GridPoint> {
        vec![
            (SystemConfig::xilinx(), Workload::scs()),
            (SystemConfig::mao(), Workload::ccs()),
            (SystemConfig::xilinx(), Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() }),
        ]
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_grid(&points(), 500, 1_500, 1);
        let par = run_grid(&points(), 500, 1_500, 4);
        assert_eq!(seq.len(), 3);
        for (a, b) in seq.iter().zip(par.iter()) {
            // Determinism: identical results regardless of scheduling.
            assert_eq!(a.gen.total_bytes(), b.gen.total_bytes());
            assert_eq!(a.total_gbps(), b.total_gbps());
        }
    }

    #[test]
    fn results_keep_input_order() {
        let par = run_grid(&points(), 500, 1_500, 2);
        // Point 1 is MAO CCS — far faster than the XLNX hot-spot would
        // be; order confirms the mapping.
        assert!(par[1].total_gbps() > 100.0);
        // Point 2 is read-only: no write bytes.
        assert_eq!(par[2].gen.bytes_written, 0);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn empty_grid() {
        assert!(run_grid(&[], 10, 10, 4).is_empty());
    }
}
