//! # hbm-core — system assembly, simulation engine, and experiments
//!
//! Glues the substrates together into a complete simulated HBM system:
//!
//! ```text
//! 32× BmTrafficGen ──► Interconnect (Xilinx | MAO | direct) ──► 32× MC+PCH
//!        ▲                                                          │
//!        └───────────────── completions ◄──────────────────────────┘
//! ```
//!
//! * [`system`] — the cycle-driven [`system::HbmSystem`] and its builder;
//! * [`measure`](mod@measure) — warm-up + fixed-horizon measurement harness producing
//!   throughput/latency [`measure::Measurement`]s;
//! * [`experiment`] — one function per figure/table of the paper,
//!   returning structured rows (the `repro` binary and the benches print
//!   them);
//! * [`cache`] — content-addressed memoisation of sweep-point
//!   measurements (memory + optional disk tier, single-flight dedup);
//! * [`lockstep`] — batched execution engine advancing K sweep points
//!   of one topology through a single devirtualised instruction stream
//!   ([`batch::run_grid`] plans grids onto it automatically);
//! * [`metrics`] — workspace-wide metric registry (atomic counters,
//!   gauges, power-of-two histograms) with Prometheus text exposition;
//! * [`profile`] — sampled kernel phase profiler attributing cycle-loop
//!   wall time to gens/fabric/MC/horizon/queue/reconcile phases (see
//!   `repro profile`);
//! * [`report`] — plain-text table and JSON rendering;
//! * [`probe`] — windowed time-series sampling of a running system;
//! * [`export`] — Chrome trace-event JSON and probe JSONL emission (see
//!   `repro trace`).
//!
//! ## Quick start
//!
//! ```
//! use hbm_core::prelude::*;
//!
//! // Throughput of the hot-spot CCS pattern on the stock Xilinx fabric:
//! let m = measure(
//!     &SystemConfig::xilinx(),
//!     Workload::ccs(),
//!     2_000,  // warm-up cycles
//!     8_000,  // measured cycles
//! );
//! assert!(m.total_gbps() < 30.0, "hot-spot collapse: {}", m.total_gbps());
//!
//! // The same pattern through the Memory Access Optimizer:
//! let opt = measure(&SystemConfig::mao(), Workload::ccs(), 2_000, 8_000);
//! assert!(opt.total_gbps() > 5.0 * m.total_gbps());
//! ```

pub mod analytic;
pub mod batch;
pub mod cache;
pub mod estimate;
pub mod experiment;
pub mod export;
pub mod lockstep;
pub mod measure;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod report;
pub mod system;
pub mod trace;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::measure::{measure, Measurement};
    pub use crate::system::{FabricKind, HbmSystem, RunPolicy, SystemConfig};
    pub use hbm_axi::{BurstLen, ClockDomain, Dir, MasterId, PortId};
    pub use hbm_traffic::{Pattern, RwRatio, Workload};
}

pub use cache::{
    fingerprint, topology_key, CacheSnapshot, Fingerprint, ResultCache, SIM_KERNEL_VERSION,
};
pub use lockstep::{batches_built, measure_batch, BatchedSystem};
pub use measure::{measure, Measurement};
pub use metrics::Registry;
pub use probe::{Probe, ProbeConfig, Snapshot};
pub use profile::{PhaseReport, NUM_PHASES, PHASES};
pub use system::{FabricKind, HbmSystem, RunPolicy, SystemConfig};
