//! One function per figure/table of the paper.
//!
//! Each function returns structured rows; the `repro` binary in
//! `hbm-bench` prints them next to the paper's reference values, and
//! EXPERIMENTS.md records the comparison. All experiments run at the
//! paper's 300 MHz accelerator clock unless stated otherwise.

use hbm_axi::{BurstLen, Cycle};
use hbm_mao::{InterleaveMode, MaoConfig};
use hbm_traffic::{Pattern, RwRatio, Workload};
use serde::{Deserialize, Serialize};

use crate::measure::Measurement;
use crate::system::{FabricKind, SystemConfig};

/// How a sweep point is evaluated: cycle-accurate simulation or the
/// closed-form analytical model (`hbm_core::analytic`).
///
/// The default is [`FidelityTier::Cycle`], and the field is
/// `#[serde(default)]` on [`Fidelity`], so JSON written before the tier
/// existed (job specs, disk-cache records) still deserialises — as the
/// cycle tier it was produced under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FidelityTier {
    /// Cycle-accurate simulation of the full system.
    #[default]
    Cycle,
    /// Closed-form throughput/latency model with calibrated residuals
    /// (microseconds per point instead of milliseconds; see
    /// [`crate::analytic`] for the error envelope).
    Analytical,
}

/// Simulation fidelity: cycles of warm-up and measurement, plus the
/// evaluation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fidelity {
    /// Warm-up cycles (excluded from statistics). Ignored by the
    /// analytical tier.
    pub warmup: Cycle,
    /// Measured cycles (the analytical tier synthesises its rows over
    /// the same window so throughputs normalise identically).
    pub cycles: Cycle,
    /// Evaluation tier; defaults to cycle-accurate.
    #[serde(default)]
    pub tier: FidelityTier,
}

impl Fidelity {
    /// Fast runs for tests.
    pub const QUICK: Fidelity = Fidelity::cycle(1_500, 4_000);
    /// Full runs for the reproduction harness.
    pub const FULL: Fidelity = Fidelity::cycle(4_000, 24_000);
    /// The closed-form model: no warm-up, rows synthesised over the
    /// FULL measurement window.
    pub const ANALYTICAL: Fidelity =
        Fidelity { warmup: 0, cycles: 24_000, tier: FidelityTier::Analytical };

    /// A cycle-accurate fidelity with the given windows.
    pub const fn cycle(warmup: Cycle, cycles: Cycle) -> Fidelity {
        Fidelity { warmup, cycles, tier: FidelityTier::Cycle }
    }

    /// Whether this fidelity evaluates through the analytical model.
    pub fn is_analytical(&self) -> bool {
        self.tier == FidelityTier::Analytical
    }

    fn run(&self, cfg: &SystemConfig, wl: Workload) -> Measurement {
        // Routes through the process-wide result cache; a no-op
        // passthrough to [`measure`] (or the analytical model) unless
        // caching was enabled.
        crate::cache::ResultCache::global().measure_cached(cfg, &wl, *self)
    }

    /// Measures every point of a sweep, farmed out over
    /// [`crate::batch::sweep_jobs`] worker threads. Results come back
    /// in input order, and every simulation is deterministic, so the
    /// fan-out is invisible in the output. Honors the process-wide
    /// adaptive mode ([`set_adaptive`]) for cycle-tier sweeps.
    fn run_all(&self, points: &[(SystemConfig, Workload)]) -> Vec<Measurement> {
        let jobs = crate::batch::sweep_jobs();
        if self.tier == FidelityTier::Cycle && adaptive_sweeps() {
            let (rows, report) = crate::batch::run_grid_adaptive(points, *self, jobs);
            eprintln!(
                "hbm-adaptive: {} points: {} analytical, {} escalated to cycle ({:.0}%)",
                points.len(),
                report.analytical,
                report.escalated,
                100.0 * report.escalation_fraction()
            );
            return rows;
        }
        crate::batch::run_grid_fid(points, *self, jobs)
    }
}

/// Process-wide adaptive-sweep switch (`repro --adaptive`): when set,
/// experiment sweeps at the cycle tier run analytically first and
/// escalate only interesting regions to cycle accuracy.
static ADAPTIVE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Turns adaptive multi-fidelity sweeps on or off for experiment grids.
pub fn set_adaptive(on: bool) {
    ADAPTIVE.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Whether adaptive multi-fidelity sweeps are enabled.
pub fn adaptive_sweeps() -> bool {
    ADAPTIVE.load(std::sync::atomic::Ordering::Relaxed)
}

// ---------------------------------------------------------------- Fig. 2

/// One point of Fig. 2: achievable throughput vs. read/write ratio at
/// 300 MHz (ideal channel spreading, BL 16).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Row {
    /// The issued read:write ratio.
    pub ratio: RwRatio,
    /// Read throughput in GB/s.
    pub read_gbps: f64,
    /// Write throughput in GB/s.
    pub write_gbps: f64,
    /// Combined throughput in GB/s.
    pub total_gbps: f64,
}

/// Fig. 2: throughput when AXI reads and writes are issued at different
/// ratios at 300 MHz. Uses the SCS pattern (one master per channel) so
/// the fabric does not confound the DRAM-level effect.
pub fn fig2_rw_ratio(fid: Fidelity) -> Vec<Fig2Row> {
    let ratios = [
        RwRatio { reads: 1, writes: 0 },
        RwRatio { reads: 4, writes: 1 },
        RwRatio { reads: 3, writes: 1 },
        RwRatio { reads: 2, writes: 1 },
        RwRatio { reads: 1, writes: 1 },
        RwRatio { reads: 1, writes: 2 },
        RwRatio { reads: 1, writes: 3 },
        RwRatio { reads: 1, writes: 4 },
        RwRatio { reads: 0, writes: 1 },
    ];
    let points: Vec<_> = ratios
        .iter()
        .map(|&ratio| (SystemConfig::xilinx(), Workload { rw: ratio, ..Workload::scs() }))
        .collect();
    ratios
        .iter()
        .zip(fid.run_all(&points))
        .map(|(&ratio, m)| Fig2Row {
            ratio,
            read_gbps: m.read_gbps(),
            write_gbps: m.write_gbps(),
            total_gbps: m.total_gbps(),
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 3

/// One point of Fig. 3: throughput for a pattern at a burst length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Access pattern (SCS/CCS/SCRA/CCRA — panels a–d).
    pub pattern: Pattern,
    /// AXI burst length in beats.
    pub burst: u8,
    /// Read-only throughput in GB/s.
    pub rd_gbps: f64,
    /// Write-only throughput in GB/s.
    pub wr_gbps: f64,
    /// Mixed 2:1 throughput in GB/s.
    pub both_gbps: f64,
}

/// Fig. 3: burst-length sensitivity of the four basic patterns on the
/// stock Xilinx fabric.
pub fn fig3_burst_length(fid: Fidelity) -> Vec<Fig3Row> {
    let mut cases = Vec::new();
    for pattern in [Pattern::Scs, Pattern::Ccs, Pattern::Scra, Pattern::Ccra] {
        for bl in [1u8, 2, 4, 8, 16] {
            cases.push((pattern, bl));
        }
    }
    // Three measurements (RD / WR / 2:1) per case, flattened into one
    // work-list so the thread pool sees all 60 points at once.
    let points: Vec<_> = cases
        .iter()
        .flat_map(|&(pattern, bl)| {
            let base = match pattern {
                Pattern::Scs => Workload::scs(),
                Pattern::Ccs => Workload::ccs(),
                Pattern::Scra => Workload::scra(),
                Pattern::Ccra => Workload::ccra(),
            };
            let mk = move |rw| Workload {
                burst: BurstLen::of(bl),
                stride: BurstLen::of(bl).bytes(),
                rw,
                ..base
            };
            [RwRatio::READ_ONLY, RwRatio::WRITE_ONLY, RwRatio::TWO_TO_ONE]
                .map(|rw| (SystemConfig::xilinx(), mk(rw)))
        })
        .collect();
    cases
        .iter()
        .zip(fid.run_all(&points).chunks(3))
        .map(|(&(pattern, burst), m)| Fig3Row {
            pattern,
            burst,
            rd_gbps: m[0].total_gbps(),
            wr_gbps: m[1].total_gbps(),
            both_gbps: m[2].total_gbps(),
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 4

/// One point of Fig. 4a: SCS rotated by an offset over the switch fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Rotation offset (master `m` targets PCH `m + offset mod 32`).
    pub rotation: usize,
    /// Burst length used.
    pub burst: u8,
    /// Combined throughput in GB/s.
    pub total_gbps: f64,
    /// Throughput as % of the 460.8 GB/s device maximum.
    pub pct: f64,
    /// Beats on the busiest single lateral bus (Fig. 4b's contended
    /// link), normalised per measured cycle.
    pub max_lateral_util: f64,
}

/// The (burst, rotation) case list of Fig. 4, in row order.
pub fn fig4_cases() -> Vec<(u8, usize)> {
    let mut cases = Vec::new();
    for burst in [16u8, 2] {
        for rotation in [0usize, 1, 2, 3, 4, 6, 8] {
            cases.push((burst, rotation));
        }
    }
    cases
}

/// The Fig. 4 measurement grid — one [`crate::batch::GridPoint`] per
/// case of [`fig4_cases`]. Shared between the direct `repro fig4` path
/// and clients submitting the same grid through the serving layer, so
/// both measure literally the same points.
pub fn fig4_grid() -> Vec<crate::batch::GridPoint> {
    fig4_cases()
        .iter()
        .map(|&(burst, rotation)| {
            let wl = Workload {
                rotation,
                burst: BurstLen::of(burst),
                stride: BurstLen::of(burst).bytes(),
                ..Workload::scs()
            };
            (SystemConfig::xilinx(), wl)
        })
        .collect()
}

/// Folds measurements (in [`fig4_grid`] order) into Fig. 4 rows. The
/// serve client calls this on streamed measurements; the output is
/// byte-identical to the direct path because every field derives from
/// exactly round-tripped counters.
pub fn fig4_rows(measurements: &[Measurement]) -> Vec<Fig4Row> {
    fig4_cases()
        .iter()
        .zip(measurements)
        .map(|(&(burst, rotation), m)| Fig4Row {
            rotation,
            burst,
            total_gbps: m.total_gbps(),
            pct: m.pct_of_device(),
            max_lateral_util: m.fabric.max_lateral_beats() as f64 / m.cycles as f64,
        })
        .collect()
}

/// Fig. 4: effect of the rotation offset on throughput through the
/// Xilinx switch fabric, for BL 16 and BL 2.
pub fn fig4_rotation(fid: Fidelity) -> Vec<Fig4Row> {
    fig4_rows(&fid.run_all(&fig4_grid()))
}

// -------------------------------------------------------------- Table II

/// One row of Table II: latency under a traffic setup.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// "Single" (1 outstanding, BL 1) or "Burst" (32 outstanding, BL 16).
    pub traffic: &'static str,
    /// "XLNX" or "MAO".
    pub fabric: &'static str,
    /// Pattern (CCS or CCRA).
    pub pattern: Pattern,
    /// Read latency mean in cycles.
    pub rd_mean: f64,
    /// Read latency standard deviation.
    pub rd_std: f64,
    /// Read latency median in cycles (bucket upper edge).
    pub rd_p50: u64,
    /// Read latency 99th percentile in cycles.
    pub rd_p99: u64,
    /// Write latency mean in cycles.
    pub wr_mean: f64,
    /// Write latency standard deviation.
    pub wr_std: f64,
    /// Write latency median in cycles.
    pub wr_p50: u64,
    /// Write latency 99th percentile in cycles.
    pub wr_p99: u64,
}

/// Table II: HBM latency comparison between the Xilinx fabric and the
/// MAO under light ("Single") and heavy ("Burst") traffic.
pub fn table2_latency(fid: Fidelity) -> Vec<Table2Row> {
    let mut meta = Vec::new();
    let mut points = Vec::new();
    for (traffic, outstanding, bl) in [("Single", 1usize, 1u8), ("Burst", 32, 16)] {
        for (fabric, cfg) in [("XLNX", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())] {
            for pattern in [Pattern::Ccs, Pattern::Ccra] {
                let base = if pattern == Pattern::Ccs { Workload::ccs() } else { Workload::ccra() };
                let wl = Workload {
                    outstanding,
                    burst: BurstLen::of(bl),
                    stride: BurstLen::of(bl).bytes(),
                    num_ids: if traffic == "Single" { 1 } else { 16 },
                    ..base
                };
                meta.push((traffic, fabric, pattern));
                points.push((cfg.clone(), wl));
            }
        }
    }
    meta.iter()
        .zip(fid.run_all(&points))
        .map(|(&(traffic, fabric, pattern), m)| Table2Row {
            traffic,
            fabric,
            pattern,
            rd_mean: m.read_latency_mean().unwrap_or(f64::NAN),
            rd_std: m.read_latency_std().unwrap_or(f64::NAN),
            rd_p50: m.gen.read_lat.p50().unwrap_or(0),
            rd_p99: m.gen.read_lat.p99().unwrap_or(0),
            wr_mean: m.write_latency_mean().unwrap_or(f64::NAN),
            wr_std: m.write_latency_std().unwrap_or(f64::NAN),
            wr_p50: m.gen.write_lat.p50().unwrap_or(0),
            wr_p99: m.gen.write_lat.p99().unwrap_or(0),
        })
        .collect()
}

// -------------------------------------------------------------- Table IV

/// One cell group of Table IV: throughput for a pattern/direction on one
/// fabric.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Pattern (CCS or CCRA).
    pub pattern: Pattern,
    /// "RD", "WR", or "Both".
    pub direction: &'static str,
    /// Throughput through the Xilinx fabric in GB/s.
    pub xlnx_gbps: f64,
    /// Throughput through the MAO in GB/s.
    pub mao_gbps: f64,
}

impl Table4Row {
    /// The MAO speed-up factor for this row.
    pub fn speedup(&self) -> f64 {
        self.mao_gbps / self.xlnx_gbps
    }
}

/// Table IV: CCS/CCRA throughput, Xilinx fabric vs. MAO, for reads only,
/// writes only, and the 2:1 mix (BL 16).
pub fn table4_throughput(fid: Fidelity) -> Vec<Table4Row> {
    let mut meta = Vec::new();
    let mut points = Vec::new();
    for pattern in [Pattern::Ccs, Pattern::Ccra] {
        let base = if pattern == Pattern::Ccs { Workload::ccs() } else { Workload::ccra() };
        for (direction, rw) in
            [("RD", RwRatio::READ_ONLY), ("WR", RwRatio::WRITE_ONLY), ("Both", RwRatio::TWO_TO_ONE)]
        {
            let wl = Workload { rw, ..base };
            meta.push((pattern, direction));
            points.push((SystemConfig::xilinx(), wl));
            points.push((SystemConfig::mao(), wl));
        }
    }
    meta.iter()
        .zip(fid.run_all(&points).chunks(2))
        .map(|(&(pattern, direction), m)| Table4Row {
            pattern,
            direction,
            xlnx_gbps: m[0].total_gbps(),
            mao_gbps: m[1].total_gbps(),
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 5

/// One point of Fig. 5: stride length vs. throughput with the MAO.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Stride between consecutive chunk starts in bytes.
    pub stride: u64,
    /// Combined throughput in GB/s.
    pub total_gbps: f64,
}

/// Fig. 5: effect of the stride length on throughput with the MAO.
/// Strides below the 512 B chunk re-fetch data (overlap); strides above
/// skip data; very large strides defeat row locality (DRAM page misses).
pub fn fig5_stride(fid: Fidelity) -> Vec<Fig5Row> {
    let strides =
        [64u64, 128, 256, 512, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let points: Vec<_> = strides
        .iter()
        .map(|&stride| {
            let wl = Workload {
                stride,
                // A larger working set keeps big strides in range.
                working_set: 4 << 30,
                ..Workload::ccs()
            };
            (SystemConfig::mao(), wl)
        })
        .collect();
    strides
        .iter()
        .zip(fid.run_all(&points))
        .map(|(&stride, m)| Fig5Row { stride, total_gbps: m.total_gbps() })
        .collect()
}

// ---------------------------------------------------------------- Fig. 6

/// One point of Fig. 6: reorder depth vs. CCRA throughput with the MAO.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Independent AXI IDs / reorder-buffer depth.
    pub depth: usize,
    /// Combined throughput in GB/s.
    pub total_gbps: f64,
}

/// Fig. 6: effect of transaction reordering (independent AXI IDs) on
/// CCRA throughput with the MAO.
pub fn fig6_reorder(fid: Fidelity) -> Vec<Fig6Row> {
    let depths = [1usize, 2, 4, 8, 16, 32];
    let points: Vec<_> = depths
        .iter()
        .map(|&depth| {
            let mao = MaoConfig { reorder_depth: depth.max(2), ..MaoConfig::default() };
            let cfg = SystemConfig { fabric: FabricKind::Mao(mao), ..SystemConfig::mao() };
            let wl = Workload { num_ids: depth, outstanding: depth, ..Workload::ccra() };
            (cfg, wl)
        })
        .collect();
    depths
        .iter()
        .zip(fid.run_all(&points))
        .map(|(&depth, m)| Fig6Row { depth, total_gbps: m.total_gbps() })
        .collect()
}

// -------------------------------------------------- §IV-A latency probes

/// Closed-page latency probe results (§IV-A of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyProbe {
    /// Local read latency in cycles (paper: 48).
    pub read_local: f64,
    /// Farthest-PCH read latency in cycles (paper: up to 72).
    pub read_far: f64,
    /// Local write latency in cycles (paper: 17).
    pub write_local: f64,
    /// Farthest-PCH write latency in cycles (paper: up to 41).
    pub write_far: f64,
}

/// Measures single-transaction closed-page latencies on the Xilinx
/// fabric: local PCH vs. the farthest PCH (maximal rotation).
pub fn latency_probe() -> LatencyProbe {
    let probe = |rotation: usize, rw: RwRatio| -> f64 {
        let wl = Workload {
            rotation,
            rw,
            outstanding: 1,
            burst: BurstLen::of(1),
            stride: 32,
            ..Workload::scs()
        };
        let mut sys = crate::system::HbmSystem::new(&SystemConfig::xilinx(), wl, Some(8));
        sys.run_until_drained(50_000);
        let stats = sys.gen_stats();
        // Master 0 with rotation r targets PCH r — distance r/4 switches.
        let s = &stats[0];
        match (rw.reads, rw.writes) {
            (_, 0) => s.read_lat.mean().unwrap(),
            _ => s.write_lat.mean().unwrap(),
        }
    };
    LatencyProbe {
        read_local: probe(0, RwRatio::READ_ONLY),
        read_far: probe(28, RwRatio::READ_ONLY),
        write_local: probe(0, RwRatio::WRITE_ONLY),
        write_far: probe(28, RwRatio::WRITE_ONLY),
    }
}

// ------------------------------------------------------------- Ablations

/// A single named ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Parameter value description.
    pub setting: String,
    /// Combined throughput in GB/s.
    pub total_gbps: f64,
}

/// Ablation: MAO interleave granularity under CCS (DESIGN.md §5).
pub fn ablate_interleave(fid: Fidelity) -> Vec<AblationRow> {
    [512u64, 1 << 10, 4 << 10, 16 << 10, 64 << 10]
        .iter()
        .map(|&g| {
            let mao = MaoConfig {
                interleave: InterleaveMode::XorFold { granularity: g },
                ..MaoConfig::default()
            };
            let cfg = SystemConfig { fabric: FabricKind::Mao(mao), ..SystemConfig::mao() };
            let m = fid.run(&cfg, Workload::ccs());
            AblationRow { setting: format!("granularity {g} B"), total_gbps: m.total_gbps() }
        })
        .collect()
}

/// Ablation: block vs. XOR-fold interleave under a 16 KiB power-of-two
/// stride (the case block interleave aliases).
pub fn ablate_interleave_scheme(fid: Fidelity) -> Vec<AblationRow> {
    [
        ("Block", InterleaveMode::Block { granularity: 512 }),
        ("XorFold", InterleaveMode::XorFold { granularity: 512 }),
    ]
    .iter()
    .map(|&(name, mode)| {
        let mao = MaoConfig { interleave: mode, ..MaoConfig::default() };
        let cfg = SystemConfig { fabric: FabricKind::Mao(mao), ..SystemConfig::mao() };
        let wl = Workload { stride: 16 << 10, working_set: 4 << 30, ..Workload::ccs() };
        let m = fid.run(&cfg, wl);
        AblationRow { setting: name.to_string(), total_gbps: m.total_gbps() }
    })
    .collect()
}

/// Ablation: MAO hierarchical stages (latency/throughput trade-off).
pub fn ablate_stages(fid: Fidelity) -> Vec<AblationRow> {
    [1u8, 2]
        .iter()
        .map(|&stages| {
            let mao = MaoConfig { stages, ..MaoConfig::default() };
            let cfg = SystemConfig { fabric: FabricKind::Mao(mao), ..SystemConfig::mao() };
            let m = fid.run(&cfg, Workload::ccs());
            AblationRow { setting: format!("{stages} stage(s)"), total_gbps: m.total_gbps() }
        })
        .collect()
}

/// Ablation: decomposing the MAO's three architectural adaptions
/// (§IV-B). Runs CCS and CCRA with each feature removed in turn:
///
/// * *full MAO* — hierarchical network + XOR-fold interleave + reorder
///   buffers;
/// * *no interleave* — contiguous map (hot-spots persist: shows the
///   address remapping is what rescues CCS);
/// * *shallow reordering* — reorder buffers cut to 4 entries (shows the
///   reorder depth carries the random-access win; Fig. 6 sweeps this
///   axis fully);
/// * *stock fabric* — the Xilinx baseline for reference.
pub fn ablate_mao_features(fid: Fidelity) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (pname, base) in [("CCS", Workload::ccs()), ("CCRA", Workload::ccra())] {
        let full = SystemConfig::mao();
        let no_il = SystemConfig {
            fabric: FabricKind::Mao(MaoConfig {
                interleave: InterleaveMode::Contiguous,
                ..MaoConfig::default()
            }),
            ..SystemConfig::mao()
        };
        let shallow = SystemConfig {
            fabric: FabricKind::Mao(MaoConfig { reorder_depth: 4, ..MaoConfig::default() }),
            ..SystemConfig::mao()
        };
        let xbar = SystemConfig { fabric: FabricKind::FullCrossbar, ..SystemConfig::xilinx() };
        for (fname, cfg, wl) in [
            ("full MAO", &full, base),
            ("no interleave", &no_il, base),
            ("shallow reordering", &shallow, Workload { num_ids: 4, outstanding: 4, ..base }),
            ("topology only (full crossbar)", &xbar, base),
            ("stock fabric", &SystemConfig::xilinx(), base),
        ] {
            let m = fid.run(cfg, wl);
            rows.push(AblationRow {
                setting: format!("{pname}: {fname}"),
                total_gbps: m.total_gbps(),
            });
        }
    }
    rows
}

/// Ablation: DRAM bank/row address mapping (Shuhai's configuration
/// axis): row-interleaved banks vs contiguous per-bank slices, under a
/// linear stream.
pub fn ablate_addr_map(fid: Fidelity) -> Vec<AblationRow> {
    [
        ("row-interleaved banks", hbm_mem::AddressMapPolicy::RowInterleaved),
        ("bank-contiguous slices", hbm_mem::AddressMapPolicy::BankContiguous),
    ]
    .iter()
    .map(|&(name, policy)| {
        let mut cfg = SystemConfig::xilinx();
        cfg.hbm.addr_map = policy;
        let m = fid.run(&cfg, Workload { rw: RwRatio::READ_ONLY, ..Workload::scs() });
        AblationRow { setting: name.to_string(), total_gbps: m.total_gbps() }
    })
    .collect()
}

/// What-if: AXI4 burst lengths beyond the AXI3 limit of 16 beats.
///
/// The paper's analysis stops at BL 16 because the device speaks AXI3;
/// this study asks how much an AXI4 front-end (bursts to 4 KiB) would
/// add. Expected: little for strided traffic (BL 16 already amortises
/// page opens) and a modest gain for random traffic (fewer, larger
/// DRAM jobs per scheduling decision).
pub fn ablate_axi4(fid: Fidelity) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (pname, base) in [("SCS", Workload::scs()), ("SCRA", Workload::scra())] {
        for beats in [16u8, 32, 64, 128] {
            let burst = BurstLen::new_axi4(beats).expect("valid AXI4 length");
            let mao = MaoConfig {
                interleave: InterleaveMode::XorFold { granularity: 4096 },
                ..MaoConfig::default()
            };
            let cfg = SystemConfig { fabric: FabricKind::Mao(mao), ..SystemConfig::mao() };
            let wl = Workload { burst, stride: burst.bytes(), rw: RwRatio::READ_ONLY, ..base };
            let m = fid.run(&cfg, wl);
            rows.push(AblationRow {
                setting: format!("{pname} BL {beats}"),
                total_gbps: m.total_gbps(),
            });
        }
    }
    rows
}

/// Ablation: open vs. closed page policy (MC configuration axis from
/// the paper's reference \[13\], Wang et al.).
pub fn ablate_page_policy(fid: Fidelity) -> Vec<AblationRow> {
    [("open page", hbm_mem::PagePolicy::Open), ("closed page", hbm_mem::PagePolicy::Closed)]
        .iter()
        .map(|&(name, policy)| {
            let mut cfg = SystemConfig::mao();
            cfg.hbm.mc.page_policy = policy;
            let m = fid.run(&cfg, Workload::ccs());
            AblationRow { setting: name.to_string(), total_gbps: m.total_gbps() }
        })
        .collect()
}

/// Ablation: memory-controller scheduling window (FIFO vs. FR-FCFS).
pub fn ablate_mc_window(fid: Fidelity) -> Vec<AblationRow> {
    [1usize, 4, 16]
        .iter()
        .map(|&window| {
            let mut cfg = SystemConfig::mao();
            cfg.hbm.mc.window = window;
            let m = fid.run(&cfg, Workload::ccra());
            AblationRow { setting: format!("window {window}"), total_gbps: m.total_gbps() }
        })
        .collect()
}

/// Ablation: lateral-bus count on the Xilinx fabric under the
/// rotation-4 workload — the hardware fix the paper weighs against the
/// MAO ("a trade-off between latency, throughput, and chip space").
pub fn ablate_lateral(fid: Fidelity) -> Vec<AblationRow> {
    use crate::system::XilinxTweaks;
    let wl = Workload { rotation: 4, ..Workload::scs() };
    let mut rows: Vec<AblationRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&buses| {
            let cfg = SystemConfig {
                fabric: FabricKind::XilinxTweaked(XilinxTweaks {
                    lateral_buses: buses,
                    ..XilinxTweaks::default()
                }),
                ..SystemConfig::xilinx()
            };
            let m = fid.run(&cfg, wl);
            AblationRow {
                setting: format!("{buses} lateral bus(es)/dir"),
                total_gbps: m.total_gbps(),
            }
        })
        .collect();
    let local = fid.run(&SystemConfig::xilinx(), Workload::scs());
    rows.push(AblationRow {
        setting: "reference: rotation 0".into(),
        total_gbps: local.total_gbps(),
    });
    rows
}

// ------------------------------------------------------- Stack scaling

/// Future-work study: throughput vs. HBM stack count (the paper's
/// conclusion expects accelerators to scale with "future FPGAs with more
/// HBM stacks"). Runs MAO-CCS on 1/2/4-stack devices at the requested
/// fidelity, then extends the curve to 8/16-stack devices through the
/// *same* closed-form model the analytical tier uses
/// ([`crate::analytic`]) — one implementation, so the simulated and
/// extrapolated rows can never drift apart.
pub fn ablate_stacks(fid: Fidelity) -> Vec<AblationRow> {
    let mut rows: Vec<AblationRow> = [1usize, 2, 4]
        .iter()
        .map(|&stacks| {
            let mut cfg = SystemConfig::mao();
            cfg.hbm = hbm_mem::HbmConfig::with_stacks(stacks);
            let m = fid.run(&cfg, Workload::ccs());
            AblationRow {
                setting: format!("{stacks} stack(s), {} PCH", cfg.hbm.num_pch),
                total_gbps: m.total_gbps(),
            }
        })
        .collect();
    // Beyond the simulated range: the analytical tier, through the same
    // cache-routed entry point every sweep point uses.
    let analytical = Fidelity { tier: FidelityTier::Analytical, ..fid };
    for stacks in [8usize, 16] {
        let mut cfg = SystemConfig::mao();
        cfg.hbm = hbm_mem::HbmConfig::with_stacks(stacks);
        let m = analytical.run(&cfg, Workload::ccs());
        rows.push(AblationRow {
            setting: format!("{stacks} stack(s), {} PCH (analytical)", cfg.hbm.num_pch),
            total_gbps: m.total_gbps(),
        });
    }
    rows
}

// --------------------------------------------------- Mixed interference

/// Result of the heterogeneous-traffic experiment.
#[derive(Debug, Clone, Serialize)]
pub struct MixedRow {
    /// Fabric name.
    pub fabric: &'static str,
    /// Throughput of the 16 streaming (CCS) masters, GB/s.
    pub stream_gbps: f64,
    /// Throughput of the 16 random (CCRA) masters, GB/s.
    pub random_gbps: f64,
    /// Combined throughput, GB/s.
    pub total_gbps: f64,
}

/// Heterogeneous interference: half the masters stream a shared buffer
/// (CCS) while the other half scatter random accesses (CCRA) — the
/// cooperating-cores scenario the paper's introduction motivates global
/// addressing with. Compares the stock fabric against the MAO.
pub fn mixed_interference(fid: Fidelity) -> Vec<MixedRow> {
    let mut rows = Vec::new();
    for (fabric, cfg) in [("XLNX", SystemConfig::xilinx()), ("MAO", SystemConfig::mao())] {
        let workloads: Vec<Workload> = (0..cfg.hbm.num_pch)
            .map(|m| if m % 2 == 0 { Workload::ccs() } else { Workload::ccra() })
            .collect();
        let mut sys = crate::system::HbmSystem::with_workloads(&cfg, &workloads);
        sys.run(fid.warmup);
        sys.reset_stats();
        sys.run(fid.cycles);
        let clock = sys.clock();
        let stats = sys.gen_stats();
        let bytes = |rem: usize| -> u64 {
            stats
                .iter()
                .enumerate()
                .filter(|(m, _)| m % 2 == rem)
                .map(|(_, g)| g.total_bytes())
                .sum()
        };
        let stream = clock.throughput_gbps(bytes(0), fid.cycles);
        let random = clock.throughput_gbps(bytes(1), fid.cycles);
        rows.push(MixedRow {
            fabric,
            stream_gbps: stream,
            random_gbps: random,
            total_gbps: stream + random,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const FID: Fidelity = Fidelity::cycle(1_000, 3_000);

    #[test]
    fn fidelity_json_without_tier_parses_as_cycle() {
        // Wire stability: Fidelity JSON recorded before the tier field
        // existed still parses, as cycle-accurate fidelity.
        let old = "{\"warmup\":1500,\"cycles\":4000}";
        let fid: Fidelity = serde_json::from_str(old).unwrap();
        assert_eq!(fid, Fidelity::QUICK);
        assert_eq!(fid.tier, FidelityTier::Cycle);
        // The analytical tier round-trips and stays distinct.
        let json = serde_json::to_string(&Fidelity::ANALYTICAL).unwrap();
        let back: Fidelity = serde_json::from_str(&json).unwrap();
        assert!(back.is_analytical());
        assert_ne!(back, fid);
    }

    #[test]
    fn mixed_interference_mao_wins_for_both_classes() {
        let rows = mixed_interference(FID);
        let xlnx = rows.iter().find(|r| r.fabric == "XLNX").unwrap();
        let mao = rows.iter().find(|r| r.fabric == "MAO").unwrap();
        // The MAO must improve the total AND not starve either class.
        assert!(mao.total_gbps > 2.0 * xlnx.total_gbps, "{mao:?} vs {xlnx:?}");
        assert!(mao.stream_gbps > xlnx.stream_gbps);
        assert!(mao.random_gbps > xlnx.random_gbps);
    }

    #[test]
    fn mao_feature_decomposition_ordering() {
        let rows = ablate_mao_features(FID);
        let get = |s: &str| rows.iter().find(|r| r.setting == s).unwrap().total_gbps;
        // CCS: interleaving is the load-bearing feature.
        assert!(
            get("CCS: no interleave") < 0.2 * get("CCS: full MAO"),
            "CCS without interleave must hot-spot"
        );
        // CCRA: reorder depth carries a large share of the win.
        assert!(
            get("CCRA: shallow reordering") < 0.8 * get("CCRA: full MAO"),
            "CCRA with shallow reordering must suffer"
        );
        // Everything beats the stock fabric's hot-spot CCS.
        assert!(get("CCS: full MAO") > 10.0 * get("CCS: stock fabric"));
    }

    #[test]
    fn fig2_peak_is_at_mixed_ratio() {
        let rows = fig2_rw_ratio(FID);
        assert_eq!(rows.len(), 9);
        let uni_read = rows.first().unwrap().total_gbps;
        let best = rows.iter().map(|r| r.total_gbps).fold(0.0, f64::max);
        let two_one =
            rows.iter().find(|r| r.ratio.reads == 2 && r.ratio.writes == 1).unwrap().total_gbps;
        // Mixed traffic beats unidirectional at 300 MHz (paper Fig. 2).
        assert!(two_one > uni_read, "2:1 {two_one} vs RD-only {uni_read}");
        assert!(two_one > 0.9 * best, "2:1 near the peak");
    }

    #[test]
    fn fig4_throughput_decreases_with_rotation() {
        let rows = fig4_rotation(FID);
        let bl16: Vec<&Fig4Row> = rows.iter().filter(|r| r.burst == 16).collect();
        let r0 = bl16.iter().find(|r| r.rotation == 0).unwrap().total_gbps;
        let r4 = bl16.iter().find(|r| r.rotation == 4).unwrap().total_gbps;
        let r8 = bl16.iter().find(|r| r.rotation == 8).unwrap().total_gbps;
        assert!(r4 < 0.8 * r0, "rotation 4 must lose throughput: {r4} vs {r0}");
        assert!(r8 <= r4 * 1.05, "rotation 8 at or below rotation 4");
    }

    #[test]
    fn fig6_reorder_depth_helps() {
        let rows = fig6_reorder(FID);
        let d1 = rows.iter().find(|r| r.depth == 1).unwrap().total_gbps;
        let d32 = rows.iter().find(|r| r.depth == 32).unwrap().total_gbps;
        assert!(d32 > 2.0 * d1, "reordering must pay off: {d1} → {d32}");
    }

    #[test]
    fn latency_probe_matches_paper_shape() {
        let p = latency_probe();
        assert!(p.read_local < p.read_far, "far reads are slower");
        assert!(p.write_local < p.write_far, "far writes are slower");
        assert!(p.write_local < p.read_local, "writes ack early");
        // Paper anchors: 48 / 72 / 17 / 41 cycles.
        assert!((p.read_local - 48.0).abs() < 20.0, "read_local {}", p.read_local);
        assert!((p.write_local - 17.0).abs() < 12.0, "write_local {}", p.write_local);
    }
}
