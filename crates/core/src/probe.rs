//! Windowed time-series probes: periodic snapshots of system state.
//!
//! A [`Probe`] is attached to an [`crate::system::HbmSystem`] and sampled
//! every `interval` cycles while the system runs. Each [`Snapshot`]
//! captures what happened *in the window since the previous sample* —
//! per-PCH throughput, in-flight occupancy, fabric queue depth, windowed
//! row-hit rate — into a bounded ring, so a long run keeps the most
//! recent `capacity` windows.
//!
//! Sampling is read-only: the probe looks at statistics counters and
//! occupancy gauges and never feeds back into the simulation, so a probed
//! run is bit-identical to an unprobed one (enforced by the tracing
//! equivalence proptest). The system drives sampling by splitting its
//! `run`/`run_until_drained` spans at window boundaries; the event-horizon
//! fast-forward still skips idle stretches *within* each window.

use std::collections::VecDeque;

use hbm_axi::Cycle;
use hbm_mem::MemStats;
use serde::{Deserialize, Serialize};

/// Probe parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Cycles between samples.
    pub interval: Cycle,
    /// Snapshots retained (older windows are evicted, oldest first).
    pub capacity: usize,
}

impl Default for ProbeConfig {
    fn default() -> ProbeConfig {
        ProbeConfig { interval: 1_024, capacity: 4_096 }
    }
}

/// One sampled window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Cycle at which the sample was taken (window end).
    pub at: Cycle,
    /// Window length in cycles (usually the probe interval; the first or
    /// last window of a run may be shorter).
    pub window: Cycle,
    /// Bytes moved by the DRAM in this window, summed over channels.
    pub bytes: u64,
    /// Bytes per pseudo-channel in this window.
    pub per_pch_bytes: Vec<u64>,
    /// Transactions in flight at the sample instant (issued by a source,
    /// completion not yet delivered), summed over masters.
    pub in_flight: u64,
    /// Flits queued inside the interconnect at the sample instant.
    pub fabric_occupancy: u64,
    /// Requests waiting in memory-controller input queues at the sample
    /// instant, summed over channels.
    pub mc_queued: u64,
    /// Row-hit rate over the accesses of this window, `None` when the
    /// window had no classified DRAM access.
    pub row_hit_rate: Option<f64>,
}

impl Snapshot {
    /// Window throughput in GB/s for a clock `period_ns` per cycle.
    pub fn gbps(&self, period_ns: f64) -> f64 {
        if self.window == 0 {
            return 0.0;
        }
        self.bytes as f64 / (self.window as f64 * period_ns)
    }
}

/// The sampler: window bookkeeping plus the snapshot ring.
#[derive(Debug)]
pub struct Probe {
    interval: Cycle,
    capacity: usize,
    ring: VecDeque<Snapshot>,
    evicted: u64,
    next_at: Cycle,
    last_at: Cycle,
    prev_pch_bytes: Vec<u64>,
    prev_hits: u64,
    prev_classified: u64,
}

impl Probe {
    /// A probe starting its first window at `start` for `num_pch`
    /// channels.
    pub fn new(cfg: ProbeConfig, start: Cycle, num_pch: usize) -> Probe {
        assert!(cfg.interval >= 1, "probe interval must be ≥ 1 cycle");
        assert!(cfg.capacity >= 1, "probe ring needs at least one slot");
        Probe {
            interval: cfg.interval,
            capacity: cfg.capacity,
            ring: VecDeque::with_capacity(cfg.capacity.min(1 << 16)),
            evicted: 0,
            next_at: start + cfg.interval,
            last_at: start,
            prev_pch_bytes: vec![0; num_pch],
            prev_hits: 0,
            prev_classified: 0,
        }
    }

    /// The cycle at which the next sample is due.
    pub fn next_sample_at(&self) -> Cycle {
        self.next_at
    }

    /// The cycle of the most recent sample (the probe's start cycle when
    /// nothing has been sampled yet).
    pub fn last_sample_at(&self) -> Cycle {
        self.last_at
    }

    /// The sampling interval.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Takes a sample at `now` from current statistics and occupancy
    /// gauges. Counter deltas use saturating arithmetic so a statistics
    /// reset (end of warm-up) yields one empty-looking window instead of
    /// an underflow.
    pub fn sample(
        &mut self,
        now: Cycle,
        per_pch: &[MemStats],
        in_flight: u64,
        fabric_occupancy: u64,
        mc_queued: u64,
    ) {
        let mut per_pch_bytes = Vec::with_capacity(per_pch.len());
        let mut bytes = 0u64;
        let mut hits = 0u64;
        let mut classified = 0u64;
        for (i, st) in per_pch.iter().enumerate() {
            let total = st.total_bytes();
            let prev = self.prev_pch_bytes.get(i).copied().unwrap_or(0);
            let delta = total.saturating_sub(prev);
            if let Some(p) = self.prev_pch_bytes.get_mut(i) {
                *p = total;
            }
            per_pch_bytes.push(delta);
            bytes += delta;
            hits += st.page_hits;
            classified += st.page_hits + st.page_closed + st.page_misses;
        }
        let win_hits = hits.saturating_sub(self.prev_hits);
        let win_classified = classified.saturating_sub(self.prev_classified);
        self.prev_hits = hits;
        self.prev_classified = classified;
        let snap = Snapshot {
            at: now,
            window: now.saturating_sub(self.last_at),
            bytes,
            per_pch_bytes,
            in_flight,
            fabric_occupancy,
            mc_queued,
            row_hit_rate: (win_classified > 0).then(|| win_hits as f64 / win_classified as f64),
        };
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(snap);
        self.last_at = now;
        // Monotone even if sampling ran late (e.g. attached mid-run).
        self.next_at = now + self.interval;
    }

    /// Retained snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &Snapshot> {
        self.ring.iter()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no window has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Snapshots evicted from the ring (total sampled = `len + evicted`).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(bytes_read: u64, hits: u64, misses: u64) -> MemStats {
        MemStats { bytes_read, page_hits: hits, page_misses: misses, ..Default::default() }
    }

    #[test]
    fn windows_are_deltas_not_totals() {
        let mut p = Probe::new(ProbeConfig { interval: 100, capacity: 8 }, 0, 2);
        p.sample(100, &[mem(512, 1, 1), mem(0, 0, 0)], 3, 2, 1);
        p.sample(200, &[mem(1024, 3, 1), mem(256, 1, 0)], 0, 0, 0);
        let snaps: Vec<_> = p.snapshots().collect();
        assert_eq!(snaps[0].bytes, 512);
        assert_eq!(snaps[0].per_pch_bytes, vec![512, 0]);
        assert_eq!(snaps[0].row_hit_rate, Some(0.5));
        assert_eq!(snaps[1].bytes, 768);
        assert_eq!(snaps[1].per_pch_bytes, vec![512, 256]);
        // Window 2: 3 new classified accesses, all hits → 3/3.
        assert_eq!(snaps[1].row_hit_rate, Some(1.0));
        assert_eq!(snaps[1].window, 100);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut p = Probe::new(ProbeConfig { interval: 10, capacity: 2 }, 0, 1);
        for i in 1..=4u64 {
            p.sample(i * 10, &[mem(i * 100, 0, 0)], 0, 0, 0);
        }
        assert_eq!(p.len(), 2);
        assert_eq!(p.evicted(), 2);
        let first = p.snapshots().next().unwrap();
        assert_eq!(first.at, 30);
    }

    #[test]
    fn stats_reset_gives_empty_window_not_underflow() {
        let mut p = Probe::new(ProbeConfig { interval: 10, capacity: 8 }, 0, 1);
        p.sample(10, &[mem(1000, 5, 0)], 0, 0, 0);
        // Warm-up reset: counters go back to near zero.
        p.sample(20, &[mem(32, 1, 0)], 0, 0, 0);
        let last = p.snapshots().last().unwrap();
        assert_eq!(last.bytes, 0);
        assert_eq!(last.row_hit_rate, None);
        // The window after the reset is correct again.
        p.sample(30, &[mem(96, 2, 0)], 0, 0, 0);
        assert_eq!(p.snapshots().last().unwrap().bytes, 64);
    }

    #[test]
    fn gbps_uses_window_and_period() {
        let s = Snapshot {
            at: 100,
            window: 100,
            bytes: 3200,
            per_pch_bytes: vec![],
            in_flight: 0,
            fabric_occupancy: 0,
            mc_queued: 0,
            row_hit_rate: None,
        };
        // 3200 B over 100 cycles at 300 MHz (3.33 ns/cycle) = 9.6 GB/s.
        let g = s.gbps(1000.0 / 300.0);
        assert!((g - 9.6).abs() < 1e-9, "got {g}");
    }

    #[test]
    fn next_sample_monotone_after_late_sample() {
        let mut p = Probe::new(ProbeConfig { interval: 50, capacity: 8 }, 0, 1);
        assert_eq!(p.next_sample_at(), 50);
        p.sample(137, &[mem(0, 0, 0)], 0, 0, 0); // sampled late
        assert_eq!(p.next_sample_at(), 187);
    }
}
