//! Workspace-wide metrics registry with Prometheus text exposition.
//!
//! Every layer of the stack — the result cache, the batch planner, the
//! serve scheduler, the kernel phase profiler — publishes its telemetry
//! through this one registry so any two views of the same quantity are
//! reads of the *same atomic* and can never disagree. Three primitive
//! instruments:
//!
//! * [`Counter`] — a monotone `AtomicU64`.
//! * [`Gauge`] — a settable `AtomicI64` (depths, levels, 0/1 flags).
//! * [`Histo`] — a lock-free power-of-two-bucket histogram, the atomic
//!   twin of [`hbm_axi::instrument::Hist`] (same bucket rule, same
//!   percentile semantics); [`Histo::snapshot`] converts to a plain
//!   `Hist` so existing summary code applies unchanged.
//!
//! ## Cost contract
//!
//! The hot path is **lock-free**: recording is a handful of relaxed
//! atomic RMWs on a pre-registered handle; registration (the only
//! locking operation) happens once per series, at setup time. Nothing in
//! this module is called from the per-cycle simulation loop — kernel
//! telemetry is either derived from statistics the simulator already
//! keeps (recorded once per *measurement*, see `measure::measure`) or
//! produced by the separately-gated phase profiler (`crate::profile`).
//! When the registry is disabled ([`enabled`] is `false`, the default
//! unless `HBM_METRICS=1`), those per-measurement call sites skip
//! entirely, so a run with metrics off executes the exact same kernel
//! instructions as before this module existed. The telemetry ON≡OFF
//! byte-identity proptests (`tests/telemetry_equivalence.rs`) hold
//! either way because no instrument can feed back into the simulation.
//!
//! ## Exposition
//!
//! [`Registry::render`] produces Prometheus text exposition format
//! (version 0.0.4): `# HELP`/`# TYPE` headers, one sample line per
//! series, histograms as cumulative `_bucket{le="..."}` lines plus
//! `_sum`/`_count`. Families render in name order and series in label
//! order, so output is deterministic — pinned by the
//! `tests/metrics_golden.rs` golden file. The serve daemon exposes this
//! via the `metrics` wire verb and an optional standalone HTTP listener
//! (`repro serve --metrics-addr`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hbm_axi::instrument::{Hist, HIST_BUCKETS};

// ------------------------------------------------------------- global gate

static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn enabled_flag() -> &'static AtomicBool {
    ENABLED.get_or_init(|| {
        let on = std::env::var("HBM_METRICS").is_ok_and(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        });
        AtomicBool::new(on)
    })
}

/// Whether telemetry call sites should record. Defaults to off (so
/// library users pay nothing) unless `HBM_METRICS=1`; `repro --metrics`
/// and the serve daemon flip it on via [`set_enabled`].
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off process-wide. Instrument
/// *handles* are unaffected — only gated call sites check this.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

// ------------------------------------------------------------ instruments

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A settable level.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A lock-free power-of-two-bucket histogram: the atomic counterpart of
/// [`hbm_axi::instrument::Hist`], with identical bucketing (`record`
/// uses the same `floor(log2(max(v,1)))` rule) so a [`snapshot`] is a
/// faithful `Hist` and shares its percentile/mean semantics.
///
/// [`snapshot`]: Histo::snapshot
#[derive(Debug)]
pub struct Histo {
    n: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    zeros: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histo {
    fn default() -> Histo {
        Histo {
            n: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            zeros: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histo {
    /// Records one sample. Lock-free: five relaxed RMWs.
    #[inline]
    pub fn record(&self, v: u64) {
        self.n.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if v == 0 {
            self.zeros.fetch_add(1, Ordering::Relaxed);
        }
        let b = (63 - v.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }

    /// A plain-value copy, for summaries and rendering. Not a cross-field
    /// atomic snapshot — concurrent `record`s may straddle it — but every
    /// field is individually consistent and monotone.
    pub fn snapshot(&self) -> Hist {
        Hist {
            n: self.n.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            zeros: self.zeros.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

// --------------------------------------------------------------- registry

/// Metric kinds, for the `# TYPE` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One registered series: a shared instrument handle, or a collector
/// closure evaluated at render time (for values another subsystem
/// already maintains — e.g. the result cache's own counters — so the
/// exposition reads the source of truth instead of a second copy).
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histo(Arc<Histo>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

struct Family {
    help: &'static str,
    kind: Kind,
    /// Label-set → series, ordered for deterministic rendering.
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// The metric registry. One process-wide instance ([`Registry::global`])
/// backs the whole workspace; fresh instances exist for tests.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses
    /// [`global`](Registry::global)).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry. First use installs the built-in
    /// collector series (result cache, batch planner, kernel phases) so
    /// an exposition is complete even before any activity.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let reg = Registry::new();
            install_builtin(&reg);
            reg
        })
    }

    fn family(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        f: impl FnOnce(&mut Family),
    ) {
        let mut fams = self.families.lock().unwrap();
        let fam =
            fams.entry(name).or_insert_with(|| Family { help, kind, series: BTreeMap::new() });
        assert!(fam.kind == kind, "metric `{name}` registered twice with different kinds");
        f(fam);
    }

    /// Registers (or retrieves) the counter `name{labels}`. Idempotent:
    /// the same name and label set always returns the same handle.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let key = label_key(labels);
        let mut out = None;
        self.family(name, help, Kind::Counter, |fam| {
            let s = fam
                .series
                .entry(key)
                .or_insert_with(|| Series::Counter(Arc::new(Counter::default())));
            if let Series::Counter(c) = s {
                out = Some(c.clone());
            }
        });
        out.unwrap_or_else(|| panic!("metric `{name}` is not a counter"))
    }

    /// Registers a *fresh* counter under `name{labels}`, replacing any
    /// existing series. Used by per-instance owners (the serve
    /// scheduler): the newest instance's handles are what the exposition
    /// reads, so `stats` and `metrics` stay views of one atomic.
    pub fn counter_owned(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        let key = label_key(labels);
        let handle = c.clone();
        self.family(name, help, Kind::Counter, move |fam| {
            fam.series.insert(key, Series::Counter(handle));
        });
        c
    }

    /// Registers (or retrieves) the gauge `name{labels}`.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let key = label_key(labels);
        let mut out = None;
        self.family(name, help, Kind::Gauge, |fam| {
            let s =
                fam.series.entry(key).or_insert_with(|| Series::Gauge(Arc::new(Gauge::default())));
            if let Series::Gauge(g) = s {
                out = Some(g.clone());
            }
        });
        out.unwrap_or_else(|| panic!("metric `{name}` is not a gauge"))
    }

    /// Registers (or retrieves) the histogram `name{labels}`.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histo> {
        let key = label_key(labels);
        let mut out = None;
        self.family(name, help, Kind::Histogram, |fam| {
            let s =
                fam.series.entry(key).or_insert_with(|| Series::Histo(Arc::new(Histo::default())));
            if let Series::Histo(h) = s {
                out = Some(h.clone());
            }
        });
        out.unwrap_or_else(|| panic!("metric `{name}` is not a histogram"))
    }

    /// Registers a *fresh* histogram, replacing any existing series (see
    /// [`counter_owned`](Registry::counter_owned)).
    pub fn histogram_owned(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histo> {
        let h = Arc::new(Histo::default());
        let key = label_key(labels);
        let handle = h.clone();
        self.family(name, help, Kind::Histogram, move |fam| {
            fam.series.insert(key, Series::Histo(handle));
        });
        h
    }

    /// Registers a counter whose value is computed at render time,
    /// replacing any existing series under the same labels.
    pub fn counter_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        let key = label_key(labels);
        self.family(name, help, Kind::Counter, move |fam| {
            fam.series.insert(key, Series::CounterFn(Box::new(f)));
        });
    }

    /// Registers a gauge whose value is computed at render time,
    /// replacing any existing series under the same labels.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        let key = label_key(labels);
        self.family(name, help, Kind::Gauge, move |fam| {
            fam.series.insert(key, Series::GaugeFn(Box::new(f)));
        });
    }

    /// Renders the whole registry as Prometheus text exposition format.
    pub fn render(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(fam.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(fam.kind.as_str());
            out.push('\n');
            for (labels, series) in fam.series.iter() {
                match series {
                    Series::Counter(c) => sample(&mut out, name, "", labels, &[], c.get()),
                    Series::CounterFn(f) => sample(&mut out, name, "", labels, &[], f()),
                    Series::Gauge(g) => {
                        sample_i(&mut out, name, labels, g.get());
                    }
                    Series::GaugeFn(f) => {
                        sample_i(&mut out, name, labels, f());
                    }
                    Series::Histo(h) => render_hist(&mut out, name, labels, &h.snapshot()),
                }
            }
        }
        out
    }
}

/// Appends one `name_suffix{labels,extra} value` sample line.
fn sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: u64,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn sample_i(out: &mut String, name: &str, labels: &[(String, String)], value: i64) {
    if value >= 0 {
        sample(out, name, "", labels, &[], value as u64);
    } else {
        // Rare (gauges are depths); format negatives directly.
        out.push_str(name);
        if !labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(v);
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
}

/// Renders one histogram in Prometheus cumulative-bucket form. Bucket
/// `i` of the power-of-two layout holds values `< 2^(i+1)`, so its
/// inclusive upper edge is `2^(i+1) - 1`; buckets past the highest
/// non-empty one collapse into `+Inf`.
fn render_hist(out: &mut String, name: &str, labels: &[(String, String)], h: &Hist) {
    let top = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate().take(top) {
        cum += c;
        let edge = (1u128 << (i + 1)) - 1;
        sample(out, name, "_bucket", labels, &[("le", &edge.to_string())], cum);
    }
    sample(out, name, "_bucket", labels, &[("le", "+Inf")], h.n);
    sample(out, name, "_sum", labels, &[], h.sum);
    sample(out, name, "_count", labels, &[], h.n);
}

// ------------------------------------------------------------- built-ins

/// Installs the collector-backed series every process exposes: the
/// result cache (reading [`crate::cache::ResultCache::global`]'s own
/// atomics — the exposition and the `cache` verb can never disagree),
/// the batch planner's constructor counter, and the kernel phase
/// counters (zero until a profiled run publishes).
fn install_builtin(reg: &Registry) {
    reg.counter_fn(
        "hbm_cache_hits_total",
        "Result-cache lookups answered from memory",
        &[],
        || crate::cache::ResultCache::global().snapshot().hits,
    );
    reg.counter_fn(
        "hbm_cache_misses_total",
        "Result-cache lookups that led a computation",
        &[],
        || crate::cache::ResultCache::global().snapshot().misses,
    );
    reg.counter_fn(
        "hbm_cache_coalesced_total",
        "Result-cache lookups coalesced onto an in-flight computation",
        &[],
        || crate::cache::ResultCache::global().snapshot().coalesced,
    );
    reg.counter_fn("hbm_cache_inserts_total", "Result-cache entries inserted", &[], || {
        crate::cache::ResultCache::global().snapshot().inserts
    });
    reg.counter_fn(
        "hbm_cache_evictions_total",
        "Result-cache entries evicted by the LRU bound",
        &[],
        || crate::cache::ResultCache::global().snapshot().evictions,
    );
    reg.gauge_fn("hbm_cache_entries", "Live result-cache memory-tier entries", &[], || {
        crate::cache::ResultCache::global().snapshot().entries as i64
    });
    reg.gauge_fn("hbm_cache_enabled", "Whether the result cache is active (0/1)", &[], || {
        i64::from(crate::cache::ResultCache::global().is_enabled())
    });
    reg.counter_fn(
        "hbm_batch_batches_built_total",
        "Lockstep BatchedSystem constructions",
        &[],
        || crate::lockstep::batches_built() as u64,
    );
    crate::profile::install_phase_series(reg);
    crate::batch::install_planner_series(reg);
    crate::batch::install_adaptive_series(reg);
    crate::measure::install_run_series(reg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "help", &[("k", "a")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Idempotent registration returns the same handle.
        let c2 = reg.counter("t_total", "help", &[("k", "a")]);
        c2.inc();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("t_depth", "help", &[]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histo_matches_hist_semantics() {
        let reg = Registry::new();
        let h = reg.histogram("t_us", "help", &[]);
        let mut reference = Hist::default();
        for v in [0u64, 1, 2, 3, 100, 5_000, 1 << 40] {
            h.record(v);
            reference.record(v);
        }
        assert_eq!(h.snapshot(), reference);
        assert_eq!(h.snapshot().p99(), reference.p99());
    }

    #[test]
    fn render_is_deterministic_and_well_formed() {
        let reg = Registry::new();
        reg.counter("b_total", "second", &[]).add(2);
        reg.counter("a_total", "first", &[("x", "1")]).inc();
        reg.gauge("a_depth", "depth", &[]).set(3);
        reg.histogram("a_us", "hist", &[]).record(5);
        let one = reg.render();
        let two = reg.render();
        assert_eq!(one, two);
        // Families in name order; histogram has +Inf, sum, count.
        let a_depth = one.find("a_depth").unwrap();
        let b_total = one.find("b_total").unwrap();
        assert!(a_depth < b_total);
        assert!(one.contains("a_us_bucket{le=\"+Inf\"} 1"));
        assert!(one.contains("a_us_sum 5"));
        assert!(one.contains("a_us_count 1"));
        assert!(one.contains("a_total{x=\"1\"} 1"));
    }

    #[test]
    fn owned_registration_replaces() {
        let reg = Registry::new();
        let first = reg.counter_owned("o_total", "help", &[]);
        first.add(10);
        let second = reg.counter_owned("o_total", "help", &[]);
        second.add(1);
        assert!(reg.render().contains("o_total 1"));
    }

    #[test]
    fn collector_reads_at_render_time() {
        let reg = Registry::new();
        let v = Arc::new(AtomicU64::new(0));
        let v2 = v.clone();
        reg.counter_fn("c_total", "help", &[], move || v2.load(Ordering::Relaxed));
        assert!(reg.render().contains("c_total 0"));
        v.store(9, Ordering::Relaxed);
        assert!(reg.render().contains("c_total 9"));
    }
}
