//! The assembled HBM system and its cycle-driven simulation loop.

use hbm_axi::{ClockDomain, Completion, Cycle, MasterId, PortId, SharedTracer, Tracer};
use hbm_fabric::{
    DirectFabric, FabricConfig, FabricStats, FullCrossbarFabric, Interconnect, ShardLayout,
    SwitchShard, XilinxFabric,
};
use hbm_mao::{MaoConfig, MaoFabric};
use hbm_mem::{BankPool, BanksViewMut, HbmConfig, MemStats, MemoryController};
use hbm_traffic::{BmTrafficGen, GenStats, Workload};
use serde::{Deserialize, Serialize};

use crate::probe::{Probe, ProbeConfig};
use crate::profile;

/// Overridable parameters of the Xilinx switch fabric, for what-if
/// studies (e.g. the lateral-bus-count ablation of DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XilinxTweaks {
    /// Lateral buses per direction between adjacent switches (stock: 2).
    pub lateral_buses: usize,
    /// Lateral bandwidth in beats per accelerator cycle (stock: 1.0).
    pub lateral_rate: f64,
    /// Dead beats per arbitration grant switch (stock: 2.0).
    pub dead_beats: f64,
}

impl Default for XilinxTweaks {
    fn default() -> XilinxTweaks {
        XilinxTweaks { lateral_buses: 2, lateral_rate: 1.0, dead_beats: 2.0 }
    }
}

/// Which interconnect connects masters to pseudo-channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FabricKind {
    /// The stock Xilinx segmented switch network.
    Xilinx,
    /// The Xilinx network with overridden fabric parameters.
    XilinxTweaked(XilinxTweaks),
    /// The Memory Access Optimizer.
    Mao(MaoConfig),
    /// A hypothetical monolithic 32×32 crossbar: no lateral buses, but
    /// the contiguous address map and AXI ID stalls of the stock fabric
    /// (isolates the topology adaption from the MAO's other two).
    FullCrossbar,
    /// Direct 1:1 port mapping (single-channel only).
    Direct,
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Accelerator clock.
    pub clock: ClockDomain,
    /// HBM geometry and timing.
    pub hbm: HbmConfig,
    /// Interconnect choice.
    pub fabric: FabricKind,
}

impl SystemConfig {
    /// The paper's measurement platform: XCVU37P HBM behind the stock
    /// Xilinx switch fabric at 300 MHz.
    pub fn xilinx() -> SystemConfig {
        SystemConfig {
            clock: ClockDomain::ACC_300,
            hbm: HbmConfig::default(),
            fabric: FabricKind::Xilinx,
        }
    }

    /// The same platform with the MAO ("version four" of Table III)
    /// inserted in place of the switch fabric's lateral routing.
    pub fn mao() -> SystemConfig {
        SystemConfig {
            clock: ClockDomain::ACC_300,
            hbm: HbmConfig::default(),
            fabric: FabricKind::Mao(MaoConfig::default()),
        }
    }

    /// A direct 1:1 system (ideal single-channel baseline).
    pub fn direct() -> SystemConfig {
        SystemConfig {
            clock: ClockDomain::ACC_300,
            hbm: HbmConfig::default(),
            fabric: FabricKind::Direct,
        }
    }

    /// Same configuration at a different accelerator clock.
    pub fn at_clock(mut self, clock: ClockDomain) -> SystemConfig {
        self.clock = clock;
        self
    }

    /// The stock switch-fabric parameters for this platform, shared by
    /// the `Xilinx` and `XilinxTweaked` arms (the tweaks overlay it).
    fn xilinx_fabric_config(&self) -> FabricConfig {
        let mut fc = FabricConfig::for_clock(self.clock);
        fc.port_capacity = self.hbm.pch_capacity;
        fc.num_switches = self.hbm.num_pch / fc.ports_per_switch;
        fc
    }

    /// Concrete Xilinx fabric for this configuration. Panics unless
    /// [`fabric`](SystemConfig::fabric) is a Xilinx variant. The batched
    /// engine (`lockstep`) builds lanes from these monomorphic
    /// constructors so its cycle kernel carries no virtual dispatch;
    /// [`build_fabric`](SystemConfig::build_fabric) delegates here so
    /// both paths assemble byte-identical fabrics.
    pub(crate) fn build_xilinx(&self) -> XilinxFabric {
        let mut fc = self.xilinx_fabric_config();
        match &self.fabric {
            FabricKind::Xilinx => {}
            FabricKind::XilinxTweaked(t) => {
                fc.lateral_buses = t.lateral_buses;
                fc.lateral_rate = t.lateral_rate;
                fc.dead_beats = t.dead_beats;
            }
            other => panic!("not a Xilinx fabric configuration: {other:?}"),
        }
        XilinxFabric::new(fc)
    }

    /// Concrete MAO fabric for this configuration (panics otherwise).
    pub(crate) fn build_mao(&self) -> MaoFabric {
        let FabricKind::Mao(mc) = &self.fabric else {
            panic!("not a MAO fabric configuration: {:?}", self.fabric)
        };
        let mut mc = *mc;
        mc.num_ports = self.hbm.num_pch;
        mc.num_masters = self.hbm.num_pch;
        mc.port_capacity = self.hbm.pch_capacity;
        MaoFabric::new(mc)
    }

    /// Concrete monolithic-crossbar fabric for this configuration.
    pub(crate) fn build_fullxbar(&self) -> FullCrossbarFabric {
        FullCrossbarFabric::new(self.hbm.num_pch, self.hbm.pch_capacity, 6, 8)
    }

    /// Concrete direct 1:1 fabric for this configuration.
    pub(crate) fn build_direct(&self) -> DirectFabric {
        DirectFabric::new(self.hbm.num_pch, self.hbm.pch_capacity, 4, 8)
    }

    fn build_fabric(&self) -> Box<dyn Interconnect> {
        match &self.fabric {
            FabricKind::Xilinx | FabricKind::XilinxTweaked(_) => Box::new(self.build_xilinx()),
            FabricKind::Mao(_) => Box::new(self.build_mao()),
            FabricKind::FullCrossbar => Box::new(self.build_fullxbar()),
            FabricKind::Direct => Box::new(self.build_direct()),
        }
    }
}

/// A producer/consumer of memory transactions attached to one master
/// port — either a synthetic [`BmTrafficGen`] or an accelerator engine
/// (see the `hbm-accel` crate).
///
/// Contract per cycle: the system calls [`poll`](TrafficSource::poll)
/// once; if the returned transaction is accepted by the interconnect it
/// calls [`accepted`](TrafficSource::accepted), otherwise the source
/// must return the *same* transaction on the next poll (head-of-line
/// retry). Delivered completions arrive via
/// [`completed`](TrafficSource::completed).
///
/// Sources must be [`Send`]: under [`RunPolicy::Parallel`] each
/// execution domain — including its traffic sources — may be advanced
/// on a worker thread.
pub trait TrafficSource: Send {
    /// The head-of-line transaction to offer this cycle, if any.
    fn poll(&mut self, now: Cycle) -> Option<hbm_axi::Transaction>;

    /// The pending transaction was accepted by the interconnect.
    fn accepted(&mut self);

    /// A completion for this source was delivered. Implementations must
    /// panic on AXI ordering violations (they indicate simulator bugs).
    fn completed(&mut self, now: Cycle, txn: &hbm_axi::Transaction);

    /// Traffic statistics.
    fn stats(&self) -> &GenStats;

    /// Clears statistics (end of warm-up).
    fn reset_stats(&mut self);

    /// `true` when the source has nothing pending and nothing in flight.
    fn drained(&self) -> bool;

    /// A lower bound on the first cycle ≥ `now` at which
    /// [`poll`](TrafficSource::poll) could return a transaction, assuming
    /// no completion is delivered in the meantime. `None` means the
    /// source only wakes on a completion (or is done for good).
    ///
    /// The contract is one-sided: reporting earlier than the true next
    /// issue merely costs a no-op step, reporting later would skip real
    /// work. The default is the maximally conservative `Some(now)`;
    /// sources whose idle `poll` is side-effect free override it to
    /// enable the event-horizon fast-forward of [`HbmSystem::run`] (see
    /// DESIGN.md §3).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Transactions issued but not yet completed, as seen by this source.
    /// Purely observational (feeds the time-series [`Probe`]); the default
    /// suits sources that do not track it.
    fn in_flight(&self) -> usize {
        0
    }

    /// `true` when every transaction this source will *ever* issue
    /// targets the pseudo-channel port with the source's own master
    /// index. Under such traffic no flit can cross a lateral bus, so a
    /// parallel conductor may sprint execution domains all the way to
    /// the deadline between barriers instead of re-synchronising every
    /// `sync_lag` cycles. The hint must be conservative: `false` is
    /// always safe, while a wrong `true` breaks cycle accuracy. The
    /// default is therefore `false`.
    fn port_affine(&self) -> bool {
        false
    }
}

impl TrafficSource for BmTrafficGen {
    fn poll(&mut self, now: Cycle) -> Option<hbm_axi::Transaction> {
        BmTrafficGen::poll(self, now)
    }

    fn accepted(&mut self) {
        BmTrafficGen::accepted(self)
    }

    fn completed(&mut self, now: Cycle, txn: &hbm_axi::Transaction) {
        BmTrafficGen::completed(self, now, txn).expect("AXI ordering violated — simulator bug")
    }

    fn stats(&self) -> &GenStats {
        BmTrafficGen::stats(self)
    }

    fn reset_stats(&mut self) {
        BmTrafficGen::reset_stats(self)
    }

    fn drained(&self) -> bool {
        BmTrafficGen::drained(self)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        BmTrafficGen::next_event(self, now)
    }

    fn in_flight(&self) -> usize {
        BmTrafficGen::in_flight(self)
    }

    fn port_affine(&self) -> bool {
        BmTrafficGen::port_affine(self)
    }
}

/// How [`HbmSystem::run`] and [`HbmSystem::run_until_drained`] execute
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunPolicy {
    /// Single-threaded lock-step stepping — the reference semantics.
    #[default]
    Sequential,
    /// Advance per-switch execution domains concurrently on up to
    /// `jobs` OS threads between lateral-synchronisation barriers.
    /// Bit-identical to [`Sequential`](RunPolicy::Sequential) by
    /// construction (DESIGN.md §3.3; enforced by the
    /// `parallel_equivalence` property tests). Falls back to the
    /// sequential path on fabrics without a shard decomposition.
    Parallel {
        /// Worker-thread budget; clamped to at least 1. Windows too
        /// narrow to amortise a thread spawn are advanced inline
        /// regardless.
        jobs: usize,
    },
}

/// Amortizes [`HbmSystem::next_event`] over saturated stretches.
///
/// Consulting the horizon costs a scan of every component, which is
/// wasted work while the system is busy every cycle. After each step the
/// horizon *confirmed*, the pacer grants an exponentially growing number
/// of "blind" steps (capped) before the next consultation. Blind steps
/// are ordinary [`HbmSystem::step`] calls — exactly what naive stepping
/// would do — so the heuristic cannot affect simulated behaviour; at
/// worst it executes up to [`Pacer::MAX_CREDIT`] no-op cycles of an idle
/// gap before the next horizon check skips the rest.
#[derive(Default)]
pub(crate) struct Pacer {
    credit: u32,
    burst: u32,
}

impl Pacer {
    const MAX_CREDIT: u32 = 64;

    /// Consumes one blind-step credit if available.
    pub(crate) fn take_credit(&mut self) -> bool {
        if self.credit > 0 {
            self.credit -= 1;
            true
        } else {
            false
        }
    }

    /// The horizon confirmed an immediate event: grow the blind burst.
    pub(crate) fn stepped(&mut self) {
        self.burst = (self.burst * 2).clamp(1, Self::MAX_CREDIT);
        self.credit = self.burst;
    }

    /// The horizon skipped ahead: traffic is sparse, re-check every step.
    pub(crate) fn skipped(&mut self) {
        self.burst = 0;
        self.credit = 0;
    }
}

/// The simulated system: traffic sources, interconnect, memory
/// controllers.
pub struct HbmSystem {
    cfg: SystemConfig,
    gens: Vec<Box<dyn TrafficSource>>,
    fabric: Box<dyn Interconnect>,
    mcs: Vec<MemoryController>,
    /// Bank row state for every pseudo-channel, structure-of-arrays (unit
    /// `p` belongs to controller `p`). Owned here rather than inside the
    /// controllers so the parallel conductor can lend each shard its
    /// contiguous slice of units.
    banks: BankPool,
    /// Completions produced by a controller that could not yet enter the
    /// return network (per port).
    stuck: Vec<Option<Completion>>,
    now: Cycle,
    /// Lifecycle tracer, when tracing is enabled (see
    /// [`enable_tracing`](HbmSystem::enable_tracing)). `None` keeps every
    /// stamp site a single branch — the hot loop is unchanged.
    tracer: Option<SharedTracer>,
    /// Windowed time-series sampler, when attached.
    probe: Option<Probe>,
    /// Execution policy for [`run`](HbmSystem::run) and
    /// [`run_until_drained`](HbmSystem::run_until_drained).
    policy: RunPolicy,
}

impl HbmSystem {
    /// Builds a system in which every master runs `workload`, optionally
    /// bounded to `max_txns` transactions per master.
    pub fn new(cfg: &SystemConfig, workload: Workload, max_txns: Option<u64>) -> HbmSystem {
        let n = cfg.hbm.num_pch;
        let sources = (0..n)
            .map(|m| {
                Box::new(BmTrafficGen::new(
                    MasterId(m as u16),
                    n,
                    cfg.hbm.pch_capacity,
                    workload,
                    max_txns,
                )) as Box<dyn TrafficSource>
            })
            .collect();
        HbmSystem::with_sources(cfg, sources)
    }

    /// Builds a heterogeneous system: one workload per master (the
    /// paper's motivation for global addressing is exactly such systems,
    /// where "data can often not be partitioned in a way that the memory
    /// access from all \[cores\] is optimal", §V).
    pub fn with_workloads(cfg: &SystemConfig, workloads: &[Workload]) -> HbmSystem {
        let n = cfg.hbm.num_pch;
        assert_eq!(workloads.len(), n, "need exactly one workload per master");
        let sources = workloads
            .iter()
            .enumerate()
            .map(|(m, wl)| {
                Box::new(BmTrafficGen::new(MasterId(m as u16), n, cfg.hbm.pch_capacity, *wl, None))
                    as Box<dyn TrafficSource>
            })
            .collect();
        HbmSystem::with_sources(cfg, sources)
    }

    /// Builds a system driven by arbitrary traffic sources, one per
    /// master port (e.g. accelerator engines).
    pub fn with_sources(cfg: &SystemConfig, sources: Vec<Box<dyn TrafficSource>>) -> HbmSystem {
        cfg.hbm.validate().expect("invalid HBM configuration");
        let n = cfg.hbm.num_pch;
        assert_eq!(sources.len(), n, "need exactly one traffic source per master port");
        let fabric = cfg.build_fabric();
        let mcs = (0..n)
            .map(|p| MemoryController::new(&cfg.hbm, cfg.clock, cfg.hbm.refresh_phase(p)))
            .collect();
        HbmSystem {
            stuck: vec![None; n],
            gens: sources,
            fabric,
            mcs,
            banks: BankPool::new(n, cfg.hbm.banks_per_pch),
            now: 0,
            cfg: cfg.clone(),
            tracer: None,
            probe: None,
            policy: RunPolicy::Sequential,
        }
    }

    /// Selects the execution policy for subsequent runs. Changing the
    /// policy mid-simulation is safe: both paths produce bit-identical
    /// state at every cycle boundary.
    pub fn set_run_policy(&mut self, policy: RunPolicy) {
        self.policy = policy;
    }

    /// The active execution policy.
    pub fn run_policy(&self) -> RunPolicy {
        self.policy
    }

    /// The worker count when the active policy can actually conduct
    /// this system's fabric in parallel (`None` → sequential path).
    fn conducted_jobs(&self) -> Option<usize> {
        match self.policy {
            RunPolicy::Parallel { jobs } if self.fabric.shard_layout().is_some() => {
                Some(jobs.max(1))
            }
            _ => None,
        }
    }

    /// The configured accelerator clock.
    pub fn clock(&self) -> ClockDomain {
        self.cfg.clock
    }

    /// The full system configuration this instance was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Turns on per-transaction lifecycle tracing, keeping at most
    /// `record_cap` completed records. The tracer is attached to the
    /// interconnect and every memory controller; the returned handle can
    /// be inspected at any time (e.g. by `hbm_core::export`). Tracing is
    /// observation-only: a traced run is bit-identical to an untraced one
    /// (enforced by the `fastpath_equivalence` property tests).
    ///
    /// On a sharded fabric the tracer is partitioned per execution
    /// domain (`record_cap` completed records per partition), so
    /// concurrent domains never contend on one lock;
    /// [`SharedTracer::snapshot`] merges partitions back into the
    /// monolithic delivery order.
    pub fn enable_tracing(&mut self, record_cap: usize) -> SharedTracer {
        let tracer = match self.fabric.shard_layout() {
            Some(l) => Tracer::sharded(record_cap, l.shards, l.masters_per_shard),
            None => Tracer::shared(record_cap),
        };
        self.fabric.attach_tracer(tracer.clone());
        for (p, mc) in self.mcs.iter_mut().enumerate() {
            mc.attach_tracer(p as u16, tracer.clone());
        }
        self.tracer = Some(tracer.clone());
        tracer
    }

    /// The tracer handle, when tracing is enabled.
    pub fn tracer(&self) -> Option<&SharedTracer> {
        self.tracer.as_ref()
    }

    /// Attaches a windowed time-series probe. [`run`](HbmSystem::run) and
    /// [`run_until_drained`](HbmSystem::run_until_drained) will sample it
    /// every `cfg.interval` cycles, starting from the current cycle.
    pub fn attach_probe(&mut self, cfg: ProbeConfig) {
        self.probe = Some(Probe::new(cfg, self.now, self.cfg.hbm.num_pch));
    }

    /// The attached probe, when any.
    pub fn probe(&self) -> Option<&Probe> {
        self.probe.as_ref()
    }

    /// Takes one probe sample at the current cycle. Gathers the gauges
    /// first (immutable borrows), then feeds them to the sampler.
    fn sample_probe(&mut self) {
        if self.probe.is_none() {
            return;
        }
        let in_flight: u64 = self.gens.iter().map(|g| g.in_flight() as u64).sum();
        let fabric_occupancy = self.fabric.occupancy() as u64;
        let mc_queued: u64 = self.mcs.iter().map(|m| m.queue_len() as u64).sum();
        let per_pch: Vec<MemStats> = self.mcs.iter().map(|m| *m.stats()).collect();
        if let Some(p) = self.probe.as_mut() {
            p.sample(self.now, &per_pch, in_flight, fabric_occupancy, mc_queued);
        }
    }

    /// Closes the probe's last (possibly partial) window at the end of a
    /// run, unless a sample was already taken at this exact cycle.
    fn sample_probe_final(&mut self) {
        match &self.probe {
            Some(p) if p.last_sample_at() != self.now => self.sample_probe(),
            _ => {}
        }
    }

    /// The current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the system by one cycle.
    pub fn step(&mut self) {
        self.step_prof(profile::active());
    }

    /// [`step`](Self::step) with the phase-profiler activity bit hoisted
    /// by the caller (the span loops read it once, not per cycle). When
    /// `prof` is false every stamp is a never-taken branch on a register
    /// bool — observation only, the simulated schedule is untouched.
    fn step_prof(&mut self, prof: bool) {
        let now = self.now;
        // 1. Masters offer their head-of-line transaction.
        for gen in &mut self.gens {
            if let Some(txn) = gen.poll(now) {
                if self.fabric.offer_request(now, txn).is_ok() {
                    gen.accepted();
                }
            }
        }
        if prof {
            profile::lap(profile::Phase::GensTick);
        }
        // 2. The interconnect moves flits.
        self.fabric.tick(now);
        if prof {
            profile::lap(profile::Phase::FabricTick);
        }
        // 3. Memory side: deliver requests (one per port per cycle, as an
        //    AXI handshake would) and return completions.
        for (p, mc) in self.mcs.iter_mut().enumerate() {
            let port = PortId(p as u16);
            if let Some(head) = self.fabric.peek_request(now, port) {
                if mc.can_accept(head.dir) {
                    let txn = self.fabric.pop_request(now, port).expect("peeked head");
                    mc.accept(now, txn);
                }
            }
            if prof {
                profile::lap(profile::Phase::QueueOps);
            }
            mc.tick(now, &mut self.banks.unit_mut(p));
            if prof {
                profile::lap(profile::Phase::McTick);
            }
            if let Some(c) = self.stuck[p].take() {
                if let Err(c) = self.fabric.offer_completion(now, port, c) {
                    self.stuck[p] = Some(c);
                }
            }
            if self.stuck[p].is_none() {
                if let Some(c) = mc.pop_completion(now) {
                    if let Err(c) = self.fabric.offer_completion(now, port, c) {
                        self.stuck[p] = Some(c);
                    }
                }
            }
        }
        // 4. Masters drain completions.
        for (m, gen) in self.gens.iter_mut().enumerate() {
            while let Some(c) = self.fabric.pop_completion(now, MasterId(m as u16)) {
                if let Some(tr) = &self.tracer {
                    tr.delivered(now, &c.txn);
                }
                gen.completed(now, &c.txn);
            }
        }
        if prof {
            profile::lap(profile::Phase::QueueOps);
        }
        self.now += 1;
    }

    /// A lower bound on the first cycle ≥ `now` at which
    /// [`step`](Self::step) would do observable work: the minimum of
    /// every component's own horizon
    /// (sources, fabric, controllers, plus any completion stuck between
    /// a controller and the return network). `None` means the system is
    /// quiescent forever — nothing will happen without external changes.
    ///
    /// Cycles strictly before the returned bound are provably no-op
    /// steps: every `poll` early-out is side-effect free, fabric ticks
    /// only mutate on grants (which need a ready queue head), and the
    /// controllers' idle paths mutate nothing. [`run`](Self::run) and
    /// [`run_until_drained`](Self::run_until_drained) therefore jump
    /// `now` straight to the bound
    /// without stepping; statistics are bit-identical to naive stepping
    /// (asserted by the `fastpath_equivalence` property test and
    /// documented in DESIGN.md §3).
    pub fn next_event(&self) -> Option<Cycle> {
        let now = self.now;
        if self.stuck.iter().any(|s| s.is_some()) {
            return Some(now); // retried against the fabric every cycle
        }
        let mut best: Option<Cycle> = None;
        let merge = |t: Option<Cycle>, best: &mut Option<Cycle>| -> bool {
            match t {
                Some(t) if t <= now => true, // immediate: caller returns Some(now)
                Some(t) => {
                    if best.is_none_or(|b| t < b) {
                        *best = Some(t);
                    }
                    false
                }
                None => false,
            }
        };
        for g in &self.gens {
            if merge(g.next_event(now), &mut best) {
                return Some(now);
            }
        }
        if merge(self.fabric.next_event(now), &mut best) {
            return Some(now);
        }
        for mc in &self.mcs {
            if merge(mc.next_event(now), &mut best) {
                return Some(now);
            }
        }
        best
    }

    /// Runs for `cycles` cycles, fast-forwarding over provably idle gaps.
    /// With a probe attached, the span is split at sampling boundaries;
    /// the stepped cycles (and hence all statistics) are identical either
    /// way, because `run_span(a); run_span(b)` ≡ `run_span(a + b)` — the
    /// fast-forward clamps to the deadline and re-derives the same
    /// horizon on re-entry.
    pub fn run(&mut self, cycles: Cycle) {
        if let Some(jobs) = self.conducted_jobs() {
            self.conduct(cycles, jobs, false);
            return;
        }
        if self.probe.is_none() {
            return self.run_span(cycles);
        }
        let deadline = self.now.saturating_add(cycles);
        while self.now < deadline {
            let next = self.probe.as_ref().expect("probe attached").next_sample_at();
            if next <= self.now {
                self.sample_probe();
                continue;
            }
            self.run_span(next.min(deadline) - self.now);
            if self.now >= next {
                self.sample_probe();
            }
        }
        self.sample_probe_final();
    }

    /// The un-probed span loop behind [`run`](HbmSystem::run).
    fn run_span(&mut self, cycles: Cycle) {
        let prof = profile::active();
        let deadline = self.now.saturating_add(cycles);
        let mut pacer = Pacer::default();
        while self.now < deadline {
            if pacer.take_credit() {
                self.step_prof(prof);
                continue;
            }
            let ev = self.next_event();
            if prof {
                profile::lap(profile::Phase::HorizonCompute);
            }
            match ev {
                Some(t) if t <= self.now => {
                    self.step_prof(prof);
                    pacer.stepped();
                }
                Some(t) => {
                    self.now = t.min(deadline);
                    pacer.skipped();
                }
                None => {
                    self.now = deadline;
                    pacer.skipped();
                }
            }
        }
    }

    /// Runs until every generator, the fabric, and every controller are
    /// drained, or until `max_cycles` more cycles have elapsed. Returns
    /// `true` on a clean drain (in particular: immediately, without
    /// stepping, when the system is already drained — even with
    /// `max_cycles == 0`).
    ///
    /// With a probe attached the span is split at sampling boundaries,
    /// exactly like [`run`](HbmSystem::run).
    pub fn run_until_drained(&mut self, max_cycles: Cycle) -> bool {
        if let Some(jobs) = self.conducted_jobs() {
            return self.conduct(max_cycles, jobs, true);
        }
        if self.probe.is_none() {
            return self.drain_span(max_cycles);
        }
        let deadline = self.now.saturating_add(max_cycles);
        let drained = loop {
            let next = self.probe.as_ref().expect("probe attached").next_sample_at();
            if next <= self.now {
                self.sample_probe();
                continue;
            }
            if self.drain_span(next.min(deadline) - self.now) {
                break true;
            }
            if self.now >= next {
                self.sample_probe();
            }
            if self.now >= deadline {
                break false;
            }
        };
        self.sample_probe_final();
        drained
    }

    /// The un-probed drain loop behind
    /// [`run_until_drained`](HbmSystem::run_until_drained).
    fn drain_span(&mut self, max_cycles: Cycle) -> bool {
        let prof = profile::active();
        let deadline = self.now.saturating_add(max_cycles);
        let mut pacer = Pacer::default();
        loop {
            if self.drained() {
                return true;
            }
            if self.now >= deadline {
                return false;
            }
            if pacer.take_credit() {
                self.step_prof(prof);
                continue;
            }
            let ev = self.next_event();
            if prof {
                profile::lap(profile::Phase::HorizonCompute);
            }
            match ev {
                Some(t) if t <= self.now => {
                    self.step_prof(prof);
                    pacer.stepped();
                }
                Some(t) => {
                    self.now = t.min(deadline);
                    pacer.skipped();
                }
                None => {
                    self.now = deadline;
                    pacer.skipped();
                }
            }
        }
    }

    /// The sharded execution path behind [`run`](HbmSystem::run) and
    /// [`run_until_drained`](HbmSystem::run_until_drained) under
    /// [`RunPolicy::Parallel`].
    ///
    /// Work proceeds in *supersteps*: each iteration picks a barrier
    /// cycle `W` no farther than the fabric's lateral-synchronisation
    /// lag past the earliest component horizon (clamped to the deadline
    /// and the next probe boundary), advances every execution domain
    /// independently over `[now, W)`, reconciles the lateral boundaries,
    /// and jumps `now` to `W`. The lateral-port contract — data *and*
    /// credits delayed by at least `sync_lag` cycles — guarantees no
    /// domain can observe another's in-window state changes before `W`,
    /// so any interleaving (including concurrent execution) replays the
    /// sequential schedule bit-for-bit (DESIGN.md §3.3).
    ///
    /// When every source is port-affine and each shard owns its own
    /// masters' ports end-to-end, no flit can ever cross a lateral bus;
    /// the horizon clamp is then dropped entirely and domains sprint
    /// straight to the deadline on independent threads.
    fn conduct(&mut self, budget: Cycle, jobs: usize, drain: bool) -> bool {
        let layout = self.fabric.shard_layout().expect("conduct requires a sharded fabric");
        // Anti-hang guard only: `validate()` rejects hop latencies < 1.
        let lag = layout.sync_lag.max(1);
        let deadline = self.now.saturating_add(budget);
        let lateral_free = layout.masters_per_shard == layout.ports_per_shard
            && self.gens.iter().all(|g| g.port_affine());
        let mut last_step: Vec<Option<Cycle>> = vec![None; layout.shards];
        loop {
            if drain && self.drained() {
                // The sequential drain loop stops one cycle past its
                // last executed step; windows may have carried `now`
                // beyond that, so roll back to the equivalent cycle.
                if let Some(t) = last_step.iter().filter_map(|s| *s).max() {
                    self.now = t + 1;
                }
                self.sample_probe_final();
                return true;
            }
            if self.now >= deadline {
                self.sample_probe_final();
                return !drain;
            }
            let mut cap = deadline;
            if let Some(p) = &self.probe {
                let next = p.next_sample_at();
                if next <= self.now {
                    self.sample_probe();
                    continue;
                }
                cap = cap.min(next);
            }
            let barrier = match self.next_event() {
                None => cap,
                Some(_) if lateral_free => cap,
                Some(t) => t.max(self.now).saturating_add(lag).min(cap),
            };
            self.advance_domains(barrier, jobs, &mut last_step, &layout);
            self.fabric
                .as_sharded_mut()
                .expect("shard_layout() promised a sharded view")
                .reconcile();
            self.now = barrier;
        }
    }

    /// Advances every execution domain independently over
    /// `[self.now, to)`, on up to `jobs` worker threads when the window
    /// is wide enough to amortise the spawns.
    fn advance_domains(
        &mut self,
        to: Cycle,
        jobs: usize,
        last_step: &mut [Option<Cycle>],
        layout: &ShardLayout,
    ) {
        /// Below this window width a scoped-thread spawn costs more
        /// than it buys; domains are advanced inline instead.
        const SPAWN_THRESHOLD: Cycle = 64;
        let from = self.now;
        let tracer = self.tracer.as_ref();
        let shards = self
            .fabric
            .as_sharded_mut()
            .expect("shard_layout() promised a sharded view")
            .shards_mut();
        let mut domains: Vec<Domain<'_>> = shards
            .iter_mut()
            .zip(self.gens.chunks_mut(layout.masters_per_shard))
            .zip(self.mcs.chunks_mut(layout.ports_per_shard))
            .zip(self.banks.view_mut().chunks_mut(layout.ports_per_shard))
            .zip(self.stuck.chunks_mut(layout.ports_per_shard))
            .zip(last_step.iter_mut())
            .map(|(((((shard, gens), mcs), banks), stuck), last)| Domain {
                shard,
                gens,
                mcs,
                banks,
                stuck,
                tracer,
                last,
            })
            .collect();
        if jobs > 1 && domains.len() > 1 && to - from >= SPAWN_THRESHOLD {
            let per = domains.len().div_ceil(jobs);
            std::thread::scope(|scope| {
                for chunk in domains.chunks_mut(per) {
                    scope.spawn(move || {
                        for d in chunk {
                            d.advance(from, to);
                        }
                    });
                }
            });
        } else {
            for d in &mut domains {
                d.advance(from, to);
            }
        }
    }

    /// `true` when no transaction is anywhere in the system.
    pub fn drained(&self) -> bool {
        self.gens.iter().all(|g| g.drained())
            && self.fabric.drained()
            && self.mcs.iter().all(|m| m.drained())
            && self.stuck.iter().all(|s| s.is_none())
    }

    /// Clears all statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        for g in &mut self.gens {
            g.reset_stats();
        }
        for m in &mut self.mcs {
            m.reset_stats();
        }
        self.fabric.reset_stats();
    }

    /// Per-master generator statistics.
    pub fn gen_stats(&self) -> Vec<GenStats> {
        self.gens.iter().map(|g| *g.stats()).collect()
    }

    /// Aggregate memory statistics over all pseudo-channels.
    pub fn mem_stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for m in &self.mcs {
            total.merge(m.stats());
        }
        total
    }

    /// Per-pseudo-channel memory statistics.
    pub fn mem_stats_per_pch(&self) -> Vec<MemStats> {
        self.mcs.iter().map(|m| *m.stats()).collect()
    }

    /// Interconnect statistics.
    pub fn fabric_stats(&self) -> FabricStats {
        self.fabric.stats()
    }

    /// Visits the high-water mark of every queue in the system — the
    /// fabric's internal queues (labeled by family) plus each memory
    /// controller's request/response/ack queues. Marks are maintained at
    /// push time by the queues themselves; sampling happens once per
    /// measurement, never inside the cycle loop.
    pub fn for_each_queue_hwm(&self, visit: &mut dyn FnMut(&'static str, usize)) {
        self.fabric.for_each_queue_hwm(visit);
        for mc in &self.mcs {
            let [req, resp, ack] = mc.queue_high_waters();
            visit("mc_req", req);
            visit("mc_resp", resp);
            visit("mc_ack", ack);
        }
    }
}

/// One per-switch execution domain: a [`SwitchShard`] plus the traffic
/// sources, memory controllers, and stuck-completion slots of the
/// masters and ports it owns. Between barriers the conductor advances
/// each domain independently — possibly on its own thread — replaying
/// the exact four-phase cycle schedule of [`HbmSystem::step`] on the
/// domain's slice of the system. Lateral traffic lands in the shard's
/// cycle-stamped outboxes; nothing outside the domain is touched until
/// [`hbm_fabric::ShardedFabric::reconcile`] runs at the barrier.
struct Domain<'a> {
    shard: &'a mut SwitchShard,
    gens: &'a mut [Box<dyn TrafficSource>],
    mcs: &'a mut [MemoryController],
    /// The bank-pool units of this domain's ports (unit `lp` belongs to
    /// `mcs[lp]`). Mutable slices only, so the domain stays `Send`.
    banks: BanksViewMut<'a>,
    stuck: &'a mut [Option<Completion>],
    tracer: Option<&'a SharedTracer>,
    /// The cycle of this domain's most recent executed step across the
    /// whole conducted run (drain-mode end-cycle reconstruction).
    last: &'a mut Option<Cycle>,
}

impl Domain<'_> {
    /// Mirrors [`HbmSystem::drained`] on the domain's slice (the shard
    /// counts its receiver rings *and* unreconciled outboxes).
    fn drained(&self) -> bool {
        self.gens.iter().all(|g| g.drained())
            && self.shard.drained()
            && self.mcs.iter().all(|m| m.drained())
            && self.stuck.iter().all(|s| s.is_none())
    }

    /// Mirrors [`HbmSystem::next_event`] on the domain's slice.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.stuck.iter().any(|s| s.is_some()) {
            return Some(now); // retried against the shard every cycle
        }
        let mut best: Option<Cycle> = None;
        let mut merge = |t: Option<Cycle>| -> bool {
            match t {
                Some(t) if t <= now => true,
                Some(t) => {
                    if best.is_none_or(|b| t < b) {
                        best = Some(t);
                    }
                    false
                }
                None => false,
            }
        };
        for g in self.gens.iter() {
            if merge(g.next_event(now)) {
                return Some(now);
            }
        }
        if merge(self.shard.next_event(now)) {
            return Some(now);
        }
        for mc in self.mcs.iter() {
            if merge(mc.next_event(now)) {
                return Some(now);
            }
        }
        best
    }

    /// Mirrors the four phases of [`HbmSystem::step`] on the domain's
    /// slice, with shard-local master/port indices.
    fn step(&mut self, now: Cycle) {
        for gen in self.gens.iter_mut() {
            if let Some(txn) = gen.poll(now) {
                if self.shard.offer_request(now, txn).is_ok() {
                    gen.accepted();
                }
            }
        }
        self.shard.tick(now);
        for (lp, mc) in self.mcs.iter_mut().enumerate() {
            if let Some(head) = self.shard.peek_request(now, lp) {
                if mc.can_accept(head.dir) {
                    let txn = self.shard.pop_request(now, lp).expect("peeked head");
                    mc.accept(now, txn);
                }
            }
            mc.tick(now, &mut self.banks.unit_mut(lp));
            if let Some(c) = self.stuck[lp].take() {
                if let Err(c) = self.shard.offer_completion(now, lp, c) {
                    self.stuck[lp] = Some(c);
                }
            }
            if self.stuck[lp].is_none() {
                if let Some(c) = mc.pop_completion(now) {
                    if let Err(c) = self.shard.offer_completion(now, lp, c) {
                        self.stuck[lp] = Some(c);
                    }
                }
            }
        }
        for lm in 0..self.gens.len() {
            while let Some(c) = self.shard.pop_completion(now, lm) {
                if let Some(tr) = self.tracer {
                    tr.delivered(now, &c.txn);
                }
                self.gens[lm].completed(now, &c.txn);
            }
        }
    }

    /// Advances the domain over `[from, to)`, stepping only at cycles
    /// its own horizon marks as potentially active — the sequential
    /// event-horizon fast-forward, applied per domain. Cross-domain
    /// input cannot arrive mid-window (the barrier rule), so the
    /// horizon stays valid for the whole span. Stops early once locally
    /// drained: the remaining cycles are provably no-ops, and skipping
    /// them keeps `last` at the same cycle the sequential drain loop
    /// would stop at.
    fn advance(&mut self, from: Cycle, to: Cycle) {
        let mut now = from;
        while now < to {
            if self.drained() {
                return;
            }
            match self.next_event(now) {
                Some(t) if t <= now => {
                    self.step(now);
                    *self.last = Some(now);
                    now += 1;
                }
                Some(t) => now = t.min(to),
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_axi::Dir;
    use hbm_traffic::RwRatio;

    #[test]
    fn scs_system_drains_bounded_stream() {
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::scs(), Some(8));
        assert!(sys.run_until_drained(100_000), "system failed to drain");
        let total: u64 = sys.gen_stats().iter().map(|g| g.completed).sum();
        assert_eq!(total, 32 * 8);
    }

    #[test]
    fn mao_system_drains_ccra_stream() {
        let mut sys = HbmSystem::new(&SystemConfig::mao(), Workload::ccra(), Some(8));
        assert!(sys.run_until_drained(200_000));
        let total: u64 = sys.gen_stats().iter().map(|g| g.completed).sum();
        assert_eq!(total, 32 * 8);
    }

    #[test]
    fn direct_system_runs_scs() {
        let mut sys = HbmSystem::new(&SystemConfig::direct(), Workload::scs(), Some(16));
        assert!(sys.run_until_drained(100_000));
    }

    #[test]
    fn bytes_move_through_memory() {
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::scs(), Some(4));
        sys.run_until_drained(100_000);
        let mem = sys.mem_stats();
        // 32 masters × 4 × 512 B, split 2:1 read/write (3 reads, 1 write
        // per master under the 2:1 sequence R,R,W,R).
        assert_eq!(mem.total_bytes(), 32 * 4 * 512);
        assert!(mem.bytes_read > mem.bytes_written);
    }

    #[test]
    fn read_latency_matches_paper_ballpark() {
        // Single local read at low load: the paper measures 48 cycles
        // (global addressing enabled, closest PCH).
        let wl = Workload { rw: RwRatio::READ_ONLY, outstanding: 1, ..Workload::scs() };
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, Some(4));
        sys.run_until_drained(10_000);
        let stats = &sys.gen_stats()[0];
        let mean = stats.read_lat.mean().unwrap();
        assert!(
            (30.0..70.0).contains(&mean),
            "local read latency {mean} should be near the paper's 48 cycles"
        );
    }

    #[test]
    fn write_latency_below_read_latency() {
        let run = |dir| {
            let wl = Workload {
                rw: if dir == Dir::Read { RwRatio::READ_ONLY } else { RwRatio::WRITE_ONLY },
                outstanding: 1,
                ..Workload::scs()
            };
            let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, Some(4));
            sys.run_until_drained(10_000);
            let s = &sys.gen_stats()[0];
            match dir {
                Dir::Read => s.read_lat.mean().unwrap(),
                Dir::Write => s.write_lat.mean().unwrap(),
            }
        };
        let rd = run(Dir::Read);
        let wr = run(Dir::Write);
        assert!(wr < rd - 10.0, "posted writes ({wr}) must ack much faster than reads ({rd})");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = HbmSystem::new(&SystemConfig::mao(), Workload::ccra(), Some(32));
            sys.run_until_drained(200_000);
            let stats = sys.gen_stats();
            (
                stats.iter().map(|g| g.completed).sum::<u64>(),
                stats.iter().map(|g| g.read_lat.mean().unwrap_or(0.0)).sum::<f64>(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "identical seeds must give identical results");
    }

    /// Stats fingerprint for sequential-vs-parallel parity checks.
    fn fingerprint(sys: &HbmSystem) -> (Cycle, u64, u64, f64, u64) {
        let gens = sys.gen_stats();
        (
            sys.now(),
            gens.iter().map(|g| g.completed).sum(),
            sys.mem_stats().total_bytes(),
            gens.iter().map(|g| g.read_lat.mean().unwrap_or(0.0)).sum(),
            sys.fabric_stats().lateral_beats(),
        )
    }

    #[test]
    fn parallel_policy_matches_sequential_under_lateral_traffic() {
        let wl = Workload { rotation: 4, ..Workload::scs() };
        let run = |policy| {
            let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, Some(64));
            sys.set_run_policy(policy);
            assert!(sys.run_until_drained(200_000));
            fingerprint(&sys)
        };
        let seq = run(RunPolicy::Sequential);
        let par = run(RunPolicy::Parallel { jobs: 4 });
        assert_eq!(seq, par, "parallel drain must be bit-identical to sequential");
        assert!(seq.4 > 0, "rotation-4 traffic must exercise the lateral boundaries");
    }

    #[test]
    fn parallel_policy_matches_sequential_on_fixed_span() {
        let run = |policy| {
            let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::ccra(), None);
            sys.set_run_policy(policy);
            sys.run(20_000);
            fingerprint(&sys)
        };
        assert_eq!(run(RunPolicy::Sequential), run(RunPolicy::Parallel { jobs: 2 }));
    }

    #[test]
    fn port_affine_traffic_sprints_without_barriers() {
        // SCS at rotation 0 never crosses a lateral bus: the conductor
        // runs full-span windows and must still agree with sequential.
        let run = |policy| {
            let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::scs(), Some(128));
            sys.set_run_policy(policy);
            assert!(sys.run_until_drained(200_000));
            fingerprint(&sys)
        };
        let seq = run(RunPolicy::Sequential);
        let par = run(RunPolicy::Parallel { jobs: 8 });
        assert_eq!(seq, par);
        assert_eq!(seq.4, 0);
    }

    #[test]
    fn rotation_zero_uses_no_lateral_buses() {
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::scs(), Some(16));
        sys.run_until_drained(100_000);
        assert_eq!(sys.fabric_stats().lateral_beats(), 0);
    }

    #[test]
    fn rotation_crosses_lateral_buses() {
        let wl = Workload { rotation: 4, ..Workload::scs() };
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, Some(16));
        sys.run_until_drained(100_000);
        assert!(sys.fabric_stats().lateral_beats() > 0);
    }
}
