//! The assembled HBM system and its cycle-driven simulation loop.

use hbm_axi::{ClockDomain, Completion, Cycle, MasterId, PortId, SharedTracer, Tracer};
use hbm_fabric::{
    DirectFabric, FabricConfig, FabricStats, FullCrossbarFabric, Interconnect, XilinxFabric,
};
use hbm_mao::{MaoConfig, MaoFabric};
use hbm_mem::{HbmConfig, MemStats, MemoryController};
use hbm_traffic::{BmTrafficGen, GenStats, Workload};
use serde::{Deserialize, Serialize};

use crate::probe::{Probe, ProbeConfig};

/// Overridable parameters of the Xilinx switch fabric, for what-if
/// studies (e.g. the lateral-bus-count ablation of DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XilinxTweaks {
    /// Lateral buses per direction between adjacent switches (stock: 2).
    pub lateral_buses: usize,
    /// Lateral bandwidth in beats per accelerator cycle (stock: 1.0).
    pub lateral_rate: f64,
    /// Dead beats per arbitration grant switch (stock: 2.0).
    pub dead_beats: f64,
}

impl Default for XilinxTweaks {
    fn default() -> XilinxTweaks {
        XilinxTweaks { lateral_buses: 2, lateral_rate: 1.0, dead_beats: 2.0 }
    }
}

/// Which interconnect connects masters to pseudo-channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FabricKind {
    /// The stock Xilinx segmented switch network.
    Xilinx,
    /// The Xilinx network with overridden fabric parameters.
    XilinxTweaked(XilinxTweaks),
    /// The Memory Access Optimizer.
    Mao(MaoConfig),
    /// A hypothetical monolithic 32×32 crossbar: no lateral buses, but
    /// the contiguous address map and AXI ID stalls of the stock fabric
    /// (isolates the topology adaption from the MAO's other two).
    FullCrossbar,
    /// Direct 1:1 port mapping (single-channel only).
    Direct,
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Accelerator clock.
    pub clock: ClockDomain,
    /// HBM geometry and timing.
    pub hbm: HbmConfig,
    /// Interconnect choice.
    pub fabric: FabricKind,
}

impl SystemConfig {
    /// The paper's measurement platform: XCVU37P HBM behind the stock
    /// Xilinx switch fabric at 300 MHz.
    pub fn xilinx() -> SystemConfig {
        SystemConfig {
            clock: ClockDomain::ACC_300,
            hbm: HbmConfig::default(),
            fabric: FabricKind::Xilinx,
        }
    }

    /// The same platform with the MAO ("version four" of Table III)
    /// inserted in place of the switch fabric's lateral routing.
    pub fn mao() -> SystemConfig {
        SystemConfig {
            clock: ClockDomain::ACC_300,
            hbm: HbmConfig::default(),
            fabric: FabricKind::Mao(MaoConfig::default()),
        }
    }

    /// A direct 1:1 system (ideal single-channel baseline).
    pub fn direct() -> SystemConfig {
        SystemConfig {
            clock: ClockDomain::ACC_300,
            hbm: HbmConfig::default(),
            fabric: FabricKind::Direct,
        }
    }

    /// Same configuration at a different accelerator clock.
    pub fn at_clock(mut self, clock: ClockDomain) -> SystemConfig {
        self.clock = clock;
        self
    }

    fn build_fabric(&self) -> Box<dyn Interconnect> {
        match &self.fabric {
            FabricKind::Xilinx => {
                let mut fc = FabricConfig::for_clock(self.clock);
                fc.port_capacity = self.hbm.pch_capacity;
                fc.num_switches = self.hbm.num_pch / fc.ports_per_switch;
                Box::new(XilinxFabric::new(fc))
            }
            FabricKind::XilinxTweaked(t) => {
                let mut fc = FabricConfig::for_clock(self.clock);
                fc.port_capacity = self.hbm.pch_capacity;
                fc.num_switches = self.hbm.num_pch / fc.ports_per_switch;
                fc.lateral_buses = t.lateral_buses;
                fc.lateral_rate = t.lateral_rate;
                fc.dead_beats = t.dead_beats;
                Box::new(XilinxFabric::new(fc))
            }
            FabricKind::Mao(mc) => {
                let mut mc = *mc;
                mc.num_ports = self.hbm.num_pch;
                mc.num_masters = self.hbm.num_pch;
                mc.port_capacity = self.hbm.pch_capacity;
                Box::new(MaoFabric::new(mc))
            }
            FabricKind::FullCrossbar => {
                Box::new(FullCrossbarFabric::new(self.hbm.num_pch, self.hbm.pch_capacity, 6, 8))
            }
            FabricKind::Direct => {
                Box::new(DirectFabric::new(self.hbm.num_pch, self.hbm.pch_capacity, 4, 8))
            }
        }
    }
}

/// A producer/consumer of memory transactions attached to one master
/// port — either a synthetic [`BmTrafficGen`] or an accelerator engine
/// (see the `hbm-accel` crate).
///
/// Contract per cycle: the system calls [`poll`](TrafficSource::poll)
/// once; if the returned transaction is accepted by the interconnect it
/// calls [`accepted`](TrafficSource::accepted), otherwise the source
/// must return the *same* transaction on the next poll (head-of-line
/// retry). Delivered completions arrive via
/// [`completed`](TrafficSource::completed).
pub trait TrafficSource {
    /// The head-of-line transaction to offer this cycle, if any.
    fn poll(&mut self, now: Cycle) -> Option<hbm_axi::Transaction>;

    /// The pending transaction was accepted by the interconnect.
    fn accepted(&mut self);

    /// A completion for this source was delivered. Implementations must
    /// panic on AXI ordering violations (they indicate simulator bugs).
    fn completed(&mut self, now: Cycle, txn: &hbm_axi::Transaction);

    /// Traffic statistics.
    fn stats(&self) -> &GenStats;

    /// Clears statistics (end of warm-up).
    fn reset_stats(&mut self);

    /// `true` when the source has nothing pending and nothing in flight.
    fn drained(&self) -> bool;

    /// A lower bound on the first cycle ≥ `now` at which
    /// [`poll`](TrafficSource::poll) could return a transaction, assuming
    /// no completion is delivered in the meantime. `None` means the
    /// source only wakes on a completion (or is done for good).
    ///
    /// The contract is one-sided: reporting earlier than the true next
    /// issue merely costs a no-op step, reporting later would skip real
    /// work. The default is the maximally conservative `Some(now)`;
    /// sources whose idle `poll` is side-effect free override it to
    /// enable the event-horizon fast-forward of [`HbmSystem::run`] (see
    /// DESIGN.md §3).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Transactions issued but not yet completed, as seen by this source.
    /// Purely observational (feeds the time-series [`Probe`]); the default
    /// suits sources that do not track it.
    fn in_flight(&self) -> usize {
        0
    }
}

impl TrafficSource for BmTrafficGen {
    fn poll(&mut self, now: Cycle) -> Option<hbm_axi::Transaction> {
        BmTrafficGen::poll(self, now)
    }

    fn accepted(&mut self) {
        BmTrafficGen::accepted(self)
    }

    fn completed(&mut self, now: Cycle, txn: &hbm_axi::Transaction) {
        BmTrafficGen::completed(self, now, txn).expect("AXI ordering violated — simulator bug")
    }

    fn stats(&self) -> &GenStats {
        BmTrafficGen::stats(self)
    }

    fn reset_stats(&mut self) {
        BmTrafficGen::reset_stats(self)
    }

    fn drained(&self) -> bool {
        BmTrafficGen::drained(self)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        BmTrafficGen::next_event(self, now)
    }

    fn in_flight(&self) -> usize {
        BmTrafficGen::in_flight(self)
    }
}

/// Amortizes [`HbmSystem::next_event`] over saturated stretches.
///
/// Consulting the horizon costs a scan of every component, which is
/// wasted work while the system is busy every cycle. After each step the
/// horizon *confirmed*, the pacer grants an exponentially growing number
/// of "blind" steps (capped) before the next consultation. Blind steps
/// are ordinary [`HbmSystem::step`] calls — exactly what naive stepping
/// would do — so the heuristic cannot affect simulated behaviour; at
/// worst it executes up to [`Pacer::MAX_CREDIT`] no-op cycles of an idle
/// gap before the next horizon check skips the rest.
#[derive(Default)]
struct Pacer {
    credit: u32,
    burst: u32,
}

impl Pacer {
    const MAX_CREDIT: u32 = 64;

    /// Consumes one blind-step credit if available.
    fn take_credit(&mut self) -> bool {
        if self.credit > 0 {
            self.credit -= 1;
            true
        } else {
            false
        }
    }

    /// The horizon confirmed an immediate event: grow the blind burst.
    fn stepped(&mut self) {
        self.burst = (self.burst * 2).clamp(1, Self::MAX_CREDIT);
        self.credit = self.burst;
    }

    /// The horizon skipped ahead: traffic is sparse, re-check every step.
    fn skipped(&mut self) {
        self.burst = 0;
        self.credit = 0;
    }
}

/// The simulated system: traffic sources, interconnect, memory
/// controllers.
pub struct HbmSystem {
    cfg: SystemConfig,
    gens: Vec<Box<dyn TrafficSource>>,
    fabric: Box<dyn Interconnect>,
    mcs: Vec<MemoryController>,
    /// Completions produced by a controller that could not yet enter the
    /// return network (per port).
    stuck: Vec<Option<Completion>>,
    now: Cycle,
    /// Lifecycle tracer, when tracing is enabled (see
    /// [`enable_tracing`](HbmSystem::enable_tracing)). `None` keeps every
    /// stamp site a single branch — the hot loop is unchanged.
    tracer: Option<SharedTracer>,
    /// Windowed time-series sampler, when attached.
    probe: Option<Probe>,
}

impl HbmSystem {
    /// Builds a system in which every master runs `workload`, optionally
    /// bounded to `max_txns` transactions per master.
    pub fn new(cfg: &SystemConfig, workload: Workload, max_txns: Option<u64>) -> HbmSystem {
        let n = cfg.hbm.num_pch;
        let sources = (0..n)
            .map(|m| {
                Box::new(BmTrafficGen::new(
                    MasterId(m as u16),
                    n,
                    cfg.hbm.pch_capacity,
                    workload,
                    max_txns,
                )) as Box<dyn TrafficSource>
            })
            .collect();
        HbmSystem::with_sources(cfg, sources)
    }

    /// Builds a heterogeneous system: one workload per master (the
    /// paper's motivation for global addressing is exactly such systems,
    /// where "data can often not be partitioned in a way that the memory
    /// access from all \[cores\] is optimal", §V).
    pub fn with_workloads(cfg: &SystemConfig, workloads: &[Workload]) -> HbmSystem {
        let n = cfg.hbm.num_pch;
        assert_eq!(workloads.len(), n, "need exactly one workload per master");
        let sources = workloads
            .iter()
            .enumerate()
            .map(|(m, wl)| {
                Box::new(BmTrafficGen::new(MasterId(m as u16), n, cfg.hbm.pch_capacity, *wl, None))
                    as Box<dyn TrafficSource>
            })
            .collect();
        HbmSystem::with_sources(cfg, sources)
    }

    /// Builds a system driven by arbitrary traffic sources, one per
    /// master port (e.g. accelerator engines).
    pub fn with_sources(cfg: &SystemConfig, sources: Vec<Box<dyn TrafficSource>>) -> HbmSystem {
        cfg.hbm.validate().expect("invalid HBM configuration");
        let n = cfg.hbm.num_pch;
        assert_eq!(sources.len(), n, "need exactly one traffic source per master port");
        let fabric = cfg.build_fabric();
        let mcs = (0..n)
            .map(|p| {
                let phase = p as f64 / n as f64 * cfg.hbm.timings.t_refi;
                MemoryController::new(&cfg.hbm, cfg.clock, phase)
            })
            .collect();
        HbmSystem {
            stuck: vec![None; n],
            gens: sources,
            fabric,
            mcs,
            now: 0,
            cfg: cfg.clone(),
            tracer: None,
            probe: None,
        }
    }

    /// The configured accelerator clock.
    pub fn clock(&self) -> ClockDomain {
        self.cfg.clock
    }

    /// The full system configuration this instance was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Turns on per-transaction lifecycle tracing, keeping at most
    /// `record_cap` completed records. The tracer is attached to the
    /// interconnect and every memory controller; the returned handle can
    /// be inspected at any time (e.g. by `hbm_core::export`). Tracing is
    /// observation-only: a traced run is bit-identical to an untraced one
    /// (enforced by the `fastpath_equivalence` property tests).
    pub fn enable_tracing(&mut self, record_cap: usize) -> SharedTracer {
        let tracer = Tracer::shared(record_cap);
        self.fabric.attach_tracer(tracer.clone());
        for (p, mc) in self.mcs.iter_mut().enumerate() {
            mc.attach_tracer(p as u16, tracer.clone());
        }
        self.tracer = Some(tracer.clone());
        tracer
    }

    /// The tracer handle, when tracing is enabled.
    pub fn tracer(&self) -> Option<&SharedTracer> {
        self.tracer.as_ref()
    }

    /// Attaches a windowed time-series probe. [`run`](HbmSystem::run) and
    /// [`run_until_drained`](HbmSystem::run_until_drained) will sample it
    /// every `cfg.interval` cycles, starting from the current cycle.
    pub fn attach_probe(&mut self, cfg: ProbeConfig) {
        self.probe = Some(Probe::new(cfg, self.now, self.cfg.hbm.num_pch));
    }

    /// The attached probe, when any.
    pub fn probe(&self) -> Option<&Probe> {
        self.probe.as_ref()
    }

    /// Takes one probe sample at the current cycle. Gathers the gauges
    /// first (immutable borrows), then feeds them to the sampler.
    fn sample_probe(&mut self) {
        if self.probe.is_none() {
            return;
        }
        let in_flight: u64 = self.gens.iter().map(|g| g.in_flight() as u64).sum();
        let fabric_occupancy = self.fabric.occupancy() as u64;
        let mc_queued: u64 = self.mcs.iter().map(|m| m.queue_len() as u64).sum();
        let per_pch: Vec<MemStats> = self.mcs.iter().map(|m| *m.stats()).collect();
        if let Some(p) = self.probe.as_mut() {
            p.sample(self.now, &per_pch, in_flight, fabric_occupancy, mc_queued);
        }
    }

    /// Closes the probe's last (possibly partial) window at the end of a
    /// run, unless a sample was already taken at this exact cycle.
    fn sample_probe_final(&mut self) {
        match &self.probe {
            Some(p) if p.last_sample_at() != self.now => self.sample_probe(),
            _ => {}
        }
    }

    /// The current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the system by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        // 1. Masters offer their head-of-line transaction.
        for gen in &mut self.gens {
            if let Some(txn) = gen.poll(now) {
                if self.fabric.offer_request(now, txn).is_ok() {
                    gen.accepted();
                }
            }
        }
        // 2. The interconnect moves flits.
        self.fabric.tick(now);
        // 3. Memory side: deliver requests (one per port per cycle, as an
        //    AXI handshake would) and return completions.
        for (p, mc) in self.mcs.iter_mut().enumerate() {
            let port = PortId(p as u16);
            if let Some(head) = self.fabric.peek_request(now, port) {
                if mc.can_accept(head.dir) {
                    let txn = self.fabric.pop_request(now, port).expect("peeked head");
                    mc.accept(now, txn);
                }
            }
            mc.tick(now);
            if let Some(c) = self.stuck[p].take() {
                if let Err(c) = self.fabric.offer_completion(now, port, c) {
                    self.stuck[p] = Some(c);
                }
            }
            if self.stuck[p].is_none() {
                if let Some(c) = mc.pop_completion(now) {
                    if let Err(c) = self.fabric.offer_completion(now, port, c) {
                        self.stuck[p] = Some(c);
                    }
                }
            }
        }
        // 4. Masters drain completions.
        for (m, gen) in self.gens.iter_mut().enumerate() {
            while let Some(c) = self.fabric.pop_completion(now, MasterId(m as u16)) {
                if let Some(tr) = &self.tracer {
                    tr.borrow_mut().delivered(now, &c.txn);
                }
                gen.completed(now, &c.txn);
            }
        }
        self.now += 1;
    }

    /// A lower bound on the first cycle ≥ `now` at which
    /// [`step`](Self::step) would do observable work: the minimum of
    /// every component's own horizon
    /// (sources, fabric, controllers, plus any completion stuck between
    /// a controller and the return network). `None` means the system is
    /// quiescent forever — nothing will happen without external changes.
    ///
    /// Cycles strictly before the returned bound are provably no-op
    /// steps: every `poll` early-out is side-effect free, fabric ticks
    /// only mutate on grants (which need a ready queue head), and the
    /// controllers' idle paths mutate nothing. [`run`](Self::run) and
    /// [`run_until_drained`](Self::run_until_drained) therefore jump
    /// `now` straight to the bound
    /// without stepping; statistics are bit-identical to naive stepping
    /// (asserted by the `fastpath_equivalence` property test and
    /// documented in DESIGN.md §3).
    pub fn next_event(&self) -> Option<Cycle> {
        let now = self.now;
        if self.stuck.iter().any(|s| s.is_some()) {
            return Some(now); // retried against the fabric every cycle
        }
        let mut best: Option<Cycle> = None;
        let merge = |t: Option<Cycle>, best: &mut Option<Cycle>| -> bool {
            match t {
                Some(t) if t <= now => true, // immediate: caller returns Some(now)
                Some(t) => {
                    if best.is_none_or(|b| t < b) {
                        *best = Some(t);
                    }
                    false
                }
                None => false,
            }
        };
        for g in &self.gens {
            if merge(g.next_event(now), &mut best) {
                return Some(now);
            }
        }
        if merge(self.fabric.next_event(now), &mut best) {
            return Some(now);
        }
        for mc in &self.mcs {
            if merge(mc.next_event(now), &mut best) {
                return Some(now);
            }
        }
        best
    }

    /// Runs for `cycles` cycles, fast-forwarding over provably idle gaps.
    /// With a probe attached, the span is split at sampling boundaries;
    /// the stepped cycles (and hence all statistics) are identical either
    /// way, because `run_span(a); run_span(b)` ≡ `run_span(a + b)` — the
    /// fast-forward clamps to the deadline and re-derives the same
    /// horizon on re-entry.
    pub fn run(&mut self, cycles: Cycle) {
        if self.probe.is_none() {
            return self.run_span(cycles);
        }
        let deadline = self.now.saturating_add(cycles);
        while self.now < deadline {
            let next = self.probe.as_ref().expect("probe attached").next_sample_at();
            if next <= self.now {
                self.sample_probe();
                continue;
            }
            self.run_span(next.min(deadline) - self.now);
            if self.now >= next {
                self.sample_probe();
            }
        }
        self.sample_probe_final();
    }

    /// The un-probed span loop behind [`run`](HbmSystem::run).
    fn run_span(&mut self, cycles: Cycle) {
        let deadline = self.now.saturating_add(cycles);
        let mut pacer = Pacer::default();
        while self.now < deadline {
            if pacer.take_credit() {
                self.step();
                continue;
            }
            match self.next_event() {
                Some(t) if t <= self.now => {
                    self.step();
                    pacer.stepped();
                }
                Some(t) => {
                    self.now = t.min(deadline);
                    pacer.skipped();
                }
                None => {
                    self.now = deadline;
                    pacer.skipped();
                }
            }
        }
    }

    /// Runs until every generator, the fabric, and every controller are
    /// drained, or until `max_cycles` more cycles have elapsed. Returns
    /// `true` on a clean drain (in particular: immediately, without
    /// stepping, when the system is already drained — even with
    /// `max_cycles == 0`).
    ///
    /// With a probe attached the span is split at sampling boundaries,
    /// exactly like [`run`](HbmSystem::run).
    pub fn run_until_drained(&mut self, max_cycles: Cycle) -> bool {
        if self.probe.is_none() {
            return self.drain_span(max_cycles);
        }
        let deadline = self.now.saturating_add(max_cycles);
        let drained = loop {
            let next = self.probe.as_ref().expect("probe attached").next_sample_at();
            if next <= self.now {
                self.sample_probe();
                continue;
            }
            if self.drain_span(next.min(deadline) - self.now) {
                break true;
            }
            if self.now >= next {
                self.sample_probe();
            }
            if self.now >= deadline {
                break false;
            }
        };
        self.sample_probe_final();
        drained
    }

    /// The un-probed drain loop behind
    /// [`run_until_drained`](HbmSystem::run_until_drained).
    fn drain_span(&mut self, max_cycles: Cycle) -> bool {
        let deadline = self.now.saturating_add(max_cycles);
        let mut pacer = Pacer::default();
        loop {
            if self.drained() {
                return true;
            }
            if self.now >= deadline {
                return false;
            }
            if pacer.take_credit() {
                self.step();
                continue;
            }
            match self.next_event() {
                Some(t) if t <= self.now => {
                    self.step();
                    pacer.stepped();
                }
                Some(t) => {
                    self.now = t.min(deadline);
                    pacer.skipped();
                }
                None => {
                    self.now = deadline;
                    pacer.skipped();
                }
            }
        }
    }

    /// `true` when no transaction is anywhere in the system.
    pub fn drained(&self) -> bool {
        self.gens.iter().all(|g| g.drained())
            && self.fabric.drained()
            && self.mcs.iter().all(|m| m.drained())
            && self.stuck.iter().all(|s| s.is_none())
    }

    /// Clears all statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        for g in &mut self.gens {
            g.reset_stats();
        }
        for m in &mut self.mcs {
            m.reset_stats();
        }
        self.fabric.reset_stats();
    }

    /// Per-master generator statistics.
    pub fn gen_stats(&self) -> Vec<GenStats> {
        self.gens.iter().map(|g| *g.stats()).collect()
    }

    /// Aggregate memory statistics over all pseudo-channels.
    pub fn mem_stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for m in &self.mcs {
            total.merge(m.stats());
        }
        total
    }

    /// Per-pseudo-channel memory statistics.
    pub fn mem_stats_per_pch(&self) -> Vec<MemStats> {
        self.mcs.iter().map(|m| *m.stats()).collect()
    }

    /// Interconnect statistics.
    pub fn fabric_stats(&self) -> FabricStats {
        self.fabric.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_axi::Dir;
    use hbm_traffic::RwRatio;

    #[test]
    fn scs_system_drains_bounded_stream() {
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::scs(), Some(8));
        assert!(sys.run_until_drained(100_000), "system failed to drain");
        let total: u64 = sys.gen_stats().iter().map(|g| g.completed).sum();
        assert_eq!(total, 32 * 8);
    }

    #[test]
    fn mao_system_drains_ccra_stream() {
        let mut sys = HbmSystem::new(&SystemConfig::mao(), Workload::ccra(), Some(8));
        assert!(sys.run_until_drained(200_000));
        let total: u64 = sys.gen_stats().iter().map(|g| g.completed).sum();
        assert_eq!(total, 32 * 8);
    }

    #[test]
    fn direct_system_runs_scs() {
        let mut sys = HbmSystem::new(&SystemConfig::direct(), Workload::scs(), Some(16));
        assert!(sys.run_until_drained(100_000));
    }

    #[test]
    fn bytes_move_through_memory() {
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::scs(), Some(4));
        sys.run_until_drained(100_000);
        let mem = sys.mem_stats();
        // 32 masters × 4 × 512 B, split 2:1 read/write (3 reads, 1 write
        // per master under the 2:1 sequence R,R,W,R).
        assert_eq!(mem.total_bytes(), 32 * 4 * 512);
        assert!(mem.bytes_read > mem.bytes_written);
    }

    #[test]
    fn read_latency_matches_paper_ballpark() {
        // Single local read at low load: the paper measures 48 cycles
        // (global addressing enabled, closest PCH).
        let wl = Workload { rw: RwRatio::READ_ONLY, outstanding: 1, ..Workload::scs() };
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, Some(4));
        sys.run_until_drained(10_000);
        let stats = &sys.gen_stats()[0];
        let mean = stats.read_lat.mean().unwrap();
        assert!(
            (30.0..70.0).contains(&mean),
            "local read latency {mean} should be near the paper's 48 cycles"
        );
    }

    #[test]
    fn write_latency_below_read_latency() {
        let run = |dir| {
            let wl = Workload {
                rw: if dir == Dir::Read { RwRatio::READ_ONLY } else { RwRatio::WRITE_ONLY },
                outstanding: 1,
                ..Workload::scs()
            };
            let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, Some(4));
            sys.run_until_drained(10_000);
            let s = &sys.gen_stats()[0];
            match dir {
                Dir::Read => s.read_lat.mean().unwrap(),
                Dir::Write => s.write_lat.mean().unwrap(),
            }
        };
        let rd = run(Dir::Read);
        let wr = run(Dir::Write);
        assert!(wr < rd - 10.0, "posted writes ({wr}) must ack much faster than reads ({rd})");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = HbmSystem::new(&SystemConfig::mao(), Workload::ccra(), Some(32));
            sys.run_until_drained(200_000);
            let stats = sys.gen_stats();
            (
                stats.iter().map(|g| g.completed).sum::<u64>(),
                stats.iter().map(|g| g.read_lat.mean().unwrap_or(0.0)).sum::<f64>(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "identical seeds must give identical results");
    }

    #[test]
    fn rotation_zero_uses_no_lateral_buses() {
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), Workload::scs(), Some(16));
        sys.run_until_drained(100_000);
        assert_eq!(sys.fabric_stats().lateral_beats(), 0);
    }

    #[test]
    fn rotation_crosses_lateral_buses() {
        let wl = Workload { rotation: 4, ..Workload::scs() };
        let mut sys = HbmSystem::new(&SystemConfig::xilinx(), wl, Some(16));
        sys.run_until_drained(100_000);
        assert!(sys.fabric_stats().lateral_beats() > 0);
    }
}
