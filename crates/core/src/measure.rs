//! Warm-up + fixed-horizon measurement harness.

use std::sync::{Arc, OnceLock};

use hbm_axi::{ClockDomain, Cycle};
use hbm_fabric::FabricStats;
use hbm_mem::MemStats;
use hbm_traffic::{GenStats, Workload};
use serde::{Deserialize, Serialize};

use crate::metrics::{self, Counter, Gauge, Histo, Registry};
use crate::system::{HbmSystem, SystemConfig};

/// The result of one measured run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Cycles in the measured window (after warm-up).
    pub cycles: Cycle,
    /// Accelerator clock.
    pub clock: ClockDomain,
    /// Aggregate generator statistics over all masters.
    pub gen: GenStats,
    /// Per-master generator statistics.
    pub per_master: Vec<GenStats>,
    /// Aggregate DRAM statistics.
    pub mem: MemStats,
    /// Interconnect statistics.
    pub fabric: FabricStats,
    /// Theoretical device bandwidth of the measured configuration in
    /// GB/s, derived from the HBM geometry (`num_pch × per-PCH peak`).
    /// Defaults to 0 when deserializing older measurements;
    /// [`pct_of_device`](Measurement::pct_of_device) then falls back to
    /// the stock XCVU37P figure.
    #[serde(default)]
    pub device_gbps: f64,
}

impl Measurement {
    /// Read throughput in GB/s (completed payload bytes at the masters).
    pub fn read_gbps(&self) -> f64 {
        self.clock.throughput_gbps(self.gen.bytes_read, self.cycles)
    }

    /// Write throughput in GB/s.
    pub fn write_gbps(&self) -> f64 {
        self.clock.throughput_gbps(self.gen.bytes_written, self.cycles)
    }

    /// Combined throughput in GB/s.
    pub fn total_gbps(&self) -> f64 {
        self.read_gbps() + self.write_gbps()
    }

    /// Throughput as a percentage of the configuration's theoretical
    /// device bandwidth (the paper normalises against 460.8 GB/s — the
    /// stock 32-PCH XCVU37P value — which remains the fallback for
    /// measurements that predate the `device_gbps` field).
    pub fn pct_of_device(&self) -> f64 {
        let device = if self.device_gbps > 0.0 { self.device_gbps } else { 460.8 };
        100.0 * self.total_gbps() / device
    }

    /// Mean read latency in cycles.
    pub fn read_latency_mean(&self) -> Option<f64> {
        self.gen.read_lat.mean()
    }

    /// Read-latency standard deviation in cycles.
    pub fn read_latency_std(&self) -> Option<f64> {
        self.gen.read_lat.std_dev()
    }

    /// Mean write latency in cycles.
    pub fn write_latency_mean(&self) -> Option<f64> {
        self.gen.write_lat.mean()
    }

    /// Read-latency percentile (e.g. 0.99 for p99), in cycles.
    pub fn read_latency_percentile(&self, q: f64) -> Option<u64> {
        self.gen.read_lat.percentile(q)
    }

    /// Write-latency percentile, in cycles.
    pub fn write_latency_percentile(&self, q: f64) -> Option<u64> {
        self.gen.write_lat.percentile(q)
    }

    /// Write-latency standard deviation in cycles.
    pub fn write_latency_std(&self) -> Option<f64> {
        self.gen.write_lat.std_dev()
    }
}

/// Occupancy histograms fed once per completed measurement: how loaded
/// the lateral ring and the memory controllers were over the measured
/// window. Values are integer percent (0–100), so the registry's
/// power-of-two buckets resolve idle / light / half / saturated cleanly.
struct RunMetrics {
    measurements: Arc<Counter>,
    lateral_pct: Arc<Histo>,
    mc_busy_pct: Arc<Histo>,
    mc_stall_pct: Arc<Histo>,
    row_hit_pct: Arc<Histo>,
}

fn build_run_metrics(reg: &Registry) -> RunMetrics {
    RunMetrics {
        measurements: reg.counter(
            "hbm_run_measurements_total",
            "Completed measurement windows published to the registry",
            &[],
        ),
        lateral_pct: reg.histogram(
            "hbm_run_lateral_occupancy_pct",
            "Busiest lateral bus occupancy per measurement (percent of cycles moving a beat)",
            &[],
        ),
        mc_busy_pct: reg.histogram(
            "hbm_run_mc_busy_pct",
            "Mean per-PCH data-bus busy time per measurement (percent of the window)",
            &[],
        ),
        mc_stall_pct: reg.histogram(
            "hbm_run_mc_stall_pct",
            "Mean per-PCH data-bus bank-timing stall per measurement (percent of the window)",
            &[],
        ),
        row_hit_pct: reg.histogram(
            "hbm_run_row_hit_pct",
            "Row-buffer hit rate per measurement (percent of classified accesses)",
            &[],
        ),
    }
}

fn run_metrics() -> &'static RunMetrics {
    static M: OnceLock<RunMetrics> = OnceLock::new();
    M.get_or_init(|| build_run_metrics(Registry::global()))
}

/// Queue families reported by [`HbmSystem::for_each_queue_hwm`]: the
/// fabric's link families plus the three controller queues.
const HWM_FAMILIES: [&str; 7] =
    ["ingress", "egress", "mc_link", "lateral", "mc_req", "mc_resp", "mc_ack"];

/// One gauge per queue family: the deepest any queue of that family ever
/// got during the most recent measurement window (warm-up included — the
/// marks accumulate from system construction).
struct QueueHwmMetrics {
    peak: [Arc<Gauge>; 7],
}

fn build_queue_hwm_metrics(reg: &Registry) -> QueueHwmMetrics {
    QueueHwmMetrics {
        peak: HWM_FAMILIES.map(|family| {
            reg.gauge(
                "hbm_run_queue_high_water",
                "Peak occupancy of the deepest queue of each family in the last measured run",
                &[("family", family)],
            )
        }),
    }
}

fn queue_hwm_metrics() -> &'static QueueHwmMetrics {
    static M: OnceLock<QueueHwmMetrics> = OnceLock::new();
    M.get_or_init(|| build_queue_hwm_metrics(Registry::global()))
}

/// Publishes a finished system's per-family queue high-water marks as
/// labeled gauges. Costs one relaxed load when metrics are off; when on,
/// it walks the queues once — strictly outside the cycle loop.
pub fn record_queue_hwms(sys: &HbmSystem) {
    record_queue_hwms_with(|visit| sys.for_each_queue_hwm(visit));
}

/// [`record_queue_hwms`] over any queue walker — the batched path hands
/// in its own lane-set visitor.
pub(crate) fn record_queue_hwms_with(walk: impl FnOnce(&mut dyn FnMut(&'static str, usize))) {
    if !metrics::enabled() {
        return;
    }
    let mut peaks = [0usize; 7];
    walk(&mut |family, hwm| {
        let i = HWM_FAMILIES.iter().position(|f| *f == family);
        if let Some(i) = i {
            peaks[i] = peaks[i].max(hwm);
        }
    });
    let g = queue_hwm_metrics();
    for (gauge, peak) in g.peak.iter().zip(peaks) {
        gauge.set(peak as i64);
    }
}

/// Pre-registers the run-occupancy series so expositions list them (at
/// zero) before the first measurement. Called by the registry's
/// built-in installer.
pub(crate) fn install_run_series(reg: &Registry) {
    build_run_metrics(reg);
    build_queue_hwm_metrics(reg);
}

fn as_pct(fraction: f64) -> u64 {
    (fraction * 100.0).round().clamp(0.0, 100.0) as u64
}

/// Publishes a completed measurement's occupancy figures to the global
/// registry. `num_pch` normalises the aggregate (summed over pseudo-
/// channels) DRAM bus-time counters back to a per-PCH percentage. No-op
/// unless metrics are enabled — the simulation itself never pays for
/// this, it runs once per measurement window.
pub(crate) fn record_run_metrics(m: &Measurement, num_pch: usize) {
    if !metrics::enabled() {
        return;
    }
    let r = run_metrics();
    r.measurements.inc();
    if let Some(f) = m.fabric.lateral_occupancy(m.cycles) {
        r.lateral_pct.record(as_pct(f));
    }
    let window_ns = m.clock.cycles_to_ns(m.cycles) * num_pch.max(1) as f64;
    if let Some(f) = m.mem.busy_fraction(window_ns) {
        r.mc_busy_pct.record(as_pct(f));
    }
    if let Some(f) = m.mem.stall_fraction(window_ns) {
        r.mc_stall_pct.record(as_pct(f));
    }
    if let Some(f) = m.mem.hit_rate() {
        r.row_hit_pct.record(as_pct(f));
    }
}

/// Runs `workload` on `cfg` for `warmup` cycles, clears statistics, then
/// measures for `cycles` cycles.
pub fn measure(
    cfg: &SystemConfig,
    workload: Workload,
    warmup: Cycle,
    cycles: Cycle,
) -> Measurement {
    let mut sys = HbmSystem::new(cfg, workload, None);
    sys.run(warmup);
    sys.reset_stats();
    sys.run(cycles);
    let m = snapshot(&sys, cycles);
    record_run_metrics(&m, cfg.hbm.num_pch);
    record_queue_hwms(&sys);
    m
}

/// Extracts a [`Measurement`] from a system after `cycles` measured
/// cycles.
pub fn snapshot(sys: &HbmSystem, cycles: Cycle) -> Measurement {
    let per_master = sys.gen_stats();
    let mut gen = GenStats::default();
    for g in &per_master {
        gen.merge(g);
    }
    Measurement {
        cycles,
        clock: sys.clock(),
        gen,
        per_master,
        mem: sys.mem_stats(),
        fabric: sys.fabric_stats(),
        device_gbps: sys.config().hbm.theoretical_bw_gbps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Short windows keep debug-build test time reasonable; calibration
    /// against paper anchors happens in the integration tests with longer
    /// windows.
    const WARM: Cycle = 1_500;
    const MEAS: Cycle = 4_000;

    #[test]
    fn scs_reaches_high_throughput() {
        let m = measure(&SystemConfig::xilinx(), Workload::scs(), WARM, MEAS);
        // Paper: 416.7 GB/s (90.6 %) for perfect SCS at 2:1.
        assert!(m.total_gbps() > 350.0, "SCS throughput {} GB/s too low", m.total_gbps());
        assert!(m.total_gbps() < 461.0, "cannot exceed theoretical bandwidth");
    }

    #[test]
    fn ccs_hotspot_collapses_on_xilinx() {
        let m = measure(&SystemConfig::xilinx(), Workload::ccs(), WARM, MEAS);
        // Paper: 13.0 GB/s (2.8 %).
        assert!(m.total_gbps() < 40.0, "hot-spot CCS should collapse, got {} GB/s", m.total_gbps());
    }

    #[test]
    fn mao_rescues_ccs() {
        let x = measure(&SystemConfig::xilinx(), Workload::ccs(), WARM, MEAS);
        let o = measure(&SystemConfig::mao(), Workload::ccs(), WARM, MEAS);
        // Paper: 40.6× (13.0 → 414 GB/s). Demand ≥ 10× here.
        assert!(
            o.total_gbps() > 10.0 * x.total_gbps(),
            "MAO {} vs XLNX {}",
            o.total_gbps(),
            x.total_gbps()
        );
        assert!(o.total_gbps() > 300.0);
    }

    #[test]
    fn mao_improves_ccra() {
        let x = measure(&SystemConfig::xilinx(), Workload::ccra(), WARM, MEAS);
        let o = measure(&SystemConfig::mao(), Workload::ccra(), WARM, MEAS);
        // Paper: 3.78× (70.4 → 266 GB/s).
        assert!(
            o.total_gbps() > 1.8 * x.total_gbps(),
            "MAO {} vs XLNX {}",
            o.total_gbps(),
            x.total_gbps()
        );
    }

    #[test]
    fn rw_split_respects_ratio() {
        let m = measure(&SystemConfig::xilinx(), Workload::scs(), WARM, MEAS);
        let ratio = m.read_gbps() / m.write_gbps();
        assert!(
            (1.5..2.5).contains(&ratio),
            "2:1 issue ratio should give ≈2:1 throughput, got {ratio}"
        );
    }

    #[test]
    fn latencies_present_in_measurement() {
        let m = measure(&SystemConfig::xilinx(), Workload::scs(), WARM, MEAS);
        assert!(m.read_latency_mean().is_some());
        assert!(m.write_latency_mean().is_some());
        assert!(m.write_latency_mean().unwrap() < m.read_latency_mean().unwrap());
    }

    #[test]
    fn percentiles_available_and_ordered() {
        let m = measure(&SystemConfig::xilinx(), Workload::ccs(), WARM, MEAS);
        let p50 = m.read_latency_percentile(0.5).unwrap();
        let p99 = m.read_latency_percentile(0.99).unwrap();
        assert!(p99 >= p50);
        // Under hot-spot congestion the tail is far above the median.
        assert!(p99 as f64 > m.read_latency_mean().unwrap());
    }

    #[test]
    fn percentage_normalisation() {
        let m = measure(&SystemConfig::xilinx(), Workload::scs(), WARM, MEAS);
        let pct = m.pct_of_device();
        assert!((50.0..100.0).contains(&pct), "{pct}");
    }

    #[test]
    fn device_bandwidth_derived_from_config() {
        let cfg = SystemConfig::xilinx();
        let m = measure(&cfg, Workload::scs(), WARM, MEAS);
        assert!((m.device_gbps - 460.8).abs() < 1e-9, "{}", m.device_gbps);
        // A halved device must normalise against its own peak, not the
        // stock figure.
        let mut half = cfg.clone();
        half.hbm.num_pch = 16;
        let sys = HbmSystem::new(&half, Workload::scs(), Some(1));
        let m = snapshot(&sys, 1);
        assert!((m.device_gbps - 230.4).abs() < 1e-9, "{}", m.device_gbps);
    }

    #[test]
    fn legacy_measurement_without_device_field_falls_back() {
        let mut m = measure(&SystemConfig::xilinx(), Workload::scs(), WARM, MEAS);
        let with_field = m.pct_of_device();
        m.device_gbps = 0.0; // as deserialized from a pre-field JSON
        assert!(
            (m.pct_of_device() - with_field).abs() < 1e-9,
            "fallback must match the stock device: {} vs {with_field}",
            m.pct_of_device()
        );
    }
}
