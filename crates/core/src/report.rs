//! Plain-text table rendering for experiment results.

/// A simple fixed-width text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart: one labelled bar per value,
/// scaled to `width` characters at the maximum value. Used by the
/// `repro` binary to sketch the paper's figures in the terminal.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = if max > 0.0 { ((v / max) * width as f64).round() as usize } else { 0 };
        out.push_str(&format!(
            "{:>label_w$} |{}{} {v:.1}\n",
            label,
            "#".repeat(n),
            " ".repeat(width.saturating_sub(n)),
        ));
    }
    out
}

/// Formats a GB/s value with one decimal.
pub fn gbps(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a mean ± std pair.
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.1} ±{std:.1}")
}

/// Formats a speed-up factor.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}×")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "1234"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("---"));
        // Right-aligned: the short value lines up with the long one.
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("1234"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_wrong_width() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 10.0), ("bb".to_string(), 5.0)];
        let s = bar_chart(&rows, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains("#####"));
        assert!(!lines[1].contains("######"));
        // Labels right-aligned to the widest.
        assert!(lines[0].starts_with(" a"));
    }

    #[test]
    fn bar_chart_all_zero() {
        let rows = vec![("x".to_string(), 0.0)];
        let s = bar_chart(&rows, 8);
        assert!(s.contains("| "));
    }

    #[test]
    fn formatters() {
        assert_eq!(gbps(13.04), "13.0");
        assert_eq!(mean_std(71.84, 19.75), "71.8 ±19.8");
        assert_eq!(speedup(40.599), "40.60×");
        assert_eq!(pct(90.63), "90.6%");
    }
}
