//! Lockstep batched execution: advance K sweep points per instruction
//! stream.
//!
//! Sweep grids (Fig. 4's rotation × burst matrix, the `sweep` binary's
//! parameter spaces) are many *independent* simulations sharing one
//! topology: same fabric, same controllers, same component code — only
//! the workload parameters differ. The scalar path pays the full cost of
//! that sharing anyway (each point re-walks the same instruction stream
//! through `Box<dyn>` dispatch), so a [`BatchedSystem`] packs K such
//! points into *lanes* of one engine:
//!
//! * **SoA layout** — lane state lives in flat lane-major arrays
//!   (`K × 32` generators, `K × 32` controllers, `K × 32` stuck-slots,
//!   one concrete fabric per lane) plus per-lane control vectors
//!   (`now`), so a batch is one allocation-dense working set rather
//!   than K scattered heaps.
//! * **One instruction stream** — the cycle kernel is monomorphised per
//!   fabric type (an enum over the four concrete fabrics, matched once
//!   per batch call, never per cycle), and the lockstep driver replays
//!   the *same* specialised advance loop across all lanes within each
//!   epoch, keeping I-cache and branch predictors hot.
//! * **Min-horizon lockstep** — lanes advance in epochs to a common
//!   target cycle; each lane skips its own idle gaps with the PR 1
//!   event-horizon machinery, and between epochs the driver takes the
//!   *minimum* horizon across lanes: when every lane is provably idle
//!   until `T`, simulated time jumps to `T` for the whole batch in one
//!   move.
//!
//! ## Byte-identity
//!
//! Lanes never interact — there is no cross-lane state, only a shared
//! driver — so each lane replays the exact component call schedule of
//! [`HbmSystem::step`](crate::system::HbmSystem), and any conservative
//! skipping schedule is safe under the one-sided `next_event` contract
//! (DESIGN.md §3). Every lane's [`Measurement`] is therefore
//! byte-identical to the scalar [`measure`](crate::measure::measure) of
//! the same point, enforced by the `lockstep_equivalence` proptests
//! across all four fabrics.
//!
//! On sharded fabrics each lane additionally uses the per-domain
//! advance of DESIGN.md §3.3 (the `RunPolicy::Parallel { jobs: 1 }`
//! schedule, inline): domains skip their *own* idle cycles between
//! lateral barriers, which is finer-grained than the monolithic horizon
//! and measurably faster on rotation workloads — and bit-identical by
//! the same lateral-lag argument the parallel conductor rests on.

use std::sync::atomic::{AtomicUsize, Ordering};

use hbm_axi::{Completion, Cycle, LaneRings, LaneRingsView, MasterId, PortId};
use hbm_fabric::{
    DirectFabric, FullCrossbarFabric, Interconnect, ShardLayout, SwitchShard, XilinxFabric,
};
use hbm_mao::MaoFabric;
use hbm_mem::{BankPool, BanksViewMut, MemoryController};
use hbm_traffic::{BmTrafficGen, GenStats, Workload};

use crate::measure::Measurement;
use crate::profile;
use crate::system::{FabricKind, Pacer, SystemConfig};

/// Epoch length of the lockstep driver, in cycles. Within an epoch each
/// lane runs its specialised kernel back-to-back (D-cache friendly);
/// across epochs the lanes re-align so the min-horizon rule can skip
/// shared idle time. The value trades lane-switch overhead against how
/// long a finished lane waits before its quiescence is noticed; at 1024
/// both costs are far below 1 % of a saturated lane's work.
const EPOCH: Cycle = 1024;

/// Batches constructed process-wide (including inside `measure_batch`).
/// The planner-fallback tests use this to prove single-point and
/// mixed-topology grids never pay any batched setup cost.
static BATCHES_BUILT: AtomicUsize = AtomicUsize::new(0);

/// Number of [`BatchedSystem`]s constructed by this process so far.
pub fn batches_built() -> usize {
    BATCHES_BUILT.load(Ordering::Relaxed)
}

// --------------------------------------------------------------- lane set

/// The SoA lane state for one concrete fabric type `F`: all per-master
/// and per-port component state of the K lanes, flat and lane-major.
struct Lanes<F: Interconnect> {
    cfg: SystemConfig,
    /// Masters (= ports) per lane.
    n: usize,
    /// Lanes in the batch.
    k: usize,
    /// `k × n` traffic generators, lane-major.
    gens: Vec<BmTrafficGen>,
    /// `k × n` memory controllers, lane-major.
    mcs: Vec<MemoryController>,
    /// `k × n` bank-state units, lane-major, matching `mcs` order: one
    /// structure-of-arrays pool for the whole batch (dense row state for
    /// every lane's every channel in five flat arrays).
    banks: BankPool,
    /// `k × n` stuck-completion slots as capacity-1 lane rings: the hot
    /// "any port stuck?" checks scan one contiguous deadline array
    /// instead of `k × n` `Option<Completion>` structs.
    stuck: LaneRings<Completion>,
    /// One concrete fabric per lane.
    fabrics: Vec<F>,
    /// Per-lane current cycle. Equal across lanes at every epoch
    /// boundary of [`run`](Lanes::run); free-running under
    /// [`run_until_drained`](Lanes::run_until_drained).
    now: Vec<Cycle>,
    /// Per-lane: every generator qualifies for the fully specialised
    /// workload-family kernel (`poll_family::<true, true>`).
    family: Vec<bool>,
    /// Per-lane: every generator is port-affine (lateral buses provably
    /// idle), precomputed so the sharded kernel never re-scans.
    affine: Vec<bool>,
}

/// A mutable view of one lane: the slice of every SoA array it owns.
/// All simulation semantics live on this view; the batch driver only
/// schedules which lane advances when.
struct LaneView<'a, F: Interconnect> {
    gens: &'a mut [BmTrafficGen],
    fabric: &'a mut F,
    mcs: &'a mut [MemoryController],
    /// This lane's bank-state units (unit `p` belongs to `mcs[p]`).
    banks: BanksViewMut<'a>,
    stuck: LaneRingsView<'a, Completion>,
    now: &'a mut Cycle,
    /// Fully specialised workload-family kernel applies to this lane.
    family: bool,
    /// All generators port-affine (precomputed for the sharded kernel).
    affine: bool,
}

impl<F: Interconnect> Lanes<F> {
    fn new(cfg: &SystemConfig, specs: &[(Workload, Option<u64>)], build: impl Fn() -> F) -> Self {
        cfg.hbm.validate().expect("invalid HBM configuration");
        let n = cfg.hbm.num_pch;
        let k = specs.len();
        assert!(k >= 1, "a batch needs at least one lane");
        let mut gens = Vec::with_capacity(k * n);
        let mut mcs = Vec::with_capacity(k * n);
        for &(wl, max_txns) in specs {
            for m in 0..n {
                gens.push(BmTrafficGen::new(
                    MasterId(m as u16),
                    n,
                    cfg.hbm.pch_capacity,
                    wl,
                    max_txns,
                ));
            }
            for p in 0..n {
                mcs.push(MemoryController::new(&cfg.hbm, cfg.clock, cfg.hbm.refresh_phase(p)));
            }
        }
        let family: Vec<bool> = gens
            .chunks(n)
            .map(|lane| lane.iter().all(|g| g.unit_burst() && g.zero_rotation()))
            .collect();
        let affine: Vec<bool> =
            gens.chunks(n).map(|lane| lane.iter().all(|g| g.port_affine())).collect();
        Lanes {
            cfg: cfg.clone(),
            n,
            k,
            gens,
            mcs,
            banks: BankPool::new(k * n, cfg.hbm.banks_per_pch),
            stuck: LaneRings::new(k * n, 1),
            fabrics: (0..k).map(|_| build()).collect(),
            now: vec![0; k],
            family,
            affine,
        }
    }

    /// Iterates the per-lane views, in lane order.
    fn views(&mut self) -> impl Iterator<Item = LaneView<'_, F>> {
        let n = self.n;
        self.fabrics
            .iter_mut()
            .zip(self.gens.chunks_mut(n))
            .zip(self.mcs.chunks_mut(n))
            .zip(self.banks.views_mut(n))
            .zip(self.stuck.views_mut(n))
            .zip(self.now.iter_mut())
            .zip(self.family.iter().copied())
            .zip(self.affine.iter().copied())
            .map(|(((((((fabric, gens), mcs), banks), stuck), now), family), affine)| LaneView {
                gens,
                fabric,
                mcs,
                banks,
                stuck,
                now,
                family,
                affine,
            })
    }

    /// The lockstep run loop: advances every lane by `cycles` cycles in
    /// shared epochs, taking the min horizon across lanes between them.
    fn run(&mut self, cycles: Cycle) {
        let start = self.now[0];
        debug_assert!(
            self.now.iter().all(|&t| t == start),
            "lanes must be aligned when entering run()"
        );
        let prof = profile::active();
        let deadline = start.saturating_add(cycles);
        let mut t = start;
        while t < deadline {
            let target = deadline.min(t.saturating_add(EPOCH));
            // Advance each lane to the epoch target with its own
            // specialised kernel, collecting each lane's horizon bound.
            let mut min_next: Option<Cycle> = None;
            let mut quiescent = true;
            for mut lane in self.views() {
                if let Some(h) = lane.advance_to(target) {
                    quiescent = false;
                    min_next = Some(min_next.map_or(h, |m: Cycle| m.min(h)));
                }
            }
            t = target;
            // Min-horizon rule: nothing in any lane can happen before
            // `min_next`, so the whole batch jumps there in one move
            // (`quiescent` = every lane is done forever: jump to the
            // deadline).
            let skip_to = if quiescent { deadline } else { min_next.unwrap_or(t).min(deadline) };
            if skip_to > t {
                t = skip_to;
                for now in &mut self.now {
                    *now = t;
                }
            }
            if prof {
                profile::lap(profile::Phase::LockstepReconcile);
            }
        }
    }

    /// Drains every lane independently (sequential reference schedule),
    /// each within `max_cycles`; returns per-lane drain success. Lanes
    /// may end at different cycles — exactly like running K scalar
    /// systems — so this is *not* followed by lockstep `run` calls.
    fn run_until_drained(&mut self, max_cycles: Cycle) -> Vec<bool> {
        self.views().map(|mut lane| lane.drain_to(max_cycles)).collect()
    }

    fn reset_stats(&mut self) {
        for g in &mut self.gens {
            g.reset_stats();
        }
        for m in &mut self.mcs {
            m.reset_stats();
        }
        for f in &mut self.fabrics {
            f.reset_stats();
        }
    }

    /// Per-lane measurements, replicating `measure::snapshot` field by
    /// field (merge orders included) so rows are byte-identical to the
    /// scalar path.
    fn snapshot(&self, cycles: Cycle) -> Vec<Measurement> {
        (0..self.k)
            .map(|l| {
                let lane = l * self.n..(l + 1) * self.n;
                let per_master: Vec<GenStats> =
                    self.gens[lane.clone()].iter().map(|g| *g.stats()).collect();
                let mut gen = GenStats::default();
                for g in &per_master {
                    gen.merge(g);
                }
                let mut mem = hbm_mem::MemStats::default();
                for mc in &self.mcs[lane] {
                    mem.merge(mc.stats());
                }
                Measurement {
                    cycles,
                    clock: self.cfg.clock,
                    gen,
                    per_master,
                    mem,
                    fabric: self.fabrics[l].stats(),
                    device_gbps: self.cfg.hbm.theoretical_bw_gbps(),
                }
            })
            .collect()
    }

    /// Visits every queue high-water mark across all lanes, same labels
    /// as `HbmSystem::for_each_queue_hwm`.
    fn for_each_queue_hwm(&self, visit: &mut dyn FnMut(&'static str, usize)) {
        for f in &self.fabrics {
            f.for_each_queue_hwm(visit);
        }
        for mc in &self.mcs {
            let [req, resp, ack] = mc.queue_high_waters();
            visit("mc_req", req);
            visit("mc_resp", resp);
            visit("mc_ack", ack);
        }
    }
}

// --------------------------------------------------------------- lane view

impl<F: Interconnect> LaneView<'_, F> {
    /// Replays the four-phase cycle of `HbmSystem::step` on this lane,
    /// with concrete (devirtualised) component types. `FAM` is the
    /// lane's workload-family bit (checked at dispatch) const-propagated
    /// into the generator kernel; `prof` is the hoisted phase-profiler
    /// activity bit (`profile::active()` read once per span, not per
    /// cycle); stamps are observation-only.
    fn step<const FAM: bool>(&mut self, prof: bool) {
        let now = *self.now;
        for gen in self.gens.iter_mut() {
            if let Some(txn) = gen.poll_family::<FAM, FAM>(now) {
                if self.fabric.offer_request(now, txn).is_ok() {
                    gen.accepted();
                }
            }
        }
        if prof {
            profile::lap(profile::Phase::GensTick);
        }
        self.fabric.tick(now);
        if prof {
            profile::lap(profile::Phase::FabricTick);
        }
        for (p, mc) in self.mcs.iter_mut().enumerate() {
            let port = PortId(p as u16);
            if let Some(head) = self.fabric.peek_request(now, port) {
                if mc.can_accept(head.dir) {
                    let txn = self.fabric.pop_request(now, port).expect("peeked head");
                    mc.accept(now, txn);
                }
            }
            if prof {
                profile::lap(profile::Phase::QueueOps);
            }
            mc.tick(now, &mut self.banks.unit_mut(p));
            if prof {
                profile::lap(profile::Phase::McTick);
            }
            if let Some((_, c)) = self.stuck.pop_front(p) {
                if let Err(c) = self.fabric.offer_completion(now, port, c) {
                    let r = self.stuck.push(p, now, c);
                    debug_assert!(r.is_ok(), "stuck slot was just emptied");
                }
            }
            if self.stuck.is_empty(p) {
                if let Some(c) = mc.pop_completion(now) {
                    if let Err(c) = self.fabric.offer_completion(now, port, c) {
                        let r = self.stuck.push(p, now, c);
                        debug_assert!(r.is_ok(), "stuck slot was empty");
                    }
                }
            }
        }
        for (m, gen) in self.gens.iter_mut().enumerate() {
            while let Some(c) = self.fabric.pop_completion(now, MasterId(m as u16)) {
                gen.completed(now, &c.txn).expect("AXI ordering violated — simulator bug");
            }
        }
        if prof {
            profile::lap(profile::Phase::QueueOps);
        }
        *self.now += 1;
    }

    /// Mirrors `HbmSystem::next_event` on this lane.
    fn next_event(&self) -> Option<Cycle> {
        let now = *self.now;
        if self.stuck.any_occupied() {
            return Some(now);
        }
        let mut best: Option<Cycle> = None;
        let mut merge = |t: Option<Cycle>| -> bool {
            match t {
                Some(t) if t <= now => true,
                Some(t) => {
                    if best.is_none_or(|b| t < b) {
                        best = Some(t);
                    }
                    false
                }
                None => false,
            }
        };
        for g in self.gens.iter() {
            if merge(g.next_event(now)) {
                return Some(now);
            }
        }
        if merge(self.fabric.next_event(now)) {
            return Some(now);
        }
        for mc in self.mcs.iter() {
            if merge(mc.next_event(now)) {
                return Some(now);
            }
        }
        best
    }

    /// Mirrors `HbmSystem::drained` on this lane.
    fn drained(&self) -> bool {
        self.gens.iter().all(|g| g.drained())
            && self.fabric.drained()
            && self.mcs.iter().all(|m| m.drained())
            && !self.stuck.any_occupied()
    }

    /// Advances the lane to exactly `target`, skipping provably idle
    /// cycles. Returns the lane's horizon on exit: `Some(h)` means
    /// nothing in this lane can happen before `h ≥ target` (with
    /// `h == target` the conservative "maybe active immediately"),
    /// `None` means the lane is quiescent forever. The driver folds
    /// these into the cross-lane min horizon.
    fn advance_to(&mut self, target: Cycle) -> Option<Cycle> {
        // One runtime check per epoch selects the monomorphised kernel;
        // inside it the family facts are compile-time constants.
        if self.family {
            self.advance_to_kernel::<true>(target)
        } else {
            self.advance_to_kernel::<false>(target)
        }
    }

    fn advance_to_kernel<const FAM: bool>(&mut self, target: Cycle) -> Option<Cycle> {
        match self.fabric.shard_layout() {
            Some(layout) => self.advance_to_sharded::<FAM>(target, layout),
            None => self.advance_to_monolithic::<FAM>(target),
        }
    }

    /// The monolithic kernel: `HbmSystem::run_span` with concrete types.
    fn advance_to_monolithic<const FAM: bool>(&mut self, target: Cycle) -> Option<Cycle> {
        let prof = profile::active();
        let mut pacer = Pacer::default();
        while *self.now < target {
            if pacer.take_credit() {
                self.step::<FAM>(prof);
                continue;
            }
            let ev = self.next_event();
            if prof {
                profile::lap(profile::Phase::HorizonCompute);
            }
            match ev {
                Some(t) if t <= *self.now => {
                    self.step::<FAM>(prof);
                    pacer.stepped();
                }
                Some(t) if t >= target => {
                    *self.now = target;
                    return Some(t);
                }
                Some(t) => {
                    *self.now = t;
                    pacer.skipped();
                }
                None => {
                    *self.now = target;
                    return None;
                }
            }
        }
        Some(target)
    }

    /// The sharded kernel: the conductor's superstep schedule
    /// (`HbmSystem::conduct` at `jobs = 1`), inline. Each window picks a
    /// barrier no farther than the lateral lag past the earliest
    /// component horizon, advances every execution domain independently
    /// over it, and reconciles the boundaries — bit-identical to
    /// sequential stepping by the lateral-port contract (DESIGN.md
    /// §3.3), and faster because each domain skips its *own* idle
    /// cycles.
    fn advance_to_sharded<const FAM: bool>(
        &mut self,
        target: Cycle,
        layout: ShardLayout,
    ) -> Option<Cycle> {
        let prof = profile::active();
        let lag = layout.sync_lag.max(1);
        let lateral_free = layout.masters_per_shard == layout.ports_per_shard && self.affine;
        while *self.now < target {
            let ev = self.next_event();
            if prof {
                profile::lap(profile::Phase::HorizonCompute);
            }
            let barrier = match ev {
                None => {
                    *self.now = target;
                    return None;
                }
                Some(t) if t >= target => {
                    *self.now = target;
                    return Some(t);
                }
                Some(_) if lateral_free => target,
                Some(t) => t.max(*self.now).saturating_add(lag).min(target),
            };
            let from = *self.now;
            let sharded =
                self.fabric.as_sharded_mut().expect("shard_layout() promised a sharded view");
            for ((((shard, gens), mcs), banks), mut stuck) in sharded
                .shards_mut()
                .iter_mut()
                .zip(self.gens.chunks_mut(layout.masters_per_shard))
                .zip(self.mcs.chunks_mut(layout.ports_per_shard))
                .zip(self.banks.reborrow().chunks_mut(layout.ports_per_shard))
                .zip(self.stuck.chunks_mut(layout.ports_per_shard))
            {
                advance_domain::<FAM>(shard, gens, mcs, banks, &mut stuck, from..barrier, prof);
            }
            if sharded.pending_reconcile() {
                sharded.reconcile();
            }
            if prof {
                profile::lap(profile::Phase::LockstepReconcile);
            }
            *self.now = barrier;
        }
        Some(target)
    }

    /// Drains this lane alone: `HbmSystem::drain_span` with concrete
    /// types (the sequential reference schedule, so drain-mode rows are
    /// byte-identical to the scalar path too).
    fn drain_to(&mut self, max_cycles: Cycle) -> bool {
        if self.family {
            self.drain_to_kernel::<true>(max_cycles)
        } else {
            self.drain_to_kernel::<false>(max_cycles)
        }
    }

    fn drain_to_kernel<const FAM: bool>(&mut self, max_cycles: Cycle) -> bool {
        let prof = profile::active();
        let deadline = self.now.saturating_add(max_cycles);
        let mut pacer = Pacer::default();
        loop {
            if self.drained() {
                return true;
            }
            if *self.now >= deadline {
                return false;
            }
            if pacer.take_credit() {
                self.step::<FAM>(prof);
                continue;
            }
            let ev = self.next_event();
            if prof {
                profile::lap(profile::Phase::HorizonCompute);
            }
            match ev {
                Some(t) if t <= *self.now => {
                    self.step::<FAM>(prof);
                    pacer.stepped();
                }
                Some(t) => {
                    *self.now = t.min(deadline);
                    pacer.skipped();
                }
                None => {
                    *self.now = deadline;
                    pacer.skipped();
                }
            }
        }
    }
}

/// One execution domain of a sharded lane, advanced over the half-open
/// cycle `span` with its own event horizon — the inline mirror of the
/// conductor's `Domain::advance`, minus the tracer (the batched path
/// carries none) and the drain bookkeeping (batch drains use the
/// sequential kernel).
fn advance_domain<const FAM: bool>(
    shard: &mut SwitchShard,
    gens: &mut [BmTrafficGen],
    mcs: &mut [MemoryController],
    mut banks: BanksViewMut<'_>,
    stuck: &mut LaneRingsView<'_, Completion>,
    span: std::ops::Range<Cycle>,
    prof: bool,
) {
    let domain_drained = |gens: &[BmTrafficGen],
                          shard: &SwitchShard,
                          mcs: &[MemoryController],
                          stuck: &LaneRingsView<'_, Completion>| {
        gens.iter().all(|g| g.drained())
            && shard.drained()
            && mcs.iter().all(|m| m.drained())
            && !stuck.any_occupied()
    };
    let next_event = |now: Cycle,
                      gens: &[BmTrafficGen],
                      shard: &SwitchShard,
                      mcs: &[MemoryController],
                      stuck: &LaneRingsView<'_, Completion>|
     -> Option<Cycle> {
        if stuck.any_occupied() {
            return Some(now);
        }
        let mut best: Option<Cycle> = None;
        let mut merge = |t: Option<Cycle>| -> bool {
            match t {
                Some(t) if t <= now => true,
                Some(t) => {
                    if best.is_none_or(|b| t < b) {
                        best = Some(t);
                    }
                    false
                }
                None => false,
            }
        };
        for g in gens {
            if merge(g.next_event(now)) {
                return Some(now);
            }
        }
        if merge(shard.next_event(now)) {
            return Some(now);
        }
        for mc in mcs {
            if merge(mc.next_event(now)) {
                return Some(now);
            }
        }
        best
    };

    let mut now = span.start;
    while now < span.end {
        if domain_drained(gens, shard, mcs, stuck) {
            return;
        }
        let ev = next_event(now, gens, shard, mcs, stuck);
        if prof {
            profile::lap(profile::Phase::HorizonCompute);
        }
        match ev {
            Some(t) if t <= now => {
                // The four phases of `HbmSystem::step`, on the domain's
                // slice with shard-local indices.
                for gen in gens.iter_mut() {
                    if let Some(txn) = gen.poll_family::<FAM, FAM>(now) {
                        if shard.offer_request(now, txn).is_ok() {
                            gen.accepted();
                        }
                    }
                }
                if prof {
                    profile::lap(profile::Phase::GensTick);
                }
                shard.tick(now);
                if prof {
                    profile::lap(profile::Phase::FabricTick);
                }
                for (lp, mc) in mcs.iter_mut().enumerate() {
                    if let Some(head) = shard.peek_request(now, lp) {
                        if mc.can_accept(head.dir) {
                            let txn = shard.pop_request(now, lp).expect("peeked head");
                            mc.accept(now, txn);
                        }
                    }
                    if prof {
                        profile::lap(profile::Phase::QueueOps);
                    }
                    mc.tick(now, &mut banks.unit_mut(lp));
                    if prof {
                        profile::lap(profile::Phase::McTick);
                    }
                    if let Some((_, c)) = stuck.pop_front(lp) {
                        if let Err(c) = shard.offer_completion(now, lp, c) {
                            let r = stuck.push(lp, now, c);
                            debug_assert!(r.is_ok(), "stuck slot was just emptied");
                        }
                    }
                    if stuck.is_empty(lp) {
                        if let Some(c) = mc.pop_completion(now) {
                            if let Err(c) = shard.offer_completion(now, lp, c) {
                                let r = stuck.push(lp, now, c);
                                debug_assert!(r.is_ok(), "stuck slot was empty");
                            }
                        }
                    }
                }
                for (lm, gen) in gens.iter_mut().enumerate() {
                    while let Some(c) = shard.pop_completion(now, lm) {
                        gen.completed(now, &c.txn).expect("AXI ordering violated — simulator bug");
                    }
                }
                if prof {
                    profile::lap(profile::Phase::QueueOps);
                }
                now += 1;
            }
            Some(t) => now = t.min(span.end),
            None => return,
        }
    }
}

// ----------------------------------------------------------- batched system

/// The monomorphised lane sets: one variant per concrete fabric, so the
/// cycle kernel inside each is free of virtual dispatch. The match
/// happens once per batch call, never per cycle.
enum LaneSet {
    Xilinx(Lanes<XilinxFabric>),
    Mao(Lanes<MaoFabric>),
    FullCrossbar(Lanes<FullCrossbarFabric>),
    Direct(Lanes<DirectFabric>),
}

macro_rules! each_laneset {
    ($self:expr, $l:ident => $e:expr) => {
        match $self {
            LaneSet::Xilinx($l) => $e,
            LaneSet::Mao($l) => $e,
            LaneSet::FullCrossbar($l) => $e,
            LaneSet::Direct($l) => $e,
        }
    };
}

/// K independent sweep points of one topology, advanced in lockstep
/// through one specialised instruction stream (see the module docs).
pub struct BatchedSystem {
    lanes: LaneSet,
}

impl BatchedSystem {
    /// Builds a batch with one lane per workload, all sharing `cfg`'s
    /// topology and clock, each lane unbounded (the measurement shape).
    pub fn new(cfg: &SystemConfig, workloads: &[Workload]) -> BatchedSystem {
        let bounds = vec![None; workloads.len()];
        BatchedSystem::with_bounds(cfg, workloads, &bounds)
    }

    /// [`new`](BatchedSystem::new) with a per-lane transaction bound
    /// (`None` = unbounded) — the drain/divergence testing shape.
    pub fn with_bounds(
        cfg: &SystemConfig,
        workloads: &[Workload],
        max_txns: &[Option<u64>],
    ) -> BatchedSystem {
        assert_eq!(workloads.len(), max_txns.len(), "one bound per lane");
        BATCHES_BUILT.fetch_add(1, Ordering::Relaxed);
        let specs: Vec<(Workload, Option<u64>)> =
            workloads.iter().copied().zip(max_txns.iter().copied()).collect();
        let lanes = match &cfg.fabric {
            FabricKind::Xilinx | FabricKind::XilinxTweaked(_) => {
                LaneSet::Xilinx(Lanes::new(cfg, &specs, || cfg.build_xilinx()))
            }
            FabricKind::Mao(_) => LaneSet::Mao(Lanes::new(cfg, &specs, || cfg.build_mao())),
            FabricKind::FullCrossbar => {
                LaneSet::FullCrossbar(Lanes::new(cfg, &specs, || cfg.build_fullxbar()))
            }
            FabricKind::Direct => LaneSet::Direct(Lanes::new(cfg, &specs, || cfg.build_direct())),
        };
        BatchedSystem { lanes }
    }

    /// Lanes in this batch.
    pub fn lanes(&self) -> usize {
        each_laneset!(&self.lanes, l => l.k)
    }

    /// Per-lane current cycles.
    pub fn now(&self) -> Vec<Cycle> {
        each_laneset!(&self.lanes, l => l.now.clone())
    }

    /// Advances every lane by `cycles` cycles in lockstep epochs. Lanes
    /// must be aligned (as after construction or a previous `run`).
    pub fn run(&mut self, cycles: Cycle) {
        each_laneset!(&mut self.lanes, l => l.run(cycles))
    }

    /// Drains every lane (each within `max_cycles`); returns per-lane
    /// success flags. Uses the sequential reference kernel per lane.
    pub fn run_until_drained(&mut self, max_cycles: Cycle) -> Vec<bool> {
        each_laneset!(&mut self.lanes, l => l.run_until_drained(max_cycles))
    }

    /// Clears all statistics on every lane (end of warm-up).
    pub fn reset_stats(&mut self) {
        each_laneset!(&mut self.lanes, l => l.reset_stats())
    }

    /// Per-lane measurements after `cycles` measured cycles, in lane
    /// order, byte-identical to the scalar `measure` of each point.
    pub fn snapshot(&self, cycles: Cycle) -> Vec<Measurement> {
        each_laneset!(&self.lanes, l => l.snapshot(cycles))
    }

    /// Visits the peak occupancy of every internal queue across all
    /// lanes, with the same family labels as
    /// [`HbmSystem::for_each_queue_hwm`](crate::system::HbmSystem::for_each_queue_hwm).
    pub fn for_each_queue_hwm(&self, visit: &mut dyn FnMut(&'static str, usize)) {
        each_laneset!(&self.lanes, l => l.for_each_queue_hwm(visit))
    }
}

/// The batched analogue of [`measure`](crate::measure::measure): runs
/// all `workloads` on `cfg` for `warmup` cycles, clears statistics, then
/// measures for `cycles` cycles — all lanes in lockstep — and returns
/// one [`Measurement`] per workload, in input order.
pub fn measure_batch(
    cfg: &SystemConfig,
    workloads: &[Workload],
    warmup: Cycle,
    cycles: Cycle,
) -> Vec<Measurement> {
    let mut sys = BatchedSystem::new(cfg, workloads);
    sys.run(warmup);
    sys.reset_stats();
    sys.run(cycles);
    let out = sys.snapshot(cycles);
    for m in &out {
        crate::measure::record_run_metrics(m, cfg.hbm.num_pch);
    }
    crate::measure::record_queue_hwms_with(|visit| sys.for_each_queue_hwm(visit));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure;
    use hbm_axi::BurstLen;
    use hbm_traffic::RwRatio;

    const WARM: Cycle = 800;
    const MEAS: Cycle = 2_500;

    fn row_json(m: &Measurement) -> String {
        serde_json::to_string(m).expect("measurement serialises")
    }

    #[test]
    fn batched_rows_match_scalar_on_xilinx_rotations() {
        let cfg = SystemConfig::xilinx();
        let wls: Vec<Workload> = [0usize, 1, 4]
            .iter()
            .map(|&rotation| Workload { rotation, ..Workload::scs() })
            .collect();
        let batched = measure_batch(&cfg, &wls, WARM, MEAS);
        for (wl, got) in wls.iter().zip(&batched) {
            let want = measure(&cfg, *wl, WARM, MEAS);
            assert_eq!(row_json(got), row_json(&want), "lane diverged at rotation {}", wl.rotation);
        }
    }

    #[test]
    fn batched_rows_match_scalar_on_all_fabrics() {
        for cfg in [
            SystemConfig::xilinx(),
            SystemConfig::mao(),
            SystemConfig { fabric: FabricKind::FullCrossbar, ..SystemConfig::xilinx() },
            SystemConfig::direct(),
        ] {
            let wls = [
                Workload::scs(),
                Workload { burst: BurstLen::of(2), stride: 64, ..Workload::scs() },
            ];
            let batched = measure_batch(&cfg, &wls, WARM, MEAS);
            for (wl, got) in wls.iter().zip(&batched) {
                let want = measure(&cfg, *wl, WARM, MEAS);
                assert_eq!(row_json(got), row_json(&want), "diverged on {:?}", cfg.fabric);
            }
        }
    }

    #[test]
    fn single_lane_batch_matches_scalar() {
        let cfg = SystemConfig::mao();
        let wl = Workload { rw: RwRatio::READ_ONLY, ..Workload::ccs() };
        let got = measure_batch(&cfg, &[wl], WARM, MEAS);
        assert_eq!(row_json(&got[0]), row_json(&measure(&cfg, wl, WARM, MEAS)));
    }

    #[test]
    fn bounded_lanes_drain_like_scalar_systems() {
        let cfg = SystemConfig::xilinx();
        let wls = [Workload::scs(), Workload { rotation: 2, ..Workload::scs() }];
        let mut batch = BatchedSystem::with_bounds(&cfg, &wls, &[Some(8), Some(8)]);
        let ok = batch.run_until_drained(100_000);
        assert_eq!(ok, vec![true, true]);
        let rows = batch.snapshot(1);
        for (wl, row) in wls.iter().zip(&rows) {
            let mut sys = crate::system::HbmSystem::new(&cfg, *wl, Some(8));
            assert!(sys.run_until_drained(100_000));
            assert_eq!(row.gen.completed, 32 * 8);
            assert_eq!(
                row.gen.total_bytes(),
                sys.gen_stats().iter().map(|g| g.total_bytes()).sum::<u64>()
            );
        }
    }

    #[test]
    fn construction_counter_increments() {
        // Other tests in this binary may build batches concurrently, so
        // assert monotonic growth rather than an exact delta.
        let before = batches_built();
        let _ = BatchedSystem::new(&SystemConfig::direct(), &[Workload::scs()]);
        assert!(batches_built() > before);
    }
}
