//! Fundamental scalar types shared by the whole simulator.

use serde::{Deserialize, Serialize};

/// Byte address in the global HBM address space.
pub type Addr = u64;

/// Simulation cycle count (in the accelerator clock domain unless noted).
pub type Cycle = u64;

/// Width of one AXI data beat in bytes (256-bit bus → 32 B).
pub const BEAT_BYTES: u64 = 32;

/// Maximum AXI3 burst length in beats.
pub const MAX_BURST: u8 = 16;

/// Maximum AXI4 burst length in beats that still fits the 4 KiB rule at
/// a 32-byte beat (AXI4 allows 256 beats, but 128 × 32 B = 4 KiB).
pub const MAX_BURST_AXI4: u8 = 128;

/// Index of a bus master (BM) attached to the memory subsystem.
///
/// Xilinx HBM devices expose 32 AXI ports, so valid values are `0..32`
/// in the default configuration; the type itself is not range-limited so
/// that smaller or larger systems can be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MasterId(pub u16);

/// Index of a pseudo-channel (PCH) port on the memory side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub u16);

impl MasterId {
    /// Returns the raw index as `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// Returns the raw index as `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// AXI transaction identifier.
///
/// Transactions with the same ID on the same port must complete in issue
/// order; transactions with different IDs may be reordered. The number of
/// distinct IDs a master uses is therefore its *reorder window* — the
/// mechanism behind Fig. 6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AxiId(pub u8);

/// Transfer direction. AXI read and write channels are fully independent,
/// which is why a 2:1 read/write mix can exceed the unidirectional port
/// bandwidth (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// AR/R channel pair.
    Read,
    /// AW/W/B channel triple.
    Write,
}

impl Dir {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Dir {
        match self {
            Dir::Read => Dir::Write,
            Dir::Write => Dir::Read,
        }
    }

    /// Both directions, for iteration.
    pub const BOTH: [Dir; 2] = [Dir::Read, Dir::Write];
}

/// Validated AXI3 burst length (1..=16 beats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BurstLen(u8);

impl BurstLen {
    /// Creates an AXI3 burst length, returning `None` outside `1..=16`.
    pub fn new(beats: u8) -> Option<BurstLen> {
        (1..=MAX_BURST).contains(&beats).then_some(BurstLen(beats))
    }

    /// Creates an AXI4 burst length (`1..=128` beats — the 4 KiB rule
    /// caps 32-byte beats at 128). The paper's device speaks AXI3; this
    /// constructor supports the what-if study of longer bursts
    /// (`hbm-core::experiment::ablate_axi4`).
    pub fn new_axi4(beats: u8) -> Option<BurstLen> {
        (1..=MAX_BURST_AXI4).contains(&beats).then_some(BurstLen(beats))
    }

    /// Creates an AXI4 burst length, panicking outside `1..=128`.
    pub fn of_axi4(beats: u8) -> BurstLen {
        BurstLen::new_axi4(beats).expect("AXI4 burst length must be 1..=128")
    }

    /// Creates a burst length, panicking outside `1..=16`.
    ///
    /// Convenient for constants in tests and experiment definitions.
    pub fn of(beats: u8) -> BurstLen {
        BurstLen::new(beats).expect("AXI3 burst length must be 1..=16")
    }

    /// Number of beats in the burst.
    #[inline]
    pub fn beats(self) -> u8 {
        self.0
    }

    /// Payload size of the burst in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.0 as u64 * BEAT_BYTES
    }
}

/// Counts delivered beats of a burst and reports completion.
///
/// Used by the return path (R channel) and the write-data path (W channel)
/// to know when a burst has fully transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatCounter {
    total: u8,
    done: u8,
}

impl BeatCounter {
    /// A counter expecting `len.beats()` beats.
    pub fn new(len: BurstLen) -> BeatCounter {
        BeatCounter { total: len.beats(), done: 0 }
    }

    /// Records one transferred beat; returns `true` when this beat was the
    /// last of the burst.
    pub fn advance(&mut self) -> bool {
        debug_assert!(self.done < self.total, "beat counter overrun");
        self.done += 1;
        self.done == self.total
    }

    /// Beats still to transfer.
    #[inline]
    pub fn remaining(self) -> u8 {
        self.total - self.done
    }

    /// `true` once every beat has been transferred.
    #[inline]
    pub fn complete(self) -> bool {
        self.done == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_len_bounds() {
        assert!(BurstLen::new(0).is_none());
        assert!(BurstLen::new(17).is_none());
        assert_eq!(BurstLen::new(1).unwrap().beats(), 1);
        assert_eq!(BurstLen::new(16).unwrap().beats(), 16);
    }

    #[test]
    fn axi4_burst_len_bounds() {
        assert!(BurstLen::new_axi4(0).is_none());
        assert!(BurstLen::new_axi4(129).is_none());
        assert_eq!(BurstLen::of_axi4(128).bytes(), 4096);
        // AXI3 lengths are a subset.
        assert_eq!(BurstLen::of_axi4(16).beats(), BurstLen::of(16).beats());
    }

    #[test]
    fn burst_len_bytes() {
        assert_eq!(BurstLen::of(1).bytes(), 32);
        assert_eq!(BurstLen::of(16).bytes(), 512);
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn burst_len_of_panics() {
        let _ = BurstLen::of(0);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::Read.flip(), Dir::Write);
        assert_eq!(Dir::Write.flip(), Dir::Read);
    }

    #[test]
    fn beat_counter_counts_to_completion() {
        let mut c = BeatCounter::new(BurstLen::of(3));
        assert!(!c.advance());
        assert!(!c.complete());
        assert!(!c.advance());
        assert!(c.advance());
        assert!(c.complete());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn beat_counter_single_beat() {
        let mut c = BeatCounter::new(BurstLen::of(1));
        assert!(c.advance());
    }

    #[test]
    fn ids_index() {
        assert_eq!(MasterId(7).idx(), 7);
        assert_eq!(PortId(31).idx(), 31);
    }
}
