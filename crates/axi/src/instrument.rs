//! Opt-in per-transaction lifecycle tracing and latency attribution.
//!
//! The simulator's default outputs are end-of-run aggregates; this module
//! adds the time-resolved layer: every transaction can be stamped at each
//! stage of its life —
//!
//! ```text
//! issue → fabric ingress-accept → lateral hop(s) → MC enqueue
//!       → first DRAM command → data-burst start → DRAM done → delivery
//! ```
//!
//! — and each completion decomposed into five latency components whose sum
//! is *exactly* the end-to-end latency the generators record:
//!
//! ```text
//! source-stall | fabric-transit | mc-queue | dram-service | return-path
//! ```
//!
//! Design constraints (the "overhead contract", see DESIGN.md §3.2):
//!
//! * **Zero cost when off.** [`Transaction`] is not grown; stamps live in a
//!   side-table keyed by `(master, seq)`. Components hold an
//!   `Option<SharedTracer>` that is `None` by default, so the untraced hot
//!   path pays one never-taken branch per stamp site and nothing else.
//!   `tests/fastpath_equivalence.rs` enforces that runs with tracing ON and
//!   OFF are bit-identical in every statistic.
//! * **Observation only.** Stamping never changes timing, arbitration, or
//!   queue occupancy — the tracer has no way to feed back into the
//!   simulation.
//! * **Allocation-light when on.** [`TxnRecord`] is `Copy` with a fixed-size
//!   hop array; the live side-table pre-reserves capacity, and completed
//!   records are retained up to a configurable cap (beyond it only the
//!   histograms keep growing).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::transaction::Transaction;
use crate::types::{Cycle, Dir};

/// Maximum lateral-hop stamps retained per transaction. The Xilinx fabric
/// routes at most 7 switch-to-switch hops end to end; anything beyond the
/// cap is counted but not time-stamped.
pub const MAX_HOPS: usize = 8;

/// Side-table key: `(master, seq)` uniquely identifies a transaction for
/// its whole life (the MAO rewrites addresses but preserves both fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TxnKey {
    /// Issuing master index.
    pub master: u16,
    /// Per-master sequence number.
    pub seq: u64,
}

impl TxnKey {
    /// The key of a transaction.
    #[inline]
    pub fn of(txn: &Transaction) -> TxnKey {
        TxnKey { master: txn.master.0, seq: txn.seq }
    }
}

/// Multiply-xor hasher for the live side-table. Stamps hit the table up
/// to five times per transaction, and SipHash dominates that cost; a
/// `TxnKey` is ten bytes of already-well-distributed integers, so a
/// single 64-bit mix (splitmix64 finalizer) is collision-safe here and
/// several times cheaper.
#[derive(Debug, Default, Clone)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        let mut z = self.0 ^ i;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

type BuildKeyHasher = std::hash::BuildHasherDefault<KeyHasher>;

/// All lifecycle stamps of one transaction. `issued_at` comes from the
/// transaction itself; every other stamp is `None` until the corresponding
/// stage is reached (a posted write is typically delivered before — or
/// without — its DRAM stamps, because the B ack does not wait for DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnRecord {
    /// Issuing master index.
    pub master: u16,
    /// Per-master sequence number.
    pub seq: u64,
    /// AXI ID.
    pub id: u8,
    /// Start address as seen at issue (pre-MAO-remap).
    pub addr: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Read or write.
    pub dir: Dir,
    /// Destination pseudo-channel port (set at MC enqueue).
    pub port: u16,
    /// Cycle the master issued the transaction (wanted to send it).
    pub issued_at: Cycle,
    /// Cycle the fabric accepted it at the ingress port.
    pub ingress_at: Option<Cycle>,
    /// Cycle the memory controller enqueued it.
    pub mc_enqueue_at: Option<Cycle>,
    /// Cycle the controller issued its first DRAM command.
    pub dram_cmd_at: Option<Cycle>,
    /// Cycle the first data beat moved on the DRAM bus.
    pub data_start_at: Option<Cycle>,
    /// Cycle the DRAM burst (plus PHY return for reads) finished.
    pub dram_done_at: Option<Cycle>,
    /// Cycle the completion reached the issuing master.
    pub delivered_at: Option<Cycle>,
    /// Number of lateral (switch-to-switch) hops taken, either direction.
    pub hops: u8,
    /// Stamp of each lateral hop, valid for `hop_at[..hops.min(MAX_HOPS)]`.
    pub hop_at: [Cycle; MAX_HOPS],
}

impl TxnRecord {
    fn new(txn: &Transaction) -> TxnRecord {
        TxnRecord {
            master: txn.master.0,
            seq: txn.seq,
            id: txn.id.0,
            addr: txn.addr,
            bytes: txn.bytes(),
            dir: txn.dir,
            port: 0,
            issued_at: txn.issued_at,
            ingress_at: None,
            mc_enqueue_at: None,
            dram_cmd_at: None,
            data_start_at: None,
            dram_done_at: None,
            delivered_at: None,
            hops: 0,
            hop_at: [0; MAX_HOPS],
        }
    }

    /// End-to-end latency (delivery − issue); `None` until delivered.
    pub fn end_to_end(&self) -> Option<Cycle> {
        self.delivered_at.map(|d| d.saturating_sub(self.issued_at))
    }

    /// Decomposes the end-to-end latency into the five components.
    ///
    /// Invariant: `attribution().total() == end_to_end()` *exactly*, for
    /// every delivered record. Missing stamps inherit the previous stage's
    /// time (their component is 0), and every stamp is clamped into
    /// `[previous stage, delivery]` so no component can be negative or
    /// overshoot. Posted writes attribute everything after MC acceptance
    /// to the return path: their B ack does not wait for DRAM service, so
    /// `mc_queue`/`dram_service` are 0 by construction even if the DRAM
    /// stamps (which may land after the ack) are present.
    pub fn attribution(&self) -> Option<Attribution> {
        let delivered = self.delivered_at?;
        let issued = self.issued_at.min(delivered);
        let clamp = |s: Option<Cycle>, lo: Cycle| s.unwrap_or(lo).clamp(lo, delivered);
        let ingress = clamp(self.ingress_at, issued);
        let enqueue = clamp(self.mc_enqueue_at, ingress);
        let (cmd, done) = match self.dir {
            Dir::Read => {
                let cmd = clamp(self.dram_cmd_at, enqueue);
                (cmd, clamp(self.dram_done_at, cmd))
            }
            // Posted write: the ack never waits for DRAM.
            Dir::Write => (enqueue, enqueue),
        };
        let e2e = delivered - issued;
        let source_stall = ingress - issued;
        let fabric_transit = enqueue - ingress;
        let mc_queue = cmd - enqueue;
        let dram_service = done - cmd;
        let return_path = e2e - source_stall - fabric_transit - mc_queue - dram_service;
        Some(Attribution { source_stall, fabric_transit, mc_queue, dram_service, return_path })
    }
}

/// The five-way latency decomposition of one completion, in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribution {
    /// Issue → fabric ingress-accept (back-pressure and ID stalls at the
    /// master's doorstep).
    pub source_stall: Cycle,
    /// Ingress-accept → MC enqueue (switch pipeline, lateral buses,
    /// arbitration).
    pub fabric_transit: Cycle,
    /// MC enqueue → first DRAM command (reorder-window queueing).
    pub mc_queue: Cycle,
    /// First DRAM command → data returned at the controller (bank timing,
    /// burst transfer, PHY).
    pub dram_service: Cycle,
    /// Everything after: response queue + return fabric to the master.
    pub return_path: Cycle,
}

impl Attribution {
    /// Sum of all components — equals the end-to-end latency exactly.
    pub fn total(&self) -> Cycle {
        self.source_stall
            + self.fabric_transit
            + self.mc_queue
            + self.dram_service
            + self.return_path
    }
}

/// Number of power-of-two buckets in a [`Hist`] (covers the full `u64`
/// cycle range; the top bucket absorbs anything above `2^47`).
pub const HIST_BUCKETS: usize = 48;

/// HDR-style latency histogram: power-of-two buckets plus exact
/// min/max/sum, supporting p50/p95/p99/p99.9 with bucket resolution.
///
/// A value `v` lands in bucket `floor(log2(max(v,1)))`, so a reported
/// percentile is the bucket's upper edge clamped to the observed
/// `[min, max]` — an upper bound off by at most 2× (the same scheme as
/// `hbm_traffic::LatencyStats`, extended to cover attribution components
/// that can legitimately be zero).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hist {
    /// Sample count.
    pub n: u64,
    /// Sum of samples (for the mean).
    pub sum: u64,
    /// Smallest sample, `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Zero-valued samples (bucket 0 also holds the value 1).
    pub zeros: u64,
    /// Power-of-two buckets.
    #[serde(with = "serde_arrays")]
    pub buckets: [u64; HIST_BUCKETS],
}

mod serde_arrays {
    use super::HIST_BUCKETS;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[u64; HIST_BUCKETS], s: S) -> Result<S::Ok, S::Error> {
        v.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u64; HIST_BUCKETS], D::Error> {
        let v = Vec::<u64>::deserialize(d)?;
        let mut out = [0u64; HIST_BUCKETS];
        for (o, x) in out.iter_mut().zip(v) {
            *o = x;
        }
        Ok(out)
    }
}

impl Default for Hist {
    fn default() -> Hist {
        Hist { n: 0, sum: 0, min: u64::MAX, max: 0, zeros: 0, buckets: [0; HIST_BUCKETS] }
    }
}

impl Hist {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0 {
            self.zeros += 1;
        }
        let b = (63 - v.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b] += 1;
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// The q-quantile (`0 < q <= 1`) as the covering bucket's upper edge,
    /// clamped to the observed `[min, max]`. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let want = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        // Exact zeros sort before everything in bucket 0.
        if want <= self.zeros {
            return Some(0);
        }
        let mut seen = self.zeros;
        for (i, &c) in self.buckets.iter().enumerate() {
            // Bucket 0 shares its count with the zeros already consumed.
            let c = if i == 0 { c.saturating_sub(self.zeros) } else { c };
            seen += c;
            if seen >= want {
                let edge = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return Some(edge.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median (upper-edge estimate).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.zeros += other.zeros;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Per-direction attribution histograms: one [`Hist`] per component plus
/// the end-to-end distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AttrHists {
    /// Issue → ingress-accept.
    pub source_stall: Hist,
    /// Ingress-accept → MC enqueue.
    pub fabric_transit: Hist,
    /// MC enqueue → first DRAM command.
    pub mc_queue: Hist,
    /// First DRAM command → data at the controller.
    pub dram_service: Hist,
    /// Response queue + return fabric.
    pub return_path: Hist,
    /// Issue → delivery.
    pub end_to_end: Hist,
}

impl AttrHists {
    fn record(&mut self, a: &Attribution) {
        self.source_stall.record(a.source_stall);
        self.fabric_transit.record(a.fabric_transit);
        self.mc_queue.record(a.mc_queue);
        self.dram_service.record(a.dram_service);
        self.return_path.record(a.return_path);
        self.end_to_end.record(a.total());
    }

    /// Adds another set of attribution histograms into this one.
    pub fn merge(&mut self, other: &AttrHists) {
        self.source_stall.merge(&other.source_stall);
        self.fabric_transit.merge(&other.fabric_transit);
        self.mc_queue.merge(&other.mc_queue);
        self.dram_service.merge(&other.dram_service);
        self.return_path.merge(&other.return_path);
        self.end_to_end.merge(&other.end_to_end);
    }

    /// `(name, histogram)` pairs in pipeline order, for rendering.
    pub fn components(&self) -> [(&'static str, &Hist); 6] {
        [
            ("source-stall", &self.source_stall),
            ("fabric-transit", &self.fabric_transit),
            ("mc-queue", &self.mc_queue),
            ("dram-service", &self.dram_service),
            ("return-path", &self.return_path),
            ("end-to-end", &self.end_to_end),
        ]
    }
}

/// The lifecycle tracer: a side-table of live [`TxnRecord`]s, a bounded
/// log of delivered records (in delivery order — deterministic), and the
/// per-direction attribution histograms.
///
/// Components hold it through a [`SharedTracer`] handle, which routes
/// every stamp to a per-shard partition so concurrent execution domains
/// never contend on one table.
#[derive(Debug, Clone)]
pub struct Tracer {
    live: HashMap<TxnKey, TxnRecord, BuildKeyHasher>,
    done: Vec<TxnRecord>,
    capacity: usize,
    dropped: u64,
    /// Attribution of delivered reads.
    pub read_attr: AttrHists,
    /// Attribution of delivered writes.
    pub write_attr: AttrHists,
}

/// Shared, thread-safe handle to a partitioned [`Tracer`].
///
/// The side-table is split into one partition per execution domain (shard),
/// keyed by the *issuing master*: master `m` stamps into partition
/// `m / masters_per_part`. Every lifecycle stamp of one transaction —
/// ingress, lateral hops, MC enqueue, DRAM issue, delivery — carries the
/// issuing master, so a transaction lives its whole life in one partition
/// no matter which shard touches it. Partitioning is fixed at construction
/// (always one partition per fabric shard, regardless of the run policy),
/// which keeps traced runs bit-identical between sequential and parallel
/// execution:
///
/// * a partition's `done` log is appended only by the domain that owns the
///   issuing masters, in that domain's deterministic delivery order;
/// * cross-domain stamps (a lateral hop recorded by a transit shard) mutate
///   only the transaction's own record, so their arrival order across
///   domains is irrelevant;
/// * [`SharedTracer::snapshot`] merges the partitions into one [`Tracer`]
///   whose record order — stable-sorted by `(delivered_at, master)` — is
///   exactly the old monolithic delivery order.
///
/// The retained-record cap applies *per partition*.
#[derive(Debug, Clone)]
pub struct SharedTracer {
    parts: Arc<[Mutex<Tracer>]>,
    masters_per_part: usize,
}

impl SharedTracer {
    #[inline]
    fn part(&self, master: u16) -> &Mutex<Tracer> {
        let idx = (master as usize / self.masters_per_part).min(self.parts.len() - 1);
        &self.parts[idx]
    }

    /// Stamp: the fabric accepted `txn` at its ingress port.
    #[inline]
    pub fn ingress_accept(&self, now: Cycle, txn: &Transaction) {
        self.part(txn.master.0).lock().unwrap().ingress_accept(now, txn);
    }

    /// Stamp: the flit of `(master, seq)` was granted onto a lateral bus.
    #[inline]
    pub fn lateral_hop(&self, now: Cycle, master: u16, seq: u64) {
        self.part(master).lock().unwrap().lateral_hop(now, master, seq);
    }

    /// Stamp: memory controller `port` enqueued `txn`.
    #[inline]
    pub fn mc_enqueue(&self, now: Cycle, txn: &Transaction, port: u16) {
        self.part(txn.master.0).lock().unwrap().mc_enqueue(now, txn, port);
    }

    /// Stamp: first DRAM command / data burst / service completion times.
    #[inline]
    pub fn dram_issue(
        &self,
        txn: &Transaction,
        cmd_at: Cycle,
        data_start_at: Cycle,
        done_at: Cycle,
    ) {
        self.part(txn.master.0).lock().unwrap().dram_issue(txn, cmd_at, data_start_at, done_at);
    }

    /// Stamp: the completion reached its master.
    #[inline]
    pub fn delivered(&self, now: Cycle, txn: &Transaction) {
        self.part(txn.master.0).lock().unwrap().delivered(now, txn);
    }

    /// Number of partitions (one per fabric shard).
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Merges all partitions into one coherent [`Tracer`] view.
    ///
    /// Delivered records are stable-sorted by `(delivered_at, master)`;
    /// because partitions cover contiguous ascending master ranges and each
    /// partition's log is already in delivery order, the merged order equals
    /// the monolithic tracer's delivery order. Call this only at a quiescent
    /// point (between run windows); it clones the retained records.
    pub fn snapshot(&self) -> Tracer {
        let mut merged = self.parts[0].lock().unwrap().clone();
        for part in &self.parts[1..] {
            let p = part.lock().unwrap();
            merged.live.extend(p.live.iter().map(|(k, v)| (*k, *v)));
            merged.done.extend_from_slice(&p.done);
            merged.capacity += p.capacity;
            merged.dropped += p.dropped;
            merged.read_attr.merge(&p.read_attr);
            merged.write_attr.merge(&p.write_attr);
        }
        if self.parts.len() > 1 {
            merged.done.sort_by_key(|r| (r.delivered_at, r.master));
        }
        merged
    }
}

/// Default cap on retained delivered records.
pub const DEFAULT_RECORD_CAP: usize = 1 << 16;

impl Tracer {
    /// A tracer retaining up to `record_cap` delivered records (histograms
    /// keep aggregating past the cap; `dropped()` counts the overflow).
    pub fn new(record_cap: usize) -> Tracer {
        Tracer {
            live: HashMap::with_capacity_and_hasher(4096, BuildKeyHasher::default()),
            done: Vec::new(),
            capacity: record_cap,
            dropped: 0,
            read_attr: AttrHists::default(),
            write_attr: AttrHists::default(),
        }
    }

    /// A shared single-partition tracer (monolithic fabrics).
    pub fn shared(record_cap: usize) -> SharedTracer {
        Tracer::sharded(record_cap, 1, usize::MAX)
    }

    /// A shared tracer with one partition per fabric shard. Master `m`
    /// stamps into partition `m / masters_per_part` (clamped to the last
    /// partition); `record_cap` applies per partition.
    pub fn sharded(record_cap: usize, parts: usize, masters_per_part: usize) -> SharedTracer {
        let parts = parts.max(1);
        let table: Vec<Mutex<Tracer>> =
            (0..parts).map(|_| Mutex::new(Tracer::new(record_cap))).collect();
        SharedTracer { parts: table.into(), masters_per_part: masters_per_part.max(1) }
    }

    /// Stamp: the fabric accepted `txn` at its ingress port. Creates the
    /// record (issue time is carried by the transaction itself).
    pub fn ingress_accept(&mut self, now: Cycle, txn: &Transaction) {
        let mut rec = TxnRecord::new(txn);
        rec.ingress_at = Some(now);
        self.live.insert(TxnKey::of(txn), rec);
    }

    /// Stamp: the flit of `(master, seq)` was granted onto a lateral bus
    /// (either direction). Unknown keys are ignored — a hop can only
    /// follow an ingress-accept, so this tolerates tracers attached
    /// mid-run.
    pub fn lateral_hop(&mut self, now: Cycle, master: u16, seq: u64) {
        if let Some(rec) = self.live.get_mut(&TxnKey { master, seq }) {
            if (rec.hops as usize) < MAX_HOPS {
                rec.hop_at[rec.hops as usize] = now;
            }
            rec.hops = rec.hops.saturating_add(1);
        }
    }

    /// Stamp: memory controller `port` enqueued `txn`.
    pub fn mc_enqueue(&mut self, now: Cycle, txn: &Transaction, port: u16) {
        if let Some(rec) = self.live.get_mut(&TxnKey::of(txn)) {
            rec.mc_enqueue_at = Some(now);
            rec.port = port;
        }
    }

    /// Stamp: the controller issued the first DRAM command at `cmd_at`;
    /// data moves at `data_start_at` and the service (including PHY return
    /// for reads) finishes at `done_at`.
    pub fn dram_issue(
        &mut self,
        txn: &Transaction,
        cmd_at: Cycle,
        data_start_at: Cycle,
        done_at: Cycle,
    ) {
        if let Some(rec) = self.live.get_mut(&TxnKey::of(txn)) {
            rec.dram_cmd_at = Some(cmd_at);
            rec.data_start_at = Some(data_start_at);
            rec.dram_done_at = Some(done_at);
        }
    }

    /// Stamp: the completion reached its master. Finalises the record,
    /// aggregates its attribution, and retires it from the live table.
    pub fn delivered(&mut self, now: Cycle, txn: &Transaction) {
        let Some(mut rec) = self.live.remove(&TxnKey::of(txn)) else { return };
        rec.delivered_at = Some(now);
        if let Some(attr) = rec.attribution() {
            match rec.dir {
                Dir::Read => self.read_attr.record(&attr),
                Dir::Write => self.write_attr.record(&attr),
            }
        }
        if self.done.len() < self.capacity {
            self.done.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Delivered records in delivery order (bounded by the record cap).
    pub fn records(&self) -> &[TxnRecord] {
        &self.done
    }

    /// Delivered records beyond the cap (aggregated but not retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Transactions currently in flight (stamped but not delivered).
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Attribution histograms for one direction.
    pub fn attr(&self, dir: Dir) -> &AttrHists {
        match dir {
            Dir::Read => &self.read_attr,
            Dir::Write => &self.write_attr,
        }
    }

    /// Total delivered transactions (retained + dropped).
    pub fn delivered_count(&self) -> u64 {
        self.done.len() as u64 + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AxiId, BurstLen, MasterId};

    fn txn(master: u16, seq: u64, dir: Dir, issued_at: Cycle) -> Transaction {
        Transaction::new(MasterId(master), AxiId(0), 0x1000, BurstLen::of(4), dir, issued_at, seq)
            .unwrap()
    }

    #[test]
    fn full_read_lifecycle_attribution_sums_to_e2e() {
        let mut t = Tracer::new(16);
        let x = txn(3, 7, Dir::Read, 10);
        t.ingress_accept(14, &x);
        t.lateral_hop(16, 3, 7);
        t.lateral_hop(18, 3, 7);
        t.mc_enqueue(25, &x, 12);
        t.dram_issue(&x, 30, 33, 48);
        t.delivered(60, &x);
        let rec = &t.records()[0];
        assert_eq!(rec.hops, 2);
        assert_eq!(rec.port, 12);
        let a = rec.attribution().unwrap();
        assert_eq!(a.source_stall, 4);
        assert_eq!(a.fabric_transit, 11);
        assert_eq!(a.mc_queue, 5);
        assert_eq!(a.dram_service, 18);
        assert_eq!(a.return_path, 12);
        assert_eq!(a.total(), rec.end_to_end().unwrap());
        assert_eq!(t.read_attr.end_to_end.count(), 1);
        assert_eq!(t.live_len(), 0);
    }

    #[test]
    fn posted_write_attributes_nothing_to_dram() {
        let mut t = Tracer::new(16);
        let x = txn(0, 0, Dir::Write, 0);
        t.ingress_accept(2, &x);
        t.mc_enqueue(6, &x, 0);
        // DRAM stamps land *after* the ack has been delivered in real runs;
        // here they land before, and must still be excluded.
        t.dram_issue(&x, 100, 103, 140);
        t.delivered(9, &x);
        let a = t.records()[0].attribution().unwrap();
        assert_eq!(a.mc_queue, 0);
        assert_eq!(a.dram_service, 0);
        assert_eq!(a.return_path, 3);
        assert_eq!(a.total(), 9);
    }

    #[test]
    fn missing_stamps_inherit_and_still_sum() {
        let mut t = Tracer::new(16);
        let x = txn(1, 1, Dir::Read, 5);
        t.ingress_accept(8, &x);
        // No MC or DRAM stamps at all (e.g. delivered from a cache-like
        // shortcut or a tracer attached mid-flight).
        t.delivered(20, &x);
        let a = t.records()[0].attribution().unwrap();
        assert_eq!(a.total(), 15);
        assert_eq!(a.source_stall, 3);
        assert_eq!(a.return_path, 12);
    }

    #[test]
    fn record_cap_counts_drops_but_keeps_aggregating() {
        let mut t = Tracer::new(1);
        for seq in 0..3 {
            let x = txn(0, seq, Dir::Read, 0);
            t.ingress_accept(1, &x);
            t.delivered(10, &x);
        }
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.delivered_count(), 3);
        assert_eq!(t.read_attr.end_to_end.count(), 3);
    }

    #[test]
    fn hist_percentiles_ordered_and_bounded() {
        let mut h = Hist::default();
        for v in [0u64, 0, 1, 2, 3, 5, 8, 13, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        let p99 = h.p99().unwrap();
        let p999 = h.p999().unwrap();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        assert!(p999 <= h.max);
        assert_eq!(h.percentile(1.0).unwrap(), 1000);
        // 2/10 samples are exact zeros → p20 is exactly 0.
        assert_eq!(h.percentile(0.2).unwrap(), 0);
        assert_eq!(Hist::default().p50(), None);
    }

    #[test]
    fn hist_merge_matches_combined_recording() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        let mut c = Hist::default();
        for v in [1u64, 4, 9, 16] {
            a.record(v);
            c.record(v);
        }
        for v in [0u64, 25, 36] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn hop_overflow_is_counted_not_stamped() {
        let mut t = Tracer::new(4);
        let x = txn(2, 2, Dir::Read, 0);
        t.ingress_accept(1, &x);
        for i in 0..(MAX_HOPS as u64 + 3) {
            t.lateral_hop(2 + i, 2, 2);
        }
        t.delivered(50, &x);
        let rec = &t.records()[0];
        assert_eq!(rec.hops as usize, MAX_HOPS + 3);
        assert_eq!(rec.hop_at[MAX_HOPS - 1], 1 + MAX_HOPS as u64);
    }
}
