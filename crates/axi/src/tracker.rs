//! Outstanding-transaction accounting and AXI ordering rules.
//!
//! A bus master may have at most `max_outstanding` transactions in flight
//! per direction (the paper's `N_ot`). Responses for the *same* AXI ID
//! must arrive in issue order; different IDs may complete out of order —
//! the number of IDs in use is therefore the master's reorder window
//! (paper Fig. 6).

use std::collections::VecDeque;

use crate::types::{AxiId, Dir};

/// Per-master tracker of in-flight transactions.
#[derive(Debug, Clone)]
pub struct OutstandingTracker {
    max_outstanding: usize,
    /// In-flight sequence numbers per (dir, id); responses must retire the
    /// front entry of the matching queue.
    per_id: Vec<[VecDeque<u64>; 2]>,
    in_flight: [usize; 2],
}

fn dir_idx(dir: Dir) -> usize {
    match dir {
        Dir::Read => 0,
        Dir::Write => 1,
    }
}

impl OutstandingTracker {
    /// Tracker allowing `max_outstanding` in-flight transactions per
    /// direction, using AXI IDs `0..num_ids`.
    pub fn new(num_ids: usize, max_outstanding: usize) -> OutstandingTracker {
        assert!((1..=256).contains(&num_ids), "AXI IDs are 0..=255");
        assert!(max_outstanding >= 1);
        OutstandingTracker {
            max_outstanding,
            per_id: (0..num_ids).map(|_| [VecDeque::new(), VecDeque::new()]).collect(),
            in_flight: [0, 0],
        }
    }

    /// Number of distinct AXI IDs this tracker manages.
    #[inline]
    pub fn num_ids(&self) -> usize {
        self.per_id.len()
    }

    /// `true` if another transaction may be issued in `dir`.
    #[inline]
    pub fn can_issue(&self, dir: Dir) -> bool {
        self.in_flight[dir_idx(dir)] < self.max_outstanding
    }

    /// Transactions currently in flight in `dir`.
    #[inline]
    pub fn in_flight(&self, dir: Dir) -> usize {
        self.in_flight[dir_idx(dir)]
    }

    /// Total transactions in flight over both directions.
    #[inline]
    pub fn total_in_flight(&self) -> usize {
        self.in_flight[0] + self.in_flight[1]
    }

    /// Picks the ID for the next transaction: round-robin over the ID
    /// space by sequence number, spreading consecutive transactions over
    /// all IDs to maximise reorder freedom.
    pub fn pick_id(&self, seq: u64) -> AxiId {
        AxiId((seq % self.per_id.len() as u64) as u8)
    }

    /// Records the issue of transaction `seq` with `id` in `dir`.
    ///
    /// Panics if the outstanding limit would be exceeded (callers gate on
    /// [`OutstandingTracker::can_issue`]).
    pub fn issue(&mut self, dir: Dir, id: AxiId, seq: u64) {
        assert!(self.can_issue(dir), "outstanding limit exceeded");
        self.per_id[id.0 as usize][dir_idx(dir)].push_back(seq);
        self.in_flight[dir_idx(dir)] += 1;
    }

    /// Records the completion of a transaction and checks the same-ID
    /// ordering rule: the completed `seq` must be the oldest in flight for
    /// this (dir, id). Returns an error naming the violation otherwise.
    pub fn complete(&mut self, dir: Dir, id: AxiId, seq: u64) -> Result<(), OrderViolation> {
        let q = &mut self.per_id[id.0 as usize][dir_idx(dir)];
        match q.front() {
            Some(&front) if front == seq => {
                q.pop_front();
                self.in_flight[dir_idx(dir)] -= 1;
                Ok(())
            }
            Some(&front) => Err(OrderViolation { id, expected: front, got: seq }),
            None => Err(OrderViolation { id, expected: u64::MAX, got: seq }),
        }
    }
}

/// A same-ID response-ordering violation (a simulator bug if it occurs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderViolation {
    /// The AXI ID on which the violation occurred.
    pub id: AxiId,
    /// The oldest in-flight sequence number (expected next completion).
    pub expected: u64,
    /// The sequence number that actually completed.
    pub got: u64,
}

impl std::fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AXI ordering violation on ID {}: expected seq {}, got {}",
            self.id.0, self.expected, self.got
        )
    }
}

impl std::error::Error for OrderViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_outstanding_per_direction() {
        let mut t = OutstandingTracker::new(4, 2);
        t.issue(Dir::Read, AxiId(0), 0);
        t.issue(Dir::Read, AxiId(1), 1);
        assert!(!t.can_issue(Dir::Read));
        // Writes are an independent channel.
        assert!(t.can_issue(Dir::Write));
        t.issue(Dir::Write, AxiId(0), 2);
        assert_eq!(t.total_in_flight(), 3);
        t.complete(Dir::Read, AxiId(0), 0).unwrap();
        assert!(t.can_issue(Dir::Read));
    }

    #[test]
    fn same_id_in_order_ok() {
        let mut t = OutstandingTracker::new(1, 8);
        for s in 0..4 {
            t.issue(Dir::Read, AxiId(0), s);
        }
        for s in 0..4 {
            t.complete(Dir::Read, AxiId(0), s).unwrap();
        }
        assert_eq!(t.total_in_flight(), 0);
    }

    #[test]
    fn same_id_out_of_order_detected() {
        let mut t = OutstandingTracker::new(1, 8);
        t.issue(Dir::Read, AxiId(0), 0);
        t.issue(Dir::Read, AxiId(0), 1);
        let e = t.complete(Dir::Read, AxiId(0), 1).unwrap_err();
        assert_eq!(e.expected, 0);
        assert_eq!(e.got, 1);
        assert!(e.to_string().contains("ordering violation"));
    }

    #[test]
    fn different_ids_may_reorder() {
        let mut t = OutstandingTracker::new(2, 8);
        t.issue(Dir::Read, AxiId(0), 0);
        t.issue(Dir::Read, AxiId(1), 1);
        // Completing ID 1 before ID 0 is legal.
        t.complete(Dir::Read, AxiId(1), 1).unwrap();
        t.complete(Dir::Read, AxiId(0), 0).unwrap();
    }

    #[test]
    fn unknown_completion_is_violation() {
        let mut t = OutstandingTracker::new(1, 8);
        assert!(t.complete(Dir::Write, AxiId(0), 7).is_err());
    }

    #[test]
    fn pick_id_round_robins() {
        let t = OutstandingTracker::new(4, 8);
        assert_eq!(t.pick_id(0), AxiId(0));
        assert_eq!(t.pick_id(1), AxiId(1));
        assert_eq!(t.pick_id(4), AxiId(0));
        assert_eq!(t.pick_id(7), AxiId(3));
    }

    #[test]
    #[should_panic(expected = "outstanding limit")]
    fn issue_over_limit_panics() {
        let mut t = OutstandingTracker::new(1, 1);
        t.issue(Dir::Read, AxiId(0), 0);
        t.issue(Dir::Read, AxiId(0), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under random issue/complete interleavings that respect the
        /// protocol, the tracker never reports a violation and in-flight
        /// counts never exceed the limit.
        #[test]
        fn protocol_respecting_runs_are_clean(
            num_ids in 1usize..8,
            max_out in 1usize..16,
            ops in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut t = OutstandingTracker::new(num_ids, max_out);
            let mut seq = 0u64;
            // Model of in-flight (dir, id) queues mirroring legal behaviour.
            let mut inflight: Vec<(Dir, AxiId, u64)> = Vec::new();
            for issue in ops {
                if issue {
                    let dir = if seq.is_multiple_of(3) { Dir::Write } else { Dir::Read };
                    if t.can_issue(dir) {
                        let id = t.pick_id(seq);
                        t.issue(dir, id, seq);
                        inflight.push((dir, id, seq));
                        seq += 1;
                    }
                } else if !inflight.is_empty() {
                    // Complete the oldest entry of some (dir, id) class:
                    // pick the first in-flight element whose (dir, id)
                    // class it is the oldest member of — always legal.
                    let (dir, id, s) = inflight[0];
                    inflight.remove(0);
                    prop_assert!(t.complete(dir, id, s).is_ok());
                }
                prop_assert!(t.in_flight(Dir::Read) <= max_out);
                prop_assert!(t.in_flight(Dir::Write) <= max_out);
            }
        }
    }
}
