//! AXI transactions: validated read/write bursts.

use serde::{Deserialize, Serialize};

use crate::types::{Addr, AxiId, BurstLen, Cycle, Dir, MasterId, BEAT_BYTES};

/// Errors raised when constructing an invalid AXI transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// The start address is not aligned to the 32-byte beat size.
    ///
    /// Real AXI allows unaligned starts; the simulator restricts itself to
    /// aligned bursts because every workload in the paper uses them and it
    /// keeps DRAM column accounting exact.
    Unaligned(Addr),
    /// The burst would cross a 4 KiB boundary, which AXI forbids.
    Crosses4K { addr: Addr, bytes: u64 },
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Unaligned(a) => write!(f, "address {a:#x} is not 32-byte aligned"),
            TxnError::Crosses4K { addr, bytes } => {
                write!(f, "burst of {bytes} B at {addr:#x} crosses a 4 KiB boundary")
            }
        }
    }
}

impl std::error::Error for TxnError {}

/// A single AXI3 burst transaction.
///
/// `seq` is a per-master monotonically increasing sequence number used by
/// statistics and ordering checks; it is not part of the AXI protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Issuing bus master.
    pub master: MasterId,
    /// AXI ID; same-ID transactions must complete in order.
    pub id: AxiId,
    /// Start byte address (32-byte aligned).
    pub addr: Addr,
    /// Burst length in beats.
    pub burst: BurstLen,
    /// Read or write.
    pub dir: Dir,
    /// Cycle at which the master issued the transaction.
    pub issued_at: Cycle,
    /// Per-master sequence number.
    pub seq: u64,
}

impl Transaction {
    /// Validates and creates a transaction.
    pub fn new(
        master: MasterId,
        id: AxiId,
        addr: Addr,
        burst: BurstLen,
        dir: Dir,
        issued_at: Cycle,
        seq: u64,
    ) -> Result<Transaction, TxnError> {
        if !addr.is_multiple_of(BEAT_BYTES) {
            return Err(TxnError::Unaligned(addr));
        }
        let bytes = burst.bytes();
        if addr / 4096 != (addr + bytes - 1) / 4096 {
            return Err(TxnError::Crosses4K { addr, bytes });
        }
        Ok(Transaction { master, id, addr, burst, dir, issued_at, seq })
    }

    /// Payload size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.burst.bytes()
    }

    /// Exclusive end address of the burst.
    #[inline]
    pub fn end_addr(&self) -> Addr {
        self.addr + self.bytes()
    }
}

impl Transaction {
    /// Beats this transaction occupies on one hop of the *forward*
    /// (master→memory) path: one slot for the AR flit of a read, or one
    /// slot per W data beat for a write (the AW command overlaps the first
    /// data beat, as on real AXI where AW and W are parallel channels).
    #[inline]
    pub fn fwd_link_cycles(&self) -> u64 {
        match self.dir {
            Dir::Read => 1,
            Dir::Write => self.burst.beats() as u64,
        }
    }

    /// Cycles the completion of this transaction occupies on one hop of
    /// the *return* (memory→master) path: one cycle per R data beat for a
    /// read, one cycle for the B acknowledge of a write.
    #[inline]
    pub fn ret_link_cycles(&self) -> u64 {
        match self.dir {
            Dir::Read => self.burst.beats() as u64,
            Dir::Write => 1,
        }
    }
}

/// A completed transaction travelling back towards its master: read data
/// (R beats) or a write acknowledge (B). Produced by the memory
/// controller, routed by the interconnect, consumed by the issuing master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The original transaction.
    pub txn: Transaction,
    /// Cycle at which the memory controller produced the completion.
    pub produced_at: Cycle,
}

/// Builder that stamps out a stream of transactions for one master,
/// managing sequence numbers and splitting requests at 4 KiB boundaries.
#[derive(Debug, Clone)]
pub struct TxnBuilder {
    master: MasterId,
    next_seq: u64,
}

impl TxnBuilder {
    /// A builder for the given master, starting at sequence number 0.
    pub fn new(master: MasterId) -> TxnBuilder {
        TxnBuilder { master, next_seq: 0 }
    }

    /// The master this builder issues for.
    #[inline]
    pub fn master(&self) -> MasterId {
        self.master
    }

    /// Number of transactions issued so far.
    #[inline]
    pub fn issued(&self) -> u64 {
        self.next_seq
    }

    /// Creates the next transaction in sequence.
    ///
    /// The address must be beat-aligned and the burst must not cross a
    /// 4 KiB boundary (callers generate compliant streams; use
    /// [`TxnBuilder::split`] to chop an arbitrary region into legal bursts).
    pub fn issue(
        &mut self,
        id: AxiId,
        addr: Addr,
        burst: BurstLen,
        dir: Dir,
        now: Cycle,
    ) -> Result<Transaction, TxnError> {
        let t = Transaction::new(self.master, id, addr, burst, dir, now, self.next_seq)?;
        self.next_seq += 1;
        Ok(t)
    }

    /// Splits an aligned byte region into the maximal sequence of legal
    /// AXI3 bursts of at most `max_burst` beats, respecting the 4 KiB rule.
    ///
    /// Returns `(addr, burst)` pairs; the caller issues them in order.
    pub fn split(start: Addr, bytes: u64, max_burst: BurstLen) -> Vec<(Addr, BurstLen)> {
        assert!(start.is_multiple_of(BEAT_BYTES), "region start must be beat-aligned");
        assert!(bytes.is_multiple_of(BEAT_BYTES), "region size must be a whole number of beats");
        let mut out = Vec::new();
        let mut addr = start;
        let mut left = bytes;
        while left > 0 {
            let to_4k = 4096 - (addr % 4096);
            let chunk = left.min(to_4k).min(max_burst.bytes());
            let beats = (chunk / BEAT_BYTES) as u8;
            out.push((addr, BurstLen::of(beats)));
            addr += chunk;
            left -= chunk;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(addr: Addr, beats: u8) -> Result<Transaction, TxnError> {
        Transaction::new(MasterId(0), AxiId(0), addr, BurstLen::of(beats), Dir::Read, 0, 0)
    }

    #[test]
    fn rejects_unaligned() {
        assert_eq!(mk(31, 1).unwrap_err(), TxnError::Unaligned(31));
        assert!(mk(32, 1).is_ok());
    }

    #[test]
    fn rejects_4k_crossing() {
        // 512 B burst starting 256 B below a 4 KiB boundary crosses it.
        let addr = 4096 - 256;
        assert!(matches!(mk(addr, 16), Err(TxnError::Crosses4K { .. })));
        // Ending exactly on the boundary is legal.
        assert!(mk(4096 - 512, 16).is_ok());
    }

    #[test]
    fn bytes_and_end_addr() {
        let t = mk(4096, 16).unwrap();
        assert_eq!(t.bytes(), 512);
        assert_eq!(t.end_addr(), 4096 + 512);
    }

    #[test]
    fn builder_sequences() {
        let mut b = TxnBuilder::new(MasterId(3));
        let t0 = b.issue(AxiId(0), 0, BurstLen::of(1), Dir::Write, 5).unwrap();
        let t1 = b.issue(AxiId(1), 32, BurstLen::of(2), Dir::Read, 6).unwrap();
        assert_eq!(t0.seq, 0);
        assert_eq!(t1.seq, 1);
        assert_eq!(b.issued(), 2);
        assert_eq!(t1.master, MasterId(3));
        assert_eq!(t1.issued_at, 6);
    }

    #[test]
    fn split_respects_4k_and_max_burst() {
        // 1 KiB starting 256 B below a 4 KiB boundary.
        let parts = TxnBuilder::split(4096 - 256, 1024, BurstLen::of(16));
        assert_eq!(parts[0], (4096 - 256, BurstLen::of(8)));
        assert_eq!(parts[1], (4096, BurstLen::of(16)));
        assert_eq!(parts[2], (4096 + 512, BurstLen::of(8)));
        let total: u64 = parts.iter().map(|(_, b)| b.bytes()).sum();
        assert_eq!(total, 1024);
    }

    #[test]
    fn split_small_bursts() {
        let parts = TxnBuilder::split(0, 256, BurstLen::of(2));
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|(_, b)| b.beats() == 2));
    }

    #[test]
    fn display_errors() {
        let e = mk(31, 1).unwrap_err().to_string();
        assert!(e.contains("aligned"), "{e}");
        let e = mk(4096 - 32, 16).unwrap_err().to_string();
        assert!(e.contains("4 KiB"), "{e}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every burst produced by `split` is individually legal and the
        /// pieces exactly tile the requested region.
        #[test]
        fn split_produces_legal_tiling(
            start_beats in 0u64..100_000,
            len_beats in 1u64..2_000,
            max in 1u8..=16,
        ) {
            let start = start_beats * BEAT_BYTES;
            let bytes = len_beats * BEAT_BYTES;
            let parts = TxnBuilder::split(start, bytes, BurstLen::of(max));
            // Tiling: contiguous, in order, exact total.
            let mut cursor = start;
            for &(a, b) in &parts {
                prop_assert_eq!(a, cursor);
                // Legality: constructing the transaction must succeed.
                let t = Transaction::new(
                    MasterId(0), AxiId(0), a, b, Dir::Read, 0, 0);
                prop_assert!(t.is_ok());
                prop_assert!(b.beats() <= max);
                cursor += b.bytes();
            }
            prop_assert_eq!(cursor, start + bytes);
        }

        /// A transaction accepted by the constructor never crosses 4 KiB
        /// and is always aligned.
        #[test]
        fn constructor_invariants(
            addr in 0u64..(1 << 33),
            beats in 1u8..=16,
        ) {
            let r = Transaction::new(
                MasterId(0), AxiId(0), addr, BurstLen::of(beats), Dir::Write, 0, 0);
            if let Ok(t) = r {
                prop_assert_eq!(t.addr % BEAT_BYTES, 0);
                prop_assert_eq!(t.addr / 4096, (t.end_addr() - 1) / 4096);
            }
        }
    }
}
