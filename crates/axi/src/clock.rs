//! Clock-domain arithmetic.
//!
//! The accelerator side of the HBM subsystem runs at a user-chosen clock
//! `facc` (the paper uses 300 MHz as the realistic timing-closure target
//! and 450 MHz as the theoretical-maximum reference). All bandwidth and
//! latency conversions between cycles, nanoseconds, and GB/s go through
//! [`ClockDomain`] so the whole workspace agrees on them.

use serde::{Deserialize, Serialize};

use crate::types::{Cycle, BEAT_BYTES};

/// A clock domain with a frequency in MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockDomain {
    freq_mhz: u32,
}

impl ClockDomain {
    /// 300 MHz — the conservative accelerator clock the paper settles on.
    pub const ACC_300: ClockDomain = ClockDomain { freq_mhz: 300 };
    /// 450 MHz — the clock needed to saturate a pseudo-channel with a
    /// 256-bit bus (14.4 GB/s).
    pub const ACC_450: ClockDomain = ClockDomain { freq_mhz: 450 };

    /// Creates a clock domain. Panics on a zero frequency.
    pub fn new(freq_mhz: u32) -> ClockDomain {
        assert!(freq_mhz > 0, "clock frequency must be non-zero");
        ClockDomain { freq_mhz }
    }

    /// The frequency in MHz.
    #[inline]
    pub fn freq_mhz(self) -> u32 {
        self.freq_mhz
    }

    /// Duration of one cycle in nanoseconds.
    #[inline]
    pub fn period_ns(self) -> f64 {
        1000.0 / self.freq_mhz as f64
    }

    /// Converts a cycle count in this domain to nanoseconds.
    #[inline]
    pub fn cycles_to_ns(self, cycles: Cycle) -> f64 {
        cycles as f64 * self.period_ns()
    }

    /// Converts a duration in nanoseconds to cycles in this domain,
    /// rounding up (a transfer that takes any part of a cycle occupies it).
    #[inline]
    pub fn ns_to_cycles(self, ns: f64) -> Cycle {
        (ns / self.period_ns()).ceil() as Cycle
    }

    /// Peak bandwidth of one 256-bit AXI channel in this domain, in GB/s
    /// (one beat per cycle). At 300 MHz this is 9.6 GB/s — the per-port
    /// limit visible throughout the paper's measurements.
    #[inline]
    pub fn port_bw_gbps(self) -> f64 {
        BEAT_BYTES as f64 * self.freq_mhz as f64 / 1000.0
    }

    /// Converts a byte count transferred over a cycle count in this domain
    /// to GB/s (1 GB = 1e9 B, matching the paper's units).
    pub fn throughput_gbps(self, bytes: u64, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        bytes as f64 / self.cycles_to_ns(cycles)
    }

    /// Rescales a cycle count from another clock domain into this one,
    /// rounding up.
    pub fn rescale_from(self, cycles: Cycle, from: ClockDomain) -> Cycle {
        // cycles * (self.freq / from.freq), computed without overflow for
        // realistic magnitudes (freqs < 2^32, cycles < 2^52 in practice).
        let num = cycles as u128 * self.freq_mhz as u128;
        num.div_ceil(from.freq_mhz as u128) as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_bandwidth_matches_paper() {
        // 256 bit * 300 MHz = 9.6 GB/s, 256 bit * 450 MHz = 14.4 GB/s.
        assert!((ClockDomain::ACC_300.port_bw_gbps() - 9.6).abs() < 1e-9);
        assert!((ClockDomain::ACC_450.port_bw_gbps() - 14.4).abs() < 1e-9);
    }

    #[test]
    fn latency_conversion_matches_paper() {
        // Paper: 48 cycles at 300 MHz = 160 ns, 17 cycles = ~57 ns.
        assert!((ClockDomain::ACC_300.cycles_to_ns(48) - 160.0).abs() < 1e-9);
        let w = ClockDomain::ACC_300.cycles_to_ns(17);
        assert!((w - 56.67).abs() < 0.01, "got {w}");
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let c = ClockDomain::ACC_300;
        assert_eq!(c.ns_to_cycles(0.0), 0);
        assert_eq!(c.ns_to_cycles(3.0), 1);
        assert_eq!(c.ns_to_cycles(3.34), 2);
    }

    #[test]
    fn throughput_computation() {
        // 32 B per cycle at 300 MHz = 9.6 GB/s.
        let c = ClockDomain::ACC_300;
        let gbps = c.throughput_gbps(32 * 1000, 1000);
        assert!((gbps - 9.6).abs() < 1e-9, "got {gbps}");
        assert_eq!(c.throughput_gbps(123, 0), 0.0);
    }

    #[test]
    fn rescale_between_domains() {
        // 48 cycles @300 MHz = 160 ns = 72 cycles @450 MHz.
        let c450 = ClockDomain::ACC_450;
        assert_eq!(c450.rescale_from(48, ClockDomain::ACC_300), 72);
        // Round-trips may round up but never down below the true duration.
        let back = ClockDomain::ACC_300.rescale_from(72, c450);
        assert_eq!(back, 48);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::new(0);
    }
}
