//! [`DelayQueue`] — the basic pipelined-link building block.
//!
//! Every hop in the simulated memory system (bus pipeline registers,
//! switch ingress/egress, controller queues) is a finite-capacity FIFO
//! whose entries become visible `latency` cycles after insertion. This
//! models a pipelined ready/valid AXI link: back-pressure arises naturally
//! when the queue is full, and wire/pipeline delay from the latency.
//!
//! Internally both [`DelayQueue`] and the raw [`StampedRing`] it wraps
//! are flat power-of-two rings with SoA storage: the `deadlines` live in
//! one contiguous `Box<[Cycle]>` and the payloads in a parallel slot
//! array. Horizon scans (`next_ready_at`, `ready_len`) touch only the
//! deadline array — a dense, branch-predictable walk that never loads a
//! payload — and the full (rounded) capacity is allocated up front, so a
//! queue never reallocates mid-simulation (see DESIGN.md §3.8).

use std::fmt;
use std::mem::MaybeUninit;

use crate::types::Cycle;

/// A flat ring of `(deadline, payload)` entries with SoA storage.
///
/// The raw primitive under [`DelayQueue`]: deadlines are supplied
/// explicitly by the caller and must be pushed in non-decreasing order
/// (checked in debug builds). That monotonicity is what makes the head
/// deadline the queue's next-event horizon and lets `ready_len` binary
/// search the deadline array.
///
/// Physical storage is `capacity.next_power_of_two()` slots so index
/// arithmetic is a mask, while the *logical* capacity (back-pressure
/// threshold) stays exactly what the caller asked for.
pub struct StampedRing<T> {
    /// Delivery deadline per occupied slot; parallel to `slots`.
    deadlines: Box<[Cycle]>,
    /// Payload storage; slots `head..head+len` (mod mask+1) are live.
    slots: Box<[MaybeUninit<T>]>,
    head: usize,
    len: usize,
    /// `physical_size - 1`; physical size is a power of two.
    mask: usize,
    /// Logical capacity: `push_at` back-pressures at this occupancy.
    capacity: usize,
    /// Largest occupancy ever observed (high-water mark).
    hwm: usize,
}

impl<T> StampedRing<T> {
    /// Creates a ring holding at most `capacity` items. Allocates the
    /// full power-of-two-rounded storage immediately; the ring never
    /// grows or reallocates afterwards.
    pub fn new(capacity: usize) -> StampedRing<T> {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        let physical = capacity.next_power_of_two();
        StampedRing {
            deadlines: vec![0; physical].into_boxed_slice(),
            slots: (0..physical).map(|_| MaybeUninit::uninit()).collect(),
            head: 0,
            len: 0,
            mask: physical - 1,
            capacity,
            hwm: 0,
        }
    }

    /// Physical slot index of logical position `i` (0 = oldest).
    #[inline(always)]
    fn phys(&self, i: usize) -> usize {
        (self.head + i) & self.mask
    }

    /// `true` if another item can be pushed.
    #[inline]
    pub fn can_push(&self) -> bool {
        self.len < self.capacity
    }

    /// Pushes an item that becomes poppable at `deadline`. Returns
    /// `Err(item)` when full so the caller can hold it (back-pressure)
    /// without cloning. Deadlines must be non-decreasing in push order.
    #[inline]
    pub fn push_at(&mut self, deadline: Cycle, item: T) -> Result<(), T> {
        if self.len >= self.capacity {
            return Err(item);
        }
        debug_assert!(
            self.len == 0 || deadline >= self.deadlines[self.phys(self.len - 1)],
            "StampedRing deadlines must be pushed in non-decreasing order"
        );
        let idx = self.phys(self.len);
        self.deadlines[idx] = deadline;
        self.slots[idx].write(item);
        self.len += 1;
        if self.len > self.hwm {
            self.hwm = self.len;
        }
        Ok(())
    }

    /// `true` if the head item's deadline has elapsed at `now`.
    #[inline]
    pub fn head_ready(&self, now: Cycle) -> bool {
        self.len > 0 && self.deadlines[self.head] <= now
    }

    /// The head entry's `(deadline, item)` regardless of readiness.
    #[inline]
    pub fn front(&self) -> Option<(Cycle, &T)> {
        if self.len == 0 {
            return None;
        }
        // SAFETY: `len > 0` means the head slot is initialized.
        Some((self.deadlines[self.head], unsafe { self.slots[self.head].assume_init_ref() }))
    }

    /// A reference to the head item if it is ready at `now`.
    #[inline]
    pub fn peek(&self, now: Cycle) -> Option<&T> {
        if self.head_ready(now) {
            // SAFETY: `head_ready` implies `len > 0`, so head is live.
            Some(unsafe { self.slots[self.head].assume_init_ref() })
        } else {
            None
        }
    }

    /// Removes and returns the head item unconditionally (caller has
    /// already checked readiness, or doesn't care — e.g. `clear`).
    #[inline]
    fn take_head(&mut self) -> T {
        debug_assert!(self.len > 0);
        let idx = self.head;
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        // SAFETY: the slot was live; advancing `head` marks it dead, so
        // this is the unique read of the value.
        unsafe { self.slots[idx].assume_init_read() }
    }

    /// Pops the head item if it is ready at `now`.
    #[inline]
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        if self.head_ready(now) {
            Some(self.take_head())
        } else {
            None
        }
    }

    /// Pops the head entry regardless of readiness, with its deadline.
    /// Used when draining one ring into another (e.g. lateral-boundary
    /// reconciliation) where the stamp must travel with the item.
    #[inline]
    pub fn pop_front(&mut self) -> Option<(Cycle, T)> {
        if self.len == 0 {
            return None;
        }
        let deadline = self.deadlines[self.head];
        Some((deadline, self.take_head()))
    }

    /// Number of items currently queued (ready or still in flight).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no items are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured (logical) capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Largest occupancy the ring has ever reached. Maintained by two
    /// ALU ops inside `push_at`; read once per measurement to feed the
    /// queue-depth gauges (never sampled inside the cycle loop).
    #[inline]
    pub fn high_water(&self) -> usize {
        self.hwm
    }

    /// Iterates over `(deadline, item)` pairs, oldest first, regardless
    /// of readiness.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &T)> {
        (0..self.len).map(move |i| {
            let p = self.phys(i);
            // SAFETY: logical positions `0..len` are always live.
            (self.deadlines[p], unsafe { self.slots[p].assume_init_ref() })
        })
    }

    /// Delivery deadline of the oldest queued item, if any. Because
    /// deadlines are monotone this is the earliest cycle `pop` can
    /// succeed — the ring's contribution to a next-event horizon.
    #[inline]
    pub fn next_ready_at(&self) -> Option<Cycle> {
        if self.len == 0 {
            None
        } else {
            Some(self.deadlines[self.head])
        }
    }

    /// Number of leading items whose deadline has elapsed at `now`.
    /// Binary search over the deadline array alone (monotone order).
    pub fn ready_len(&self, now: Cycle) -> usize {
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.deadlines[self.phys(mid)] <= now {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// A reference to the `idx`-th queued item (oldest = 0) if it is
    /// ready at `now`.
    pub fn peek_at(&self, now: Cycle, idx: usize) -> Option<&T> {
        if idx < self.len && self.deadlines[self.phys(idx)] <= now {
            // SAFETY: `idx < len` means the slot is live.
            Some(unsafe { self.slots[self.phys(idx)].assume_init_ref() })
        } else {
            None
        }
    }

    /// Delivery deadline of the `idx`-th queued item (oldest = 0), ready
    /// or not. Because deadlines are monotone this is exactly the first
    /// cycle at which the item enters the ready window — the hint an
    /// incremental scheduler folds into its next-event horizon when every
    /// already-examined entry is ineligible.
    #[inline]
    pub fn deadline_at(&self, idx: usize) -> Option<Cycle> {
        if idx < self.len {
            Some(self.deadlines[self.phys(idx)])
        } else {
            None
        }
    }

    /// Removes and returns the `idx`-th queued item (oldest = 0) if it
    /// is ready at `now`, preserving the order of the rest. The `idx`
    /// leading entries shift one slot toward the tail — `idx` is bounded
    /// by the scheduler window (single digits), never the queue depth.
    pub fn pop_at(&mut self, now: Cycle, idx: usize) -> Option<T> {
        if idx >= self.len || self.deadlines[self.phys(idx)] > now {
            return None;
        }
        let hole = self.phys(idx);
        // SAFETY: `idx < len` means the slot is live; it is overwritten
        // or retired from the live range below, so this is the unique read.
        let item = unsafe { self.slots[hole].assume_init_read() };
        for i in (0..idx).rev() {
            let from = self.phys(i);
            let to = self.phys(i + 1);
            self.deadlines[to] = self.deadlines[from];
            // SAFETY: moving a live value into the hole left by the
            // previous iteration (or the popped slot); `from` becomes
            // the new hole.
            let v = unsafe { self.slots[from].assume_init_read() };
            self.slots[to].write(v);
        }
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(item)
    }

    /// Drops every queued item. The high-water mark is preserved.
    pub fn clear(&mut self) {
        if std::mem::needs_drop::<T>() {
            while self.len > 0 {
                drop(self.take_head());
            }
        } else {
            self.len = 0;
        }
        self.head = 0;
    }
}

impl<T> Drop for StampedRing<T> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T: Clone> Clone for StampedRing<T> {
    fn clone(&self) -> StampedRing<T> {
        let mut out = StampedRing::new(self.capacity);
        for (deadline, item) in self.iter() {
            let pushed = out.push_at(deadline, item.clone());
            debug_assert!(pushed.is_ok());
        }
        out.hwm = self.hwm;
        out
    }
}

impl<T: fmt::Debug> fmt::Debug for StampedRing<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StampedRing")
            .field("capacity", &self.capacity)
            .field("items", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

/// A fixed-latency, finite-capacity FIFO.
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    ring: StampedRing<T>,
    latency: Cycle,
}

impl<T> DelayQueue<T> {
    /// Creates a queue holding at most `capacity` items, each becoming
    /// poppable `latency` cycles after being pushed.
    ///
    /// `capacity` must be at least 1. A `latency` of 0 makes items
    /// available in the same cycle they were pushed (combinational path).
    pub fn new(capacity: usize, latency: Cycle) -> DelayQueue<T> {
        DelayQueue { ring: StampedRing::new(capacity), latency }
    }

    /// `true` if another item can be pushed this cycle.
    #[inline]
    pub fn can_push(&self) -> bool {
        self.ring.can_push()
    }

    /// Pushes an item at cycle `now`. Returns `Err(item)` when full so the
    /// caller can hold it (back-pressure) without cloning.
    #[inline]
    pub fn push(&mut self, now: Cycle, item: T) -> Result<(), T> {
        self.ring.push_at(now + self.latency, item)
    }

    /// `true` if the head item is ready to pop at cycle `now`.
    #[inline]
    pub fn head_ready(&self, now: Cycle) -> bool {
        self.ring.head_ready(now)
    }

    /// A reference to the head item if it is ready at `now`.
    #[inline]
    pub fn peek(&self, now: Cycle) -> Option<&T> {
        self.ring.peek(now)
    }

    /// Pops the head item if it is ready at `now`.
    #[inline]
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        self.ring.pop(now)
    }

    /// Number of items currently queued (ready or still in flight).
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no items are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// The configured latency in cycles.
    #[inline]
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Largest occupancy the queue has ever reached (see
    /// [`StampedRing::high_water`]).
    #[inline]
    pub fn high_water(&self) -> usize {
        self.ring.high_water()
    }

    /// Iterates over all queued items, oldest first, regardless of
    /// readiness. Used by schedulers that look ahead into a window.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.ring.iter().map(|(_, item)| item)
    }

    /// Delivery time of the oldest queued item, if any.
    ///
    /// Because the latency is constant, ready times are monotone in queue
    /// order, so this is the earliest cycle at which `pop` can succeed —
    /// the queue's contribution to a next-event horizon.
    #[inline]
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.ring.next_ready_at()
    }

    /// Number of leading items whose delay has elapsed at `now`.
    ///
    /// Because the latency is constant, ready times are monotone in queue
    /// order, so the ready items are exactly the first `ready_len` ones.
    #[inline]
    pub fn ready_len(&self, now: Cycle) -> usize {
        self.ring.ready_len(now)
    }

    /// A reference to the `idx`-th queued item (oldest = 0) if it is
    /// ready at `now`.
    #[inline]
    pub fn peek_at(&self, now: Cycle, idx: usize) -> Option<&T> {
        self.ring.peek_at(now, idx)
    }

    /// Delivery time of the `idx`-th queued item (oldest = 0), ready or
    /// not — the first cycle at which it enters the ready window.
    #[inline]
    pub fn deadline_at(&self, idx: usize) -> Option<Cycle> {
        self.ring.deadline_at(idx)
    }

    /// Removes and returns the `idx`-th queued item (oldest = 0) if it is
    /// ready at `now`. Supports out-of-order service within a window
    /// (e.g. FR-FCFS memory scheduling); FIFO order is the `idx == 0` case.
    #[inline]
    pub fn pop_at(&mut self, now: Cycle, idx: usize) -> Option<T> {
        self.ring.pop_at(now, idx)
    }

    /// Drops every queued item.
    pub fn clear(&mut self) {
        self.ring.clear()
    }
}

/// Many small stamped rings in one lane-major allocation.
///
/// A batched (lockstep) kernel owns `lanes` independent queues of the
/// same small capacity — e.g. one stuck-completion slot per port per
/// sweep lane. Storing them as separate containers scatters the hot
/// "does *any* lane hold something, and when does the earliest head
/// mature?" scans across the heap; [`LaneRings`] instead keeps one
/// contiguous `head_deadline` array (`Cycle::MAX` = lane empty) so those
/// cross-lane questions are a single dense pass that never touches a
/// payload, plus lane-major deadline/payload arrays for the per-lane
/// ring operations.
///
/// Per lane the contract matches [`StampedRing`]: explicit deadlines,
/// non-decreasing in push order (checked in debug builds), `Err(item)`
/// back-pressure at the logical capacity. `Cycle::MAX` is reserved as
/// the empty sentinel and must not be pushed as a deadline.
pub struct LaneRings<T> {
    /// Deadline of each lane's head entry, `Cycle::MAX` when the lane is
    /// empty. The only array cross-lane scans touch.
    head_deadline: Box<[Cycle]>,
    /// Per-entry deadlines, lane-major: lane `l`, slot `j` lives at
    /// `l * phys + j` where `phys = mask + 1`.
    deadlines: Box<[Cycle]>,
    slots: Box<[MaybeUninit<T>]>,
    /// Per-lane ring head index (into the lane's physical window).
    head: Box<[u32]>,
    /// Per-lane occupancy.
    len: Box<[u32]>,
    lanes: usize,
    /// Logical per-lane capacity (back-pressure threshold).
    capacity: usize,
    /// `physical_per_lane - 1`; physical size is a power of two.
    mask: usize,
}

impl<T> LaneRings<T> {
    /// Creates `lanes` rings of `capacity` items each, fully allocated
    /// up front.
    pub fn new(lanes: usize, capacity: usize) -> LaneRings<T> {
        assert!(lanes >= 1, "need at least one lane");
        assert!(capacity >= 1, "queue capacity must be at least 1");
        let physical = capacity.next_power_of_two();
        LaneRings {
            head_deadline: vec![Cycle::MAX; lanes].into_boxed_slice(),
            deadlines: vec![0; lanes * physical].into_boxed_slice(),
            slots: (0..lanes * physical).map(|_| MaybeUninit::uninit()).collect(),
            head: vec![0; lanes].into_boxed_slice(),
            len: vec![0; lanes].into_boxed_slice(),
            lanes,
            capacity,
            mask: physical - 1,
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The per-lane logical capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A mutable view over all lanes.
    pub fn view_mut(&mut self) -> LaneRingsView<'_, T> {
        LaneRingsView {
            head_deadline: &mut self.head_deadline,
            deadlines: &mut self.deadlines,
            slots: &mut self.slots,
            head: &mut self.head,
            len: &mut self.len,
            capacity: self.capacity,
            mask: self.mask,
        }
    }

    /// Splits the lanes into disjoint mutable views of `lanes_per_view`
    /// consecutive lanes each — one per batch lane, so independent lane
    /// kernels can hold their slice simultaneously. `lanes` must divide
    /// evenly.
    pub fn views_mut(
        &mut self,
        lanes_per_view: usize,
    ) -> impl Iterator<Item = LaneRingsView<'_, T>> {
        assert!(lanes_per_view >= 1 && self.lanes.is_multiple_of(lanes_per_view));
        let phys = self.mask + 1;
        let (capacity, mask) = (self.capacity, self.mask);
        self.head_deadline
            .chunks_mut(lanes_per_view)
            .zip(self.deadlines.chunks_mut(lanes_per_view * phys))
            .zip(self.slots.chunks_mut(lanes_per_view * phys))
            .zip(self.head.chunks_mut(lanes_per_view))
            .zip(self.len.chunks_mut(lanes_per_view))
            .map(move |((((head_deadline, deadlines), slots), head), len)| LaneRingsView {
                head_deadline,
                deadlines,
                slots,
                head,
                len,
                capacity,
                mask,
            })
    }

    /// `true` when any lane holds an item — one pass over the contiguous
    /// head-deadline array.
    #[inline]
    pub fn any_occupied(&self) -> bool {
        self.head_deadline.iter().any(|&d| d != Cycle::MAX)
    }
}

impl<T> Drop for LaneRings<T> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<T>() {
            let mut v = self.view_mut();
            for lane in 0..v.lanes() {
                while v.pop_front(lane).is_some() {}
            }
        }
    }
}

/// A mutable window over consecutive lanes of a [`LaneRings`] (possibly
/// all of them). Lane indices are view-local.
pub struct LaneRingsView<'a, T> {
    head_deadline: &'a mut [Cycle],
    deadlines: &'a mut [Cycle],
    slots: &'a mut [MaybeUninit<T>],
    head: &'a mut [u32],
    len: &'a mut [u32],
    capacity: usize,
    mask: usize,
}

impl<T> LaneRingsView<'_, T> {
    /// Lanes in this view.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.head_deadline.len()
    }

    /// Physical index of `lane`'s logical position `i` (0 = oldest).
    #[inline(always)]
    fn phys(&self, lane: usize, i: usize) -> usize {
        lane * (self.mask + 1) + ((self.head[lane] as usize + i) & self.mask)
    }

    /// Re-splits this view into disjoint sub-views of `lanes_per_chunk`
    /// consecutive lanes (for per-shard domains inside a lane kernel).
    pub fn chunks_mut(
        &mut self,
        lanes_per_chunk: usize,
    ) -> impl Iterator<Item = LaneRingsView<'_, T>> {
        assert!(lanes_per_chunk >= 1 && self.lanes().is_multiple_of(lanes_per_chunk));
        let phys = self.mask + 1;
        let (capacity, mask) = (self.capacity, self.mask);
        self.head_deadline
            .chunks_mut(lanes_per_chunk)
            .zip(self.deadlines.chunks_mut(lanes_per_chunk * phys))
            .zip(self.slots.chunks_mut(lanes_per_chunk * phys))
            .zip(self.head.chunks_mut(lanes_per_chunk))
            .zip(self.len.chunks_mut(lanes_per_chunk))
            .map(move |((((head_deadline, deadlines), slots), head), len)| LaneRingsView {
                head_deadline,
                deadlines,
                slots,
                head,
                len,
                capacity,
                mask,
            })
    }

    /// Pushes an item onto `lane` that matures at `deadline`. Returns
    /// `Err(item)` when the lane is at capacity. Deadlines must be
    /// non-decreasing per lane and below `Cycle::MAX`.
    pub fn push(&mut self, lane: usize, deadline: Cycle, item: T) -> Result<(), T> {
        debug_assert!(deadline < Cycle::MAX, "Cycle::MAX is the empty sentinel");
        let len = self.len[lane] as usize;
        if len >= self.capacity {
            return Err(item);
        }
        debug_assert!(
            len == 0 || deadline >= self.deadlines[self.phys(lane, len - 1)],
            "LaneRings deadlines must be pushed in non-decreasing order"
        );
        let idx = self.phys(lane, len);
        self.deadlines[idx] = deadline;
        self.slots[idx].write(item);
        self.len[lane] = (len + 1) as u32;
        if len == 0 {
            self.head_deadline[lane] = deadline;
        }
        Ok(())
    }

    /// A reference to `lane`'s head item if it has matured at `now`.
    #[inline]
    pub fn peek(&self, lane: usize, now: Cycle) -> Option<&T> {
        if self.head_deadline[lane] <= now {
            // SAFETY: a non-MAX head deadline implies the lane is
            // non-empty, so its head slot is live.
            Some(unsafe { self.slots[self.phys(lane, 0)].assume_init_ref() })
        } else {
            None
        }
    }

    /// Pops `lane`'s head item if it has matured at `now`.
    #[inline]
    pub fn pop(&mut self, lane: usize, now: Cycle) -> Option<T> {
        if self.head_deadline[lane] <= now {
            self.pop_front(lane).map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Pops `lane`'s head entry regardless of maturity, with its
    /// deadline.
    pub fn pop_front(&mut self, lane: usize) -> Option<(Cycle, T)> {
        let len = self.len[lane] as usize;
        if len == 0 {
            return None;
        }
        let idx = self.phys(lane, 0);
        let deadline = self.deadlines[idx];
        // SAFETY: the slot is live; advancing `head` below marks it
        // dead, so this is the unique read of the value.
        let item = unsafe { self.slots[idx].assume_init_read() };
        self.head[lane] = ((self.head[lane] as usize + 1) & self.mask) as u32;
        self.len[lane] = (len - 1) as u32;
        self.head_deadline[lane] =
            if len == 1 { Cycle::MAX } else { self.deadlines[self.phys(lane, 0)] };
        Some((deadline, item))
    }

    /// Items queued in `lane`.
    #[inline]
    pub fn len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    /// `true` when `lane` holds nothing.
    #[inline]
    pub fn is_empty(&self, lane: usize) -> bool {
        self.len[lane] == 0
    }

    /// Deadline of `lane`'s head entry, if any.
    #[inline]
    pub fn next_ready_at(&self, lane: usize) -> Option<Cycle> {
        let d = self.head_deadline[lane];
        if d == Cycle::MAX {
            None
        } else {
            Some(d)
        }
    }

    /// `true` when any lane in the view holds an item — one pass over
    /// the contiguous head-deadline array, payloads untouched.
    #[inline]
    pub fn any_occupied(&self) -> bool {
        self.head_deadline.iter().any(|&d| d != Cycle::MAX)
    }

    /// The earliest head deadline across all lanes in the view (`None`
    /// when every lane is empty) — the view's contribution to a
    /// next-event horizon, from the same dense array.
    #[inline]
    pub fn min_head_deadline(&self) -> Option<Cycle> {
        let min = self.head_deadline.iter().copied().min()?;
        if min == Cycle::MAX {
            None
        } else {
            Some(min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_latency() {
        let mut q = DelayQueue::new(4, 3);
        q.push(10, "a").unwrap();
        assert!(q.pop(10).is_none());
        assert!(q.pop(12).is_none());
        assert_eq!(q.pop(13), Some("a"));
    }

    #[test]
    fn zero_latency_same_cycle() {
        let mut q = DelayQueue::new(2, 0);
        q.push(5, 42).unwrap();
        assert_eq!(q.pop(5), Some(42));
    }

    #[test]
    fn backpressure_when_full() {
        let mut q = DelayQueue::new(2, 0);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert!(!q.can_push());
        assert_eq!(q.push(0, 3), Err(3));
        q.pop(0);
        assert!(q.can_push());
        q.push(0, 3).unwrap();
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DelayQueue::new(8, 1);
        for i in 0..5 {
            q.push(i, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(100), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = DelayQueue::new(2, 0);
        q.push(0, 9).unwrap();
        assert_eq!(q.peek(0), Some(&9));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(0), Some(9));
    }

    #[test]
    fn pop_at_out_of_order() {
        let mut q = DelayQueue::new(8, 0);
        q.push(0, "a").unwrap();
        q.push(0, "b").unwrap();
        q.push(0, "c").unwrap();
        assert_eq!(q.pop_at(0, 1), Some("b"));
        assert_eq!(q.pop(0), Some("a"));
        assert_eq!(q.pop(0), Some("c"));
    }

    #[test]
    fn pop_at_respects_readiness() {
        let mut q = DelayQueue::new(8, 5);
        q.push(0, "a").unwrap();
        assert_eq!(q.pop_at(3, 0), None);
        assert_eq!(q.pop_at(5, 0), Some("a"));
    }

    #[test]
    fn head_not_ready_blocks_later_items() {
        // FIFO semantics: a ready item behind an unready head is not
        // poppable via `pop` (only via `pop_at` with explicit index).
        let mut q = DelayQueue::new(8, 10);
        q.push(0, "slow").unwrap();
        q.push(0, "also-slow").unwrap();
        assert!(q.pop(5).is_none());
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: DelayQueue<u8> = DelayQueue::new(0, 0);
    }

    #[test]
    fn non_power_of_two_capacity_enforced_exactly() {
        // Logical capacity 5 back-pressures at 5 even though physical
        // storage rounds up to 8.
        let mut q = DelayQueue::new(5, 0);
        for i in 0..5 {
            q.push(0, i).unwrap();
        }
        assert_eq!(q.push(0, 99), Err(99));
        assert_eq!(q.capacity(), 5);
    }

    #[test]
    fn wraparound_many_times() {
        let mut q = DelayQueue::new(3, 2);
        let mut expect = 0u64;
        for round in 0..50u64 {
            let now = round * 10;
            q.push(now, round * 2).unwrap();
            q.push(now, round * 2 + 1).unwrap();
            assert_eq!(q.pop(now + 2), Some(expect));
            assert_eq!(q.pop(now + 2), Some(expect + 1));
            expect += 2;
        }
        assert!(q.is_empty());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = DelayQueue::new(8, 0);
        assert_eq!(q.high_water(), 0);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        q.push(0, 3).unwrap();
        q.pop(0);
        q.pop(0);
        q.push(1, 4).unwrap();
        assert_eq!(q.high_water(), 3);
        q.clear();
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn clone_preserves_contents_and_drops_cleanly() {
        let mut q = DelayQueue::new(4, 1);
        q.push(0, String::from("x")).unwrap();
        q.push(1, String::from("y")).unwrap();
        q.pop(2);
        let mut c = q.clone();
        assert_eq!(c.len(), 1);
        assert_eq!(c.pop(10), Some(String::from("y")));
        assert_eq!(q.len(), 1); // original untouched
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn stamped_ring_explicit_deadlines() {
        let mut r: StampedRing<u32> = StampedRing::new(4);
        r.push_at(7, 1).unwrap();
        r.push_at(9, 2).unwrap();
        assert_eq!(r.next_ready_at(), Some(7));
        assert_eq!(r.front(), Some((7, &1)));
        assert!(r.pop(6).is_none());
        assert_eq!(r.pop(7), Some(1));
        assert_eq!(r.pop(9), Some(2));
    }

    #[test]
    fn lane_rings_basic_per_lane_fifo() {
        let mut lr: LaneRings<u32> = LaneRings::new(4, 2);
        let mut v = lr.view_mut();
        v.push(0, 5, 10).unwrap();
        v.push(0, 7, 11).unwrap();
        v.push(2, 3, 20).unwrap();
        // Lane 0 is at capacity.
        assert_eq!(v.push(0, 9, 12), Err(12));
        assert_eq!(v.len(0), 2);
        assert!(v.is_empty(1));
        // Maturity gates per lane.
        assert!(v.pop(0, 4).is_none());
        assert_eq!(v.peek(2, 3), Some(&20));
        assert_eq!(v.pop(0, 5), Some(10));
        assert_eq!(v.next_ready_at(0), Some(7));
        assert_eq!(v.pop_front(2), Some((3, 20)));
        assert!(v.pop_front(2).is_none());
        assert_eq!(v.pop(0, 7), Some(11));
        assert!(!v.any_occupied());
    }

    #[test]
    fn lane_rings_cross_lane_scans() {
        let mut lr: LaneRings<u8> = LaneRings::new(6, 1);
        assert!(!lr.any_occupied());
        {
            let mut v = lr.view_mut();
            assert_eq!(v.min_head_deadline(), None);
            v.push(5, 42, 1).unwrap();
            v.push(1, 17, 2).unwrap();
            assert!(v.any_occupied());
            assert_eq!(v.min_head_deadline(), Some(17));
        }
        assert!(lr.any_occupied());
        // Disjoint views see only their own lanes.
        let mut views: Vec<_> = lr.views_mut(2).collect();
        assert_eq!(views.len(), 3);
        assert!(views[0].any_occupied()); // lanes 0-1 hold lane 1's item
        assert!(!views[1].any_occupied()); // lanes 2-3 empty
        assert_eq!(views[2].min_head_deadline(), Some(42)); // lanes 4-5
        assert_eq!(views[0].pop(1, 17), Some(2));
        assert!(!views[0].any_occupied());
    }

    #[test]
    fn lane_rings_view_chunks_split_further() {
        let mut lr: LaneRings<u16> = LaneRings::new(4, 2);
        let mut v = lr.view_mut();
        for lane in 0..4 {
            v.push(lane, lane as Cycle + 1, lane as u16).unwrap();
        }
        let mut chunks: Vec<_> = v.chunks_mut(2).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].pop(0, 1), Some(0));
        assert_eq!(chunks[1].pop(1, 4), Some(3)); // global lane 3, local 1
        assert_eq!(chunks[1].min_head_deadline(), Some(3));
    }

    #[test]
    fn lane_rings_wraparound_and_drop() {
        let mut lr: LaneRings<String> = LaneRings::new(2, 3); // phys 4
        let mut v = lr.view_mut();
        for round in 0u64..10 {
            v.push(0, round, format!("a{round}")).unwrap();
            v.push(1, round, format!("b{round}")).unwrap();
            assert_eq!(v.pop(0, round), Some(format!("a{round}")));
            assert_eq!(v.pop(1, round), Some(format!("b{round}")));
        }
        // Leave live items behind so Drop has to run them.
        v.push(0, 100, String::from("tail")).unwrap();
        v.push(1, 100, String::from("tail")).unwrap();
        drop(lr);
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::VecDeque;

    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Items come out in insertion order and never before
        /// `push_time + latency`, under arbitrary interleavings of pushes
        /// and pops.
        #[test]
        fn fifo_and_latency_invariants(
            latency in 0u64..8,
            capacity in 1usize..16,
            ops in proptest::collection::vec(0u8..4, 1..200),
        ) {
            let mut q = DelayQueue::new(capacity, latency);
            let mut now = 0u64;
            let mut pushed = 0u64; // value == push order
            let mut popped_expect = 0u64;
            let mut push_times = std::collections::HashMap::new();
            for op in ops {
                match op {
                    0 | 1 => {
                        if q.push(now, pushed).is_ok() {
                            push_times.insert(pushed, now);
                            pushed += 1;
                        }
                        prop_assert!(q.len() <= capacity);
                    }
                    2 => {
                        if let Some(v) = q.pop(now) {
                            prop_assert_eq!(v, popped_expect);
                            let t = push_times[&v];
                            prop_assert!(now >= t + latency);
                            popped_expect += 1;
                        }
                    }
                    _ => now += 1,
                }
            }
        }
    }

    /// The pre-ring implementation, kept verbatim as the reference
    /// model: a `VecDeque<(Cycle, T)>` with the same contract.
    struct OracleQueue<T> {
        items: VecDeque<(Cycle, T)>,
        capacity: usize,
        latency: Cycle,
    }

    impl<T> OracleQueue<T> {
        fn new(capacity: usize, latency: Cycle) -> OracleQueue<T> {
            OracleQueue { items: VecDeque::new(), capacity, latency }
        }
        fn push(&mut self, now: Cycle, item: T) -> Result<(), T> {
            if self.items.len() >= self.capacity {
                return Err(item);
            }
            self.items.push_back((now + self.latency, item));
            Ok(())
        }
        fn peek(&self, now: Cycle) -> Option<&T> {
            match self.items.front() {
                Some((t, item)) if *t <= now => Some(item),
                _ => None,
            }
        }
        fn pop(&mut self, now: Cycle) -> Option<T> {
            match self.items.front() {
                Some((t, _)) if *t <= now => self.items.pop_front().map(|(_, i)| i),
                _ => None,
            }
        }
        fn peek_at(&self, now: Cycle, idx: usize) -> Option<&T> {
            match self.items.get(idx) {
                Some((t, item)) if *t <= now => Some(item),
                _ => None,
            }
        }
        fn pop_at(&mut self, now: Cycle, idx: usize) -> Option<T> {
            match self.items.get(idx) {
                Some((t, _)) if *t <= now => self.items.remove(idx).map(|(_, i)| i),
                _ => None,
            }
        }
        fn ready_len(&self, now: Cycle) -> usize {
            self.items.partition_point(|(t, _)| *t <= now)
        }
        fn next_ready_at(&self) -> Option<Cycle> {
            self.items.front().map(|(t, _)| *t)
        }
    }

    /// One scripted operation against both implementations.
    #[derive(Debug, Clone)]
    enum Op {
        Push,
        Pop,
        Peek,
        PopAt(usize),
        PeekAt(usize),
        ReadyLen,
        Advance(u64),
        Clear,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // (op selector, index / advance argument) → Op. Push and pop
        // dominate; clear is rare so runs build real occupancy.
        (0u8..17, 0usize..20, 1u64..5).prop_map(|(sel, idx, d)| match sel {
            0..=4 => Op::Push,
            5..=8 => Op::Pop,
            9..=10 => Op::Peek,
            11..=12 => Op::PopAt(idx),
            13 => Op::PeekAt(idx),
            14 => Op::ReadyLen,
            15 => Op::Advance(d),
            _ => Op::Clear,
        })
    }

    proptest! {
        /// Ring vs. VecDeque oracle: every observable — push results
        /// (including the full-queue `Err(item)` back-pressure return),
        /// pop/peek values, indexed access, ready counts, horizons,
        /// lengths — agrees on arbitrary operation interleavings. Small
        /// capacities force many wraparounds; `latency == 0` exercises
        /// the combinational path.
        #[test]
        fn ring_matches_vecdeque_oracle(
            latency in 0u64..6,
            capacity in 1usize..12,
            ops in proptest::collection::vec(op_strategy(), 1..300),
        ) {
            let mut ring = DelayQueue::new(capacity, latency);
            let mut oracle = OracleQueue::new(capacity, latency);
            let mut now = 0u64;
            let mut next = 0u64;
            for op in ops {
                match op {
                    Op::Push => {
                        let (a, b) = (ring.push(now, next), oracle.push(now, next));
                        prop_assert_eq!(a, b, "push disagreement at {}", now);
                        next += 1;
                    }
                    Op::Pop => {
                        prop_assert_eq!(ring.pop(now), oracle.pop(now));
                    }
                    Op::Peek => {
                        prop_assert_eq!(ring.peek(now), oracle.peek(now));
                        prop_assert_eq!(ring.head_ready(now), oracle.peek(now).is_some());
                    }
                    Op::PopAt(idx) => {
                        prop_assert_eq!(ring.pop_at(now, idx), oracle.pop_at(now, idx));
                    }
                    Op::PeekAt(idx) => {
                        prop_assert_eq!(ring.peek_at(now, idx), oracle.peek_at(now, idx));
                    }
                    Op::ReadyLen => {
                        prop_assert_eq!(ring.ready_len(now), oracle.ready_len(now));
                    }
                    Op::Advance(d) => now += d,
                    Op::Clear => {
                        ring.clear();
                        oracle.items.clear();
                    }
                }
                prop_assert_eq!(ring.len(), oracle.items.len());
                prop_assert_eq!(ring.is_empty(), oracle.items.is_empty());
                prop_assert_eq!(ring.next_ready_at(), oracle.next_ready_at());
                prop_assert!(ring.iter().eq(oracle.items.iter().map(|(_, i)| i)));
            }
        }

        /// Same oracle comparison for the raw [`StampedRing`] with
        /// explicit (non-decreasing) deadlines — the lateral-channel use
        /// where the stamp is not `now + constant`.
        #[test]
        fn stamped_ring_matches_oracle(
            capacity in 1usize..10,
            ops in proptest::collection::vec((0u8..4, 0u64..4), 1..200),
        ) {
            let mut ring: StampedRing<u64> = StampedRing::new(capacity);
            let mut oracle: VecDeque<(u64, u64)> = VecDeque::new();
            let mut now = 0u64;
            let mut stamp = 0u64;
            let mut next = 0u64;
            for (op, arg) in ops {
                match op {
                    0 | 1 => {
                        stamp += arg; // non-decreasing, decoupled from `now`
                        let a = ring.push_at(stamp, next);
                        let b = if oracle.len() >= capacity {
                            Err(next)
                        } else {
                            oracle.push_back((stamp, next));
                            Ok(())
                        };
                        prop_assert_eq!(a, b);
                        next += 1;
                    }
                    2 => {
                        let expect = match oracle.front() {
                            Some((t, _)) if *t <= now => oracle.pop_front().map(|(_, i)| i),
                            _ => None,
                        };
                        prop_assert_eq!(ring.pop(now), expect);
                    }
                    _ => now += arg,
                }
                prop_assert_eq!(ring.len(), oracle.len());
                prop_assert_eq!(ring.next_ready_at(), oracle.front().map(|(t, _)| *t));
                prop_assert_eq!(
                    ring.front().map(|(t, i)| (t, *i)),
                    oracle.front().map(|(t, i)| (*t, *i))
                );
                prop_assert!(ring.iter().map(|(t, i)| (t, *i)).eq(oracle.iter().copied()));
            }
        }

        /// [`LaneRings`] against one `VecDeque<(Cycle, T)>` oracle per
        /// lane: per-lane FIFO order, maturity gating, back-pressure,
        /// and the cross-lane head-deadline scans.
        #[test]
        fn lane_rings_match_per_lane_oracles(
            lanes in 1usize..6,
            capacity in 1usize..6,
            ops in proptest::collection::vec((0u8..5, 0usize..6, 0u64..4), 1..250),
        ) {
            let mut lr: LaneRings<u64> = LaneRings::new(lanes, capacity);
            let mut oracle: Vec<VecDeque<(u64, u64)>> = vec![VecDeque::new(); lanes];
            let mut stamps = vec![0u64; lanes];
            let mut now = 0u64;
            let mut next = 0u64;
            let mut v = lr.view_mut();
            for (op, lane, arg) in ops {
                let lane = lane % lanes;
                match op {
                    0 | 1 => {
                        stamps[lane] += arg; // per-lane non-decreasing
                        let a = v.push(lane, stamps[lane], next);
                        let b = if oracle[lane].len() >= capacity {
                            Err(next)
                        } else {
                            oracle[lane].push_back((stamps[lane], next));
                            Ok(())
                        };
                        prop_assert_eq!(a, b);
                        next += 1;
                    }
                    2 => {
                        let expect = match oracle[lane].front() {
                            Some((t, _)) if *t <= now => {
                                oracle[lane].pop_front().map(|(_, i)| i)
                            }
                            _ => None,
                        };
                        prop_assert_eq!(v.pop(lane, now), expect);
                    }
                    3 => {
                        prop_assert_eq!(
                            v.pop_front(lane),
                            oracle[lane].pop_front()
                        );
                    }
                    _ => now += arg,
                }
                prop_assert_eq!(v.len(lane), oracle[lane].len());
                prop_assert_eq!(
                    v.peek(lane, now),
                    match oracle[lane].front() {
                        Some((t, i)) if *t <= now => Some(i),
                        _ => None,
                    }
                );
                prop_assert_eq!(
                    v.next_ready_at(lane),
                    oracle[lane].front().map(|(t, _)| *t)
                );
                prop_assert_eq!(
                    v.any_occupied(),
                    oracle.iter().any(|o| !o.is_empty())
                );
                prop_assert_eq!(
                    v.min_head_deadline(),
                    oracle.iter().filter_map(|o| o.front().map(|(t, _)| *t)).min()
                );
            }
        }
    }
}
