//! [`DelayQueue`] — the basic pipelined-link building block.
//!
//! Every hop in the simulated memory system (bus pipeline registers,
//! switch ingress/egress, controller queues) is a finite-capacity FIFO
//! whose entries become visible `latency` cycles after insertion. This
//! models a pipelined ready/valid AXI link: back-pressure arises naturally
//! when the queue is full, and wire/pipeline delay from the latency.

use std::collections::VecDeque;

use crate::types::Cycle;

/// A fixed-latency, finite-capacity FIFO.
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    items: VecDeque<(Cycle, T)>,
    capacity: usize,
    latency: Cycle,
}

impl<T> DelayQueue<T> {
    /// Creates a queue holding at most `capacity` items, each becoming
    /// poppable `latency` cycles after being pushed.
    ///
    /// `capacity` must be at least 1. A `latency` of 0 makes items
    /// available in the same cycle they were pushed (combinational path).
    pub fn new(capacity: usize, latency: Cycle) -> DelayQueue<T> {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        DelayQueue { items: VecDeque::with_capacity(capacity.min(1024)), capacity, latency }
    }

    /// `true` if another item can be pushed this cycle.
    #[inline]
    pub fn can_push(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// Pushes an item at cycle `now`. Returns `Err(item)` when full so the
    /// caller can hold it (back-pressure) without cloning.
    pub fn push(&mut self, now: Cycle, item: T) -> Result<(), T> {
        if !self.can_push() {
            return Err(item);
        }
        self.items.push_back((now + self.latency, item));
        Ok(())
    }

    /// `true` if the head item is ready to pop at cycle `now`.
    #[inline]
    pub fn head_ready(&self, now: Cycle) -> bool {
        self.items.front().is_some_and(|(t, _)| *t <= now)
    }

    /// A reference to the head item if it is ready at `now`.
    pub fn peek(&self, now: Cycle) -> Option<&T> {
        match self.items.front() {
            Some((t, item)) if *t <= now => Some(item),
            _ => None,
        }
    }

    /// Pops the head item if it is ready at `now`.
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        if self.head_ready(now) {
            self.items.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Number of items currently queued (ready or still in flight).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured latency in cycles.
    #[inline]
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Iterates over all queued items, oldest first, regardless of
    /// readiness. Used by schedulers that look ahead into a window.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, item)| item)
    }

    /// Delivery time of the oldest queued item, if any.
    ///
    /// Because the latency is constant, ready times are monotone in queue
    /// order, so this is the earliest cycle at which `pop` can succeed —
    /// the queue's contribution to a next-event horizon.
    #[inline]
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.items.front().map(|(t, _)| *t)
    }

    /// Number of leading items whose delay has elapsed at `now`.
    ///
    /// Because the latency is constant, ready times are monotone in queue
    /// order, so the ready items are exactly the first `ready_len` ones.
    pub fn ready_len(&self, now: Cycle) -> usize {
        self.items.partition_point(|(t, _)| *t <= now)
    }

    /// A reference to the `idx`-th queued item (oldest = 0) if it is
    /// ready at `now`.
    pub fn peek_at(&self, now: Cycle, idx: usize) -> Option<&T> {
        match self.items.get(idx) {
            Some((t, item)) if *t <= now => Some(item),
            _ => None,
        }
    }

    /// Removes and returns the `idx`-th queued item (oldest = 0) if it is
    /// ready at `now`. Supports out-of-order service within a window
    /// (e.g. FR-FCFS memory scheduling); FIFO order is the `idx == 0` case.
    pub fn pop_at(&mut self, now: Cycle, idx: usize) -> Option<T> {
        match self.items.get(idx) {
            Some((t, _)) if *t <= now => self.items.remove(idx).map(|(_, item)| item),
            _ => None,
        }
    }

    /// Drops every queued item.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_latency() {
        let mut q = DelayQueue::new(4, 3);
        q.push(10, "a").unwrap();
        assert!(q.pop(10).is_none());
        assert!(q.pop(12).is_none());
        assert_eq!(q.pop(13), Some("a"));
    }

    #[test]
    fn zero_latency_same_cycle() {
        let mut q = DelayQueue::new(2, 0);
        q.push(5, 42).unwrap();
        assert_eq!(q.pop(5), Some(42));
    }

    #[test]
    fn backpressure_when_full() {
        let mut q = DelayQueue::new(2, 0);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert!(!q.can_push());
        assert_eq!(q.push(0, 3), Err(3));
        q.pop(0);
        assert!(q.can_push());
        q.push(0, 3).unwrap();
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DelayQueue::new(8, 1);
        for i in 0..5 {
            q.push(i, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(100), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = DelayQueue::new(2, 0);
        q.push(0, 9).unwrap();
        assert_eq!(q.peek(0), Some(&9));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(0), Some(9));
    }

    #[test]
    fn pop_at_out_of_order() {
        let mut q = DelayQueue::new(8, 0);
        q.push(0, "a").unwrap();
        q.push(0, "b").unwrap();
        q.push(0, "c").unwrap();
        assert_eq!(q.pop_at(0, 1), Some("b"));
        assert_eq!(q.pop(0), Some("a"));
        assert_eq!(q.pop(0), Some("c"));
    }

    #[test]
    fn pop_at_respects_readiness() {
        let mut q = DelayQueue::new(8, 5);
        q.push(0, "a").unwrap();
        assert_eq!(q.pop_at(3, 0), None);
        assert_eq!(q.pop_at(5, 0), Some("a"));
    }

    #[test]
    fn head_not_ready_blocks_later_items() {
        // FIFO semantics: a ready item behind an unready head is not
        // poppable via `pop` (only via `pop_at` with explicit index).
        let mut q = DelayQueue::new(8, 10);
        q.push(0, "slow").unwrap();
        q.push(0, "also-slow").unwrap();
        assert!(q.pop(5).is_none());
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: DelayQueue<u8> = DelayQueue::new(0, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Items come out in insertion order and never before
        /// `push_time + latency`, under arbitrary interleavings of pushes
        /// and pops.
        #[test]
        fn fifo_and_latency_invariants(
            latency in 0u64..8,
            capacity in 1usize..16,
            ops in proptest::collection::vec(0u8..4, 1..200),
        ) {
            let mut q = DelayQueue::new(capacity, latency);
            let mut now = 0u64;
            let mut pushed = 0u64; // value == push order
            let mut popped_expect = 0u64;
            let mut push_times = std::collections::HashMap::new();
            for op in ops {
                match op {
                    0 | 1 => {
                        if q.push(now, pushed).is_ok() {
                            push_times.insert(pushed, now);
                            pushed += 1;
                        }
                        prop_assert!(q.len() <= capacity);
                    }
                    2 => {
                        if let Some(v) = q.pop(now) {
                            prop_assert_eq!(v, popped_expect);
                            let t = push_times[&v];
                            prop_assert!(now >= t + latency);
                            popped_expect += 1;
                        }
                    }
                    _ => now += 1,
                }
            }
        }
    }
}
