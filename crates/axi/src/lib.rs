//! # hbm-axi — AXI3 protocol substrate
//!
//! Transaction-level model of the AXI3 bus protocol as used by the Xilinx
//! HBM memory subsystem on Virtex UltraScale+ devices: 256-bit data paths,
//! burst lengths of 1–16 beats, multiple outstanding transactions identified
//! by AXI IDs, independent read and write channels, and the 4 KiB burst
//! boundary rule.
//!
//! The crate provides:
//!
//! * [`Transaction`] — a validated AXI read or write burst,
//! * [`ClockDomain`] — cycle/time/bandwidth conversions for a clocked bus,
//! * [`DelayQueue`] — a finite-capacity pipelined stage (ready/valid link
//!   with fixed latency), the basic building block every simulated bus hop
//!   is made of,
//! * [`OutstandingTracker`] — per-ID in-flight accounting enforcing the
//!   AXI same-ID ordering rule,
//! * [`BeatCounter`] — burst payload accounting in 32-byte beats,
//! * [`instrument`] — opt-in per-transaction lifecycle tracing and latency
//!   attribution (a `(master, seq)`-keyed side-table of stamps; zero cost
//!   when no tracer is attached).
//!
//! All higher-level crates (`hbm-mem`, `hbm-fabric`, `hbm-mao`) move
//! [`Transaction`]s and beats through [`DelayQueue`]s, so timing semantics
//! are defined once, here.
//!
//! ## Example
//!
//! ```
//! use hbm_axi::{BurstLen, ClockDomain, Dir, MasterId, TxnBuilder, AxiId};
//!
//! // A BL-16 read burst from master 3 at 300 MHz:
//! let mut b = TxnBuilder::new(MasterId(3));
//! let txn = b.issue(AxiId(0), 0x1000, BurstLen::of(16), Dir::Read, 0).unwrap();
//! assert_eq!(txn.bytes(), 512);
//!
//! // One 256-bit port at 300 MHz carries 9.6 GB/s — the number behind
//! // the paper's hot-spot measurements.
//! assert!((ClockDomain::ACC_300.port_bw_gbps() - 9.6).abs() < 1e-9);
//! ```

pub mod clock;
pub mod instrument;
pub mod queue;
pub mod tracker;
pub mod transaction;
pub mod types;

pub use clock::ClockDomain;
pub use instrument::{Attribution, SharedTracer, Tracer, TxnKey, TxnRecord};
pub use queue::{DelayQueue, LaneRings, LaneRingsView, StampedRing};
pub use tracker::OutstandingTracker;
pub use transaction::{Completion, Transaction, TxnBuilder, TxnError};
pub use types::{Addr, AxiId, BeatCounter, BurstLen, Cycle, Dir, MasterId, PortId, BEAT_BYTES};
