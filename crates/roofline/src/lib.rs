//! # hbm-roofline — Roofline methodology and accelerator models
//!
//! The paper's §V evaluates its design guidelines by placing two matrix-
//! multiplication accelerators in a Roofline model whose bandwidth
//! ceiling is the *measured* HBM throughput (not the theoretical one —
//! the paper's central methodological point):
//!
//! * [`model`] — the Roofline itself: compute ceiling, bandwidth
//!   ceilings, attainable performance, ridge points, plot series
//!   (Fig. 7);
//! * [`accelerator`] — analytical models of Accelerator A (systolic PE
//!   array) and Accelerator B (adder tree): operational intensity,
//!   compute ceiling, resource utilisation, read/write ratio, speed-ups
//!   (Table V);
//! * [`matmul`] — functional software analogues of both dataflows,
//!   verified against a reference implementation (the reproduction's
//!   proof that the modelled dataflows compute the right thing);
//! * [`fpga`] — XCVU37P capacity numbers for utilisation percentages.
//!
//! ## Example
//!
//! ```
//! use hbm_roofline::accelerator::{AcceleratorA, AcceleratorModel};
//! use hbm_roofline::Roofline;
//!
//! // Accelerator A at P = 4 against the paper's measured bandwidths:
//! let acc = AcceleratorA { p: 4 };
//! let unopt = Roofline::new(acc.comp_gops(), 12.55);
//! let mao = Roofline::new(acc.comp_gops(), 403.75);
//! assert!(unopt.memory_bound(acc.op_intensity()));
//! assert!(!mao.memory_bound(acc.op_intensity()));
//! ```

pub mod accelerator;
pub mod fpga;
pub mod matmul;
pub mod model;
pub mod multi;

pub use accelerator::{AcceleratorA, AcceleratorB, AcceleratorModel, Table5Row};
pub use fpga::DeviceResources;
pub use model::{Roofline, RooflinePoint};
pub use multi::{Ceiling, MultiRoofline};
