//! Functional software analogues of the two accelerator dataflows.
//!
//! The paper's accelerators are RTL; this reproduction cannot synthesise
//! them, but it *can* prove that the modelled dataflows compute correct
//! results. [`systolic_matmul`] mimics Accelerator A: a weight-stationary
//! PE-array tile of one input is kept "resident" while the other input
//! streams through, accumulating outputs tile by tile. [`adder_tree_matmul`]
//! mimics Accelerator B: one input row is buffered, the other matrix
//! streams, and each output element is produced by a tree reduction over
//! partial products. Both are verified against [`reference_matmul`].
//!
//! Matrices are row-major `f32`; dimensions follow the paper's
//! `(Mh × Mw) · (Mw × Nw)` convention.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows × cols` elements.
    pub data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Maximum absolute element difference to another matrix.
    pub fn max_abs_diff(&self, o: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols));
        self.data.iter().zip(&o.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

/// Reference triple-loop matrix multiplication: `A (m×k) · B (k×n)`.
pub fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let av = a.at(i, kk);
            for j in 0..b.cols {
                *c.at_mut(i, j) += av * b.at(kk, j);
            }
        }
    }
    c
}

/// Accelerator A's dataflow: weight-stationary tiled multiplication.
///
/// The PE array holds a `tile × tile` block of `B`; rows of `A` stream
/// through it, producing partial output rows that are accumulated into
/// `C` (the memory traffic the paper analyses: `B` loaded once per tile,
/// `A` and `C` streamed — the 2:1 read/write ratio of Table V).
pub fn systolic_matmul(a: &Matrix, b: &Matrix, tile: usize) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert!(tile >= 1);
    let mut c = Matrix::zeros(a.rows, b.cols);
    // Loop over resident tiles of B.
    for k0 in (0..b.rows).step_by(tile) {
        let k1 = (k0 + tile).min(b.rows);
        for j0 in (0..b.cols).step_by(tile) {
            let j1 = (j0 + tile).min(b.cols);
            // "Load" the tile into the PE array (local copy = the PEs'
            // registers).
            let th = k1 - k0;
            let tw = j1 - j0;
            let mut resident = vec![0.0f32; th * tw];
            for (ti, kk) in (k0..k1).enumerate() {
                for (tj, j) in (j0..j1).enumerate() {
                    resident[ti * tw + tj] = b.at(kk, j);
                }
            }
            // Stream every row of A through the array.
            for i in 0..a.rows {
                for (tj, j) in (j0..j1).enumerate() {
                    let mut acc = 0.0f32;
                    for (ti, kk) in (k0..k1).enumerate() {
                        acc += a.at(i, kk) * resident[ti * tw + tj];
                    }
                    *c.at_mut(i, j) += acc;
                }
            }
        }
    }
    c
}

/// Accelerator B's dataflow: buffered rows of `A` with adder-tree
/// reduction.
///
/// A block of `rows_buf` rows of `A` and their partial sums stay in
/// local memory; `B` streams through column by column, and each output
/// element is reduced by a binary adder tree over the buffered products
/// (so only `B` is re-loaded per row block — the `Mh:1` read/write ratio
/// of Table V).
pub fn adder_tree_matmul(a: &Matrix, b: &Matrix, rows_buf: usize) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert!(rows_buf >= 1);
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i0 in (0..a.rows).step_by(rows_buf) {
        let i1 = (i0 + rows_buf).min(a.rows);
        // Stream B once per row block.
        for j in 0..b.cols {
            for i in i0..i1 {
                // Adder tree: reduce pairwise for a bit-exact tree order.
                let mut terms: Vec<f32> = (0..a.cols).map(|kk| a.at(i, kk) * b.at(kk, j)).collect();
                while terms.len() > 1 {
                    let mut next = Vec::with_capacity(terms.len().div_ceil(2));
                    for pair in terms.chunks(2) {
                        next.push(if pair.len() == 2 { pair[0] + pair[1] } else { pair[0] });
                    }
                    terms = next;
                }
                *c.at_mut(i, j) = terms.first().copied().unwrap_or(0.0);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: u32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            // Small integers keep f32 accumulation exact.
            (((r as u32 * 31 + c as u32 * 17 + seed) % 7) as f32) - 3.0
        })
    }

    #[test]
    fn reference_identity() {
        let a = sample(4, 4, 1);
        let i = Matrix::from_fn(4, 4, |r, c| (r == c) as u32 as f32);
        assert_eq!(reference_matmul(&a, &i), a);
    }

    #[test]
    fn reference_known_product() {
        let a = Matrix { rows: 2, cols: 2, data: vec![1.0, 2.0, 3.0, 4.0] };
        let b = Matrix { rows: 2, cols: 2, data: vec![5.0, 6.0, 7.0, 8.0] };
        let c = reference_matmul(&a, &b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn systolic_matches_reference_square() {
        let a = sample(16, 16, 1);
        let b = sample(16, 16, 2);
        let want = reference_matmul(&a, &b);
        for tile in [1, 3, 4, 16, 32] {
            let got = systolic_matmul(&a, &b, tile);
            assert!(want.max_abs_diff(&got) < 1e-3, "tile {tile}");
        }
    }

    #[test]
    fn systolic_matches_reference_rectangular() {
        let a = sample(7, 13, 3);
        let b = sample(13, 5, 4);
        let want = reference_matmul(&a, &b);
        let got = systolic_matmul(&a, &b, 4);
        assert!(want.max_abs_diff(&got) < 1e-3);
    }

    #[test]
    fn adder_tree_matches_reference() {
        let a = sample(12, 9, 5);
        let b = sample(9, 11, 6);
        let want = reference_matmul(&a, &b);
        for rows_buf in [1, 2, 5, 12, 100] {
            let got = adder_tree_matmul(&a, &b, rows_buf);
            assert!(want.max_abs_diff(&got) < 1e-3, "rows_buf {rows_buf}");
        }
    }

    #[test]
    fn empty_inner_dimension() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 3);
        let c = reference_matmul(&a, &b);
        assert!(c.data.iter().all(|&v| v == 0.0));
        let c = adder_tree_matmul(&a, &b, 2);
        assert!(c.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_abs_diff_reports_largest() {
        let a = Matrix { rows: 1, cols: 3, data: vec![1.0, 2.0, 3.0] };
        let b = Matrix { rows: 1, cols: 3, data: vec![1.0, 0.5, 3.25] };
        assert_eq!(a.max_abs_diff(&b), 1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
        (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
            (proptest::collection::vec(-4i8..=4, m * k), proptest::collection::vec(-4i8..=4, k * n))
                .prop_map(move |(da, db)| {
                    (
                        Matrix { rows: m, cols: k, data: da.iter().map(|&v| v as f32).collect() },
                        Matrix { rows: k, cols: n, data: db.iter().map(|&v| v as f32).collect() },
                    )
                })
        })
    }

    proptest! {
        /// Both dataflows agree with the reference for arbitrary small
        /// integer matrices and arbitrary tilings (exact in f32).
        #[test]
        fn dataflows_match_reference(
            (a, b) in small_matrix(10),
            tile in 1usize..8,
            rows_buf in 1usize..8,
        ) {
            let want = reference_matmul(&a, &b);
            let sys = systolic_matmul(&a, &b, tile);
            prop_assert!(want.max_abs_diff(&sys) == 0.0);
            let tree = adder_tree_matmul(&a, &b, rows_buf);
            prop_assert!(want.max_abs_diff(&tree) == 0.0);
        }
    }
}
