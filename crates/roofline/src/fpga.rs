//! FPGA device capacity for utilisation accounting.

use serde::{Deserialize, Serialize};

/// Programmable-logic resources of an FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceResources {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// BRAM tiles (36 Kb).
    pub bram: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl DeviceResources {
    /// The Virtex UltraScale+ XCVU37P used throughout the paper.
    pub const XCVU37P: DeviceResources =
        DeviceResources { luts: 1_303_680, ffs: 2_607_360, bram: 2_016, dsps: 9_024 };

    /// Whether a design using `pct` percent of the dominant resource
    /// fits (the paper's red/green colouring of Table V).
    pub fn fits(pct: f64) -> bool {
        pct <= 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcvu37p_capacity() {
        let d = DeviceResources::XCVU37P;
        assert_eq!(d.luts, 1_303_680);
        assert_eq!(d.dsps, 9_024);
    }

    #[test]
    fn fits_boundary() {
        assert!(DeviceResources::fits(100.0));
        assert!(!DeviceResources::fits(100.1));
    }
}
