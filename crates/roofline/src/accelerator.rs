//! Analytical models of the paper's two matrix-multiplication
//! accelerators (Table V).
//!
//! Both operate on 16-bit elements at 300 MHz and scale with the
//! parallelisation degree `P` (the number of bus masters used):
//!
//! * **Accelerator A** — a systolic PE array of side `16·P`. One input
//!   tile is resident; the other input and the output stream through.
//!   Its operational intensity grows with the array (more reuse), and
//!   its resource cost grows quadratically — P ≥ 16 does not fit the
//!   XCVU37P (the red entries in the paper's Table V).
//! * **Accelerator B** — `P` adder trees with partial-sum buffers. Only
//!   one matrix is re-streamed, so the read/write ratio is extremely
//!   read-heavy, the operational intensity is a constant 2 OPS/B, and
//!   cost grows linearly.
//!
//! All constants are derived from (and tested against) the paper's
//! Table V values.

use serde::{Deserialize, Serialize};

use crate::model::Roofline;

/// The paper's accelerator clock.
pub const F_ACC_MHZ: f64 = 300.0;

/// Common interface of the analytical accelerator models.
pub trait AcceleratorModel {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Parallelisation degree P (number of bus masters).
    fn p(&self) -> usize;

    /// Operational intensity in OPS per byte.
    fn op_intensity(&self) -> f64;

    /// Compute ceiling in GOPS at the accelerator clock.
    fn comp_gops(&self) -> f64;

    /// Fraction of issued transactions that are reads (the paper's
    /// RW_rat expressed as a fraction).
    fn read_fraction(&self) -> f64;

    /// FPGA utilisation of the core alone, in percent of the dominant
    /// resource.
    fn core_util_pct(&self) -> f64;

    /// FPGA utilisation with the MAO attached, in percent.
    fn core_mao_util_pct(&self) -> f64 {
        // The MAO (Partial, 2 stages) adds a constant ≈22 % on the
        // XCVU37P (Table V: every Core+MAO entry is Core + 22).
        self.core_util_pct() + 22.0
    }

    /// Attainable performance in GOPS given a measured bandwidth.
    fn attainable_gops(&self, bw_gbps: f64) -> f64 {
        Roofline::new(self.comp_gops(), bw_gbps).attainable(self.op_intensity())
    }
}

/// Accelerator A: systolic PE array (side `16·P`, 16-bit elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorA {
    /// Parallelisation degree.
    pub p: usize,
}

impl AcceleratorA {
    /// Side length of the PE array.
    pub fn array_side(&self) -> usize {
        16 * self.p
    }
}

impl AcceleratorModel for AcceleratorA {
    fn name(&self) -> &'static str {
        "Accelerator A (PE array)"
    }

    fn p(&self) -> usize {
        self.p
    }

    fn op_intensity(&self) -> f64 {
        // One L×L tile resident; per streamed row of L 2-byte elements
        // (read) plus a written output row at the 2:1 ratio: 2·L² ops
        // per 3·L bytes → 2L/3 OPS/B.
        2.0 * self.array_side() as f64 / 3.0
    }

    fn comp_gops(&self) -> f64 {
        // L² MACs = 2·L² ops per cycle.
        2.0 * (self.array_side() as f64).powi(2) * F_ACC_MHZ / 1000.0
    }

    fn read_fraction(&self) -> f64 {
        2.0 / 3.0 // RW_rat = 2:1
    }

    fn core_util_pct(&self) -> f64 {
        // Table V: 14 % at P = 4, quadratic in P.
        14.0 * (self.p as f64 / 4.0).powi(2)
    }
}

/// Accelerator B: adder trees with partial-sum buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorB {
    /// Parallelisation degree (number of adder trees).
    pub p: usize,
}

impl AcceleratorModel for AcceleratorB {
    fn name(&self) -> &'static str {
        "Accelerator B (adder tree)"
    }

    fn p(&self) -> usize {
        self.p
    }

    fn op_intensity(&self) -> f64 {
        // Each loaded element is multiplied and accumulated once: a
        // constant 2 OPS/B regardless of P (Table V).
        2.0
    }

    fn comp_gops(&self) -> f64 {
        // Table V: 68 GOPS at P = 4, linear in P: each tree performs
        // ≈57 ops per cycle (28 multipliers + 28 adders + accumulate).
        57.0 * self.p as f64 * F_ACC_MHZ / 1000.0
    }

    fn read_fraction(&self) -> f64 {
        // RW_rat = Mh:1 with Mh ≫ 2 — effectively read-only streaming.
        1.0
    }

    fn core_util_pct(&self) -> f64 {
        // Table V: 3 % at P = 4, linear in P.
        3.0 * self.p as f64 / 4.0
    }
}

/// One row of the reproduced Table V.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Accelerator name.
    pub name: &'static str,
    /// Parallelisation degree.
    pub p: usize,
    /// Operational intensity (OPS/B).
    pub op_i: f64,
    /// Compute ceiling (GOPS).
    pub c_comp: f64,
    /// Core utilisation (%).
    pub util_core: f64,
    /// Core + MAO utilisation (%).
    pub util_core_mao: f64,
    /// Speed-up with plain HBM over the P = 4 plain-HBM baseline.
    pub su_hbm: f64,
    /// Speed-up with HBM + MAO over the same baseline.
    pub su_hbm_mao: f64,
    /// Whether Core+MAO fits the XCVU37P.
    pub fits: bool,
}

/// Reproduces Table V for one accelerator family given the measured
/// unoptimised and MAO bandwidths (the paper uses 12.55 / 403.75 GB/s
/// for A and 9.59 / 273 GB/s for B).
pub fn table5<M: AcceleratorModel, F: Fn(usize) -> M>(
    make: F,
    bw_xlnx: f64,
    bw_mao: f64,
) -> Vec<Table5Row> {
    let baseline = make(4).attainable_gops(bw_xlnx);
    [4usize, 8, 16, 32]
        .iter()
        .map(|&p| {
            let m = make(p);
            Table5Row {
                name: m.name(),
                p,
                op_i: m.op_intensity(),
                c_comp: m.comp_gops(),
                util_core: m.core_util_pct(),
                util_core_mao: m.core_mao_util_pct(),
                su_hbm: m.attainable_gops(bw_xlnx) / baseline,
                su_hbm_mao: m.attainable_gops(bw_mao) / baseline,
                fits: m.core_mao_util_pct() <= 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's measured bandwidths for the two access patterns.
    const BW_A_XLNX: f64 = 12.55;
    const BW_A_MAO: f64 = 403.75;
    const BW_B_XLNX: f64 = 9.59;
    const BW_B_MAO: f64 = 273.0;

    #[test]
    fn accelerator_a_ccomp_matches_table5() {
        // Paper: 2458 / 9831 / 39322 / 157286 GOPS.
        for (p, want) in [(4, 2458.0), (8, 9830.0), (16, 39322.0), (32, 157286.0)] {
            let got = AcceleratorA { p }.comp_gops();
            assert!((got - want).abs() / want < 0.01, "P={p}: {got} vs paper {want}");
        }
    }

    #[test]
    fn accelerator_a_op_intensity_matches_table5() {
        // Paper: 42 / 84 / 167 / 328 (rounded; the analytical 2L/3 is
        // within 5 %).
        for (p, want) in [(4, 42.0), (8, 84.0), (16, 167.0), (32, 328.0)] {
            let got = AcceleratorA { p }.op_intensity();
            assert!((got - want).abs() / want < 0.05, "P={p}: {got} vs paper {want}");
        }
    }

    #[test]
    fn accelerator_b_ccomp_matches_table5() {
        // Paper: 68 / 137 / 274 / 547 GOPS.
        for (p, want) in [(4, 68.0), (8, 137.0), (16, 274.0), (32, 547.0)] {
            let got = AcceleratorB { p }.comp_gops();
            assert!((got - want).abs() / want < 0.01, "P={p}: {got} vs paper {want}");
        }
    }

    #[test]
    fn table5_a_speedups_match_paper() {
        let rows = table5(|p| AcceleratorA { p }, BW_A_XLNX, BW_A_MAO);
        // Paper SU_HBM: — / 2× / 3.9× / 7.7×.
        assert!((rows[1].su_hbm - 2.0).abs() < 0.1, "{}", rows[1].su_hbm);
        assert!((rows[2].su_hbm - 3.9).abs() < 0.2, "{}", rows[2].su_hbm);
        assert!((rows[3].su_hbm - 7.7).abs() < 0.3, "{}", rows[3].su_hbm);
        // Paper SU_HBM+MAO: 4.6 / 18.4 / 73.8 / 248.2.
        assert!((rows[0].su_hbm_mao - 4.6).abs() < 0.2, "{}", rows[0].su_hbm_mao);
        assert!((rows[1].su_hbm_mao - 18.4).abs() < 0.6, "{}", rows[1].su_hbm_mao);
        assert!((rows[2].su_hbm_mao - 73.8).abs() < 2.5, "{}", rows[2].su_hbm_mao);
        // The analytical OpI (341 vs the paper's rounded 328) puts the
        // P = 32 point slightly higher; within 5 %.
        assert!((rows[3].su_hbm_mao - 248.2).abs() / 248.2 < 0.05, "{}", rows[3].su_hbm_mao);
    }

    #[test]
    fn table5_b_speedups_match_paper() {
        let rows = table5(|p| AcceleratorB { p }, BW_B_XLNX, BW_B_MAO);
        // Paper SU_HBM: all 1× (memory bound on unoptimised access).
        for r in &rows[1..] {
            assert!((r.su_hbm - 1.0).abs() < 0.05, "{}", r.su_hbm);
        }
        // Paper SU_HBM+MAO: 3.6 / 7.1 / 14.3 / 28.5.
        let want = [3.6, 7.1, 14.3, 28.5];
        for (r, w) in rows.iter().zip(want) {
            assert!((r.su_hbm_mao - w).abs() / w < 0.05, "{} vs {w}", r.su_hbm_mao);
        }
    }

    #[test]
    fn utilisation_matches_table5() {
        // A core: 14/56/223/895 %; B core: 3/6/12/24 %.
        assert_eq!(AcceleratorA { p: 4 }.core_util_pct(), 14.0);
        assert_eq!(AcceleratorA { p: 16 }.core_util_pct(), 224.0);
        assert_eq!(AcceleratorB { p: 32 }.core_util_pct(), 24.0);
        // Core+MAO adds 22 points.
        assert_eq!(AcceleratorA { p: 4 }.core_mao_util_pct(), 36.0);
        assert_eq!(AcceleratorB { p: 32 }.core_mao_util_pct(), 46.0);
    }

    #[test]
    fn only_small_a_configs_fit_the_device() {
        // Paper: P = 16 and P = 32 of A are red (don't fit), every B
        // configuration fits.
        let rows = table5(|p| AcceleratorA { p }, BW_A_XLNX, BW_A_MAO);
        assert!(rows[0].fits && rows[1].fits);
        assert!(!rows[2].fits && !rows[3].fits);
        let rows = table5(|p| AcceleratorB { p }, BW_B_XLNX, BW_B_MAO);
        assert!(rows.iter().all(|r| r.fits));
    }

    #[test]
    fn b_at_p32_sits_on_the_memory_ceiling() {
        // Paper: "less than 0.1 % away from the memory ceiling".
        let b = AcceleratorB { p: 32 };
        let r = Roofline::new(b.comp_gops(), BW_B_MAO);
        let frac = r.memory_ceiling_fraction(b.op_intensity());
        assert!(frac > 0.99, "{frac}");
    }
}
