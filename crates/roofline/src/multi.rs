//! Multi-ceiling Roofline.
//!
//! The paper's §III credits Siracusa et al. with extending the Roofline
//! model by *additional* bandwidth ceilings for random-access and
//! gather/scatter patterns, and argues such ceilings must be measured on
//! the actual memory system. [`MultiRoofline`] implements that: a
//! compute ceiling plus one named bandwidth ceiling per access class,
//! each typically filled in from a simulator measurement
//! (`hbm-core::measure`).

use serde::{Deserialize, Serialize};

use crate::model::RooflinePoint;

/// A named bandwidth ceiling (e.g. "sequential", "random", "hot-spot").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// Access-class label.
    pub name: String,
    /// Measured bandwidth in GB/s.
    pub bw_gbps: f64,
}

/// A Roofline with several measured bandwidth ceilings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiRoofline {
    /// Compute ceiling in GOPS.
    pub comp_gops: f64,
    /// Bandwidth ceilings, typically sorted fastest first.
    pub ceilings: Vec<Ceiling>,
}

impl MultiRoofline {
    /// A model with a compute ceiling and no bandwidth ceilings yet.
    pub fn new(comp_gops: f64) -> MultiRoofline {
        assert!(comp_gops > 0.0);
        MultiRoofline { comp_gops, ceilings: Vec::new() }
    }

    /// Adds a measured ceiling.
    pub fn with_ceiling(mut self, name: &str, bw_gbps: f64) -> MultiRoofline {
        assert!(bw_gbps > 0.0, "bandwidth must be positive");
        self.ceilings.push(Ceiling { name: name.to_string(), bw_gbps });
        self
    }

    /// The ceiling for an access class.
    pub fn ceiling(&self, name: &str) -> Option<&Ceiling> {
        self.ceilings.iter().find(|c| c.name == name)
    }

    /// Attainable performance for a kernel of intensity `oi` whose
    /// traffic is governed by the named access class.
    pub fn attainable(&self, name: &str, oi: f64) -> Option<f64> {
        let c = self.ceiling(name)?;
        Some(self.comp_gops.min(c.bw_gbps * oi))
    }

    /// Attainable performance for a kernel whose bytes split across
    /// several access classes: `mix` gives (class, fraction of bytes).
    /// The effective bandwidth is the harmonic combination — each byte
    /// class takes time proportional to its share over its ceiling.
    pub fn attainable_mixed(&self, mix: &[(&str, f64)], oi: f64) -> Option<f64> {
        let total: f64 = mix.iter().map(|(_, f)| f).sum();
        if total <= 0.0 {
            return None;
        }
        let mut time_per_byte = 0.0;
        for (name, frac) in mix {
            let c = self.ceiling(name)?;
            time_per_byte += (frac / total) / c.bw_gbps;
        }
        let eff_bw = 1.0 / time_per_byte;
        Some(self.comp_gops.min(eff_bw * oi))
    }

    /// Ridge point for a ceiling.
    pub fn ridge_oi(&self, name: &str) -> Option<f64> {
        Some(self.comp_gops / self.ceiling(name)?.bw_gbps)
    }

    /// Plot series (log-spaced) for a ceiling.
    pub fn series(
        &self,
        name: &str,
        oi_min: f64,
        oi_max: f64,
        n: usize,
    ) -> Option<Vec<RooflinePoint>> {
        let c = self.ceiling(name)?;
        assert!(oi_min > 0.0 && oi_max > oi_min && n >= 2);
        let step = (oi_max / oi_min).ln() / (n - 1) as f64;
        Some(
            (0..n)
                .map(|i| {
                    let oi = oi_min * (step * i as f64).exp();
                    RooflinePoint { oi, gops: self.comp_gops.min(c.bw_gbps * oi) }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MultiRoofline {
        // Ballpark ceilings from the reproduction's Table IV (MAO).
        MultiRoofline::new(10_000.0)
            .with_ceiling("sequential", 395.0)
            .with_ceiling("random", 353.0)
            .with_ceiling("hot-spot", 12.4)
    }

    #[test]
    fn per_class_attainable() {
        let m = model();
        assert_eq!(m.attainable("sequential", 10.0), Some(3950.0));
        assert_eq!(m.attainable("hot-spot", 10.0), Some(124.0));
        assert_eq!(m.attainable("sequential", 1e6), Some(10_000.0));
        assert_eq!(m.attainable("unknown", 1.0), None);
    }

    #[test]
    fn ridge_points_order_by_bandwidth() {
        let m = model();
        let seq = m.ridge_oi("sequential").unwrap();
        let hot = m.ridge_oi("hot-spot").unwrap();
        assert!(hot > seq, "slower ceilings ridge later: {hot} vs {seq}");
    }

    #[test]
    fn mixed_traffic_is_harmonic() {
        let m = MultiRoofline::new(1e9).with_ceiling("fast", 400.0).with_ceiling("slow", 100.0);
        // 50/50 bytes: harmonic mean = 2/(1/400 + 1/100) = 160 GB/s.
        let got = m.attainable_mixed(&[("fast", 0.5), ("slow", 0.5)], 1.0).unwrap();
        assert!((got - 160.0).abs() < 1e-9, "{got}");
        // All fast = fast ceiling.
        let got = m.attainable_mixed(&[("fast", 1.0)], 1.0).unwrap();
        assert!((got - 400.0).abs() < 1e-9);
        // Unknown class → None; empty mix → None.
        assert!(m.attainable_mixed(&[("nope", 1.0)], 1.0).is_none());
        assert!(m.attainable_mixed(&[], 1.0).is_none());
    }

    #[test]
    fn series_clamps_at_compute() {
        let m = model();
        let s = m.series("sequential", 0.1, 1e4, 32).unwrap();
        assert_eq!(s.len(), 32);
        assert_eq!(s.last().unwrap().gops, 10_000.0);
        assert!(m.series("unknown", 0.1, 1.0, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bandwidth() {
        let _ = MultiRoofline::new(1.0).with_ceiling("x", 0.0);
    }
}
