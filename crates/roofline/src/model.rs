//! The Roofline model (Williams et al., CACM 2009) as used in the paper.

use serde::{Deserialize, Serialize};

/// One point in the Roofline plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Operational intensity in operations per byte.
    pub oi: f64,
    /// Performance in GOPS.
    pub gops: f64,
}

/// A Roofline: one compute ceiling and one memory-bandwidth ceiling.
///
/// The paper's methodological point is that `bw_gbps` must be the
/// *measured* bandwidth of the actual access pattern on the actual
/// interconnect — plugging in the 460 GB/s theoretical number predicts
/// performance that global addressing on the stock fabric misses by more
/// than an order of magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Compute ceiling in GOPS.
    pub comp_gops: f64,
    /// Memory-bandwidth ceiling in GB/s.
    pub bw_gbps: f64,
}

impl Roofline {
    /// A roofline from a compute ceiling and a bandwidth ceiling.
    pub fn new(comp_gops: f64, bw_gbps: f64) -> Roofline {
        assert!(comp_gops > 0.0 && bw_gbps > 0.0);
        Roofline { comp_gops, bw_gbps }
    }

    /// Attainable performance at operational intensity `oi`, in GOPS:
    /// `min(comp, bw × oi)`.
    pub fn attainable(&self, oi: f64) -> f64 {
        self.comp_gops.min(self.bw_gbps * oi)
    }

    /// The ridge point: the operational intensity at which the memory
    /// ceiling meets the compute ceiling. Kernels left of it are memory
    /// bound, kernels right of it compute bound.
    pub fn ridge_oi(&self) -> f64 {
        self.comp_gops / self.bw_gbps
    }

    /// `true` if a kernel at `oi` is memory bound.
    pub fn memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge_oi()
    }

    /// How close attainable performance at `oi` is to the memory ceiling
    /// (1.0 = exactly on it). The paper notes Accelerator B at P = 32
    /// lands "less than 0.1 % away from the memory ceiling".
    pub fn memory_ceiling_fraction(&self, oi: f64) -> f64 {
        self.attainable(oi) / (self.bw_gbps * oi)
    }

    /// Generates a log-spaced plot series of the roofline between
    /// `oi_min` and `oi_max` (both > 0), `n` points — the lines of
    /// Fig. 7.
    pub fn series(&self, oi_min: f64, oi_max: f64, n: usize) -> Vec<RooflinePoint> {
        assert!(oi_min > 0.0 && oi_max > oi_min && n >= 2);
        let step = (oi_max / oi_min).ln() / (n - 1) as f64;
        (0..n)
            .map(|i| {
                let oi = oi_min * (step * i as f64).exp();
                RooflinePoint { oi, gops: self.attainable(oi) }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainable_min_of_ceilings() {
        let r = Roofline::new(1000.0, 10.0);
        assert_eq!(r.attainable(1.0), 10.0);
        assert_eq!(r.attainable(100.0), 1000.0);
        assert_eq!(r.attainable(1000.0), 1000.0);
    }

    #[test]
    fn ridge_point() {
        let r = Roofline::new(1000.0, 10.0);
        assert_eq!(r.ridge_oi(), 100.0);
        assert!(r.memory_bound(99.0));
        assert!(!r.memory_bound(101.0));
    }

    #[test]
    fn paper_accelerator_a_example() {
        // A at P = 4 with unoptimised HBM: min(2458, 12.55 × 42) ≈ 527.
        let r = Roofline::new(2458.0, 12.55);
        let perf = r.attainable(42.0);
        assert!((perf - 527.1).abs() < 1.0, "{perf}");
        assert!(r.memory_bound(42.0));
        // With the MAO the same kernel becomes compute bound.
        let r = Roofline::new(2458.0, 403.75);
        assert_eq!(r.attainable(42.0), 2458.0);
        assert!(!r.memory_bound(42.0));
    }

    #[test]
    fn ceiling_fraction() {
        let r = Roofline::new(547.0, 273.0);
        // B at P = 32: OpI 2 → 546 GB/s×OpI vs 547 comp: 0.2 % below.
        let f = r.memory_ceiling_fraction(2.0);
        assert!(f > 0.99 && f <= 1.0, "{f}");
    }

    #[test]
    fn series_is_monotone_and_log_spaced() {
        let r = Roofline::new(100.0, 10.0);
        let s = r.series(0.1, 1000.0, 50);
        assert_eq!(s.len(), 50);
        assert!((s[0].oi - 0.1).abs() < 1e-9);
        assert!((s[49].oi - 1000.0).abs() < 1e-6);
        for w in s.windows(2) {
            assert!(w[1].oi > w[0].oi);
            assert!(w[1].gops >= w[0].gops);
        }
        // Plateau at the compute ceiling.
        assert_eq!(s[49].gops, 100.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_ceilings() {
        let _ = Roofline::new(0.0, 1.0);
    }
}
