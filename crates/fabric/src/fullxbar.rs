//! A monolithic full crossbar — the "just remove the lateral buses"
//! what-if.
//!
//! Hypothetical hardware that connects every master to every
//! pseudo-channel through one non-blocking 32×32 crossbar, but keeps
//! everything else exactly like the stock fabric: the **contiguous**
//! address map and the AXI same-ID/different-destination ingress stall
//! (no reorder buffers). Comparing this against [`crate::XilinxFabric`]
//! and the MAO separates the paper's three adaptions: topology alone
//! fixes the rotation pathologies but *not* the CCS hot-spot (that needs
//! interleaving) and *not* the random-access ID stalls (that needs
//! reorder buffers).

use hbm_axi::{Addr, Completion, Cycle, MasterId, PortId, SharedTracer, Transaction};

use crate::addressmap::{AddressMap, ContiguousMap};
use crate::idtrack::IdTracker;
use crate::link::{self, Flit, SerialLink};
use crate::stats::FabricStats;
use crate::Interconnect;

/// The monolithic crossbar fabric.
pub struct FullCrossbarFabric {
    map: ContiguousMap,
    ingress: Vec<SerialLink<Flit>>,
    port_out: Vec<SerialLink<Flit>>,
    ret_in: Vec<SerialLink<Flit>>,
    master_out: Vec<SerialLink<Flit>>,
    rr_port: Vec<usize>,
    rr_master: Vec<usize>,
    ingress_popped: Vec<Cycle>,
    ret_popped: Vec<Cycle>,
    id_track: IdTracker,
    id_stall_cycles: u64,
    n: usize,
    tracer: Option<SharedTracer>,
}

impl FullCrossbarFabric {
    /// A full crossbar over `n` master/port pairs of `port_capacity`
    /// bytes. `latency` is the one-way pipeline depth (a flat 32×32
    /// crossbar at this size would realistically need several register
    /// stages — pass ≥ the Xilinx local-path latency).
    pub fn new(
        n: usize,
        port_capacity: u64,
        latency: Cycle,
        capacity: usize,
    ) -> FullCrossbarFabric {
        let mk = |dead: f64, lat: Cycle| SerialLink::new(1.0, dead, capacity, lat);
        FullCrossbarFabric {
            map: ContiguousMap::new(n, port_capacity),
            ingress: (0..n).map(|_| mk(0.0, latency)).collect(),
            port_out: (0..n).map(|_| mk(2.0, 1)).collect(),
            ret_in: (0..n).map(|_| mk(0.0, latency)).collect(),
            master_out: (0..n).map(|_| mk(2.0, 1)).collect(),
            rr_port: vec![0; n],
            rr_master: vec![0; n],
            ingress_popped: vec![Cycle::MAX; n],
            ret_popped: vec![Cycle::MAX; n],
            id_track: IdTracker::new(n),
            id_stall_cycles: 0,
            n,
            tracer: None,
        }
    }
}

impl Interconnect for FullCrossbarFabric {
    fn num_masters(&self) -> usize {
        self.n
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn port_of(&self, addr: Addr) -> PortId {
        self.map.port_of(addr)
    }

    fn offer_request(&mut self, now: Cycle, txn: Transaction) -> Result<(), Transaction> {
        let m = txn.master.idx();
        let port = self.map.port_of(txn.addr);
        if self.id_track.conflicts(m, txn.dir, txn.id.0, port) {
            self.id_stall_cycles += 1;
            return Err(txn);
        }
        if !self.ingress[m].can_send(now) {
            return Err(txn);
        }
        let cost = txn.fwd_link_cycles();
        let (dir, id) = (txn.dir, txn.id.0);
        if let Some(tr) = &self.tracer {
            tr.ingress_accept(now, &txn);
        }
        self.ingress[m].send(now, 0, cost, Flit::Req(txn));
        self.id_track.issue(m, dir, id, port);
        Ok(())
    }

    fn peek_request(&self, now: Cycle, port: PortId) -> Option<&Transaction> {
        match self.port_out[port.idx()].peek(now) {
            Some(Flit::Req(t)) => Some(t),
            _ => None,
        }
    }

    fn pop_request(&mut self, now: Cycle, port: PortId) -> Option<Transaction> {
        match self.port_out[port.idx()].pop(now) {
            Some(Flit::Req(t)) => Some(t),
            _ => None,
        }
    }

    fn offer_completion(
        &mut self,
        now: Cycle,
        port: PortId,
        c: Completion,
    ) -> Result<(), Completion> {
        let link = &mut self.ret_in[port.idx()];
        if !link.can_send(now) {
            return Err(c);
        }
        let cost = c.txn.ret_link_cycles();
        link.send(now, 0, cost, Flit::Resp(c));
        Ok(())
    }

    fn pop_completion(&mut self, now: Cycle, master: MasterId) -> Option<Completion> {
        let m = master.idx();
        match self.master_out[m].pop(now) {
            Some(Flit::Resp(c)) => {
                self.id_track.retire(m, c.txn.dir, c.txn.id.0);
                Some(c)
            }
            _ => None,
        }
    }

    fn tick(&mut self, now: Cycle) {
        // Forward: each port grants one FIFO ingress head per cycle.
        for p in 0..self.n {
            if !self.port_out[p].can_send(now) {
                continue;
            }
            let start = self.rr_port[p];
            for j in 0..self.n {
                let m = (start + j) % self.n;
                if self.ingress_popped[m] == now {
                    continue;
                }
                let Some(Flit::Req(t)) = self.ingress[m].peek(now) else {
                    continue;
                };
                if self.map.port_of(t.addr).idx() != p {
                    continue;
                }
                let flit = self.ingress[m].pop(now).expect("peeked head vanished");
                self.ingress_popped[m] = now;
                let cost = flit.cost_beats();
                self.port_out[p].send(now, m as u16, cost, flit);
                self.rr_port[p] = (m + 1) % self.n;
                break;
            }
        }
        // Return: strict FIFO per port (no reorder buffers — head-of-line
        // blocking on the return path is part of what the MAO removes).
        for m in 0..self.n {
            if !self.master_out[m].can_send(now) {
                continue;
            }
            let start = self.rr_master[m];
            for j in 0..self.n {
                let p = (start + j) % self.n;
                if self.ret_popped[p] == now {
                    continue;
                }
                let Some(Flit::Resp(c)) = self.ret_in[p].peek(now) else {
                    continue;
                };
                if c.txn.master.idx() != m {
                    continue;
                }
                let flit = self.ret_in[p].pop(now).expect("peeked head vanished");
                self.ret_popped[p] = now;
                let cost = flit.cost_beats();
                self.master_out[m].send(now, p as u16, cost, flit);
                self.rr_master[m] = (p + 1) % self.n;
                break;
            }
        }
    }

    fn drained(&self) -> bool {
        self.ingress.iter().all(|l| l.is_empty())
            && self.port_out.iter().all(|l| l.is_empty())
            && self.ret_in.iter().all(|l| l.is_empty())
            && self.master_out.iter().all(|l| l.is_empty())
    }

    fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    fn occupancy(&self) -> usize {
        self.ingress
            .iter()
            .chain(&self.port_out)
            .chain(&self.ret_in)
            .chain(&self.master_out)
            .map(|l| l.len())
            .sum()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        link::horizon(
            self.ingress.iter().chain(&self.port_out).chain(&self.ret_in).chain(&self.master_out),
            now,
        )
    }

    fn for_each_queue_hwm(&self, visit: &mut dyn FnMut(&'static str, usize)) {
        for l in &self.ingress {
            visit("ingress", l.high_water());
        }
        for l in &self.master_out {
            visit("egress", l.high_water());
        }
        for l in self.port_out.iter().chain(&self.ret_in) {
            visit("mc_link", l.high_water());
        }
    }

    fn stats(&self) -> FabricStats {
        let mut st = FabricStats { id_stall_cycles: self.id_stall_cycles, ..Default::default() };
        for l in &self.ingress {
            st.ingress.merge(l.stats());
        }
        for l in &self.master_out {
            st.egress.merge(l.stats());
        }
        for l in self.port_out.iter().chain(self.ret_in.iter()) {
            st.mc_links.merge(l.stats());
        }
        st
    }

    fn reset_stats(&mut self) {
        for l in self
            .ingress
            .iter_mut()
            .chain(self.port_out.iter_mut())
            .chain(self.ret_in.iter_mut())
            .chain(self.master_out.iter_mut())
        {
            l.reset_stats();
        }
        self.id_stall_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_axi::{AxiId, BurstLen, Dir, TxnBuilder};

    fn xbar() -> FullCrossbarFabric {
        FullCrossbarFabric::new(32, 256 << 20, 6, 8)
    }

    #[test]
    fn routes_any_master_to_any_port() {
        let mut f = xbar();
        let mut b = TxnBuilder::new(MasterId(3));
        let t = b.issue(AxiId(0), 29 * (256u64 << 20), BurstLen::of(1), Dir::Read, 0).unwrap();
        assert!(f.offer_request(0, t).is_ok());
        let mut arrived = None;
        for now in 0..100 {
            f.tick(now);
            if let Some(t) = f.pop_request(now, PortId(29)) {
                arrived = Some((now, t));
                break;
            }
        }
        let (cycle, t) = arrived.expect("request never arrived");
        assert_eq!(t.master, MasterId(3));
        // Flat latency: no hop count, unlike the segmented network.
        assert!(cycle <= 10, "crossed in {cycle} cycles");
    }

    #[test]
    fn keeps_the_id_dest_stall() {
        let mut f = xbar();
        let mut b = TxnBuilder::new(MasterId(0));
        let t0 = b.issue(AxiId(0), 0, BurstLen::of(1), Dir::Read, 0).unwrap();
        let t1 = b.issue(AxiId(0), 256 << 20, BurstLen::of(1), Dir::Read, 0).unwrap();
        assert!(f.offer_request(0, t0).is_ok());
        assert!(f.offer_request(0, t1).is_err(), "no reorder buffers here");
        assert_eq!(f.stats().id_stall_cycles, 1);
    }

    #[test]
    fn contiguous_map_still_hotspots() {
        // The crossbar does not remap addresses: a 64 MiB buffer still
        // lives entirely in PCH 0.
        let f = xbar();
        for addr in [0u64, 1 << 20, 63 << 20] {
            assert_eq!(f.port_of(addr), PortId(0));
        }
    }

    #[test]
    fn occupancy_follows_the_round_trip() {
        let mut f = xbar();
        assert_eq!(f.occupancy(), 0);
        let mut b = TxnBuilder::new(MasterId(5));
        let t = b.issue(AxiId(0), 20 * (256u64 << 20), BurstLen::of(1), Dir::Read, 0).unwrap();
        assert!(f.offer_request(0, t).is_ok());
        assert_eq!(f.occupancy(), 1, "request queued at ingress");
        for now in 0..200 {
            f.tick(now);
            if let Some(t) = f.pop_request(now, PortId(20)) {
                assert_eq!(f.occupancy(), 0, "request left, completion not yet offered");
                let c = Completion { txn: t, produced_at: now };
                f.offer_completion(now, PortId(20), c).unwrap();
                assert_eq!(f.occupancy(), 1, "completion in flight");
            }
            if f.pop_completion(now, MasterId(5)).is_some() {
                assert_eq!(f.occupancy(), 0, "drained after delivery");
                assert!(f.drained());
                return;
            }
            assert_eq!(f.occupancy(), 1, "exactly one flit in flight throughout");
        }
        panic!("round trip never completed");
    }

    #[test]
    fn round_trip_completes() {
        let mut f = xbar();
        let mut b = TxnBuilder::new(MasterId(7));
        let t = b.issue(AxiId(0), 12 * (256u64 << 20), BurstLen::of(16), Dir::Write, 0).unwrap();
        assert!(f.offer_request(0, t).is_ok());
        let mut done = false;
        for now in 0..200 {
            f.tick(now);
            if let Some(t) = f.pop_request(now, PortId(12)) {
                let c = Completion { txn: t, produced_at: now };
                f.offer_completion(now, PortId(12), c).unwrap();
            }
            if f.pop_completion(now, MasterId(7)).is_some() {
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(f.drained());
    }
}
