//! Global-address → pseudo-channel mapping.
//!
//! The Xilinx fabric maps each PCH's capacity **contiguously** into the
//! global address space — the root cause of the hot-spot pathology: data
//! copied linearly from a host lands entirely in one PCH until 256 MiB
//! are filled (paper §II). The MAO's interleaved map lives in `hbm-mao`
//! and implements the same trait.

use hbm_axi::{Addr, PortId};

/// A bijective mapping from global addresses to (port, local offset),
/// expressed as a rewrite onto a *physical* address space in which port
/// `p` owns the contiguous range `[p·cap, (p+1)·cap)`.
pub trait AddressMap {
    /// Number of pseudo-channel ports.
    fn num_ports(&self) -> usize;

    /// Capacity per port in bytes.
    fn port_capacity(&self) -> u64;

    /// Rewrites a global address into the physical (contiguous-per-port)
    /// space. Must be a bijection on `[0, num_ports · port_capacity)`.
    fn remap(&self, addr: Addr) -> Addr;

    /// The port that owns a global address.
    fn port_of(&self, addr: Addr) -> PortId {
        PortId((self.remap(addr) / self.port_capacity()) as u16)
    }
}

/// The identity map: global address space is already contiguous per PCH.
#[derive(Debug, Clone, Copy)]
pub struct ContiguousMap {
    num_ports: usize,
    port_capacity: u64,
}

impl ContiguousMap {
    /// A contiguous map over `num_ports` ports of `port_capacity` bytes.
    pub fn new(num_ports: usize, port_capacity: u64) -> ContiguousMap {
        assert!(num_ports > 0 && port_capacity > 0);
        assert!(
            port_capacity.is_power_of_two(),
            "port capacity must be a power of two for mask-based local offsets"
        );
        ContiguousMap { num_ports, port_capacity }
    }
}

impl AddressMap for ContiguousMap {
    fn num_ports(&self) -> usize {
        self.num_ports
    }

    fn port_capacity(&self) -> u64 {
        self.port_capacity
    }

    fn remap(&self, addr: Addr) -> Addr {
        debug_assert!(
            addr < self.num_ports as u64 * self.port_capacity,
            "address {addr:#x} beyond device capacity"
        );
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_port_of() {
        let m = ContiguousMap::new(32, 256 << 20);
        assert_eq!(m.port_of(0), PortId(0));
        assert_eq!(m.port_of((256 << 20) - 1), PortId(0));
        assert_eq!(m.port_of(256 << 20), PortId(1));
        assert_eq!(m.port_of(31 * (256u64 << 20)), PortId(31));
    }

    #[test]
    fn contiguous_remap_is_identity() {
        let m = ContiguousMap::new(4, 1 << 20);
        for a in [0u64, 123, (1 << 20) + 7, (4 << 20) - 1] {
            assert_eq!(m.remap(a), a);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_rejected() {
        let _ = ContiguousMap::new(4, 1000);
    }
}
