//! The Xilinx-style segmented switch network (paper Fig. 1).
//!
//! Eight 4×4 crossbar switches, each locally connecting four bus masters
//! and four pseudo-channels, chained by two lateral buses per direction.
//! Every lateral bus is a full AXI interface: its request channel (AR/AW/W)
//! and its response channel (R/B) are separate physical paths, and a flow
//! that crosses switches uses the matching response channel on the way
//! back. Bus assignment is **static**: masters 0–1 of a switch use bus 0,
//! masters 2–3 use bus 1 (and symmetrically for the memory side), while
//! pass-through traffic stays on the bus it arrived on. This static
//! assignment is what forces two masters onto the same lateral connection
//! at rotation offset 2 in the paper's Fig. 4 experiment.
//!
//! Arbitration at every output is round-robin; regranting to a different
//! source costs dead cycles (bus multiplexing), which is the mechanism
//! behind the paper's observation that short bursts lose a further ~17 %
//! on contended switches.
//!
//! Additionally, the fabric enforces the AXI rule that a master may not
//! have transactions with the same ID outstanding to *different*
//! destinations (responses could not be merged in order otherwise): such
//! requests stall at ingress. The MAO removes this stall with reorder
//! buffers — a large part of its random-access win (paper Fig. 6).
//!
//! Structurally, the fabric is a chain of [`SwitchShard`] execution
//! domains (see [`crate::shard`]): each mini switch owns all of its local
//! state and talks to its neighbours only through cycle-stamped lateral
//! ports, which is what lets the simulation core advance switches
//! independently — and in parallel — between synchronisation horizons.

use hbm_axi::{Addr, ClockDomain, Completion, Cycle, MasterId, PortId, SharedTracer, Transaction};

use crate::addressmap::{AddressMap, ContiguousMap};
use crate::shard::SwitchShard;
use crate::stats::{FabricStats, LinkStats};
use crate::{Interconnect, ShardLayout, ShardedFabric};

/// Geometry and timing of the segmented switch network.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Number of local crossbar switches (8 on the XCVU37P).
    pub num_switches: usize,
    /// Masters per switch (4).
    pub masters_per_switch: usize,
    /// Pseudo-channel ports per switch (4).
    pub ports_per_switch: usize,
    /// Lateral buses per direction between adjacent switches (2).
    pub lateral_buses: usize,
    /// Lateral-bus bandwidth in beats per accelerator cycle. The switch
    /// network is clocked at the HBM reference clock, but packing losses
    /// make ≈ one beat per accelerator cycle the faithful effective rate
    /// (see DESIGN.md §3).
    pub lateral_rate: f64,
    /// Master/memory port rate in beats per accelerator cycle (1.0).
    pub port_rate: f64,
    /// Pipeline latency of a master ingress, in cycles.
    pub ingress_latency: Cycle,
    /// Pipeline latency of completion delivery to a master.
    pub egress_latency: Cycle,
    /// Pipeline latency between a switch and its local memory ports.
    pub mc_link_latency: Cycle,
    /// Pipeline latency per lateral hop.
    pub hop_latency: Cycle,
    /// Dead beats charged when an arbiter regrants to a new source.
    pub dead_beats: f64,
    /// Queue capacity of master ingress links (transactions).
    pub ingress_capacity: usize,
    /// Queue capacity of lateral links (flits).
    pub lateral_capacity: usize,
    /// Queue capacity of memory/master egress links (flits).
    pub out_capacity: usize,
    /// Capacity per pseudo-channel in bytes (for the address map).
    pub port_capacity: u64,
}

impl FabricConfig {
    /// The XCVU37P fabric for a given accelerator clock.
    pub fn for_clock(_clock: ClockDomain) -> FabricConfig {
        FabricConfig {
            num_switches: 8,
            masters_per_switch: 4,
            ports_per_switch: 4,
            lateral_buses: 2,
            lateral_rate: 1.0,
            port_rate: 1.0,
            ingress_latency: 4,
            egress_latency: 4,
            mc_link_latency: 3,
            hop_latency: 2,
            dead_beats: 2.0,
            ingress_capacity: 8,
            lateral_capacity: 4,
            out_capacity: 8,
            port_capacity: 256 << 20,
        }
    }

    /// Total master-side ports.
    pub fn num_masters(&self) -> usize {
        self.num_switches * self.masters_per_switch
    }

    /// Total memory-side ports.
    pub fn num_ports(&self) -> usize {
        self.num_switches * self.ports_per_switch
    }

    fn validate(&self) {
        assert!(self.num_switches >= 1);
        assert!(self.lateral_buses >= 1);
        assert!(
            self.ingress_latency >= 1
                && self.egress_latency >= 1
                && self.mc_link_latency >= 1
                && self.hop_latency >= 1,
            "all link latencies must be ≥ 1 cycle (prevents same-cycle multi-hop)"
        );
    }
}

/// The segmented switch network: a chain of per-switch execution domains
/// ([`SwitchShard`]) joined by explicit lateral ports.
///
/// Each shard owns its four masters' ingress/egress links, its four
/// pseudo-channel links, and the local crossbar's arbitration state;
/// shards exchange flits only through cycle-stamped
/// [`LateralTx`](crate::shard::LateralTx)/[`LateralRx`](crate::shard::LateralRx)
/// channel pairs whose data *and* queue credits are delayed by
/// `hop_latency`. Stepped sequentially, [`tick`](Interconnect::tick)
/// advances every shard and then [reconciles](ShardedFabric::reconcile)
/// all boundaries; the parallel conductor in `hbm-core` instead advances
/// shards independently between lateral-synchronisation horizons and
/// reconciles at each barrier — bit-identically, because no same-cycle
/// information ever crosses a boundary (DESIGN.md §3.3).
pub struct XilinxFabric {
    cfg: FabricConfig,
    map: ContiguousMap,
    shards: Vec<SwitchShard>,
}

impl XilinxFabric {
    /// Builds the fabric for a configuration.
    pub fn new(cfg: FabricConfig) -> XilinxFabric {
        cfg.validate();
        let shards = (0..cfg.num_switches).map(|s| SwitchShard::new(&cfg, s)).collect();
        XilinxFabric { map: ContiguousMap::new(cfg.num_ports(), cfg.port_capacity), shards, cfg }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    #[inline]
    fn master_shard(&self, m: usize) -> (usize, usize) {
        (m / self.cfg.masters_per_switch, m % self.cfg.masters_per_switch)
    }

    #[inline]
    fn port_shard(&self, p: usize) -> (usize, usize) {
        (p / self.cfg.ports_per_switch, p % self.cfg.ports_per_switch)
    }

    fn merged_stats<'a>(stats: impl Iterator<Item = LinkStats> + 'a) -> LinkStats {
        let mut total = LinkStats::default();
        for s in stats {
            total.merge(&s);
        }
        total
    }
}

impl ShardedFabric for XilinxFabric {
    fn layout(&self) -> ShardLayout {
        ShardLayout {
            shards: self.cfg.num_switches,
            masters_per_shard: self.cfg.masters_per_switch,
            ports_per_shard: self.cfg.ports_per_switch,
            sync_lag: self.cfg.hop_latency,
        }
    }

    fn shards_mut(&mut self) -> &mut [SwitchShard] {
        &mut self.shards
    }

    fn reconcile(&mut self) {
        for nb in 0..self.shards.len() - 1 {
            let (a, b) = self.shards.split_at_mut(nb + 1);
            SwitchShard::reconcile_boundary(&mut a[nb], &mut b[0]);
        }
    }

    fn pending_reconcile(&self) -> bool {
        self.shards.iter().any(|s| !s.boundary_idle())
    }
}

impl Interconnect for XilinxFabric {
    fn num_masters(&self) -> usize {
        self.cfg.num_masters()
    }

    fn num_ports(&self) -> usize {
        self.cfg.num_ports()
    }

    fn port_of(&self, addr: Addr) -> PortId {
        self.map.port_of(addr)
    }

    fn offer_request(&mut self, now: Cycle, txn: Transaction) -> Result<(), Transaction> {
        let (s, _) = self.master_shard(txn.master.idx());
        self.shards[s].offer_request(now, txn)
    }

    fn peek_request(&self, now: Cycle, port: PortId) -> Option<&Transaction> {
        let (s, lp) = self.port_shard(port.idx());
        self.shards[s].peek_request(now, lp)
    }

    fn pop_request(&mut self, now: Cycle, port: PortId) -> Option<Transaction> {
        let (s, lp) = self.port_shard(port.idx());
        self.shards[s].pop_request(now, lp)
    }

    fn offer_completion(
        &mut self,
        now: Cycle,
        port: PortId,
        c: Completion,
    ) -> Result<(), Completion> {
        let (s, lp) = self.port_shard(port.idx());
        self.shards[s].offer_completion(now, lp, c)
    }

    fn pop_completion(&mut self, now: Cycle, master: MasterId) -> Option<Completion> {
        let (s, lm) = self.master_shard(master.idx());
        self.shards[s].pop_completion(now, lm)
    }

    fn tick(&mut self, now: Cycle) {
        for sh in &mut self.shards {
            sh.tick(now);
        }
        // Sequential stepping reconciles every boundary each cycle; the
        // cycle stamps on lateral flits and credits make this equivalent
        // to the parallel conductor's coarser barriers.
        ShardedFabric::reconcile(self);
    }

    fn drained(&self) -> bool {
        self.shards.iter().all(|s| s.drained())
    }

    fn attach_tracer(&mut self, tracer: SharedTracer) {
        for sh in &mut self.shards {
            sh.attach_tracer(tracer.clone());
        }
    }

    fn occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.occupancy()).sum()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The fabric only does work when some link or lateral ring
        // delivers its head (see the shard-level horizon for the
        // argument); outboxes are empty between ticks.
        let mut best: Option<Cycle> = None;
        for sh in &self.shards {
            match sh.next_event(now) {
                Some(t) if t <= now => return Some(now),
                Some(t) => best = Some(best.map_or(t, |b: Cycle| b.min(t))),
                None => {}
            }
        }
        best
    }

    fn for_each_queue_hwm(&self, visit: &mut dyn FnMut(&'static str, usize)) {
        for sh in &self.shards {
            sh.for_each_queue_hwm(visit);
        }
    }

    fn shard_layout(&self) -> Option<ShardLayout> {
        Some(ShardedFabric::layout(self))
    }

    fn as_sharded_mut(&mut self) -> Option<&mut dyn ShardedFabric> {
        Some(self)
    }

    fn stats(&self) -> FabricStats {
        let b = self.cfg.lateral_buses;
        let mut st = FabricStats {
            ingress: Self::merged_stats(self.shards.iter().map(|s| s.ingress_stats())),
            egress: Self::merged_stats(self.shards.iter().map(|s| s.egress_stats())),
            mc_links: Self::merged_stats(self.shards.iter().map(|s| s.mc_link_stats())),
            lateral_right: Vec::with_capacity(self.shards.len() - 1),
            lateral_left: Vec::with_capacity(self.shards.len() - 1),
            id_stall_cycles: self.shards.iter().map(|s| s.id_stall_cycles()).sum(),
        };
        for nb in 0..self.shards.len() - 1 {
            // Right-going beats: right bus requests + left bus responses
            // (both carried by shard nb's eastward senders); left-going
            // beats symmetrically by shard nb+1's westward senders.
            let mut right = [LinkStats::default(), LinkStats::default()];
            let mut left = [LinkStats::default(), LinkStats::default()];
            for bus in 0..b.min(2) {
                right[bus].merge(self.shards[nb].east_stats(2 * bus).expect("east channel"));
                right[bus].merge(self.shards[nb].east_stats(2 * bus + 1).expect("east channel"));
                left[bus].merge(self.shards[nb + 1].west_stats(2 * bus).expect("west channel"));
                left[bus].merge(self.shards[nb + 1].west_stats(2 * bus + 1).expect("west channel"));
            }
            st.lateral_right.push(right);
            st.lateral_left.push(left);
        }
        st
    }

    fn reset_stats(&mut self) {
        for sh in &mut self.shards {
            sh.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_axi::{AxiId, BurstLen, Dir, TxnBuilder};

    fn fabric() -> XilinxFabric {
        XilinxFabric::new(FabricConfig::for_clock(ClockDomain::ACC_300))
    }

    fn read_txn(b: &mut TxnBuilder, addr: u64, now: Cycle) -> Transaction {
        b.issue(AxiId(0), addr, BurstLen::of(1), Dir::Read, now).unwrap()
    }

    /// Drives the fabric alone (no memory): requests reaching an MC port
    /// are immediately turned into completions (retried under
    /// back-pressure like a real controller would).
    fn reflect_until_drained(
        f: &mut XilinxFabric,
        mut pending: Vec<Transaction>,
    ) -> Vec<(Cycle, Completion)> {
        let mut done = Vec::new();
        let expected = pending.len();
        let mut now = 0;
        let mut stuck: Vec<Option<Completion>> = vec![None; f.num_ports()];
        while done.len() < expected && now < 100_000 {
            let mut still = Vec::new();
            for t in pending.drain(..) {
                if let Err(t) = f.offer_request(now, t) {
                    still.push(t);
                }
            }
            pending = still;
            f.tick(now);
            for (p, slot) in stuck.iter_mut().enumerate() {
                let port = PortId(p as u16);
                if let Some(c) = slot.take() {
                    if let Err(c) = f.offer_completion(now, port, c) {
                        *slot = Some(c);
                    }
                }
                if slot.is_none() {
                    if let Some(t) = f.pop_request(now, port) {
                        let c = Completion { txn: t, produced_at: now };
                        if let Err(c) = f.offer_completion(now, port, c) {
                            *slot = Some(c);
                        }
                    }
                }
            }
            for m in 0..f.num_masters() {
                while let Some(c) = f.pop_completion(now, MasterId(m as u16)) {
                    done.push((now, c));
                }
            }
            now += 1;
        }
        assert_eq!(done.len(), expected, "flits lost in the fabric");
        done
    }

    #[test]
    fn local_request_round_trip() {
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        let done = reflect_until_drained(&mut f, vec![read_txn(&mut b, 0, 0)]);
        let (cycle, c) = done[0];
        assert_eq!(c.txn.master, MasterId(0));
        // ingress 4 + mc_link 3 + mc_link 3 + egress 4 + arbitration ≈ 15–20.
        assert!((14..=24).contains(&cycle), "local round trip {cycle}");
    }

    #[test]
    fn farthest_request_takes_longer_via_hops() {
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        // Port 31 is 7 switches to the right of master 0.
        let addr = 31 * (256u64 << 20);
        let done = reflect_until_drained(&mut f, vec![read_txn(&mut b, addr, 0)]);
        let (far, _) = done[0];

        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        let done = reflect_until_drained(&mut f, vec![read_txn(&mut b, 0, 0)]);
        let (local, _) = done[0];
        // 7 hops each way at hop_latency 2 ⇒ ≥ 28 cycles more.
        assert!(far >= local + 24, "far {far} local {local}");
    }

    #[test]
    fn routes_to_correct_port() {
        let mut f = fabric();
        for (m, addr, want_port) in
            [(0u16, 0u64, 0u16), (5, 256 << 20, 1), (31, 31 * (256u64 << 20), 31)]
        {
            assert_eq!(f.port_of(addr), PortId(want_port));
            let mut b = TxnBuilder::new(MasterId(m));
            let t = read_txn(&mut b, addr, 0);
            assert!(f.offer_request(0, t).is_ok());
        }
        // Run and check arrival ports.
        let mut seen = Vec::new();
        for now in 0..1000 {
            f.tick(now);
            for p in 0..f.num_ports() {
                if let Some(t) = f.pop_request(now, PortId(p as u16)) {
                    seen.push((t.master.0, p as u16));
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (5, 1), (31, 31)]);
    }

    #[test]
    fn same_id_different_destination_stalls() {
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        let t0 = read_txn(&mut b, 0, 0);
        let t1 = read_txn(&mut b, 256 << 20, 0); // different port, same ID 0
        assert!(f.offer_request(0, t0).is_ok());
        let r = f.offer_request(0, t1);
        assert!(r.is_err(), "same-ID different-dest must stall");
        assert_eq!(f.stats().id_stall_cycles, 1);
    }

    #[test]
    fn same_id_same_destination_flows() {
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        let t0 = read_txn(&mut b, 0, 0);
        let t1 = read_txn(&mut b, 4096, 0); // same port 0
        assert!(f.offer_request(0, t0).is_ok());
        assert!(f.offer_request(1, t1).is_ok());
    }

    #[test]
    fn different_ids_different_destinations_flow() {
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        let t0 = b.issue(AxiId(0), 0, BurstLen::of(1), Dir::Read, 0).unwrap();
        let t1 = b.issue(AxiId(1), 256 << 20, BurstLen::of(1), Dir::Read, 1).unwrap();
        assert!(f.offer_request(0, t0).is_ok());
        // The AR channel carries one flit per cycle, so the second request
        // goes out the following cycle — no ID stall is involved.
        assert!(f.offer_request(1, t1).is_ok());
        assert_eq!(f.stats().id_stall_cycles, 0);
    }

    #[test]
    fn id_stall_clears_after_completion() {
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        let t0 = read_txn(&mut b, 0, 0);
        assert!(f.offer_request(0, t0).is_ok());
        let done = {
            // Drain t0 through a reflector.
            let mut done = Vec::new();
            for now in 0..1000 {
                f.tick(now);
                for p in 0..f.num_ports() {
                    if let Some(t) = f.pop_request(now, PortId(p as u16)) {
                        let c = Completion { txn: t, produced_at: now };
                        f.offer_completion(now, PortId(p as u16), c).unwrap();
                    }
                }
                if let Some(c) = f.pop_completion(now, MasterId(0)) {
                    done.push((now, c));
                }
            }
            done
        };
        assert_eq!(done.len(), 1);
        // Now the same ID may target a different destination.
        let t1 = read_txn(&mut b, 256 << 20, 2000);
        assert!(f.offer_request(2000, t1).is_ok());
    }

    #[test]
    fn lateral_traffic_counted_only_for_remote_flows() {
        let mut f = fabric();
        // Local flow: master 0 → port 0.
        let mut b = TxnBuilder::new(MasterId(0));
        reflect_until_drained(&mut f, vec![read_txn(&mut b, 0, 0)]);
        assert_eq!(f.stats().lateral_beats(), 0);

        // Remote flow: master 0 → port 4 (next switch).
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        reflect_until_drained(&mut f, vec![read_txn(&mut b, 4 * (256u64 << 20), 0)]);
        let st = f.stats();
        assert!(st.lateral_beats() > 0);
        // Request crossed boundary 0 rightward on the right bus's request
        // channel; the response came back leftward on its response channel.
        assert!(st.lateral_right[0][0].beats > 0);
        let left_total: u64 = st.lateral_left[0].iter().map(|l| l.beats).sum();
        assert!(left_total > 0, "response must cross leftward");
    }

    #[test]
    fn many_masters_all_complete() {
        // One BL16 read+write pair from every master to its local port.
        let mut f = fabric();
        let mut txns = Vec::new();
        for m in 0..32u16 {
            let mut b = TxnBuilder::new(MasterId(m));
            let base = m as u64 * (256 << 20);
            txns.push(b.issue(AxiId(0), base, BurstLen::of(16), Dir::Read, 0).unwrap());
            txns.push(b.issue(AxiId(1), base + 512, BurstLen::of(16), Dir::Write, 0).unwrap());
        }
        let done = reflect_until_drained(&mut f, txns);
        assert_eq!(done.len(), 64);
        assert!(f.drained());
    }

    #[test]
    fn drained_initially_and_after_traffic() {
        let mut f = fabric();
        assert!(f.drained());
        let mut b = TxnBuilder::new(MasterId(3));
        reflect_until_drained(&mut f, vec![read_txn(&mut b, 0, 0)]);
        assert!(f.drained());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut f = fabric();
        let mut b = TxnBuilder::new(MasterId(0));
        reflect_until_drained(&mut f, vec![read_txn(&mut b, 4 * (256u64 << 20), 0)]);
        assert!(f.stats().lateral_beats() > 0);
        f.reset_stats();
        assert_eq!(f.stats().lateral_beats(), 0);
        assert_eq!(f.stats().ingress.flits, 0);
    }
}
